// capr-analyze: static certification of a model + prune plan from the
// command line, without running a forward pass.
//
//   capr-analyze --arch vgg16                       # certify the graph
//   capr-analyze --arch resnet20 --plan plan.txt    # certify a plan
//   capr-analyze --arch vgg16 --checkpoint m.ckpt --plan plan.txt --strict
//   capr-analyze --arch resnet20 --dump-graph -     # ModuleGraph as JSON
//   capr-analyze --arch resnet20 --dump-dot g.dot   # ModuleGraph as DOT
//   capr-analyze --arch resnet20 --dump-plan -      # ExecutionPlan as JSON
//   capr-analyze --arch resnet20 --lint-plan        # compile + verify the plan IR
//
// A plan file holds one unit per line: the unit index followed by the
// filter indices to remove ('#' starts a comment):
//
//   # unit  filters...
//   0  1 3 5
//   2  0 7
//
// With --checkpoint, the checkpoint's (possibly pruned) shapes are
// replayed onto the freshly built architecture before loading, so plans
// are certified against the live filter counts of the saved model.
// Exit status: 0 when the report is clean, 1 on any error diagnostic,
// 2 on usage/I/O problems.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "compile/compiler.h"
#include "compile/dump.h"
#include "core/surgeon.h"
#include "graph/dump.h"
#include "graph/graph.h"
#include "models/builders.h"
#include "tensor/serialize.h"

namespace {

struct Options {
  std::string arch;
  std::string checkpoint;
  std::string plan_file;
  capr::models::BuildConfig build{};
  capr::core::PruneStrategyConfig strategy{};
  bool with_strategy = false;  // enable cap/floor checks
  bool trace = false;          // print the shape propagation table
  std::string dump_graph;      // ModuleGraph JSON target ('-' = stdout)
  std::string dump_dot;        // ModuleGraph DOT target ('-' = stdout)
  std::string dump_plan;       // compiled ExecutionPlan JSON ('-' = stdout)
  bool lint_plan = false;      // compile and lint the ExecutionPlan IR
};

void usage(std::ostream& os) {
  os << "usage: capr-analyze --arch <name> [options]\n"
        "  --arch <name>         architecture (";
  for (const std::string& a : capr::models::available_archs()) os << a << ' ';
  os << ")\n"
        "  --classes <n>         number of classes (default 10)\n"
        "  --input-size <n>      input H=W (default 16)\n"
        "  --width-mult <f>      channel width multiplier (default 0.25)\n"
        "  --checkpoint <file>   replay + load a saved (pruned) checkpoint\n"
        "  --plan <file>         certify a prune plan (one 'unit f f f' per line)\n"
        "  --strict              also enforce strategy semantics (caps, floor)\n"
        "  --max-fraction <f>    global per-iteration cap (default 0.10, with --strict)\n"
        "  --layer-fraction <f>  per-layer per-iteration cap (default 0.5, with --strict)\n"
        "  --min-filters <n>     per-layer floor (default 2, with --strict)\n"
        "  --trace               print the certified shape propagation table\n"
        "  --dump-graph <file>   write the ModuleGraph as JSON ('-' for stdout)\n"
        "  --dump-dot <file>     write the ModuleGraph as Graphviz DOT ('-' for stdout)\n"
        "  --dump-plan <file>    compile and write the ExecutionPlan as JSON\n"
        "                        (capr-exec-plan-v1 schema, '-' for stdout)\n"
        "  --lint-plan           compile and statically verify the ExecutionPlan IR\n"
        "                        (prints E-PLAN-* findings; exit 1 on any)\n";
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--arch") {
      opts.arch = value();
    } else if (arg == "--classes") {
      opts.build.num_classes = std::stoll(value());
    } else if (arg == "--input-size") {
      opts.build.input_size = std::stoll(value());
    } else if (arg == "--width-mult") {
      opts.build.width_mult = std::stof(value());
    } else if (arg == "--checkpoint") {
      opts.checkpoint = value();
    } else if (arg == "--plan") {
      opts.plan_file = value();
    } else if (arg == "--strict") {
      opts.with_strategy = true;
    } else if (arg == "--max-fraction") {
      opts.strategy.max_fraction_per_iter = std::stof(value());
      opts.with_strategy = true;
    } else if (arg == "--layer-fraction") {
      opts.strategy.max_layer_fraction_per_iter = std::stof(value());
      opts.with_strategy = true;
    } else if (arg == "--min-filters") {
      opts.strategy.min_filters_per_layer = std::stoll(value());
      opts.with_strategy = true;
    } else if (arg == "--trace") {
      opts.trace = true;
    } else if (arg == "--dump-graph") {
      opts.dump_graph = value();
    } else if (arg == "--dump-dot") {
      opts.dump_dot = value();
    } else if (arg == "--dump-plan") {
      opts.dump_plan = value();
    } else if (arg == "--lint-plan") {
      opts.lint_plan = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return false;
    } else {
      throw std::runtime_error("unknown argument '" + arg + "'");
    }
  }
  if (opts.arch.empty()) throw std::runtime_error("--arch is required");
  return true;
}

std::vector<capr::core::UnitSelection> read_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open plan file '" + path + "'");
  std::vector<capr::core::UnitSelection> plan;
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    capr::core::UnitSelection sel;
    long long unit = 0;
    if (!(fields >> unit)) continue;  // blank/comment line
    if (unit < 0) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": negative unit index");
    }
    sel.unit_index = static_cast<size_t>(unit);
    long long f = 0;
    while (fields >> f) sel.filters.push_back(f);
    if (!fields.eof()) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": malformed filter list");
    }
    plan.push_back(std::move(sel));
  }
  return plan;
}

void write_output(const std::string& target, const std::string& content) {
  if (target == "-") {
    std::cout << content;
    return;
  }
  std::ofstream out(target);
  if (!out) throw std::runtime_error("cannot open '" + target + "' for writing");
  out << content;
  if (!out) throw std::runtime_error("failed writing '" + target + "'");
}

void print_trace(const capr::analysis::ShapeTrace& trace) {
  std::cout << "shape propagation (" << trace.steps.size() << " certified edges):\n";
  for (const capr::analysis::ShapeStep& s : trace.steps) {
    std::cout << "  layer " << s.layer << "  " << s.kind;
    if (!s.name.empty()) std::cout << " '" << s.name << "'";
    std::cout << "  " << capr::to_string(s.in) << " -> " << capr::to_string(s.out) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    if (!parse_args(argc, argv, opts)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "capr-analyze: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  try {
    capr::nn::Model model = capr::models::make_model(opts.arch, opts.build);
    if (!opts.checkpoint.empty()) {
      capr::core::load_pruned_checkpoint(model, capr::load_tensor_map(opts.checkpoint));
    }

    if (!opts.dump_graph.empty() || !opts.dump_dot.empty() || !opts.dump_plan.empty() ||
        opts.lint_plan) {
      const capr::graph::ModuleGraph g = capr::graph::ModuleGraph::build(model);
      if (!opts.dump_graph.empty()) write_output(opts.dump_graph, to_json(g, model.arch));
      if (!opts.dump_dot.empty()) write_output(opts.dump_dot, to_dot(g, model.arch));
      if (!opts.dump_plan.empty()) {
        const capr::compile::CompileOptions copts;  // all passes on
        const capr::compile::CompileResult result = capr::compile::compile(g, copts);
        if (!result.plan) {
          for (const capr::compile::CompileError& e : result.errors) {
            std::cerr << "capr-analyze: " << e.format() << "\n";
          }
          return 1;
        }
        write_output(opts.dump_plan, to_json(*result.plan, g, copts, model.arch));
      }
      if (opts.lint_plan) {
        // compile() already rejects a plan that fails its mandatory lint;
        // this mode surfaces the same pass (and its E-PLAN-* findings)
        // on the command line, and CI runs it over every golden arch.
        const capr::compile::CompileOptions copts;  // all passes on
        const capr::compile::CompileResult result = capr::compile::compile(g, copts);
        if (!result.plan) {
          for (const capr::compile::PlanDiag& d : result.lint) {
            std::cout << d.format() << "\n";
          }
          for (const capr::compile::CompileError& e : result.errors) {
            std::cerr << "capr-analyze: " << e.format() << "\n";
          }
          return 1;
        }
        const capr::compile::PlanLint lint = capr::compile::lint_plan(*result.plan, g);
        if (!lint.ok()) {
          std::cout << lint.to_string() << "\n";
          return 1;
        }
        std::cout << model.arch << ": plan lint OK (" << result.plan->steps().size()
                  << " steps, " << result.plan->slot_count() << " slots, "
                  << result.plan->interpreted_steps() << " interpreted)\n";
        return 0;
      }
      // Dumping to stdout is a machine-readable mode: suppress the human
      // report so the stream stays parseable, and exit on graph health.
      if (opts.dump_graph == "-" || opts.dump_dot == "-" || opts.dump_plan == "-") {
        return g.ok() ? 0 : 1;
      }
    }

    if (opts.trace) print_trace(capr::analysis::infer_shapes(model));

    capr::analysis::Report report;
    if (opts.plan_file.empty()) {
      report = capr::analysis::analyze_model(model);
    } else {
      capr::analysis::VerifyOptions vopts;
      if (opts.with_strategy) vopts.strategy = &opts.strategy;
      report = capr::analysis::analyze_plan(model, read_plan(opts.plan_file), vopts);
    }

    std::cout << model.arch << ": " << model.units.size() << " prunable units\n";
    if (report.diagnostics().empty()) {
      std::cout << "OK: no diagnostics\n";
    } else {
      std::cout << report.to_string();
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "capr-analyze: " << e.what() << "\n";
    return 2;
  }
}
