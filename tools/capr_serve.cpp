// capr-serve: load generator and hot-swap driver for the fleet server.
//
//   capr-serve --arch resnet20                       # random weights
//   capr-serve --arch resnet20 --checkpoint m.ckpt   # trained/pruned model
//   capr-serve --arch vgg11 --clients 8 --requests 512 --max-batch 8
//   capr-serve --arch resnet20 --checkpoint dense.ckpt
//              --model prod --publish pruned.ckpt     # live hot-swap
//
// Spawns N client threads that submit synthetic samples against one
// shared InferenceServer, then prints throughput, latency percentiles
// and the server's own counters. With --publish, a newly pruned
// checkpoint is certified and hot-swapped into the live server halfway
// through the run — in-flight requests drain on the old session, none
// are dropped. Use it to explore the batching, backpressure and swap
// knobs interactively; bench_serve is the reproducible
// (google-benchmark + open-loop) version of the same measurement.
//
// Exit status:
//   0  success — every request completed kOk (and the publish, if any,
//      went live)
//   1  one or more requests failed (timeout/rejected/errored)
//   2  usage errors (unknown flag, missing value, bad combination)
//   3  publish rejected — the checkpoint failed certification (replay,
//      analyzer, graph admission) or would change the serving contract;
//      the old variant kept serving
#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "models/builders.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace {

struct Options {
  std::string arch;
  std::string checkpoint;
  std::string publish;  // checkpoint hot-swapped mid-run
  std::string kernel = "tiled";
  capr::models::BuildConfig build{};
  capr::serve::ServerConfig server{};
  std::string model = "default";  // fleet id the clients route to
  int clients = 4;
  int requests = 256;  // total, split across clients
};

void usage(std::ostream& os) {
  os << "usage: capr-serve --arch <name> [options]\n"
        "  --arch <name>         architecture (";
  for (const std::string& a : capr::models::available_archs()) os << a << ' ';
  os << ")\n"
        "  --checkpoint <file>   serve a saved (possibly pruned) checkpoint\n"
        "  --model <id>          fleet model id to serve and route to (default "
        "\"default\")\n"
        "  --publish <file>      certify + hot-swap this checkpoint into --model\n"
        "                        halfway through the run (zero downtime)\n"
        "  --classes <n>         number of classes (default 10)\n"
        "  --input-size <n>      input H=W (default 16)\n"
        "  --width-mult <f>      channel width multiplier (default 0.25)\n"
        "  --kernel <name>       GEMM kernel: tiled (default) or reference\n"
        "  --clients <n>         client threads (default 4)\n"
        "  --requests <n>        total requests across clients (default 256)\n"
        "  --workers <n>         server worker threads (default: num_threads())\n"
        "  --queue-cap <n>       bounded queue capacity (default 64)\n"
        "  --max-batch <n>       micro-batch coalescing limit (default 8)\n"
        "  --max-delay-us <n>    straggler linger per batch (default 200)\n"
        "  --timeout-us <n>      per-request deadline, 0 = none (default 0)\n"
        "exit codes: 0 ok, 1 request failures, 2 usage, 3 publish rejected\n";
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--arch") {
      opts.arch = value();
    } else if (arg == "--checkpoint") {
      opts.checkpoint = value();
    } else if (arg == "--model") {
      opts.model = value();
      if (opts.model.empty()) throw std::runtime_error("--model id must be non-empty");
    } else if (arg == "--publish") {
      opts.publish = value();
    } else if (arg == "--classes") {
      opts.build.num_classes = std::stoll(value());
    } else if (arg == "--input-size") {
      opts.build.input_size = std::stoll(value());
    } else if (arg == "--width-mult") {
      opts.build.width_mult = std::stof(value());
    } else if (arg == "--kernel") {
      opts.kernel = value();
      if (opts.kernel != "tiled" && opts.kernel != "reference") {
        throw std::runtime_error("unknown kernel '" + opts.kernel + "'");
      }
    } else if (arg == "--clients") {
      opts.clients = std::stoi(value());
    } else if (arg == "--requests") {
      opts.requests = std::stoi(value());
    } else if (arg == "--workers") {
      opts.server.workers = std::stoi(value());
    } else if (arg == "--queue-cap") {
      opts.server.queue_capacity = static_cast<size_t>(std::stoull(value()));
    } else if (arg == "--max-batch") {
      opts.server.max_batch = static_cast<size_t>(std::stoull(value()));
    } else if (arg == "--max-delay-us") {
      opts.server.max_delay_us = std::stoll(value());
    } else if (arg == "--timeout-us") {
      opts.server.default_timeout_us = std::stoll(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return false;
    } else {
      throw std::runtime_error("unknown argument '" + arg + "'");
    }
  }
  if (opts.arch.empty()) throw std::runtime_error("--arch is required");
  if (opts.clients < 1) throw std::runtime_error("--clients must be >= 1");
  if (opts.requests < 1) throw std::runtime_error("--requests must be >= 1");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    if (!parse_args(argc, argv, opts)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "capr-serve: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  try {
    using capr::serve::InferResult;
    using capr::serve::RequestStatus;
    const capr::GemmKernelScope scope(opts.kernel == "tiled" ? capr::GemmKernel::kTiled
                                                             : capr::GemmKernel::kReference);
    std::shared_ptr<const capr::serve::InferenceSession> session;
    if (!opts.checkpoint.empty()) {
      session = std::make_shared<const capr::serve::InferenceSession>(
          capr::serve::InferenceSession::from_checkpoint(opts.arch, opts.build,
                                                         opts.checkpoint));
    } else {
      std::cout << "no --checkpoint given; serving randomly initialised weights\n";
      session = std::make_shared<const capr::serve::InferenceSession>(
          capr::models::make_model(opts.arch, opts.build));
    }

    auto registry = std::make_shared<capr::serve::ModelRegistry>();
    registry->publish(opts.model, session, /*warm_batch=*/0);
    opts.server.default_model = opts.model;
    capr::serve::InferenceServer server(registry, opts.server);
    const capr::Shape& in = session->input_shape();
    std::cout << "serving " << opts.arch << " " << capr::to_string(in) << " -> "
              << session->num_classes() << " classes as \"" << opts.model << "\", "
              << server.config().workers << " workers, max_batch "
              << server.config().max_batch << ", kernel " << opts.kernel << "\n";

    // Each client owns a pool of synthetic samples and submits its share
    // of the total, blocking on queue space (so nothing is shed here —
    // use --timeout-us to exercise deadline rejection instead).
    const int per_client = (opts.requests + opts.clients - 1) / opts.clients;
    std::vector<std::vector<int64_t>> latencies(static_cast<size_t>(opts.clients));
    std::vector<std::vector<InferResult>> failures(static_cast<size_t>(opts.clients));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int c = 0; c < opts.clients; ++c) {
      clients.emplace_back([&, c] {
        capr::Rng rng(1234 + static_cast<uint64_t>(c));
        std::vector<capr::Tensor> samples;
        for (int i = 0; i < 4; ++i) {
          capr::Tensor s({in[0], in[1], in[2]});
          rng.fill_normal(s, 0.0f, 1.0f);
          samples.push_back(std::move(s));
        }
        std::vector<std::future<InferResult>> futs;
        for (int r = 0; r < per_client; ++r) {
          futs.push_back(server.submit(samples[static_cast<size_t>(r % 4)]));
        }
        for (auto& fut : futs) {
          InferResult res = fut.get();
          if (res.status == RequestStatus::kOk) {
            latencies[static_cast<size_t>(c)].push_back(res.latency_us);
          } else {
            failures[static_cast<size_t>(c)].push_back(std::move(res));
          }
        }
      });
    }
    // With --publish, hot-swap the checkpoint into the live fleet once
    // roughly half the requests have completed. Clients keep submitting
    // throughout: in-flight requests drain on the old session, later
    // ones route to the new one, nothing is dropped.
    std::thread publisher;
    std::string publish_error;
    std::atomic<bool> clients_done{false};
    if (!opts.publish.empty()) {
      publisher = std::thread([&] {
        // completed only counts kOk, so also bail once the clients are
        // done — a run where everything times out must still terminate.
        const uint64_t half = static_cast<uint64_t>(opts.requests) / 2;
        while (!clients_done.load(std::memory_order_relaxed) &&
               server.stats().completed < half) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        try {
          server.registry()->publish_checkpoint(opts.model, opts.arch, opts.build,
                                                opts.publish);
          std::cout << "published " << opts.publish << " as \"" << opts.model << "\" v"
                    << server.registry()->version(opts.model) << " (hot-swap)\n";
        } catch (const std::exception& e) {
          publish_error = e.what();
        }
      });
    }

    for (std::thread& t : clients) t.join();
    clients_done.store(true, std::memory_order_relaxed);
    if (publisher.joinable()) publisher.join();
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    server.shutdown();

    std::vector<int64_t> all;
    size_t failed = 0;
    for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    for (const auto& v : failures) failed += v.size();
    std::sort(all.begin(), all.end());
    const auto pct = [&](double p) {
      return all.empty() ? 0
                         : all[static_cast<size_t>(p * static_cast<double>(all.size() - 1))];
    };

    const capr::serve::ServerStats stats = server.stats();
    std::cout << "completed " << all.size() << "/" << opts.requests << " requests in "
              << elapsed_s << " s (" << static_cast<double>(all.size()) / elapsed_s
              << " QPS)\n"
              << "latency p50 " << pct(0.50) << " us, p90 " << pct(0.90) << " us, p99 "
              << pct(0.99) << " us\n"
              << "server: " << stats.batches << " batches, "
              << (stats.batches == 0 ? 0.0
                                     : static_cast<double>(stats.batched_samples) /
                                           static_cast<double>(stats.batches))
              << " samples/batch avg, " << stats.timed_out << " timed out, " << stats.rejected
              << " rejected, " << stats.errored << " errored\n";
    for (const auto& v : failures) {
      for (const InferResult& res : v) {
        std::cerr << "capr-serve: request failed: " << to_string(res.status)
                  << (res.error.empty() ? "" : ": " + res.error) << "\n";
      }
    }
    if (!publish_error.empty()) {
      std::cerr << "capr-serve: publish rejected: " << publish_error
                << " (old variant kept serving)\n";
      return 3;
    }
    return failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "capr-serve: " << e.what() << "\n";
    return 1;
  }
}
