// capr-tournament: run every pruning strategy through the identical
// train -> prune -> certify -> compile -> serve pipeline and report the
// accuracy-vs-measured-QPS/p99 Pareto frontier.
//
// Usage:
//   capr-tournament [--arch NAME] [--strategies a,b,c] [--smoke]
//                   [--no-serve] [--out FILE|-] [--csv FILE] [--list]
//
//   --arch NAME        architecture to prune (default resnet20)
//   --strategies LIST  comma-separated roster subset (default: all 7)
//   --smoke            tiny preset (tiny arch, small data, short
//                      training, one serve rung) for CI and baselines
//   --no-serve         skip the serving stage (QPS/p99 report as 0)
//   --out FILE|-       write the JSON document (schema
//                      capr-tournament-v1) to FILE, or stdout with "-"
//   --csv FILE         also write the frontier as CSV
//   --list             print roster names and exit
//
// Exit codes: 0 success, 1 runtime failure, 2 usage error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tournament/tournament.h"

namespace {

using capr::tournament::TournamentConfig;

struct Args {
  TournamentConfig cfg;
  std::string out;
  std::string csv;
  bool list = false;
};

int usage(std::ostream& os, int code) {
  os << "usage: capr-tournament [--arch NAME] [--strategies a,b,c] [--smoke]\n"
        "                       [--no-serve] [--out FILE|-] [--csv FILE] [--list]\n";
  return code;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Shrinks every stage so the full roster finishes in CI smoke time:
/// tiny two-conv arch, 3-class data, short training, one serve rung.
void apply_smoke(TournamentConfig& cfg) {
  cfg.arch = "tiny";
  cfg.build.num_classes = 3;
  cfg.build.input_size = 8;
  cfg.build.width_mult = 0.5f;
  cfg.dataset.num_classes = 3;
  cfg.dataset.train_per_class = 16;
  cfg.dataset.test_per_class = 8;
  cfg.dataset.image_size = 8;
  cfg.base_train.epochs = 6;
  cfg.base_train.batch_size = 12;
  cfg.base_train.sgd.lr = 0.05f;
  cfg.prune.max_iterations = 2;
  cfg.prune.max_accuracy_drop = 1.0f;  // smoke ranks methods, never stops early
  cfg.prune.limits.max_fraction_per_iter = 0.25f;
  cfg.prune.limits.min_filters_per_layer = 1;
  cfg.prune.finetune.epochs = 2;
  cfg.prune.finetune.batch_size = 12;
  cfg.prune.finetune.sgd.lr = 0.02f;
  cfg.serve.ladder = {1000, 8000};
  cfg.serve.window_ms = 100;
  cfg.serve.workers = 2;
  cfg.serve.max_batch = 4;
  cfg.class_aware.importance.images_per_class = 4;
  cfg.class_aware.importance.tau_mode = capr::core::TauMode::kQuantile;
  cfg.provable.images_per_class = 4;
  cfg.criterion_images_per_class = 2;
}

/// Full default: a production-shaped run on resnet20. The class-aware
/// scorer runs in quantile-tau mode, matching the reduced training
/// scale (see core/importance.h).
void apply_full_defaults(TournamentConfig& cfg) {
  cfg.base_train.epochs = 12;
  cfg.base_train.batch_size = 32;
  cfg.base_train.sgd.lr = 0.05f;
  cfg.prune.max_iterations = 4;
  cfg.prune.max_accuracy_drop = 0.05f;
  cfg.prune.finetune.epochs = 3;
  cfg.prune.finetune.batch_size = 32;
  cfg.prune.finetune.sgd.lr = 0.02f;
  cfg.class_aware.importance.tau_mode = capr::core::TauMode::kQuantile;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  apply_full_defaults(args.cfg);
  bool smoke = false;
  std::string arch, strategies;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires an argument\n";
        std::exit(usage(std::cerr, 2));
      }
      return argv[++i];
    };
    if (a == "--arch") {
      arch = next("--arch");
    } else if (a == "--strategies") {
      strategies = next("--strategies");
    } else if (a == "--smoke") {
      smoke = true;
    } else if (a == "--no-serve") {
      args.cfg.measure_serving = false;
    } else if (a == "--out") {
      args.out = next("--out");
    } else if (a == "--csv") {
      args.csv = next("--csv");
    } else if (a == "--list") {
      args.list = true;
    } else if (a == "--help" || a == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (args.list) {
    for (const std::string& name : capr::tournament::default_roster()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (smoke) apply_smoke(args.cfg);
  if (!arch.empty()) args.cfg.arch = arch;
  if (!strategies.empty()) args.cfg.strategies = split_csv(strategies);

  try {
    const capr::tournament::TournamentResult result =
        capr::tournament::run_tournament(args.cfg, &std::cerr);
    const std::string json = capr::tournament::to_json(result).dump();
    if (args.out == "-") {
      std::cout << json << "\n";
    } else if (!args.out.empty()) {
      std::ofstream out(args.out);
      if (!out) {
        std::cerr << "cannot write " << args.out << "\n";
        return 1;
      }
      out << json << "\n";
    }
    if (!args.csv.empty()) {
      std::ofstream out(args.csv);
      if (!out) {
        std::cerr << "cannot write " << args.csv << "\n";
        return 1;
      }
      out << capr::tournament::to_csv(result);
    }
    // Human-readable frontier on stderr so --out - stays machine-clean.
    std::cerr << "\nPareto frontier (accuracy vs saturation QPS):\n";
    for (const auto& e : result.entrants) {
      if (!e.pareto) continue;
      std::cerr << "  " << e.strategy << ": accuracy=" << e.final_accuracy
                << " qps=" << e.saturation_qps << " p99_us=" << e.p99_us << "\n";
    }
    return 0;
  } catch (const std::invalid_argument& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 2;
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
