#!/usr/bin/env python3
"""Compare two benchmark JSON files produced by the bench binaries.

Usage:
    python3 tools/perf_diff.py BASELINE CURRENT [--threshold PCT] [--strict]

Supported schemas (both files must carry the same one):
    capr-kernel-bench-v1   bench_gemm / bench_conv, metric: gflops
    capr-serve-bench-v1    bench_serve (closed loop only), metric: qps
    capr-serve-bench-v2    bench_serve incl. open-loop latency-under-load
                           rows ("open/...") and per-variant saturation
                           rows ("sat/...", qps = peak sustained
                           throughput), metric: qps
    capr-tournament-v1     capr-tournament pruning-strategy frontier
                           rows ("tournament/<arch>/<strategy>", qps =
                           measured saturation throughput), metric: qps

Matches results by benchmark name and reports the metric delta for each.
A drop larger than --threshold percent (default 20) is flagged as a
regression. By default regressions only WARN (exit 0) because CI runners
have noisy clocks; --strict makes them fail the step (exit 1).

Benchmarks present in only one file are listed but never fatal — the
sweep grows over time and smoke runs are a subset of the full sweep.
"""

import argparse
import json
import sys

# schema -> (higher-is-better metric key, unit suffix for the table)
SCHEMAS = {
    "capr-kernel-bench-v1": ("gflops", "G"),
    "capr-serve-bench-v1": ("qps", "/s"),
    "capr-serve-bench-v2": ("qps", "/s"),
    "capr-tournament-v1": ("qps", "/s"),
}


def load_doc(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        sys.exit(f"{path}: unexpected schema {schema!r}")
    return schema, {r["name"]: r for r in doc.get("results", [])}


def check_tuned_rows(label, rows, metric, unit, threshold):
    """Intra-file check for kernel bench files: every tiled-tuned row is
    compared against its untuned tiled sibling. The autotuner only commits
    configs that beat the default, so tuned dropping below untuned by more
    than the noise threshold means the committed table has gone stale for
    this machine (or the search regressed). Returns the offending rows."""
    regressions = []
    tuned = [n for n in sorted(rows) if "/tiled-tuned/" in n]
    if not tuned:
        return regressions
    width = max(len(n) for n in tuned)
    print(f"\ntuned-vs-untuned ({label}):")
    print(f"{'benchmark':<{width}}  {'tiled':>9}  {'tuned':>9}  {'delta':>8}")
    for name in tuned:
        sibling = name.replace("/tiled-tuned/", "/tiled/")
        if sibling not in rows:
            print(f"{name:<{width}}  (no untuned sibling)")
            continue
        b, c = rows[sibling][metric], rows[name][metric]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        mark = ""
        if delta < -threshold:
            mark = "  << TUNED REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b:>8.2f}{unit}  {c:>8.2f}{unit}  {delta:>+7.1f}%{mark}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="regression threshold in percent (default 20)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on regression instead of warning")
    args = ap.parse_args()

    base_schema, base = load_doc(args.baseline)
    curr_schema, curr = load_doc(args.current)
    if base_schema != curr_schema:
        sys.exit(f"schema mismatch: {args.baseline} is {base_schema}, "
                 f"{args.current} is {curr_schema}")
    metric, unit = SCHEMAS[base_schema]

    common = sorted(set(base) & set(curr))
    if not common:
        print("perf_diff: no common benchmarks between the two files")
        return 0

    width = max(len(n) for n in common)
    regressions = []
    print(f"{'benchmark':<{width}}  {'base':>9}  {'curr':>9}  {'delta':>8}")
    for name in common:
        b, c = base[name][metric], curr[name][metric]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        mark = ""
        if delta < -args.threshold:
            mark = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {b:>8.2f}{unit}  {c:>8.2f}{unit}  {delta:>+7.1f}%{mark}")

    for name in sorted(set(base) - set(curr)):
        print(f"{name:<{width}}  (baseline only)")
    for name in sorted(set(curr) - set(base)):
        print(f"{name:<{width}}  (current only)")

    tuned_regressions = []
    if base_schema == "capr-kernel-bench-v1":
        tuned_regressions = check_tuned_rows("current", curr, metric, unit,
                                             args.threshold)

    if regressions:
        print(f"\nperf_diff: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% {metric} vs baseline")
    if tuned_regressions:
        print(f"perf_diff: {len(tuned_regressions)} tiled-tuned row(s) fell more "
              f"than {args.threshold:.0f}% below their untuned sibling")
    if regressions or tuned_regressions:
        if args.strict:
            return 1
        print("perf_diff: warning only (pass --strict to fail)")
    else:
        print(f"\nperf_diff: no regression beyond {args.threshold:.0f}% "
              f"on {len(common)} common benchmark(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
