// capr-tune: per-shape-class GEMM autotuner for the committed tuning
// table the tiled-kernel dispatch consults ($CAPR_GEMM_TUNING /
// tuning/default.json).
//
//   capr-tune                                # full search, write tuning/default.json
//   capr-tune --smoke --out -                # tiny CI grid, table JSON on stdout
//   capr-tune --verify --table tuning/default.json   # re-measure committed entries
//   capr-tune --dump tuning/default.json     # parse + re-serialise (round-trip check)
//
// The search measures every candidate through the real dispatch path and
// admits a config only after it passes the bitwise eligibility check
// (1-vs-N workers AND identical to the default config's output), so a
// table can change speed but never bits. --verify re-measures each
// committed entry on its recorded representative shape: drift is
// reported but non-fatal (timings move), a bitwise-ineligible entry is
// fatal (the determinism contract broke). Tables from another host fail
// the fingerprint check: --verify then runs the structural checks only.
// Exit status: 0 clean, 1 on any E-TUNE-* diagnostic or broken contract,
// 2 on usage/I-O problems.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "tensor/gemm_tune.h"
#include "tune/corpus.h"
#include "tune/search.h"

namespace {

struct Options {
  std::string out = "tuning/default.json";  // tune-mode output ('-' = stdout)
  std::string table;                        // input for --verify / --dump
  std::string dump;                         // re-serialise target ('-' = stdout)
  bool verify = false;
  bool smoke = false;
  int repeats = 3;
  double min_gain = 1.03;
};

void usage(std::ostream& os) {
  os << "usage: capr-tune [options]\n"
        "  (default)           search all corpus shape classes, write the table\n"
        "  --out <file>        tuned-table target (default tuning/default.json,\n"
        "                      '-' for stdout machine mode)\n"
        "  --smoke             tiny candidate grid + short timings (CI)\n"
        "  --repeats <n>       best-of timing repetitions (default 3)\n"
        "  --min-gain <f>      required speedup over the default config (default 1.03)\n"
        "  --verify            re-measure a committed table instead of tuning\n"
        "  --table <file>      table to --verify or --dump\n"
        "  --dump <file>       parse --table (or the fresh result) and write its\n"
        "                      canonical JSON ('-' for stdout machine mode)\n";
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) throw std::runtime_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--out") {
      opts.out = value();
    } else if (arg == "--table") {
      opts.table = value();
    } else if (arg == "--dump") {
      opts.dump = value();
    } else if (arg == "--verify") {
      opts.verify = true;
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--repeats") {
      opts.repeats = std::stoi(value());
    } else if (arg == "--min-gain") {
      opts.min_gain = std::stod(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return false;
    } else {
      throw std::runtime_error("unknown argument '" + arg + "'");
    }
  }
  if (opts.verify && opts.table.empty()) {
    throw std::runtime_error("--verify requires --table <file>");
  }
  return true;
}

void write_output(const std::string& target, const std::string& content) {
  if (target == "-") {
    std::cout << content;
    return;
  }
  std::ofstream out(target);
  if (!out) throw std::runtime_error("cannot open '" + target + "' for writing");
  out << content;
  if (!out) throw std::runtime_error("failed writing '" + target + "'");
}

int run_verify(const Options& opts, std::ostream& log) {
  capr::GemmTuningTable table;
  const capr::TuneStatus status = capr::load_gemm_tuning(opts.table, &table,
                                                         /*check_host=*/true);
  const bool host_mismatch = status.code == capr::TuneCode::kHost;
  if (!status.ok() && !host_mismatch) {
    std::cerr << "capr-tune: " << opts.table << ": " << status.format() << "\n";
    return 1;
  }
  log << "capr-tune: " << opts.table << ": " << table.present_count()
      << " entries, host '" << table.host << "'\n";
  if (host_mismatch) {
    // Structural validation passed (or load_gemm_tuning would have
    // returned the hard code); measurements from another machine are
    // meaningless here, so stop after the parse/validation checks.
    log << "capr-tune: " << status.format() << "\n"
        << "capr-tune: structural checks only (re-measure skipped)\n";
    return 0;
  }
  capr::tune::TuneOptions topts;
  topts.smoke = opts.smoke;
  topts.repeats = opts.repeats;
  topts.log = &log;
  const std::vector<capr::tune::VerifyRow> rows = capr::tune::verify_table(table, topts);
  int broken = 0;
  for (const capr::tune::VerifyRow& row : rows) {
    if (!row.eligible) ++broken;
    if (row.measured && row.drift() > 0.0 && (row.drift() < 0.5 || row.drift() > 2.0)) {
      log << "capr-tune: WARNING: " << row.cls.key() << " drifted "
          << row.drift() << "x from its recorded throughput; consider re-tuning\n";
    }
  }
  if (broken > 0) {
    std::cerr << "capr-tune: " << broken
              << " entries failed the bitwise eligibility re-check\n";
    return 1;
  }
  log << "capr-tune: verify OK (" << rows.size() << " entries re-checked)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    if (!parse_args(argc, argv, opts)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "capr-tune: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  // Machine mode: when the table JSON goes to stdout, progress goes to
  // stderr so the stream stays parseable (capr-analyze convention).
  const bool machine = opts.out == "-" || opts.dump == "-";
  std::ostream& log = machine ? std::cerr : std::cout;

  try {
    if (opts.verify) return run_verify(opts, log);

    if (!opts.table.empty()) {
      // Dump-only mode: parse, validate, re-serialise canonically.
      capr::GemmTuningTable table;
      const capr::TuneStatus status =
          capr::load_gemm_tuning(opts.table, &table, /*check_host=*/false);
      if (!status.ok()) {
        std::cerr << "capr-tune: " << opts.table << ": " << status.format() << "\n";
        return 1;
      }
      write_output(opts.dump.empty() ? std::string("-") : opts.dump, to_json(table));
      return 0;
    }

    const std::vector<capr::tune::CorpusShape> corpus = capr::tune::build_corpus();
    log << "capr-tune: corpus of " << corpus.size() << " shapes ("
        << capr::tune::corpus_archs().size() << " archs, dense + pruned)\n";
    capr::tune::TuneOptions topts;
    topts.smoke = opts.smoke;
    topts.repeats = opts.repeats;
    topts.min_gain = opts.min_gain;
    topts.log = &log;
    const capr::tune::TuneResult result = capr::tune::run_autotune(corpus, topts);
    const std::string json = to_json(result.table);
    write_output(opts.out, json);
    if (!opts.dump.empty() && opts.dump != opts.out) write_output(opts.dump, json);
    log << "capr-tune: " << result.table.present_count() << " tuned entries ("
        << result.reports.size() << " classes searched)";
    if (opts.out != "-") log << " -> " << opts.out;
    log << "\n";
    int rejected = 0;
    for (const capr::tune::ClassReport& r : result.reports) rejected += r.rejected_bitwise;
    if (rejected > 0) {
      std::cerr << "capr-tune: " << rejected
                << " candidates failed the bitwise eligibility check\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "capr-tune: " << e.what() << "\n";
    return 2;
  }
}
