#include "verify/gradcheck.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "testutil/testutil.h"
#include "tensor/rng.h"

namespace capr::verify {
namespace {

std::string describe(const GradMismatch& m, float rel_tol) {
  std::ostringstream os;
  os << m.tensor << "[" << m.index << "]: analytic " << m.analytic << ", numeric " << m.numeric
     << ", rel error " << m.rel_error << " > tol " << rel_tol;
  return os.str();
}

}  // namespace

void GradcheckResult::merge(const GradcheckResult& other) {
  checked += other.checked;
  if (other.max_rel_error > max_rel_error || worst.index < 0) {
    max_rel_error = std::max(max_rel_error, other.max_rel_error);
    if (other.worst.index >= 0) worst = other.worst;
  }
  if (!other.ok) {
    ok = false;
    if (!error.empty() && !other.error.empty()) error += "; ";
    error += other.error;
  }
}

void push_away_from_zero(Tensor& t, float min_abs) {
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (std::fabs(t[i]) < min_abs) t[i] = t[i] < 0.0f ? -min_abs : min_abs;
  }
}

GradcheckResult check_grad(const std::function<double()>& f, Tensor& x, const Tensor& analytic,
                           const GradcheckOptions& opts, const std::string& name) {
  GradcheckResult r;
  if (analytic.shape() != x.shape()) {
    r.ok = false;
    r.error = name + ": analytic gradient shape " + to_string(analytic.shape()) +
              " != value shape " + to_string(x.shape());
    return r;
  }
  const int64_t stride =
      opts.max_checks > 0 ? std::max<int64_t>(1, x.numel() / opts.max_checks) : 1;
  for (int64_t i = 0; i < x.numel(); i += stride) {
    const double num = testing::numerical_grad(f, x[i], opts.eps);
    const double ana = analytic[i];
    float err;
    if (std::isnan(num) || std::isnan(ana) || std::isinf(num) || std::isinf(ana)) {
      err = std::numeric_limits<float>::infinity();
    } else {
      const double denom =
          std::max({std::abs(num), std::abs(ana), static_cast<double>(opts.abs_floor)});
      err = static_cast<float>(std::abs(num - ana) / denom);
    }
    ++r.checked;
    if (err >= r.max_rel_error || r.worst.index < 0) {
      r.max_rel_error = std::max(r.max_rel_error, err);
      r.worst = {name, i, static_cast<float>(ana), static_cast<float>(num), err};
    }
  }
  if (r.max_rel_error > opts.rel_tol) {
    r.ok = false;
    r.error = describe(r.worst, opts.rel_tol);
  }
  return r;
}

GradcheckResult gradcheck(nn::Layer& layer, const Shape& input_shape,
                          const GradcheckOptions& opts) {
  Rng rng(opts.seed);
  Tensor x(input_shape);
  rng.fill_uniform(x, -1.0f, 1.0f);
  return gradcheck(layer, std::move(x), opts);
}

GradcheckResult gradcheck(nn::Layer& layer, Tensor input, const GradcheckOptions& opts) {
  Rng rng(opts.seed ^ 0x9E3779B9ull);  // independent of the input stream
  Tensor x = std::move(input);
  if (opts.input_min_abs > 0.0f) push_away_from_zero(x, opts.input_min_abs);

  // Analytic pass: one forward, one backward with the projection weights.
  for (nn::Param* p : layer.params()) p->zero_grad();
  const Tensor y0 = layer.forward(x, opts.training);
  Tensor w(y0.shape());
  rng.fill_uniform(w, 0.1f, 1.0f);  // strictly positive: no output is masked
  const Tensor gx = layer.backward(w);

  const auto objective = [&]() -> double {
    const Tensor y = layer.forward(x, opts.training);
    double acc = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * w[i];
    return acc;
  };

  GradcheckResult result = check_grad(objective, x, gx, opts, "input");
  for (nn::Param* p : layer.params()) {
    if (p->value.numel() == 0) continue;
    result.merge(check_grad(objective, p->value, p->grad, opts,
                            p->name.empty() ? "param" : p->name));
  }
  return result;
}

GradcheckResult gradcheck_regularizer(nn::Model& model, nn::Regularizer& reg,
                                      const GradcheckOptions& opts) {
  const std::vector<nn::Param*> params = model.params();
  // Move values off kinks BEFORE the analytic pass: nudging them later
  // would change the very gradient being verified.
  if (opts.input_min_abs > 0.0f) {
    for (nn::Param* p : params) push_away_from_zero(p->value, opts.input_min_abs);
  }
  for (nn::Param* p : params) p->zero_grad();
  reg.apply(model);
  // Snapshot every analytic gradient before the finite-difference probes
  // re-invoke apply() (which accumulates into the live grads).
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (nn::Param* p : params) analytic.push_back(p->grad);

  // The penalty itself is computed in fp32, so its value is quantised at
  // ULP(|penalty|); keep penalties O(1) or use abs_floor accordingly.
  const auto objective = [&]() -> double { return reg.apply(model); };
  GradcheckResult result;
  for (size_t i = 0; i < params.size(); ++i) {
    nn::Param* p = params[i];
    if (p->value.numel() == 0) continue;
    result.merge(check_grad(objective, p->value, analytic[i], opts,
                            p->name.empty() ? ("param" + std::to_string(i)) : p->name));
  }
  if (result.worst.index < 0) {
    result.ok = false;
    result.error = "gradcheck_regularizer: model has no parameters to check";
  }
  return result;
}

}  // namespace capr::verify
