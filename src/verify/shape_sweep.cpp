#include "verify/shape_sweep.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "testutil/testutil.h"
#include "verify/oracle.h"

namespace capr::verify {
namespace {

using testing::AllcloseReport;
using testing::allclose_report;

Tensor random(Rng& rng, Shape shape, float lo = -1.0f, float hi = 1.0f) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t, lo, hi);
  return t;
}

/// Folds one comparison into the sweep result; keeps the first failure.
void record(SweepResult& r, const AllcloseReport& cmp, const std::string& kernel,
            const std::string& config) {
  if (cmp.ok) return;
  ++r.failures;
  if (r.first_failure.empty()) {
    r.first_failure = kernel + " @ " + config + ": " + cmp.message;
  }
}

/// Exact bitwise comparison (memcmp over the float buffers).
AllcloseReport bitwise_report(const Tensor& got, const Tensor& want) {
  AllcloseReport r;
  if (got.shape() != want.shape()) {
    r.ok = false;
    r.message = "shape mismatch: got " + to_string(got.shape()) + ", want " +
                to_string(want.shape());
    return r;
  }
  if (std::memcmp(got.data(), want.data(),
                  static_cast<size_t>(got.numel()) * sizeof(float)) == 0) {
    return r;
  }
  for (int64_t i = 0; i < got.numel(); ++i) {
    if (std::memcmp(got.data() + i, want.data() + i, sizeof(float)) != 0) {
      ++r.mismatches;
      if (r.worst_index < 0) {
        r.worst_index = i;
        r.got = got[i];
        r.want = want[i];
      }
    }
  }
  r.ok = false;
  std::ostringstream os;
  os << r.mismatches << "/" << got.numel() << " elements differ bitwise; first at flat index "
     << r.worst_index << ": got " << r.got << ", want " << r.want;
  r.message = os.str();
  return r;
}

/// Random valid conv geometry (output guaranteed non-empty).
ConvGeom random_geom(Rng& rng) {
  ConvGeom g;
  g.in_channels = 1 + rng.uniform_int(4);
  g.kernel_h = 1 + rng.uniform_int(3);
  g.kernel_w = g.kernel_h;  // layers only support square kernels
  g.stride = 1 + rng.uniform_int(2);
  g.padding = rng.uniform_int(3);
  g.in_h = g.kernel_h + rng.uniform_int(10);
  g.in_w = g.kernel_w + rng.uniform_int(10);
  return g;
}

std::string geom_string(const ConvGeom& g) {
  std::ostringstream os;
  os << "Cin=" << g.in_channels << " H=" << g.in_h << " W=" << g.in_w << " k=" << g.kernel_h
     << " stride=" << g.stride << " pad=" << g.padding;
  return os.str();
}

/// Pins the worker count for one scope; restores the previous setting.
struct ThreadScope {
  int saved;
  explicit ThreadScope(int n) : saved(num_threads()) { set_num_threads(n); }
  ~ThreadScope() { set_num_threads(saved); }
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;
};

}  // namespace

SweepResult sweep_gemm(const SweepOptions& opts) {
  Rng rng(opts.seed);
  SweepResult r;
  for (int cfg = 0; cfg < opts.configs; ++cfg) {
    const int64_t m = 1 + rng.uniform_int(48);
    const int64_t k = 1 + rng.uniform_int(48);
    const int64_t n = 1 + rng.uniform_int(48);
    std::ostringstream cs;
    cs << "M=" << m << " K=" << k << " N=" << n;
    const std::string config = cs.str();

    const Tensor a = random(rng, {m, k});
    const Tensor b = random(rng, {k, n});
    record(r, allclose_report(matmul(a, b), ref_matmul(a, b), opts.atol, opts.rtol), "matmul",
           config);

    const Tensor bt = random(rng, {n, k});
    record(r, allclose_report(matmul_nt(a, bt), ref_matmul_nt(a, bt), opts.atol, opts.rtol),
           "matmul_nt", config);

    const Tensor at = random(rng, {k, m});
    record(r, allclose_report(matmul_tn(at, b), ref_matmul_tn(at, b), opts.atol, opts.rtol),
           "matmul_tn", config);

    // Raw kernel, accumulate path: both start from the same random C.
    Tensor c_opt = random(rng, {m, n});
    Tensor c_ref = c_opt;
    gemm(a.data(), b.data(), c_opt.data(), m, k, n, /*accumulate=*/true);
    ref_gemm(a.data(), b.data(), c_ref.data(), m, k, n, /*accumulate=*/true);
    record(r, allclose_report(c_opt, c_ref, opts.atol, opts.rtol), "gemm(accumulate)", config);

    ++r.configs_run;
  }
  return r;
}

std::vector<GemmShape> remainder_gemm_shapes() {
  // MR=6, NR=16, KC=256 (gemm_tiled.cpp). One value either side of each
  // tile boundary plus 1 and a prime that is coprime to every tile size.
  const int64_t mn[] = {1, 5, 6, 7, 15, 16, 17, 31};
  const int64_t ks[] = {1, 5, 127, 255, 256, 257};
  std::vector<GemmShape> shapes;
  shapes.reserve(sizeof(mn) / sizeof(mn[0]) * sizeof(ks) / sizeof(ks[0]) *
                 sizeof(mn) / sizeof(mn[0]));
  for (int64_t m : mn) {
    for (int64_t k : ks) {
      for (int64_t n : mn) shapes.push_back({m, k, n});
    }
  }
  return shapes;
}

SweepResult sweep_gemm_tiled(const std::vector<GemmShape>& shapes, const SweepOptions& opts) {
  Rng rng(opts.seed);
  SweepResult r;
  for (const GemmShape& sh : shapes) {
    std::ostringstream cs;
    cs << "M=" << sh.m << " K=" << sh.k << " N=" << sh.n;
    const std::string config = cs.str();

    const Tensor a = random(rng, {sh.m, sh.k});
    const Tensor b = random(rng, {sh.k, sh.n});
    Tensor c_tiled({sh.m, sh.n});
    Tensor c_ref({sh.m, sh.n});

    gemm_tiled(a.data(), b.data(), c_tiled.data(), sh.m, sh.k, sh.n);
    gemm(a.data(), b.data(), c_ref.data(), sh.m, sh.k, sh.n);
    record(r, allclose_report(c_tiled, c_ref, opts.atol, opts.rtol), "gemm_tiled", config);

    // Accumulate path: both kernels fold into the same random C.
    Tensor acc_tiled = random(rng, {sh.m, sh.n});
    Tensor acc_ref = acc_tiled;
    gemm_tiled(a.data(), b.data(), acc_tiled.data(), sh.m, sh.k, sh.n, /*accumulate=*/true);
    gemm(a.data(), b.data(), acc_ref.data(), sh.m, sh.k, sh.n, /*accumulate=*/true);
    record(r, allclose_report(acc_tiled, acc_ref, opts.atol, opts.rtol),
           "gemm_tiled(accumulate)", config);

    // NT: tiled reads B as [N, K] transposed; reference needs it packed
    // back to [K, N] row-major.
    const Tensor bt = random(rng, {sh.n, sh.k});
    Tensor bt_as_b({sh.k, sh.n});
    for (int64_t j = 0; j < sh.n; ++j) {
      for (int64_t k = 0; k < sh.k; ++k) bt_as_b[k * sh.n + j] = bt[j * sh.k + k];
    }
    gemm_tiled_nt(a.data(), bt.data(), c_tiled.data(), sh.m, sh.k, sh.n);
    gemm(a.data(), bt_as_b.data(), c_ref.data(), sh.m, sh.k, sh.n);
    record(r, allclose_report(c_tiled, c_ref, opts.atol, opts.rtol), "gemm_tiled_nt", config);

    // TN: tiled reads A as [K, M] transposed.
    const Tensor at = random(rng, {sh.k, sh.m});
    gemm_tiled_tn(at.data(), b.data(), c_tiled.data(), sh.m, sh.k, sh.n);
    gemm_tn_ref(at.data(), b.data(), c_ref.data(), sh.m, sh.k, sh.n);
    record(r, allclose_report(c_tiled, c_ref, opts.atol, opts.rtol), "gemm_tiled_tn", config);

    ++r.configs_run;
  }
  return r;
}

SweepResult sweep_im2col(const SweepOptions& opts) {
  Rng rng(opts.seed);
  SweepResult r;
  for (int cfg = 0; cfg < opts.configs; ++cfg) {
    const ConvGeom g = random_geom(rng);
    const std::string config = geom_string(g);

    const Tensor im = random(rng, {g.in_channels, g.in_h, g.in_w});
    const Tensor col_opt = im2col(im, g);
    const Tensor col_ref = ref_im2col(im, g);
    // Pure data movement: the optimized path must match exactly.
    record(r, allclose_report(col_opt, col_ref, 0.0f, 0.0f), "im2col", config);

    const Tensor y = random(rng, {g.col_rows(), g.col_cols()});
    const Tensor im_opt = col2im(y, g);
    const Tensor im_ref = ref_col2im(y, g);
    record(r, allclose_report(im_opt, im_ref, opts.atol, opts.rtol), "col2im", config);

    // Adjoint identity: <im2col(x), y> == <x, col2im(y)>. Catches index
    // bugs that a direct comparison against a same-shaped-but-wrong
    // reference could miss.
    double lhs = 0.0, rhs = 0.0;
    for (int64_t i = 0; i < col_ref.numel(); ++i) {
      lhs += static_cast<double>(col_opt[i]) * y[i];
    }
    for (int64_t i = 0; i < im.numel(); ++i) {
      rhs += static_cast<double>(im[i]) * im_opt[i];
    }
    const double scale = std::max({std::abs(lhs), std::abs(rhs), 1.0});
    if (std::abs(lhs - rhs) > 1e-4 * scale) {
      ++r.failures;
      if (r.first_failure.empty()) {
        std::ostringstream os;
        os << "im2col/col2im adjoint @ " << config << ": <im2col(x),y>=" << lhs
           << " but <x,col2im(y)>=" << rhs;
        r.first_failure = os.str();
      }
    }
    ++r.configs_run;
  }
  return r;
}

SweepResult sweep_conv2d(const SweepOptions& opts) {
  Rng rng(opts.seed);
  SweepResult r;
  for (int cfg = 0; cfg < opts.configs; ++cfg) {
    const ConvGeom g = random_geom(rng);
    const int64_t n = 1 + rng.uniform_int(3);
    const int64_t cout = 1 + rng.uniform_int(5);
    const bool bias = rng.uniform() < 0.5f;
    std::ostringstream cs;
    cs << "N=" << n << " Cout=" << cout << " bias=" << bias << " " << geom_string(g);
    const std::string config = cs.str();

    nn::Conv2d conv(g.in_channels, cout, g.kernel_h, g.stride, g.padding, bias);
    rng.fill_uniform(conv.weight().value, -1.0f, 1.0f);
    if (bias) rng.fill_uniform(conv.bias().value, -1.0f, 1.0f);
    const Tensor x = random(rng, {n, g.in_channels, g.in_h, g.in_w});

    const Tensor y = conv.forward(x, /*training=*/true);
    const Tensor y_ref = ref_conv2d_forward(x, conv.weight().value,
                                            bias ? conv.bias().value : Tensor(), g.stride,
                                            g.padding);
    record(r, allclose_report(y, y_ref, opts.atol, opts.rtol), "conv2d.forward", config);

    const Tensor go = random(rng, y.shape());
    for (nn::Param* p : conv.params()) p->zero_grad();
    const Tensor gx = conv.backward(go);
    const RefConvGrads ref =
        ref_conv2d_backward(x, conv.weight().value, bias, g.stride, g.padding, go);
    record(r, allclose_report(gx, ref.input, opts.atol, opts.rtol), "conv2d.grad_input",
           config);
    record(r, allclose_report(conv.weight().grad, ref.weight, opts.atol, opts.rtol),
           "conv2d.grad_weight", config);
    if (bias) {
      record(r, allclose_report(conv.bias().grad, ref.bias, opts.atol, opts.rtol),
             "conv2d.grad_bias", config);
    }
    ++r.configs_run;
  }
  return r;
}

SweepResult sweep_conv2d_determinism(const SweepOptions& opts) {
  Rng rng(opts.seed);
  SweepResult r;
  for (int cfg = 0; cfg < opts.configs; ++cfg) {
    const ConvGeom g = random_geom(rng);
    const int64_t n = 2 + rng.uniform_int(6);  // enough rows to actually split
    const int64_t cout = 1 + rng.uniform_int(5);
    const bool bias = rng.uniform() < 0.5f;
    std::ostringstream cs;
    cs << "N=" << n << " Cout=" << cout << " bias=" << bias << " " << geom_string(g);
    const std::string config = cs.str();

    nn::Conv2d conv(g.in_channels, cout, g.kernel_h, g.stride, g.padding, bias);
    rng.fill_uniform(conv.weight().value, -1.0f, 1.0f);
    if (bias) rng.fill_uniform(conv.bias().value, -1.0f, 1.0f);
    const Tensor x = random(rng, {n, g.in_channels, g.in_h, g.in_w});

    Tensor y1, gx1, gw1, gb1;
    {
      ThreadScope threads(1);
      for (nn::Param* p : conv.params()) p->zero_grad();
      y1 = conv.forward(x, true);
      const Tensor go = random(rng, y1.shape());
      gx1 = conv.backward(go);
      gw1 = conv.weight().grad;
      if (bias) gb1 = conv.bias().grad;

      ThreadScope threads_n(opts.threads_high);
      for (nn::Param* p : conv.params()) p->zero_grad();
      const Tensor yn = conv.forward(x, true);
      const Tensor gxn = conv.backward(go);

      record(r, bitwise_report(yn, y1), "conv2d.forward determinism", config);
      record(r, bitwise_report(gxn, gx1), "conv2d.grad_input determinism", config);
      // Weight/bias grads cross a per-thread reduction: reassociation may
      // move the last ulps, so these are tight-tolerance, not bitwise.
      record(r, allclose_report(conv.weight().grad, gw1, 1e-5f, 1e-5f),
             "conv2d.grad_weight determinism", config);
      if (bias) {
        record(r, allclose_report(conv.bias().grad, gb1, 1e-5f, 1e-5f),
               "conv2d.grad_bias determinism", config);
      }
    }
    ++r.configs_run;
  }
  return r;
}

}  // namespace capr::verify
