#include "verify/compile_diff.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "graph/graph.h"

namespace capr::verify {

PlanDiff diff_against_interpreted(const nn::Model& model, const compile::ExecutionPlan& plan,
                                  const Tensor& batch) {
  nn::InferScratch interp_scratch;
  const Tensor want = model.forward_inference(batch, interp_scratch);
  nn::InferScratch plan_scratch;
  const Tensor& got = plan.run_ref(batch, plan_scratch);

  PlanDiff d;
  d.shape_match = want.shape() == got.shape();
  if (!d.shape_match) {
    d.detail = "shape mismatch: interpreted " + capr::to_string(want.shape()) + " vs compiled " +
               capr::to_string(got.shape());
    return d;
  }
  const int64_t n = want.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float a = want[i];
    const float b = got[i];
    if (std::memcmp(&a, &b, sizeof(float)) == 0) continue;
    ++d.mismatches;
    if (d.first_mismatch < 0) d.first_mismatch = i;
    const double abs = std::fabs(static_cast<double>(b) - static_cast<double>(a));
    const double rel = abs / std::max(std::fabs(static_cast<double>(a)), 1e-6);
    if (abs > d.max_abs_err) d.max_abs_err = abs;
    if (rel > d.max_rel_err) d.max_rel_err = rel;
  }
  d.bitwise = d.mismatches == 0;
  if (!d.bitwise) {
    std::ostringstream os;
    os << d.mismatches << "/" << n << " elements differ; first at flat index "
       << d.first_mismatch << ": interpreted " << want[d.first_mismatch] << " vs compiled "
       << got[d.first_mismatch] << " (max abs " << d.max_abs_err << ", max rel "
       << d.max_rel_err << ")";
    d.detail = os.str();
  }
  return d;
}

PlanDiff compile_and_diff(const nn::Model& model, const compile::CompileOptions& opts,
                          const Tensor& batch) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  const compile::CompileResult result = compile::compile(g, opts);
  if (!result.plan) {
    std::string msg = "compile_and_diff: compilation failed";
    for (const compile::CompileError& e : result.errors) msg += "; " + e.format();
    throw std::logic_error(msg);
  }
  return diff_against_interpreted(model, *result.plan, batch);
}

}  // namespace capr::verify
