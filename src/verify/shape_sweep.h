// Randomized differential sweeps: optimized kernels vs the naive oracle.
//
// Each sweep draws `configs` randomized (seeded, hence reproducible)
// shape configurations — sizes, strides, paddings, bias on/off — runs
// both the optimized kernel and its reference from oracle.h, and
// compares element-wise. The first divergence is reported with the full
// configuration string and the worst element, so a failure is directly
// re-runnable: same seed, same configs, same order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace capr::verify {

struct SweepOptions {
  /// Randomized configurations per sweep (acceptance floor is 50).
  int configs = 60;
  uint64_t seed = 0x5EEDull;
  /// Comparison tolerances. The optimized GEMMs accumulate in a different
  /// order (some in fp32), so exact equality is not expected; these
  /// bounds hold with wide margin for the swept sizes.
  float atol = 1e-4f;
  float rtol = 1e-3f;
  /// Worker count used as the "N" of the 1-vs-N determinism sweep.
  int threads_high = 8;
};

struct SweepResult {
  int configs_run = 0;
  int failures = 0;
  std::string first_failure;  // config + worst-element description
  bool ok() const { return configs_run > 0 && failures == 0; }
};

/// matmul / matmul_nt / matmul_tn / raw gemm (incl. accumulate path)
/// against ref_* over random (M, K, N).
SweepResult sweep_gemm(const SweepOptions& opts = {});

/// One GEMM problem size for the tiled-vs-reference sweeps below.
struct GemmShape {
  int64_t m, k, n;
};

/// Adversarial tile-remainder shapes for the tiled kernel: M and N drawn
/// from one-off-the-register-tile values {1, MR±1, MR, NR±1, NR, prime},
/// K from one-off-the-cache-block values {1, 5, 127, KC±1, KC}, crossed.
/// Every remainder edge of the packing and micro-kernel store paths is
/// hit at least once.
std::vector<GemmShape> remainder_gemm_shapes();

/// Differential sweep of the TILED kernel against the reference kernel
/// over explicit shapes: gemm_tiled / gemm_tiled_nt / gemm_tiled_tn plus
/// the NN accumulate path, with random finite operands. Callers supply
/// the shape list (remainder_gemm_shapes(), builder-arch im2col shapes).
SweepResult sweep_gemm_tiled(const std::vector<GemmShape>& shapes,
                             const SweepOptions& opts = {});

/// im2col and col2im against the references over random geometries, plus
/// the adjoint identity <im2col(x), y> == <x, col2im(y)>.
SweepResult sweep_im2col(const SweepOptions& opts = {});

/// Conv2d forward AND backward (input/weight/bias grads) against the
/// direct-convolution reference over random geometries.
SweepResult sweep_conv2d(const SweepOptions& opts = {});

/// Determinism of the parallel_for-lowered Conv2d paths: with 1 worker vs
/// `threads_high` workers, forward output and input gradient must be
/// BITWISE identical (disjoint writes per batch element); weight/bias
/// gradients are per-thread-reduced and may reassociate, so they are
/// held to a tight tolerance instead.
SweepResult sweep_conv2d_determinism(const SweepOptions& opts = {});

}  // namespace capr::verify
