// Naive reference implementations of the hot kernels.
//
// Every routine here is written as the textbook definition — plain loops,
// no blocking, no zero-skipping, no threading, double accumulators — so
// that it is obviously correct by inspection. The optimized kernels in
// src/tensor and src/nn are validated against these references over
// randomized shape sweeps (see shape_sweep.h). When a perf PR breaks a
// kernel, the oracle names the exact element that diverged.
//
// Note one deliberate semantic divergence: capr::gemm treats zeros in A
// as strong zeros (a 0 in A annihilates NaN/Inf in B — see
// tensor/gemm.h), while ref_gemm follows IEEE propagation. Differential
// sweeps use finite inputs, where the two agree exactly in exact
// arithmetic.
#pragma once

#include <cstdint>

#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace capr::verify {

/// c[M,N] += a[M,K] * b[K,N] (accumulate=false zeroes c first).
void ref_gemm(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
              bool accumulate = false);

/// C = A(MxK) * B(KxN).
Tensor ref_matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T.
Tensor ref_matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(KxM)^T * B(KxN).
Tensor ref_matmul_tn(const Tensor& a, const Tensor& b);

/// Column matrix [Cin*Kh*Kw, Hout*Wout] of one CHW image.
Tensor ref_im2col(const Tensor& image, const ConvGeom& g);

/// Adjoint of ref_im2col: accumulates a column matrix back into CHW.
Tensor ref_col2im(const Tensor& col, const ConvGeom& g);

/// Direct convolution: input [N,Cin,H,W], weight [Cout,Cin,K,K],
/// bias [Cout] or empty. No im2col, no GEMM.
Tensor ref_conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                          int64_t stride, int64_t padding);

struct RefConvGrads {
  Tensor input;   // [N,Cin,H,W]
  Tensor weight;  // [Cout,Cin,K,K]
  Tensor bias;    // [Cout], empty when has_bias is false
};

/// Direct-convolution backward for the same geometry.
RefConvGrads ref_conv2d_backward(const Tensor& input, const Tensor& weight, bool has_bias,
                                 int64_t stride, int64_t padding, const Tensor& grad_output);

}  // namespace capr::verify
