// Differential harness for the graph compiler.
//
// The compiled-path contract (compile/plan.h) has two tiers: exact
// passes must be BITWISE identical to the interpreted forward, and the
// BN-fold pass must agree to a small relative epsilon. These helpers
// run both paths on the same batch and report exactly how far apart
// they are, naming the first divergent element so a broken pass fails
// with a pointed message (tests/compile_test.cpp drives them across all
// archs x {dense, pruned} x {reference, tiled}).
#pragma once

#include <cstdint>
#include <string>

#include "compile/compiler.h"
#include "nn/model.h"

namespace capr::verify {

struct PlanDiff {
  bool shape_match = false;
  bool bitwise = false;       // every element identical at the bit level
  double max_abs_err = 0.0;   // max |compiled - interpreted|
  double max_rel_err = 0.0;   // max |diff| / max(|interpreted|, 1e-6)
  int64_t mismatches = 0;     // elements that are not bitwise equal
  int64_t first_mismatch = -1;
  std::string detail;         // human-readable location of the divergence
};

/// Runs `batch` through Model::forward_inference and through `plan`,
/// then compares element-wise under the CURRENT GEMM kernel (callers
/// scope the kernel they want to pin).
PlanDiff diff_against_interpreted(const nn::Model& model, const compile::ExecutionPlan& plan,
                                  const Tensor& batch);

/// Compiles `model` with `opts` and diffs. Throws std::logic_error when
/// compilation itself fails (the model was admitted, so it must compile).
PlanDiff compile_and_diff(const nn::Model& model, const compile::CompileOptions& opts,
                          const Tensor& batch);

}  // namespace capr::verify
