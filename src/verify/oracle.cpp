#include "verify/oracle.h"

#include <stdexcept>

namespace capr::verify {
namespace {

void require_rank2(const Tensor& m, const char* who) {
  if (m.rank() != 2) {
    throw std::invalid_argument(std::string(who) + ": expected rank-2 tensor, got " +
                                to_string(m.shape()));
  }
}

}  // namespace

void ref_gemm(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
              bool accumulate) {
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      double acc = accumulate ? static_cast<double>(c[i * N + j]) : 0.0;
      for (int64_t k = 0; k < K; ++k) {
        acc += static_cast<double>(a[i * K + k]) * b[k * N + j];
      }
      c[i * N + j] = static_cast<float>(acc);
    }
  }
}

Tensor ref_matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "ref_matmul lhs");
  require_rank2(b, "ref_matmul rhs");
  if (a.dim(1) != b.dim(0)) throw std::invalid_argument("ref_matmul: inner extents disagree");
  Tensor c({a.dim(0), b.dim(1)});
  ref_gemm(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

Tensor ref_matmul_nt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "ref_matmul_nt lhs");
  require_rank2(b, "ref_matmul_nt rhs");
  const int64_t M = a.dim(0), K = a.dim(1), N = b.dim(0);
  if (b.dim(1) != K) throw std::invalid_argument("ref_matmul_nt: inner extents disagree");
  Tensor c({M, N});
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < K; ++k) {
        acc += static_cast<double>(a[i * K + k]) * b[j * K + k];
      }
      c[i * N + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor ref_matmul_tn(const Tensor& a, const Tensor& b) {
  require_rank2(a, "ref_matmul_tn lhs");
  require_rank2(b, "ref_matmul_tn rhs");
  const int64_t K = a.dim(0), M = a.dim(1), N = b.dim(1);
  if (b.dim(0) != K) throw std::invalid_argument("ref_matmul_tn: inner extents disagree");
  Tensor c({M, N});
  for (int64_t i = 0; i < M; ++i) {
    for (int64_t j = 0; j < N; ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < K; ++k) {
        acc += static_cast<double>(a[k * M + i]) * b[k * N + j];
      }
      c[i * N + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor ref_im2col(const Tensor& image, const ConvGeom& g) {
  g.validate();
  if (image.shape() != Shape{g.in_channels, g.in_h, g.in_w}) {
    throw std::invalid_argument("ref_im2col: image shape " + to_string(image.shape()) +
                                " disagrees with geometry");
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  Tensor col({g.col_rows(), g.col_cols()});
  for (int64_t c = 0; c < g.in_channels; ++c) {
    for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
      for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
        const int64_t row = (c * g.kernel_h + ky) * g.kernel_w + kx;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t iy = oy * g.stride + ky - g.padding;
            const int64_t ix = ox * g.stride + kx - g.padding;
            float v = 0.0f;
            if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
              v = image[(c * g.in_h + iy) * g.in_w + ix];
            }
            col[row * g.col_cols() + oy * ow + ox] = v;
          }
        }
      }
    }
  }
  return col;
}

Tensor ref_col2im(const Tensor& col, const ConvGeom& g) {
  g.validate();
  if (col.shape() != Shape{g.col_rows(), g.col_cols()}) {
    throw std::invalid_argument("ref_col2im: column shape " + to_string(col.shape()) +
                                " disagrees with geometry");
  }
  const int64_t oh = g.out_h(), ow = g.out_w();
  Tensor im({g.in_channels, g.in_h, g.in_w});
  for (int64_t c = 0; c < g.in_channels; ++c) {
    for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
      for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
        const int64_t row = (c * g.kernel_h + ky) * g.kernel_w + kx;
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            const int64_t iy = oy * g.stride + ky - g.padding;
            const int64_t ix = ox * g.stride + kx - g.padding;
            if (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w) {
              im[(c * g.in_h + iy) * g.in_w + ix] += col[row * g.col_cols() + oy * ow + ox];
            }
          }
        }
      }
    }
  }
  return im;
}

Tensor ref_conv2d_forward(const Tensor& input, const Tensor& weight, const Tensor& bias,
                          int64_t stride, int64_t padding) {
  if (input.rank() != 4 || weight.rank() != 4 || input.dim(1) != weight.dim(1)) {
    throw std::invalid_argument("ref_conv2d_forward: bad input/weight shapes");
  }
  const int64_t n = input.dim(0), cin = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t cout = weight.dim(0), k = weight.dim(2);
  const int64_t oh = (h + 2 * padding - k) / stride + 1;
  const int64_t ow = (w + 2 * padding - k) / stride + 1;
  const bool has_bias = bias.numel() > 0;
  Tensor out({n, cout, oh, ow});
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t f = 0; f < cout; ++f) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = has_bias ? static_cast<double>(bias[f]) : 0.0;
          for (int64_t c = 0; c < cin; ++c) {
            for (int64_t ky = 0; ky < k; ++ky) {
              const int64_t iy = oy * stride + ky - padding;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t ix = ox * stride + kx - padding;
                if (ix < 0 || ix >= w) continue;
                acc += static_cast<double>(input[((img * cin + c) * h + iy) * w + ix]) *
                       weight[((f * cin + c) * k + ky) * k + kx];
              }
            }
          }
          out[((img * cout + f) * oh + oy) * ow + ox] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

RefConvGrads ref_conv2d_backward(const Tensor& input, const Tensor& weight, bool has_bias,
                                 int64_t stride, int64_t padding, const Tensor& grad_output) {
  const int64_t n = input.dim(0), cin = input.dim(1), h = input.dim(2), w = input.dim(3);
  const int64_t cout = weight.dim(0), k = weight.dim(2);
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  if (grad_output.shape() != Shape{n, cout, oh, ow}) {
    throw std::invalid_argument("ref_conv2d_backward: bad grad shape");
  }
  RefConvGrads g;
  g.input = Tensor(input.shape());
  g.weight = Tensor(weight.shape());
  g.bias = Tensor({has_bias ? cout : 0});
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t f = 0; f < cout; ++f) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float go = grad_output[((img * cout + f) * oh + oy) * ow + ox];
          if (has_bias) g.bias[f] += go;
          for (int64_t c = 0; c < cin; ++c) {
            for (int64_t ky = 0; ky < k; ++ky) {
              const int64_t iy = oy * stride + ky - padding;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t ix = ox * stride + kx - padding;
                if (ix < 0 || ix >= w) continue;
                const int64_t iidx = ((img * cin + c) * h + iy) * w + ix;
                const int64_t widx = ((f * cin + c) * k + ky) * k + kx;
                g.input[iidx] += weight[widx] * go;
                g.weight[widx] += input[iidx] * go;
              }
            }
          }
        }
      }
    }
  }
  return g;
}

}  // namespace capr::verify
