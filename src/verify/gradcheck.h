// Systematic gradient checking.
//
// The class-aware pipeline ranks filters by Taylor products |a * dL/da|
// (paper Eq. 4): a silently wrong backward pass corrupts every importance
// score without failing a single shape or loss-value test. This framework
// checks any Layer's analytic backward — input gradient AND every
// parameter gradient — against central finite differences of a random
// linear functional of the output, and checks any Regularizer's penalty
// gradient the same way.
//
// Verdicts use the symmetric relative error
//     err = |analytic - numeric| / max(|analytic|, |numeric|, abs_floor)
// which is the right metric for fp32 central differences: absolute
// thresholds either drown small gradients or reject large ones.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "nn/layer.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace capr::verify {

struct GradcheckOptions {
  /// Central-difference step. 1e-3 balances truncation against fp32
  /// round-off for the O(1)-scaled activations the layers produce.
  float eps = 1e-3f;
  /// Maximum symmetric relative error accepted per element.
  float rel_tol = 1e-2f;
  /// Denominator floor: gradients smaller than this are compared with an
  /// effectively absolute tolerance of rel_tol * abs_floor.
  float abs_floor = 1e-3f;
  /// Seed for the random input and the random output projection.
  uint64_t seed = 0xC0FFEEull;
  /// Forward mode passed to the layer.
  bool training = true;
  /// Max elements checked per tensor (strided subset); 0 = every element.
  int64_t max_checks = 0;
  /// Input elements with |x| below this are pushed out to +/- this value.
  /// Use for layers with a kink at zero (ReLU, LeakyReLU, L1 terms):
  /// finite differences straddling the kink produce garbage there.
  float input_min_abs = 0.0f;
};

/// The element with the largest relative error seen by a check.
struct GradMismatch {
  std::string tensor;  // "input" or the parameter name
  int64_t index = -1;  // flat index within that tensor
  float analytic = 0.0f;
  float numeric = 0.0f;
  float rel_error = 0.0f;
};

struct GradcheckResult {
  bool ok = true;
  int64_t checked = 0;        // elements compared across all tensors
  float max_rel_error = 0.0f;
  GradMismatch worst;         // worst element seen, even when ok
  std::string error;          // human-readable failure description

  /// Folds another check into this one (worst mismatch wins).
  void merge(const GradcheckResult& other);
};

/// Checks `analytic` against central differences of `f` with respect to
/// `x` (element-wise; `x` is restored after each perturbation). `name`
/// labels the tensor in failure messages. `f` returns double: a
/// float-valued objective quantises the difference quotient at
/// ULP(|f|) / (2 eps), which alone can exceed rel_tol.
GradcheckResult check_grad(const std::function<double()>& f, Tensor& x, const Tensor& analytic,
                           const GradcheckOptions& opts = {}, const std::string& name = "x");

/// Full layer check. Builds a random input of `input_shape` (batch
/// included), takes the objective sum(layer(x) * w) for a fixed random
/// w > 0, and verifies the input gradient plus every parameter gradient.
/// Layers drawing fresh randomness per forward (Dropout) must be checked
/// with training=false.
GradcheckResult gradcheck(nn::Layer& layer, const Shape& input_shape,
                          const GradcheckOptions& opts = {});

/// Same check with a caller-supplied input — for layers whose gradient
/// is only well-defined on structured inputs (e.g. MaxPool2d needs
/// well-separated values so the finite-difference step cannot flip an
/// argmax).
GradcheckResult gradcheck(nn::Layer& layer, Tensor input, const GradcheckOptions& opts = {});

/// Checks a Regularizer's penalty gradient: zeroes all grads, applies the
/// regularizer once for the analytic gradients, then verifies them
/// against finite differences of the returned penalty value, parameter
/// by parameter. Use input_min_abs > eps when the penalty has an L1 term.
GradcheckResult gradcheck_regularizer(nn::Model& model, nn::Regularizer& reg,
                                      const GradcheckOptions& opts = {});

/// Pushes every element with |x| < min_abs out to sign(x) * min_abs
/// (zeros go positive). Keeps finite differences away from kinks.
void push_away_from_zero(Tensor& t, float min_abs);

}  // namespace capr::verify
