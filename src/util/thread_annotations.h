// Compile-time concurrency contracts: Clang Thread Safety Analysis
// wrappers for the concurrent runtime.
//
// The serving runtime and plan cache are the hot concurrent core of the
// system; their locking discipline used to be checked only dynamically,
// by whatever interleavings the TSan lane happened to execute. These
// wrappers turn that discipline into a compile-time contract: a field
// tagged CAPR_GUARDED_BY(mu_) cannot be touched without holding mu_, a
// method tagged CAPR_REQUIRES(mu_) cannot be called without it, and the
// thread-safety CI lane builds the whole tree with
// -Werror=thread-safety so a violation is a build failure
// (tests/thread_safety_fail.cpp proves the analysis actually fires).
//
// Annotation discipline (HACKING.md "Static analysis" has the long
// form):
//   - CAPR_GUARDED_BY(mu) on every field a mutex protects. This is the
//     primary annotation; prefer it over prose comments.
//   - CAPR_REQUIRES(mu) on private helpers that run with the lock
//     already held; public entry points take the lock themselves.
//   - CAPR_EXCLUDES(mu) on methods that must NOT be called with the
//     lock held (they take it, or they block on it indirectly).
//
// On non-Clang compilers (the default gcc build) every macro expands to
// nothing and the wrappers are zero-cost aliases of the std types.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CAPR_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CAPR_THREAD_ANNOTATION
#define CAPR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define CAPR_CAPABILITY(x) CAPR_THREAD_ANNOTATION(capability(x))
#define CAPR_SCOPED_CAPABILITY CAPR_THREAD_ANNOTATION(scoped_lockable)
#define CAPR_GUARDED_BY(x) CAPR_THREAD_ANNOTATION(guarded_by(x))
#define CAPR_PT_GUARDED_BY(x) CAPR_THREAD_ANNOTATION(pt_guarded_by(x))
#define CAPR_ACQUIRE(...) CAPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CAPR_RELEASE(...) CAPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CAPR_TRY_ACQUIRE(...) CAPR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CAPR_REQUIRES(...) CAPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CAPR_EXCLUDES(...) CAPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CAPR_ACQUIRED_BEFORE(...) CAPR_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define CAPR_ACQUIRED_AFTER(...) CAPR_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define CAPR_RETURN_CAPABILITY(x) CAPR_THREAD_ANNOTATION(lock_returned(x))
#define CAPR_ASSERT_CAPABILITY(x) CAPR_THREAD_ANNOTATION(assert_capability(x))
#define CAPR_NO_THREAD_SAFETY_ANALYSIS CAPR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace capr {

/// std::mutex with the `capability` attribute so the analysis can track
/// what it protects. Same size and cost as the raw mutex.
class CAPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CAPR_ACQUIRE() { mu_.lock(); }
  void unlock() CAPR_RELEASE() { mu_.unlock(); }
  bool try_lock() CAPR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock of a capr::Mutex (the std::lock_guard / std::unique_lock
/// of this vocabulary). Supports early unlock() for the
/// unlock-then-notify pattern; the destructor releases only if held.
class CAPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CAPR_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() CAPR_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before the end of scope (e.g. unlock-then-notify).
  void unlock() CAPR_RELEASE() { lock_.unlock(); }
  /// Re-acquires after an early unlock().
  void lock() CAPR_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to capr::Mutex via MutexLock. Waits take
/// the scoped lock; from the analysis' point of view the capability is
/// held across the wait (the wait re-acquires before returning), which
/// is exactly the contract the caller relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace capr
