#include "flops/flops.h"

#include <stdexcept>

#include "graph/graph.h"

namespace capr::flops {
namespace {

int64_t elems(const Shape& s) { return numel_of(s); }

/// Cost of one graph node. Closed forms match the paper's conventions
/// (one MAC = 2 FLOPs; bias/BN/activations one FLOP per element).
LayerCost node_cost(const graph::Node& n) {
  LayerCost lc;
  lc.name = n.name;
  lc.kind = graph::to_string(n.kind);
  switch (n.kind) {
    case graph::Kind::kConv2d: {
      const int64_t k2 = n.conv.kernel * n.conv.kernel;
      lc.params = n.conv.out_channels * n.conv.in_channels * k2 +
                  (n.conv.bias ? n.conv.out_channels : 0);
      lc.macs = elems(n.out_shape) * n.conv.in_channels * k2;
      lc.flops = 2 * lc.macs + (n.conv.bias ? elems(n.out_shape) : 0);
      break;
    }
    case graph::Kind::kLinear:
      lc.params = n.linear.out_features * n.linear.in_features + n.linear.out_features;
      lc.macs = n.linear.out_features * n.linear.in_features;
      lc.flops = 2 * lc.macs + n.linear.out_features;
      break;
    case graph::Kind::kBatchNorm2d:
      lc.params = 2 * n.out_shape[0];
      lc.flops = 2 * elems(n.out_shape);
      break;
    case graph::Kind::kReLU:
    case graph::Kind::kLeakyReLU:
      lc.flops = elems(n.out_shape);
      break;
    case graph::Kind::kMaxPool2d:  // each input element enters one window
    case graph::Kind::kAvgPool2d:
    case graph::Kind::kGlobalAvgPool:
      lc.flops = elems(n.in_shape);
      break;
    case graph::Kind::kFlatten:
    case graph::Kind::kDropout:
      break;  // free at inference
    case graph::Kind::kAdd:  // elementwise residual add
      lc.flops = elems(n.out_shape);
      break;
  }
  return lc;
}

}  // namespace

ModelCost count(const nn::Model& model) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  if (!g.ok()) {
    throw std::logic_error("flops: " + g.error()->format());
  }
  ModelCost cost;
  cost.layers.reserve(g.nodes().size());
  for (const graph::Node& n : g.nodes()) cost.layers.push_back(node_cost(n));
  for (const LayerCost& lc : cost.layers) {
    cost.total_params += lc.params;
    cost.total_macs += lc.macs;
    cost.total_flops += lc.flops;
  }
  return cost;
}

PruningReport compare(const ModelCost& before, const ModelCost& after) {
  PruningReport r;
  r.params_before = before.total_params;
  r.params_after = after.total_params;
  r.flops_before = before.total_flops;
  r.flops_after = after.total_flops;
  return r;
}

}  // namespace capr::flops
