#include "flops/flops.h"

#include <stdexcept>

#include "nn/pooling.h"

namespace capr::flops {
namespace {

using nn::BasicBlock;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Layer;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Sequential;

int64_t elems(const Shape& s) { return numel_of(s); }

/// Propagates the probe shape through `layer`, appending per-layer costs.
Shape visit_layer(Layer& layer, const Shape& in, ModelCost& cost);

Shape visit_children(Sequential& seq, Shape s, ModelCost& cost) {
  for (size_t i = 0; i < seq.size(); ++i) s = visit_layer(seq.child(i), s, cost);
  return s;
}

Shape visit_block(BasicBlock& blk, const Shape& in, ModelCost& cost) {
  Shape s = visit_layer(blk.conv1(), in, cost);
  s = visit_layer(blk.bn1(), s, cost);
  s = visit_layer(blk.relu1(), s, cost);
  s = visit_layer(blk.conv2(), s, cost);
  s = visit_layer(blk.bn2(), s, cost);
  if (blk.has_projection()) {
    Shape p = visit_layer(*blk.proj_conv(), in, cost);
    p = visit_layer(*blk.proj_bn(), p, cost);
    if (p != s) throw std::logic_error("BasicBlock: branch shapes diverge");
  }
  // Elementwise residual add.
  cost.layers.push_back({blk.name() + ".add", "add", 0, 0, elems(s)});
  s = visit_layer(blk.relu_out(), s, cost);
  return s;
}

Shape visit_layer(Layer& layer, const Shape& in, ModelCost& cost) {
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) return visit_children(*seq, in, cost);
  if (auto* blk = dynamic_cast<BasicBlock*>(&layer)) return visit_block(*blk, in, cost);

  const Shape out = layer.output_shape(in);
  LayerCost lc;
  lc.name = layer.name();
  lc.kind = layer.kind();
  if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
    const int64_t k2 = conv->kernel() * conv->kernel();
    lc.params = conv->out_channels() * conv->in_channels() * k2 +
                (conv->has_bias() ? conv->out_channels() : 0);
    lc.macs = elems(out) * conv->in_channels() * k2;
    lc.flops = 2 * lc.macs + (conv->has_bias() ? elems(out) : 0);
  } else if (auto* lin = dynamic_cast<Linear*>(&layer)) {
    lc.params = lin->out_features() * lin->in_features() + lin->out_features();
    lc.macs = lin->out_features() * lin->in_features();
    lc.flops = 2 * lc.macs + lin->out_features();
  } else if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) {
    lc.params = 2 * bn->channels();
    lc.flops = 2 * elems(out);
  } else if (dynamic_cast<ReLU*>(&layer) != nullptr) {
    lc.flops = elems(out);
  } else if (dynamic_cast<MaxPool2d*>(&layer) != nullptr) {
    lc.flops = elems(in);  // each input element enters one comparison window
  } else if (dynamic_cast<GlobalAvgPool*>(&layer) != nullptr) {
    lc.flops = elems(in);
  } else if (dynamic_cast<Flatten*>(&layer) != nullptr) {
    // free
  } else {
    throw std::logic_error("flops: unknown layer kind '" + layer.kind() + "'");
  }
  cost.layers.push_back(lc);
  return out;
}

}  // namespace

ModelCost count(nn::Model& model) {
  ModelCost cost;
  visit_children(*model.net, model.input_shape, cost);
  for (const LayerCost& lc : cost.layers) {
    cost.total_params += lc.params;
    cost.total_macs += lc.macs;
    cost.total_flops += lc.flops;
  }
  return cost;
}

PruningReport compare(const ModelCost& before, const ModelCost& after) {
  PruningReport r;
  r.params_before = before.total_params;
  r.params_after = after.total_params;
  r.flops_before = before.total_flops;
  r.flops_after = after.total_flops;
  return r;
}

}  // namespace capr::flops
