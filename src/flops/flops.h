// Computational cost model: parameters, MACs and FLOPs per layer/model.
//
// Conventions match the paper's: one MAC = 2 FLOPs (ResNet-50 at 224x224
// is ~4.1 GMAC = 8.2 GFLOPs, as quoted in the paper's introduction).
// Conv cost counts the filter sliding over every output position; bias,
// batchnorm, relu and pooling are counted as one FLOP per output element
// (they are negligible next to the MACs but kept for completeness).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace capr::flops {

struct LayerCost {
  std::string name;
  std::string kind;
  int64_t params = 0;
  int64_t macs = 0;
  int64_t flops = 0;  // 2*macs + elementwise terms
};

struct ModelCost {
  std::vector<LayerCost> layers;
  int64_t total_params = 0;
  int64_t total_macs = 0;
  int64_t total_flops = 0;
};

/// Accumulates per-node costs over the model's graph::ModuleGraph (one
/// row per node, including the synthetic residual ".add"). Throws
/// std::logic_error when the model's graph is ill-formed.
ModelCost count(const nn::Model& model);

/// Pruning metrics between a dense baseline and a pruned model:
/// ratio of removed parameters and of removed FLOPs, as in Table I.
struct PruningReport {
  int64_t params_before = 0;
  int64_t params_after = 0;
  int64_t flops_before = 0;
  int64_t flops_after = 0;
  double pruning_ratio() const {
    return params_before ? 1.0 - static_cast<double>(params_after) / params_before : 0.0;
  }
  double flops_reduction() const {
    return flops_before ? 1.0 - static_cast<double>(flops_after) / flops_before : 0.0;
  }
};

PruningReport compare(const ModelCost& before, const ModelCost& after);

}  // namespace capr::flops
