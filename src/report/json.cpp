#include "report/json.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace capr::report {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::number(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) throw std::logic_error("JsonValue: push_back on non-array");
  arr_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject) throw std::logic_error("JsonValue: set on non-object");
  obj_.emplace_back(key, std::move(v));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return bool_ ? "true" : "false";
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kNumber: {
      if (!std::isfinite(num_)) return "null";  // JSON has no inf/nan
      std::ostringstream os;
      os.precision(10);
      os << num_;
      return os.str();
    }
    case Kind::kString:
      return "\"" + json_escape(str_) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += arr_[i].dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        out += "\"" + json_escape(obj_[i].first) + "\":" + obj_[i].second.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

JsonValue to_json(const core::IterationRecord& rec) {
  JsonValue v = JsonValue::object();
  v.set("iteration", JsonValue::number(static_cast<int64_t>(rec.iteration)));
  v.set("filters_removed", JsonValue::number(rec.filters_removed));
  v.set("filters_remaining", JsonValue::number(rec.filters_remaining));
  v.set("accuracy", JsonValue::number(static_cast<double>(rec.accuracy_after_finetune)));
  v.set("params", JsonValue::number(rec.params));
  v.set("flops", JsonValue::number(rec.flops));
  return v;
}

JsonValue to_json(const core::PruneRunResult& res) {
  JsonValue v = JsonValue::object();
  v.set("original_accuracy", JsonValue::number(static_cast<double>(res.original_accuracy)));
  v.set("final_accuracy", JsonValue::number(static_cast<double>(res.final_accuracy)));
  v.set("pruning_ratio", JsonValue::number(res.report.pruning_ratio()));
  v.set("flops_reduction", JsonValue::number(res.report.flops_reduction()));
  v.set("params_before", JsonValue::number(res.report.params_before));
  v.set("params_after", JsonValue::number(res.report.params_after));
  v.set("stop_reason", JsonValue::string(res.stop_reason));
  JsonValue iters = JsonValue::array();
  for (const core::IterationRecord& rec : res.iterations) iters.push_back(to_json(rec));
  v.set("iterations", std::move(iters));
  return v;
}

JsonValue to_json(const hw::ModelSim& sim) {
  JsonValue v = JsonValue::object();
  v.set("total_cycles", JsonValue::number(sim.total_cycles));
  v.set("total_macs", JsonValue::number(sim.total_macs));
  v.set("total_dram_bytes", JsonValue::number(sim.total_dram_bytes));
  v.set("total_energy_nj", JsonValue::number(sim.total_energy_nj));
  JsonValue layers = JsonValue::array();
  for (const hw::LayerSim& l : sim.layers) {
    JsonValue lj = JsonValue::object();
    lj.set("name", JsonValue::string(l.name));
    lj.set("kind", JsonValue::string(l.kind));
    lj.set("cycles", JsonValue::number(l.cycles));
    lj.set("macs", JsonValue::number(l.macs));
    lj.set("utilization", JsonValue::number(l.utilization));
    layers.push_back(std::move(lj));
  }
  v.set("layers", std::move(layers));
  return v;
}

}  // namespace capr::report
