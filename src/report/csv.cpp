#include "report/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace capr::report {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter: header must not be empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width " + std::to_string(row.size()) +
                                " does not match header width " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  const auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("CsvWriter: cannot open " + path);
  os << render();
  if (!os) throw std::runtime_error("CsvWriter: write failure on " + path);
}

}  // namespace capr::report
