// Shared experiment harness used by every bench binary.
//
// The paper's experiments (A100, CIFAR, full-width nets, 130-epoch
// fine-tuning) are re-run here at a reduced scale that preserves their
// structure. The scale is selected by the CAPR_SCALE environment
// variable: "micro" (default, minutes on one core), "small", or "full"
// (paper geometry; not expected to be feasible on a laptop-class host).
#pragma once

#include <cstdint>
#include <string>

#include "core/pruner.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/model.h"

namespace capr::report {

struct ExperimentScale {
  std::string name = "micro";
  int64_t image_size = 12;
  float width_mult = 0.25f;
  int64_t train_per_class_c10 = 32;
  int64_t test_per_class_c10 = 16;
  int64_t train_per_class_c100 = 8;
  int64_t test_per_class_c100 = 4;
  int pretrain_epochs = 8;
  int finetune_epochs = 2;
  int recovery_rounds = 2;
  int max_iterations = 8;
  int64_t batch_size = 32;
  int64_t images_per_class_scoring = 6;
  /// Per-iteration pruning caps (paper: "no more than 10%").
  float max_fraction_per_iter = 0.10f;
  float max_layer_fraction_per_iter = 0.34f;
  float max_accuracy_drop = 0.08f;
  /// Synthetic-data difficulty: higher noise/jitter keeps the trained
  /// network off the 100%-accuracy plateau so Taylor gradients stay alive.
  float noise_stddev = 0.35f;
  float jitter = 0.5f;
  /// Importance binarisation (Eq. 5). Reduced scales use the adaptive
  /// quantile rule; the full scale uses the paper's absolute threshold.
  core::TauMode tau_mode = core::TauMode::kQuantile;
  float tau_quantile = 0.9f;
  float tau = 1e-12f;
};

/// Scale selected by $CAPR_SCALE (micro | small | full); micro if unset.
ExperimentScale scale_from_env();

/// Tiny scale for --smoke runs: just enough work to prove the binary
/// executes end to end (CI compiles AND runs every bench this way).
ExperimentScale smoke_scale();

/// Command-line flags shared by every bench binary.
struct BenchArgs {
  bool smoke = false;        // --smoke: run the smoke_scale() workload cut
  std::string out;           // --out FILE: result path (benches that emit files)
};

/// Parses --smoke / --out. Unknown flags are ignored (google-benchmark
/// binaries pass their own flags through). Scale selection for benches:
/// args.smoke ? smoke_scale() : scale_from_env().
BenchArgs parse_bench_args(int argc, char** argv);

/// A ready-to-prune experiment: synthetic dataset plus a model pre-trained
/// with the paper's modified cost (Eq. 1). `factory` rebuilds a fresh
/// unpruned copy of the same architecture (used for pruner rollback).
struct Workbench {
  nn::Model model;
  data::SyntheticCifar data;
  float pretrained_accuracy = 0.0f;
  std::function<nn::Model()> factory;
};

/// Builds the dataset and model for (arch, classes) at `scale`, then
/// trains with CE + lambda1*L1 + lambda2*L_orth. lambda1/lambda2 default
/// to the paper's values; pass 0 to ablate a term (Table III / Fig. 8).
///
/// Pre-trained weights are cached under ./capr_cache/ keyed by every
/// input that affects them, so repeated bench runs skip training. Set
/// CAPR_CACHE=0 to disable, or delete the directory after code changes
/// that alter training behaviour.
Workbench prepare_workbench(const std::string& arch, int64_t classes,
                            const ExperimentScale& scale, float lambda1 = 1e-4f,
                            float lambda2 = 1e-2f, uint64_t seed = 42);

/// Class-aware pruner configuration matching `scale` and the paper's
/// strategy defaults (threshold 0.3*C, 10%/iteration, modified-loss
/// fine-tuning).
core::ClassAwarePrunerConfig pruner_config(const ExperimentScale& scale);

/// Standard bench banner: experiment id, paper reference and scale note.
void print_banner(const std::string& experiment, const std::string& what);

}  // namespace capr::report
