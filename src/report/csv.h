// CSV export of experiment results, for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace capr::report {

/// Minimal CSV writer with RFC-4180 quoting of cells that need it.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Serialises header + rows; '\n' line endings.
  std::string render() const;

  /// Writes to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV cell when it contains a comma, quote or newline.
std::string csv_escape(const std::string& cell);

}  // namespace capr::report
