// Fixed-width ASCII table and histogram rendering for the bench harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace capr::report {

/// Column-aligned text table with a header row and a separator line.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with two spaces of padding between columns.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "93.4%" style formatting of a [0, 1] fraction.
std::string pct(double fraction, int decimals = 1);

/// Compact count formatting: "1.23M", "45.6K", "789".
std::string human_count(int64_t n);

/// Fixed-precision float.
std::string fixed(double v, int decimals = 2);

/// Bucketed histogram of scores rendered as rows of '#' bars:
///   [0.0, 1.0)  12 ############
/// `max_score` fixes the bucket range so before/after plots align.
std::string histogram(const std::vector<float>& values, int buckets, float max_score,
                      int bar_width = 40);

}  // namespace capr::report
