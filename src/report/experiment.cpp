#include "report/experiment.h"

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "nn/trainer.h"
#include "tensor/serialize.h"

namespace capr::report {

ExperimentScale smoke_scale() {
  ExperimentScale s;
  s.name = "smoke";
  s.image_size = 8;
  s.width_mult = 0.25f;
  s.train_per_class_c10 = 4;
  s.test_per_class_c10 = 2;
  s.train_per_class_c100 = 1;
  s.test_per_class_c100 = 1;
  s.pretrain_epochs = 1;
  s.finetune_epochs = 1;
  s.recovery_rounds = 1;
  s.max_iterations = 1;
  s.batch_size = 8;
  s.images_per_class_scoring = 2;
  return s;
}

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") {
      args.smoke = true;
    } else if (flag == "--out" && i + 1 < argc) {
      args.out = argv[++i];
    }
  }
  return args;
}

ExperimentScale scale_from_env() {
  ExperimentScale s;
  const char* env = std::getenv("CAPR_SCALE");
  const std::string which = env ? env : "micro";
  if (which == "micro") {
    return s;  // defaults
  }
  if (which == "small") {
    s.name = "small";
    s.image_size = 16;
    s.width_mult = 0.375f;
    s.train_per_class_c10 = 96;
    s.test_per_class_c10 = 32;
    s.train_per_class_c100 = 16;
    s.test_per_class_c100 = 8;
    s.pretrain_epochs = 16;
    s.finetune_epochs = 4;
    s.max_iterations = 10;
    s.images_per_class_scoring = 10;
    s.noise_stddev = 0.3f;
    s.max_fraction_per_iter = 0.10f;
    s.max_accuracy_drop = 0.05f;
    s.tau_quantile = 0.85f;
    return s;
  }
  if (which == "full") {
    // Paper geometry: CIFAR-like 32x32, full width, M = 10 (Section IV),
    // absolute tau (long, strongly-regularized training polarises scores).
    s.name = "full";
    s.image_size = 32;
    s.width_mult = 1.0f;
    s.train_per_class_c10 = 5000;
    s.test_per_class_c10 = 1000;
    s.train_per_class_c100 = 500;
    s.test_per_class_c100 = 100;
    s.pretrain_epochs = 60;
    s.finetune_epochs = 130;
    s.max_iterations = 30;
    s.batch_size = 256;
    s.images_per_class_scoring = 10;
    s.noise_stddev = 0.25f;
    s.jitter = 0.35f;
    s.tau_mode = core::TauMode::kAbsolute;
    s.max_fraction_per_iter = 0.10f;
    s.max_accuracy_drop = 0.02f;
    return s;
  }
  std::cerr << "unknown CAPR_SCALE '" << which << "', using micro\n";
  return s;
}

Workbench prepare_workbench(const std::string& arch, int64_t classes,
                            const ExperimentScale& scale, float lambda1, float lambda2,
                            uint64_t seed) {
  const bool is_resnet = arch.rfind("resnet", 0) == 0;

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = classes;
  dcfg.image_size = scale.image_size;
  dcfg.train_per_class =
      classes >= 100 ? scale.train_per_class_c100 : scale.train_per_class_c10;
  dcfg.test_per_class = classes >= 100 ? scale.test_per_class_c100 : scale.test_per_class_c10;
  // 100-class runs get a gentler task: at reduced widths/data the
  // 100-way problem otherwise saturates the network (no redundancy,
  // nothing prunable) — the pruning claims need an overparameterized
  // regime like the paper's full-width CIFAR-100 models.
  dcfg.noise_stddev = classes >= 100 ? scale.noise_stddev * 0.25f : scale.noise_stddev;
  dcfg.jitter = classes >= 100 ? scale.jitter * 0.7f : scale.jitter;
  dcfg.seed = seed;

  models::BuildConfig mcfg;
  mcfg.num_classes = classes;
  mcfg.input_size = scale.image_size;
  // ResNet channel counts (16/32/64) are 4-8x narrower than VGG's; at
  // reduced width multipliers they fall below usable capacity, so the
  // reduced scales give ResNets twice the multiplier. VGG on 100 classes
  // similarly needs extra width to reach the overparameterized regime.
  float width = scale.width_mult;
  if (scale.name != "full") {
    if (is_resnet) width *= 2.0f;
    if (!is_resnet && classes >= 100) width *= 1.5f;
  }
  mcfg.width_mult = width;
  mcfg.init_seed = seed * 31 + 7;

  Workbench wb;
  wb.model = models::make_model(arch, mcfg);
  wb.data = data::make_synthetic_cifar(dcfg);
  wb.factory = [arch, mcfg] { return models::make_model(arch, mcfg); };

  // Checkpoint cache: key on everything that affects the trained weights.
  const char* cache_env = std::getenv("CAPR_CACHE");
  const bool use_cache = !(cache_env != nullptr && std::string(cache_env) == "0");
  std::string cache_path;
  if (use_cache) {
    std::ostringstream key;
    key << "capr_cache/" << arch << "-c" << classes << "-" << scale.name << "-w"
        << mcfg.width_mult << "-s" << scale.image_size << "-l1_" << lambda1 << "-l2_"
        << lambda2 << "-seed" << seed << ".ckpt";
    cache_path = key.str();
    std::error_code ec;
    std::filesystem::create_directories("capr_cache", ec);
    if (!ec && std::filesystem::exists(cache_path)) {
      try {
        wb.model.load_state_dict(load_tensor_map(cache_path));
        wb.pretrained_accuracy = nn::evaluate(wb.model, wb.data.test);
        return wb;
      } catch (const std::exception& e) {
        std::cerr << "cache " << cache_path << " unusable (" << e.what()
                  << "); retraining\n";
      }
    }
  }

  // Paper Section IV training setup: SGD, lr 0.01 (we scale up slightly
  // for the short schedules), momentum 0.9, weight decay 5e-4. ResNets
  // converge more slowly than VGG at these tiny scales; give them a
  // longer schedule so the pre-pruning baseline is meaningful.
  nn::TrainConfig tcfg;
  tcfg.epochs = is_resnet ? scale.pretrain_epochs * 2 : scale.pretrain_epochs;
  tcfg.batch_size = scale.batch_size;
  tcfg.sgd.lr = scale.name == "full" ? 0.01f : 0.05f;
  tcfg.sgd.momentum = 0.9f;
  tcfg.sgd.weight_decay = 5e-4f;
  tcfg.lr_decay = 0.5f;
  tcfg.lr_decay_every = std::max(3, tcfg.epochs / 3);
  tcfg.loader_seed = seed;

  core::ModifiedLossConfig lcfg;
  lcfg.lambda1 = lambda1;
  lcfg.lambda2 = lambda2;
  core::ModifiedLoss reg(lcfg);
  nn::Regularizer* regp = (lambda1 == 0.0f && lambda2 == 0.0f) ? nullptr : &reg;
  nn::train(wb.model, wb.data.train, tcfg, regp);
  wb.pretrained_accuracy = nn::evaluate(wb.model, wb.data.test);
  if (use_cache) {
    try {
      save_tensor_map(cache_path, wb.model.state_dict());
    } catch (const std::exception& e) {
      std::cerr << "could not write cache " << cache_path << ": " << e.what() << "\n";
    }
  }
  return wb;
}

core::ClassAwarePrunerConfig pruner_config(const ExperimentScale& scale) {
  core::ClassAwarePrunerConfig cfg;
  cfg.importance.images_per_class = scale.images_per_class_scoring;
  cfg.importance.tau = scale.tau;
  cfg.importance.tau_mode = scale.tau_mode;
  cfg.importance.tau_quantile = scale.tau_quantile;
  cfg.strategy.mode = core::StrategyMode::kBoth;
  cfg.strategy.max_fraction_per_iter = scale.max_fraction_per_iter;
  cfg.strategy.max_layer_fraction_per_iter = scale.max_layer_fraction_per_iter;
  cfg.strategy.min_filters_per_layer = 2;
  cfg.finetune.epochs = scale.finetune_epochs;
  cfg.finetune.batch_size = scale.batch_size;
  cfg.finetune.sgd.lr = 0.02f;
  cfg.finetune.sgd.momentum = 0.9f;
  cfg.finetune.sgd.weight_decay = 5e-4f;
  cfg.max_accuracy_drop = scale.max_accuracy_drop;
  cfg.recovery_rounds = scale.recovery_rounds;
  cfg.max_iterations = scale.max_iterations;
  return cfg;
}

void print_banner(const std::string& experiment, const std::string& what) {
  const ExperimentScale scale = scale_from_env();
  std::cout << "==========================================================\n"
            << experiment << ": " << what << "\n"
            << "Paper: Class-Aware Pruning for Efficient Neural Networks (DATE 2024)\n"
            << "Scale: " << scale.name << " (set CAPR_SCALE=micro|small|full)\n"
            << "Data : SyntheticCifar substitute (see DESIGN.md section 2)\n"
            << "==========================================================\n\n";
}

}  // namespace capr::report
