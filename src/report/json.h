// Minimal JSON document builder for machine-readable experiment results.
//
// Deliberately tiny: enough to serialise the library's result structs
// (numbers, strings, booleans, arrays, objects) with correct escaping.
// No parsing — results flow out of the library, not in.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pruner.h"
#include "hw/systolic.h"

namespace capr::report {

/// A JSON value. Build with the static constructors, compose with
/// push_back (arrays) and set (objects), then dump().
class JsonValue {
 public:
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue number(int64_t v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  /// Appends to an array; throws std::logic_error on other kinds.
  void push_back(JsonValue v);

  /// Sets a key on an object; throws std::logic_error on other kinds.
  void set(const std::string& key, JsonValue v);

  /// Compact serialisation (no whitespace). Integral numbers print
  /// without a decimal point.
  std::string dump() const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kArray, kObject };
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

/// Serialisers for the main result structs.
JsonValue to_json(const core::IterationRecord& rec);
JsonValue to_json(const core::PruneRunResult& res);
JsonValue to_json(const hw::ModelSim& sim);

}  // namespace capr::report
