#include "report/table.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace capr::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row has " + std::to_string(row.size()) +
                                " cells, header has " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string pct(double fraction, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << fraction * 100.0 << '%';
  return os.str();
}

std::string human_count(int64_t n) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  const double d = static_cast<double>(n);
  if (n >= 1'000'000'000) {
    os.precision(2);
    os << d / 1e9 << 'G';
  } else if (n >= 1'000'000) {
    os.precision(2);
    os << d / 1e6 << 'M';
  } else if (n >= 1'000) {
    os.precision(1);
    os << d / 1e3 << 'K';
  } else {
    os << n;
  }
  return os.str();
}

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string histogram(const std::vector<float>& values, int buckets, float max_score,
                      int bar_width) {
  if (buckets <= 0 || max_score <= 0.0f || bar_width <= 0) {
    throw std::invalid_argument("histogram: buckets, max_score, bar_width must be positive");
  }
  std::vector<int64_t> counts(static_cast<size_t>(buckets), 0);
  for (float v : values) {
    int b = static_cast<int>(std::floor(v / max_score * static_cast<float>(buckets)));
    b = std::clamp(b, 0, buckets - 1);
    ++counts[static_cast<size_t>(b)];
  }
  int64_t peak = 1;
  for (int64_t c : counts) peak = std::max(peak, c);
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  const float step = max_score / static_cast<float>(buckets);
  for (int b = 0; b < buckets; ++b) {
    const float lo = step * static_cast<float>(b);
    const float hi = lo + step;
    const int64_t n = counts[static_cast<size_t>(b)];
    const int bar = static_cast<int>(
        std::lround(static_cast<double>(n) / static_cast<double>(peak) * bar_width));
    os << '[' << lo << ", " << hi << ")  ";
    os.width(5);
    os << n << "  " << std::string(static_cast<size_t>(bar), '#') << '\n';
  }
  return os.str();
}

}  // namespace capr::report
