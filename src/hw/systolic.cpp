#include "hw/systolic.h"

#include <algorithm>
#include <stdexcept>

#include "nn/dropout.h"
#include "nn/pooling.h"

namespace capr::hw {
namespace {

using nn::BasicBlock;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Layer;
using nn::Linear;
using nn::Sequential;

constexpr int64_t kBytesPerElement = 4;  // float32

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Cost of an elementwise / vector-unit layer over `elems` outputs.
LayerSim vector_layer(const Layer& layer, int64_t elems, const SystolicConfig& cfg) {
  LayerSim sim;
  sim.name = layer.name();
  sim.kind = layer.kind();
  sim.cycles = ceil_div(elems, cfg.cols);
  sim.sram_bytes = 2 * elems * kBytesPerElement;  // read + write
  sim.energy_nj = static_cast<double>(sim.sram_bytes) * cfg.e_sram_byte_pj * 1e-3;
  return sim;
}

Shape step(Layer& layer, const Shape& in, const SystolicConfig& cfg,
           std::vector<LayerSim>& out);

Shape step_block(BasicBlock& blk, const Shape& in, const SystolicConfig& cfg,
                 std::vector<LayerSim>& out) {
  Shape s = step(blk.conv1(), in, cfg, out);
  s = step(blk.bn1(), s, cfg, out);
  s = step(blk.relu1(), s, cfg, out);
  s = step(blk.conv2(), s, cfg, out);
  s = step(blk.bn2(), s, cfg, out);
  if (blk.has_projection()) {
    Shape p = step(*blk.proj_conv(), in, cfg, out);
    step(*blk.proj_bn(), p, cfg, out);
  }
  out.push_back(vector_layer(blk.relu_out(), numel_of(s), cfg));
  out.back().name = blk.name() + ".add+relu";
  return s;
}

Shape step(Layer& layer, const Shape& in, const SystolicConfig& cfg,
           std::vector<LayerSim>& out) {
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) {
    Shape s = in;
    for (size_t i = 0; i < seq->size(); ++i) s = step(seq->child(i), s, cfg, out);
    return s;
  }
  if (auto* blk = dynamic_cast<BasicBlock*>(&layer)) return step_block(*blk, in, cfg, out);

  const Shape os = layer.output_shape(in);
  if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
    const int64_t m = conv->out_channels();
    const int64_t k = conv->in_channels() * conv->kernel() * conv->kernel();
    const int64_t n = os[1] * os[2];
    LayerSim sim = simulate_gemm(layer.name(), m, k, n, cfg);
    sim.kind = layer.kind();
    out.push_back(sim);
    return os;
  }
  if (auto* lin = dynamic_cast<Linear*>(&layer)) {
    LayerSim sim = simulate_gemm(layer.name(), lin->out_features(), lin->in_features(), 1, cfg);
    sim.kind = layer.kind();
    out.push_back(sim);
    return os;
  }
  // Everything else maps onto the vector unit.
  out.push_back(vector_layer(layer, numel_of(os), cfg));
  return os;
}

}  // namespace

void SystolicConfig::validate() const {
  if (rows <= 0 || cols <= 0 || freq_ghz <= 0.0 || sram_bytes <= 0 || e_mac_pj < 0.0 ||
      e_sram_byte_pj < 0.0 || e_dram_byte_pj < 0.0) {
    throw std::invalid_argument("SystolicConfig: non-positive parameter");
  }
}

LayerSim simulate_gemm(const std::string& name, int64_t m, int64_t k, int64_t n,
                       const SystolicConfig& cfg) {
  cfg.validate();
  if (m <= 0 || k <= 0 || n <= 0) {
    throw std::invalid_argument("simulate_gemm: non-positive GEMM extent");
  }
  LayerSim sim;
  sim.name = name;
  sim.kind = "gemm";
  sim.macs = m * k * n;

  const int64_t m_tiles = ceil_div(m, cfg.rows);
  const int64_t k_tiles = ceil_div(k, cfg.cols);
  const int64_t tiles = m_tiles * k_tiles;
  sim.cycles = tiles * (n + cfg.rows + cfg.cols);
  sim.utilization = static_cast<double>(sim.macs) /
                    (static_cast<double>(sim.cycles) * cfg.rows * cfg.cols);

  // Data movement. Weights: M*K; re-fetched from DRAM per pass when they
  // exceed SRAM. Activations: K*N read, M*N written (once via SRAM).
  const int64_t weight_bytes = m * k * kBytesPerElement;
  const int64_t act_in_bytes = k * n * kBytesPerElement;
  const int64_t act_out_bytes = m * n * kBytesPerElement;
  const bool weights_resident = weight_bytes <= cfg.sram_bytes;
  sim.dram_bytes = (weights_resident ? weight_bytes : weight_bytes /*per pass*/) +
                   act_in_bytes + act_out_bytes;
  if (!weights_resident) {
    // One extra weight pass per K-tile group beyond the first fill.
    sim.dram_bytes += weight_bytes * (k_tiles - 1) / std::max<int64_t>(k_tiles, 1);
  }
  // Every streamed operand moves through SRAM; activations are reread per
  // M-tile (each tile row needs the full activation panel).
  sim.sram_bytes = weight_bytes + act_in_bytes * m_tiles + act_out_bytes;

  sim.energy_nj = (static_cast<double>(sim.macs) * cfg.e_mac_pj +
                   static_cast<double>(sim.sram_bytes) * cfg.e_sram_byte_pj +
                   static_cast<double>(sim.dram_bytes) * cfg.e_dram_byte_pj) *
                  1e-3;
  return sim;
}

double ModelSim::mean_utilization(const SystolicConfig& cfg) const {
  int64_t gemm_cycles = 0;
  double weighted = 0.0;
  for (const LayerSim& l : layers) {
    if (l.macs > 0) {
      gemm_cycles += l.cycles;
      weighted += l.utilization * static_cast<double>(l.cycles);
    }
  }
  (void)cfg;
  return gemm_cycles > 0 ? weighted / static_cast<double>(gemm_cycles) : 0.0;
}

ModelSim simulate(nn::Model& model, const SystolicConfig& cfg) {
  cfg.validate();
  ModelSim sim;
  Shape s = model.input_shape;
  for (size_t i = 0; i < model.net->size(); ++i) {
    s = step(model.net->child(i), s, cfg, sim.layers);
  }
  for (const LayerSim& l : sim.layers) {
    sim.total_cycles += l.cycles;
    sim.total_macs += l.macs;
    sim.total_dram_bytes += l.dram_bytes;
    sim.total_energy_nj += l.energy_nj;
  }
  return sim;
}

}  // namespace capr::hw
