// Systolic-array hardware cost model.
//
// The paper motivates structured pruning with dense-hardware efficiency:
// filter pruning shrinks the GEMMs that a systolic array (e.g. a TPU-like
// weight-stationary design, the paper's ref [26]) actually schedules.
// This module turns a model into estimated cycles / utilization / data
// traffic / energy on such an array, so pruning results can be reported
// in hardware terms rather than FLOPs alone (bench_hw).
//
// Mapping model (deliberately simple and documented, in the spirit of
// first-order DATE-style cost models):
//  - Conv layers lower to GEMM via im2col: M = Cout, K = Cin*k*k,
//    N = OH*OW. Linear layers are GEMMs with N = 1.
//  - Weight-stationary dataflow: the MxK weight matrix is tiled into
//    (rows x cols) PE tiles; each tile streams its N activations through
//    the array. A tile costs (N + rows + cols) cycles: N beats of
//    streaming plus pipeline fill/drain.
//  - Weights are fetched from DRAM once if the layer's weights fit in
//    SRAM, otherwise once per stream pass; activations are read and
//    written once per layer (perfect reuse inside a tile row).
//  - Elementwise/normalization/pooling layers run on a vector unit of
//    `cols` lanes, one element per lane-cycle.
// Energy = MACs * e_mac + SRAM traffic * e_sram + DRAM traffic * e_dram.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace capr::hw {

struct SystolicConfig {
  int64_t rows = 16;  // PE array height (M tiling)
  int64_t cols = 16;  // PE array width  (K tiling) and vector lanes
  double freq_ghz = 1.0;
  int64_t sram_bytes = 256 * 1024;
  // First-order energy per operation (picojoules).
  double e_mac_pj = 0.5;
  double e_sram_byte_pj = 1.0;
  double e_dram_byte_pj = 100.0;

  /// Throws std::invalid_argument on non-positive parameters.
  void validate() const;
};

struct LayerSim {
  std::string name;
  std::string kind;
  int64_t macs = 0;
  int64_t cycles = 0;
  double utilization = 0.0;  // macs / (cycles * rows * cols), GEMM layers
  int64_t sram_bytes = 0;
  int64_t dram_bytes = 0;
  double energy_nj = 0.0;
};

struct ModelSim {
  std::vector<LayerSim> layers;
  int64_t total_cycles = 0;
  int64_t total_macs = 0;
  int64_t total_dram_bytes = 0;
  double total_energy_nj = 0.0;

  /// End-to-end latency for one input at the configured clock.
  double latency_us(const SystolicConfig& cfg) const {
    return static_cast<double>(total_cycles) / (cfg.freq_ghz * 1e3);
  }
  /// Average PE utilization across GEMM cycles.
  double mean_utilization(const SystolicConfig& cfg) const;
};

/// Simulates one GEMM of shape [M, K] x [K, N] on the array; exposed for
/// tests and for users mapping custom ops.
LayerSim simulate_gemm(const std::string& name, int64_t m, int64_t k, int64_t n,
                       const SystolicConfig& cfg);

/// Walks the model (batch-1 inference) and accumulates per-layer costs.
ModelSim simulate(nn::Model& model, const SystolicConfig& cfg);

}  // namespace capr::hw
