#include "tune/corpus.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "core/surgeon.h"
#include "graph/graph.h"
#include "models/builders.h"
#include "nn/model.h"

namespace capr::tune {
namespace {

using ShapeKey = std::tuple<int, int64_t, int64_t, int64_t>;

ShapeKey key_of(const CorpusShape& s) {
  return {static_cast<int>(s.variant), s.m, s.k, s.n};
}

/// Appends `s` unless an identical (variant, m, k, n) is already there.
void add_shape(std::vector<CorpusShape>& out, std::set<ShapeKey>& seen, CorpusShape s) {
  if (s.m <= 0 || s.k <= 0 || s.n <= 0) return;
  if (!seen.insert(key_of(s)).second) return;
  out.push_back(std::move(s));
}

/// The committed bench_gemm base sweep (bench/bench_gemm.cpp): a cubic
/// ladder plus the deep and short-wide im2col shapes BENCH_kernels.json
/// tracks. Kept in one place so bench and tuner cannot drift apart.
void add_bench_shapes(std::vector<CorpusShape>& out, std::set<ShapeKey>& seen) {
  const int64_t shapes[][3] = {
      {64, 64, 64},   {128, 128, 128}, {256, 256, 256},
      {384, 384, 384}, {96, 576, 256},  {16, 144, 1024},
  };
  for (const auto& s : shapes) {
    add_shape(out, seen, {GemmVariant::kNN, s[0], s[1], s[2], "bench"});
  }
}

/// Conv and linear GEMM shapes of one built model, walked via the
/// ModuleGraph (the same IR the compiler lowers, so the harvested
/// shapes are exactly the shapes ExecutionPlans dispatch).
void harvest_model(const nn::Model& model, const std::string& origin,
                   std::vector<CorpusShape>& out, std::set<ShapeKey>& seen) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  if (!g.ok()) return;
  for (const graph::Node& node : g.nodes()) {
    if (node.kind == graph::Kind::kConv2d) {
      // Forward im2col product: weight[Cout, Cin*kh*kw] * col[. , oh*ow].
      const int64_t m = node.conv.out_channels;
      const int64_t k = node.conv.in_channels * node.conv.kernel * node.conv.kernel;
      const int64_t n = node.out_shape.size() >= 3 ? node.out_shape[1] * node.out_shape[2] : 0;
      add_shape(out, seen,
                {GemmVariant::kNN, m, k, n, origin + "/conv@" + node.path});
    } else if (node.kind == graph::Kind::kLinear) {
      // Serving NT product: x[batch, in] * w[out, in]^T at the batch
      // sizes the server actually forms (single request + a full
      // micro-batch).
      for (const int64_t batch : {int64_t{1}, int64_t{8}}) {
        add_shape(out, seen,
                  {GemmVariant::kNT, batch, node.linear.in_features, node.linear.out_features,
                   origin + "/linear@" + node.path});
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& corpus_archs() {
  static const std::vector<std::string> archs = {
      "vgg11",    "vgg13",    "vgg16",    "vgg19", "resnet20",
      "resnet32", "resnet44", "resnet56", "tiny"};
  return archs;
}

void prune_some_filters(nn::Model& model, uint64_t seed) {
  for (size_t u = 0; u < model.units.size(); ++u) {
    const int64_t n = model.units[u].conv->out_channels();
    if (n < 4) continue;
    std::vector<int64_t> filters;
    for (int64_t c = 0; c < n; ++c) {
      if ((static_cast<uint64_t>(c) * 2654435761u + seed * 40503u + u) % 4 == 0) {
        filters.push_back(c);
      }
    }
    if (filters.empty()) filters.push_back(static_cast<int64_t>(seed % n));
    if (static_cast<int64_t>(filters.size()) >= n) filters.pop_back();
    core::remove_filters(model, u, filters);
  }
}

std::vector<CorpusShape> build_corpus() {
  std::vector<CorpusShape> out;
  std::set<ShapeKey> seen;
  add_bench_shapes(out, seen);
  for (const std::string& arch : corpus_archs()) {
    {
      const nn::Model dense = models::make_model(arch, models::BuildConfig{});
      harvest_model(dense, arch, out, seen);
    }
    {
      nn::Model pruned = models::make_model(arch, models::BuildConfig{});
      prune_some_filters(pruned, 1);
      harvest_model(pruned, arch + "-pruned", out, seen);
    }
  }
  return out;
}

std::vector<CorpusShape> pruned_im2col_shapes(size_t max_shapes) {
  // Dense harvest first, so its keys mask shapes pruning did not change.
  std::vector<CorpusShape> dense;
  std::set<ShapeKey> dense_seen;
  for (const std::string& arch : corpus_archs()) {
    const nn::Model model = models::make_model(arch, models::BuildConfig{});
    harvest_model(model, arch, dense, dense_seen);
  }
  std::vector<CorpusShape> fresh;
  std::set<ShapeKey> seen = dense_seen;
  for (const std::string& arch : corpus_archs()) {
    nn::Model model = models::make_model(arch, models::BuildConfig{});
    prune_some_filters(model, 1);
    harvest_model(model, arch + "-pruned", fresh, seen);
  }
  std::vector<CorpusShape> convs;
  for (CorpusShape& s : fresh) {
    if (s.variant == GemmVariant::kNN) convs.push_back(std::move(s));
  }
  // Smallest M first (the worst strip-padding waste under fixed MR=6),
  // then by FLOPs so ties resolve deterministically.
  std::sort(convs.begin(), convs.end(), [](const CorpusShape& a, const CorpusShape& b) {
    if (a.m != b.m) return a.m < b.m;
    if (a.flops() != b.flops()) return a.flops() < b.flops();
    return key_of(a) < key_of(b);
  });
  // One shape per shape class keeps the selection spread; a second pass
  // tops up with the remaining smallest-M shapes if classes run out.
  std::vector<CorpusShape> picked;
  std::set<int> classes;
  for (const CorpusShape& s : convs) {
    if (picked.size() >= max_shapes) break;
    if (classes.insert(classify_gemm(s.variant, s.m, s.k, s.n).index()).second) {
      picked.push_back(s);
    }
  }
  for (const CorpusShape& s : convs) {
    if (picked.size() >= max_shapes) break;
    bool have = false;
    for (const CorpusShape& p : picked) have = have || key_of(p) == key_of(s);
    if (!have) picked.push_back(s);
  }
  return picked;
}

}  // namespace capr::tune
