// Shape corpus for the GEMM autotuner.
//
// A tuning table is only as good as the shapes it was measured on. The
// corpus combines three sources so the searched classes are the classes
// production actually hits:
//
//   * the bench_gemm base shapes (the committed BENCH_kernels.json
//     sweep: cubic ladder + the two historically problematic skinny
//     im2col shapes);
//   * conv im2col GEMM shapes harvested from all nine graph-built
//     architectures via the ModuleGraph (M = out_channels,
//     K = Cin*kh*kw, N = out_h*out_w);
//   * the same harvest after a deterministic pseudo-random prune of
//     roughly a quarter of every prunable unit's filters (mirroring the
//     compile-test sweep), because pruning produces exactly the
//     irregular skinny shapes a fixed config mishandles;
//
// plus the linear-layer NT shapes at serving batch sizes. Output order
// is deterministic and deduplicated, so two runs of capr-tune search
// identical shape lists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/gemm_tune.h"

namespace capr {
namespace nn {
class Model;
}  // namespace nn

namespace tune {

/// One GEMM call site the tuner should care about.
struct CorpusShape {
  GemmVariant variant = GemmVariant::kNN;
  int64_t m = 0, k = 0, n = 0;
  std::string origin;  // "bench", "vgg11/conv@3", "resnet20-pruned/conv@1", ...

  int64_t flops() const { return 2 * m * k * n; }
};

/// The nine graph-built architectures the harvest walks.
const std::vector<std::string>& corpus_archs();

/// Deterministic pseudo-random prune of roughly a quarter of every
/// prunable unit's filters, keyed by `seed` — the same transform the
/// compile differential sweep applies, reused so tuner, benches and
/// tests all see one canonical "pruned variant" of a model.
void prune_some_filters(nn::Model& model, uint64_t seed);

/// Full corpus: bench base shapes + conv/linear GEMM shapes from every
/// architecture, dense and pruned. Deterministic order, deduped by
/// (variant, m, k, n); `origin` records the first site that produced
/// the shape.
std::vector<CorpusShape> build_corpus();

/// Conv im2col shapes that exist only in the pruned harvest — the
/// skinny classes the committed bench corpus historically missed. At
/// most `max_shapes`, spread across distinct shape classes, smallest M
/// first (the shapes the fixed MR=6 kernel wastes the most on).
std::vector<CorpusShape> pruned_im2col_shapes(size_t max_shapes = 6);

}  // namespace tune
}  // namespace capr
