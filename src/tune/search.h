// Per-shape-class autotuning search over the tiled-GEMM config space.
//
// For every shape class the corpus populates, the search measures a
// candidate grid — MC/KC cache blocking, the legal MR micro-kernel
// variants, and the parallelization strategies executable under the
// current thread budget — through the REAL dispatch path (a candidate
// is pinned with GemmTuningScope + a single-entry table, then the
// public gemm_tiled* entry points run), so what is measured is exactly
// what dispatch will later replay.
//
// Eligibility rule: before a candidate may win, its output must be
// bitwise identical (a) between 1 worker and N workers and (b) to the
// default config's output. The kernel's C-preload accumulation makes
// every legal config pass by construction; the check is kept as the
// enforced contract so a future kernel change that breaks invariance
// cannot silently ship inside a tuning table. A candidate only enters
// the table when it beats the default config by a noise margin
// (min_gain), so an installed table never regresses the untuned path
// by more than measurement noise.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "tensor/gemm_tune.h"
#include "tune/corpus.h"

namespace capr::tune {

struct TuneOptions {
  bool smoke = false;      // tiny candidate grid + short timings (CI)
  int repeats = 3;         // best-of timing repetitions
  double min_seconds = 0.01;  // minimum measured wall time per repetition
  double min_gain = 1.03;  // a candidate must beat default by this factor
  std::ostream* log = nullptr;  // human progress stream (nullptr = quiet)
};

/// What the search decided for one shape class.
struct ClassReport {
  GemmShapeClass cls;
  GemmTuneEntry entry;       // chosen config + measurements (rep_* filled)
  bool tuned = false;        // false: default config won, no table entry
  int shapes = 0;            // corpus members in this class
  int candidates = 0;        // configs measured
  int rejected_bitwise = 0;  // candidates failing the eligibility check
};

struct TuneResult {
  GemmTuningTable table;  // host fingerprint + every tuned class
  std::vector<ClassReport> reports;  // one per populated class, index order
};

/// Runs the search over every class `corpus` populates. Candidates are
/// scored on a deterministic spread of class members (geomean speedup,
/// with a no-regress floor on every sampled member — a class entry
/// applies to the whole class, so it must not tax any member); the
/// median-FLOPs member is recorded as the entry's rep shape. Timings are
/// of course machine-dependent — that is the point of the table.
TuneResult run_autotune(const std::vector<CorpusShape>& corpus, const TuneOptions& opts);

/// One committed entry re-measured by --verify.
struct VerifyRow {
  GemmShapeClass cls;
  GemmTuneConfig cfg;
  bool eligible = true;      // 1-vs-N + vs-default bitwise check still holds
  bool measured = false;     // false when the entry carries no rep shape
  double recorded_gflops = 0.0;
  double measured_gflops = 0.0;
  /// measured / recorded (0 when not measured or nothing recorded).
  double drift() const {
    return measured && recorded_gflops > 0.0 ? measured_gflops / recorded_gflops : 0.0;
  }
};

/// Re-measures every present entry of `table` on its recorded rep shape
/// and re-runs the bitwise eligibility check. Pure measurement — the
/// table is not modified; callers decide what drift is actionable.
std::vector<VerifyRow> verify_table(const GemmTuningTable& table, const TuneOptions& opts);

}  // namespace capr::tune
