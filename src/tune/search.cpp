#include "tune/search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <ostream>
#include <tuple>

#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/scratch.h"

namespace capr::tune {
namespace {

/// Operand buffers for one rep shape, filled deterministically so every
/// run of the search multiplies the same matrices.
struct Operands {
  std::vector<float> a, b, c;
};

Operands make_operands(GemmVariant v, int64_t m, int64_t k, int64_t n) {
  Operands op;
  op.a.resize(static_cast<size_t>(v == GemmVariant::kTN ? k * m : m * k));
  op.b.resize(static_cast<size_t>(v == GemmVariant::kNT ? n * k : k * n));
  op.c.resize(static_cast<size_t>(m * n));
  Rng rng(0x7d3a9efULL + static_cast<uint64_t>(m * 131 + k * 31 + n));
  for (float& x : op.a) x = rng.uniform(-1.0f, 1.0f);
  for (float& x : op.b) x = rng.uniform(-1.0f, 1.0f);
  return op;
}

void run_call(GemmVariant v, Operands& op, int64_t m, int64_t k, int64_t n,
              GemmScratch* scratch) {
  switch (v) {
    case GemmVariant::kNN:
      gemm_tiled(op.a.data(), op.b.data(), op.c.data(), m, k, n, false, scratch);
      break;
    case GemmVariant::kNT:
      gemm_tiled_nt(op.a.data(), op.b.data(), op.c.data(), m, k, n, false, scratch);
      break;
    case GemmVariant::kTN:
      gemm_tiled_tn(op.a.data(), op.b.data(), op.c.data(), m, k, n, false, scratch);
      break;
  }
}

double time_iters(GemmVariant v, Operands& op, int64_t m, int64_t k, int64_t n,
                  GemmScratch* scratch, int64_t iters) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) run_call(v, op, m, k, n, scratch);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Best-of-`repeats` throughput of `cfg` on one shape, measured through
/// the public dispatch with the candidate pinned by a one-entry table.
double measure_gflops(GemmVariant v, int64_t m, int64_t k, int64_t n,
                      const GemmTuneConfig& cfg, Operands& op, GemmScratch* scratch,
                      int repeats, double min_seconds) {
  GemmTuningScope pin(single_entry_table(v, m, k, n, cfg));
  run_call(v, op, m, k, n, scratch);  // warm packs + caches, outside timing
  int64_t iters = 1;
  double t = time_iters(v, op, m, k, n, scratch, iters);
  while (t < min_seconds && iters < (int64_t{1} << 22)) {
    iters *= 2;
    t = time_iters(v, op, m, k, n, scratch, iters);
  }
  double best = t / static_cast<double>(iters);
  for (int r = 1; r < repeats; ++r) {
    best = std::min(best, time_iters(v, op, m, k, n, scratch, iters) /
                              static_cast<double>(iters));
  }
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  return best > 0.0 ? flops / best / 1e9 : 0.0;
}

/// The eligibility contract: the candidate's output must be bitwise
/// identical between 1 worker and 4 workers, and bitwise identical to
/// what the default config produces. `ref` is the default-config output.
bool bitwise_eligible(GemmVariant v, int64_t m, int64_t k, int64_t n,
                      const GemmTuneConfig& cfg, Operands& op, GemmScratch* scratch,
                      const std::vector<float>& ref) {
  GemmTuningScope pin(single_entry_table(v, m, k, n, cfg));
  const size_t bytes = op.c.size() * sizeof(float);
  const int saved = num_threads();
  set_num_threads(1);
  run_call(v, op, m, k, n, scratch);
  std::vector<float> c1 = op.c;
  set_num_threads(4);
  run_call(v, op, m, k, n, scratch);
  set_num_threads(saved);
  return std::memcmp(c1.data(), op.c.data(), bytes) == 0 &&
         std::memcmp(c1.data(), ref.data(), bytes) == 0;
}

std::vector<GemmTuneConfig> candidate_grid(GemmVariant v, int64_t m, int64_t k,
                                           int64_t n, bool smoke) {
  const GemmTuneConfig def = default_gemm_config(v, m, k, n);
  std::vector<int64_t> mcs = smoke ? std::vector<int64_t>{def.mc}
                                   : std::vector<int64_t>{36, 72, 144};
  std::vector<int64_t> kcs = smoke ? std::vector<int64_t>{def.kc}
                                   : std::vector<int64_t>{128, 256, 512};
  // Strategy candidates only help when workers exist; with one thread
  // every strategy downgrades to serial execution anyway, so searching
  // them would triple the measurement budget for identical timings.
  std::vector<GemmParallel> strategies = {def.strategy};
  if (num_threads() > 1) {
    strategies = {GemmParallel::kNoParallel, GemmParallel::kSplitM,
                  GemmParallel::kSplitN};
  }
  std::vector<GemmTuneConfig> out;
  for (int64_t mc : mcs) {
    for (int64_t kc : kcs) {
      for (int64_t mr : legal_gemm_mr()) {
        for (GemmParallel s : strategies) {
          GemmTuneConfig cfg{mc, kc, mr, s};
          // Split-M distributes whole MC blocks, so raising MC above the
          // default shrinks the worker pool (e.g. mc=144 at M=256 leaves
          // only 2 blocks). Tuning hosts may have fewer workers than the
          // deploy host, so a serial-time win from a coarser MC is not
          // worth starving a parallel run; cap MC at the default for
          // split-M candidates.
          if (cfg.strategy == GemmParallel::kSplitM && cfg.mc > def.mc) continue;
          if (gemm_config_valid(cfg)) out.push_back(cfg);
        }
      }
    }
  }
  return out;
}

std::string shape_str(int64_t m, int64_t k, int64_t n) {
  return std::to_string(m) + "x" + std::to_string(k) + "x" + std::to_string(n);
}

std::string cfg_str(const GemmTuneConfig& cfg) {
  return "mc=" + std::to_string(cfg.mc) + " kc=" + std::to_string(cfg.kc) +
         " mr=" + std::to_string(cfg.mr) + " " + to_string(cfg.strategy);
}

}  // namespace

TuneResult run_autotune(const std::vector<CorpusShape>& corpus, const TuneOptions& opts) {
  const int repeats = std::max(1, opts.smoke ? std::min(opts.repeats, 2) : opts.repeats);
  const double min_seconds = opts.smoke ? std::min(opts.min_seconds, 0.002)
                                        : opts.min_seconds;
  GemmKernelScope kernel(GemmKernel::kTiled);
  GemmScratch scratch;

  // Group by class; the representative is the median-FLOPs member so one
  // outlier shape cannot skew a whole class's config.
  std::map<int, std::vector<const CorpusShape*>> by_class;
  for (const CorpusShape& s : corpus) {
    by_class[classify_gemm(s.variant, s.m, s.k, s.n).index()].push_back(&s);
  }

  // A class entry applies to EVERY shape in the class, so the winner is
  // chosen on a spread of members, not just one representative: maximum
  // geometric-mean speedup over the default, subject to a no-regress
  // guard (no sampled member below kMemberFloor of its default). A config
  // that is brilliant on one member but costs another its throughput
  // never enters the table.
  const size_t max_members = opts.smoke ? 2 : 6;
  constexpr double kMemberFloor = 0.98;

  TuneResult result;
  result.table.host = host_fingerprint();
  for (auto& [idx, members] : by_class) {
    std::sort(members.begin(), members.end(),
              [](const CorpusShape* a, const CorpusShape* b) {
                if (a->flops() != b->flops()) return a->flops() < b->flops();
                return std::make_tuple(a->m, a->k, a->n) <
                       std::make_tuple(b->m, b->k, b->n);
              });
    const CorpusShape& rep = *members[members.size() / 2];
    const GemmShapeClass cls = classify_gemm(rep.variant, rep.m, rep.k, rep.n);
    const GemmTuneConfig def = default_gemm_config(rep.variant, rep.m, rep.k, rep.n);

    // Evenly spread sample across the flops-sorted members (always
    // includes the smallest and largest when more than one exists).
    std::vector<const CorpusShape*> sample;
    if (members.size() <= max_members) {
      sample = members;
    } else {
      for (size_t i = 0; i < max_members; ++i) {
        sample.push_back(members[i * (members.size() - 1) / (max_members - 1)]);
      }
    }

    struct MemberState {
      const CorpusShape* shape;
      Operands op;
      std::vector<float> ref;  // default-config output, the bitwise yardstick
      double baseline = 0.0;
    };
    std::vector<MemberState> states;
    for (const CorpusShape* s : sample) {
      MemberState st;
      st.shape = s;
      st.op = make_operands(s->variant, s->m, s->k, s->n);
      st.baseline = measure_gflops(s->variant, s->m, s->k, s->n, def, st.op, &scratch,
                                   repeats, min_seconds);
      {
        GemmTuningScope pin(single_entry_table(s->variant, s->m, s->k, s->n, def));
        const int saved = num_threads();
        set_num_threads(1);
        run_call(s->variant, st.op, s->m, s->k, s->n, &scratch);
        set_num_threads(saved);
      }
      st.ref = st.op.c;
      states.push_back(std::move(st));
    }
    const double rep_baseline = states[sample.size() / 2].baseline;

    ClassReport report;
    report.cls = cls;
    report.shapes = static_cast<int>(members.size());
    report.entry.cfg = def;
    report.entry.rep_m = rep.m;
    report.entry.rep_k = rep.k;
    report.entry.rep_n = rep.n;
    report.entry.gflops = rep_baseline;
    report.entry.baseline_gflops = rep_baseline;

    GemmTuneConfig best_cfg = def;
    double best_gain = 1.0;       // geomean across sampled members
    double best_rep_gflops = rep_baseline;
    for (const GemmTuneConfig& cfg : candidate_grid(rep.variant, rep.m, rep.k, rep.n,
                                                    opts.smoke)) {
      if (cfg == def) continue;
      ++report.candidates;
      bool eligible = true;
      for (MemberState& st : states) {
        if (!bitwise_eligible(st.shape->variant, st.shape->m, st.shape->k, st.shape->n,
                              cfg, st.op, &scratch, st.ref)) {
          eligible = false;
          break;
        }
      }
      if (!eligible) {
        ++report.rejected_bitwise;
        continue;
      }
      double log_gain = 0.0, min_gain = 1e30, rep_gflops = rep_baseline;
      for (size_t i = 0; i < states.size(); ++i) {
        MemberState& st = states[i];
        const double gflops =
            measure_gflops(st.shape->variant, st.shape->m, st.shape->k, st.shape->n, cfg,
                           st.op, &scratch, repeats, min_seconds);
        const double gain = st.baseline > 0.0 ? gflops / st.baseline : 0.0;
        log_gain += std::log(std::max(gain, 1e-12));
        min_gain = std::min(min_gain, gain);
        if (i == states.size() / 2) rep_gflops = gflops;
      }
      const double gain = std::exp(log_gain / static_cast<double>(states.size()));
      if (min_gain >= kMemberFloor && gain > best_gain) {
        best_gain = gain;
        best_cfg = cfg;
        best_rep_gflops = rep_gflops;
      }
    }

    if (best_cfg != def && best_gain >= opts.min_gain) {
      report.tuned = true;
      report.entry.present = true;
      report.entry.cfg = best_cfg;
      report.entry.gflops = best_rep_gflops;
      result.table.set(cls, report.entry);
    }
    if (opts.log) {
      *opts.log << "[tune] " << cls.key() << " rep " << shape_str(rep.m, rep.k, rep.n)
                << " (" << report.shapes << " shapes, " << states.size()
                << " sampled, first: " << rep.origin << ")\n"
                << "       default " << rep_baseline << " GF/s";
      if (report.tuned) {
        *opts.log << " -> " << cfg_str(best_cfg) << " (geomean " << best_gain
                  << "x, rep " << best_rep_gflops << " GF/s)";
      } else {
        *opts.log << " (kept; best surviving geomean " << best_gain << "x)";
      }
      if (report.rejected_bitwise > 0) {
        *opts.log << " [" << report.rejected_bitwise << " candidates REJECTED bitwise]";
      }
      *opts.log << "\n";
    }
    result.reports.push_back(std::move(report));
  }
  return result;
}

std::vector<VerifyRow> verify_table(const GemmTuningTable& table, const TuneOptions& opts) {
  const int repeats = std::max(1, opts.smoke ? std::min(opts.repeats, 2) : opts.repeats);
  const double min_seconds = opts.smoke ? std::min(opts.min_seconds, 0.002)
                                        : opts.min_seconds;
  GemmKernelScope kernel(GemmKernel::kTiled);
  GemmScratch scratch;
  std::vector<VerifyRow> rows;
  for (int idx = 0; idx < kGemmShapeClassCount; ++idx) {
    const GemmTuneEntry& e = table.entries[static_cast<size_t>(idx)];
    if (!e.present) continue;
    VerifyRow row;
    row.cls.variant = static_cast<GemmVariant>(idx / (kGemmGeomCount * kGemmTierCount));
    row.cls.geom = static_cast<GemmShapeGeom>(idx / kGemmTierCount % kGemmGeomCount);
    row.cls.tier = static_cast<GemmShapeTier>(idx % kGemmTierCount);
    row.cfg = e.cfg;
    row.recorded_gflops = e.gflops;
    if (e.rep_m > 0 && e.rep_k > 0 && e.rep_n > 0) {
      const GemmVariant v = row.cls.variant;
      Operands op = make_operands(v, e.rep_m, e.rep_k, e.rep_n);
      {
        GemmTuningScope pin(single_entry_table(
            v, e.rep_m, e.rep_k, e.rep_n,
            default_gemm_config(v, e.rep_m, e.rep_k, e.rep_n)));
        const int saved = num_threads();
        set_num_threads(1);
        run_call(v, op, e.rep_m, e.rep_k, e.rep_n, &scratch);
        set_num_threads(saved);
      }
      const std::vector<float> ref = op.c;
      row.eligible = bitwise_eligible(v, e.rep_m, e.rep_k, e.rep_n, e.cfg, op,
                                      &scratch, ref);
      row.measured_gflops = measure_gflops(v, e.rep_m, e.rep_k, e.rep_n, e.cfg, op,
                                           &scratch, repeats, min_seconds);
      row.measured = true;
    }
    rows.push_back(row);
    if (opts.log) {
      *opts.log << "[verify] " << row.cls.key() << " " << cfg_str(row.cfg)
                << (row.eligible ? "" : " BITWISE-INELIGIBLE");
      if (row.measured) {
        *opts.log << " recorded " << row.recorded_gflops << " GF/s, measured "
                  << row.measured_gflops << " GF/s";
        if (row.drift() > 0.0) *opts.log << " (" << row.drift() << "x)";
      } else {
        *opts.log << " (no rep shape recorded; structural check only)";
      }
      *opts.log << "\n";
    }
  }
  return rows;
}

}  // namespace capr::tune
