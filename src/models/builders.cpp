#include "models/builders.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "nn/init.h"
#include "nn/pooling.h"

namespace capr::models {

using nn::BasicBlock;
using nn::BatchNorm2d;
using nn::Conv2d;
using nn::ConsumerRef;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool2d;
using nn::Model;
using nn::PrunableUnit;
using nn::ReLU;
using nn::Sequential;

int64_t scale_channels(int64_t base, float mult) {
  const int64_t scaled = static_cast<int64_t>(std::lround(static_cast<double>(base) * mult));
  return scaled < 4 ? 4 : scaled;
}

namespace {

/// Builds a CIFAR-style VGG: conv-bn-relu stacks from `plan` (-1 = pool),
/// then global average pool and a single classifier FC.
Model make_vgg(const std::string& arch, const std::vector<int64_t>& plan,
               const BuildConfig& cfg) {
  Model m;
  m.arch = arch;
  m.input_shape = {cfg.input_channels, cfg.input_size, cfg.input_size};
  m.num_classes = cfg.num_classes;
  m.net = std::make_unique<Sequential>();

  struct Stage {
    Conv2d* conv;
    BatchNorm2d* bn;
    ReLU* relu;
  };
  std::vector<Stage> stages;

  int64_t in_ch = cfg.input_channels;
  int64_t spatial = cfg.input_size;
  int conv_idx = 0;
  for (int64_t entry : plan) {
    if (entry == -1) {
      // Skip pools that would shrink below 2x2: keeps the topology legal
      // at reduced input resolutions.
      if (spatial >= 4) {
        m.net->add(std::make_unique<MaxPool2d>(2));
        spatial /= 2;
      }
      continue;
    }
    const int64_t out_ch = scale_channels(entry, cfg.width_mult);
    auto* conv = m.net->add(std::make_unique<Conv2d>(in_ch, out_ch, 3, 1, 1, false));
    conv->set_name("conv" + std::to_string(conv_idx));
    auto* bn = m.net->add(std::make_unique<BatchNorm2d>(out_ch));
    bn->set_name("bn" + std::to_string(conv_idx));
    auto* relu = m.net->add(std::make_unique<ReLU>());
    relu->set_name("relu" + std::to_string(conv_idx));
    stages.push_back({conv, bn, relu});
    in_ch = out_ch;
    ++conv_idx;
  }
  m.net->add(std::make_unique<GlobalAvgPool>())->set_name("gap");
  auto* fc = m.net->add(std::make_unique<Linear>(in_ch, cfg.num_classes));
  fc->set_name("fc");

  for (size_t i = 0; i < stages.size(); ++i) {
    PrunableUnit u;
    u.name = stages[i].conv->name();
    u.conv = stages[i].conv;
    u.bn = stages[i].bn;
    u.score_point = stages[i].relu;
    ConsumerRef c;
    if (i + 1 < stages.size()) {
      c.conv = stages[i + 1].conv;
    } else {
      c.linear = fc;
      c.spatial = 1;  // global average pooling collapses H*W
    }
    u.consumers.push_back(c);
    m.units.push_back(u);
  }

  Rng rng(cfg.init_seed);
  nn::init_all(*m.net, rng);
  return m;
}

/// Builds a CIFAR ResNet with `n` basic blocks per stage (depth 6n+2).
Model make_resnet(const std::string& arch, int64_t n, const BuildConfig& cfg) {
  Model m;
  m.arch = arch;
  m.input_shape = {cfg.input_channels, cfg.input_size, cfg.input_size};
  m.num_classes = cfg.num_classes;
  m.net = std::make_unique<Sequential>();

  const int64_t w16 = scale_channels(16, cfg.width_mult);
  const int64_t w32 = scale_channels(32, cfg.width_mult);
  const int64_t w64 = scale_channels(64, cfg.width_mult);

  auto* stem_conv = m.net->add(std::make_unique<Conv2d>(cfg.input_channels, w16, 3, 1, 1, false));
  stem_conv->set_name("stem.conv");
  m.net->add(std::make_unique<BatchNorm2d>(w16))->set_name("stem.bn");
  m.net->add(std::make_unique<ReLU>())->set_name("stem.relu");

  int64_t in_ch = w16;
  const int64_t stage_channels[3] = {w16, w32, w64};
  int block_idx = 0;
  std::vector<BasicBlock*> blocks;
  for (int stage = 0; stage < 3; ++stage) {
    for (int64_t b = 0; b < n; ++b, ++block_idx) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      auto* blk =
          m.net->add(std::make_unique<BasicBlock>(in_ch, stage_channels[stage], stride));
      const std::string base = "s" + std::to_string(stage) + ".b" + std::to_string(b);
      blk->set_name(base);
      blk->conv1().set_name(base + ".conv1");
      blk->bn1().set_name(base + ".bn1");
      blk->relu1().set_name(base + ".relu1");
      blk->conv2().set_name(base + ".conv2");
      blk->bn2().set_name(base + ".bn2");
      blk->relu_out().set_name(base + ".relu_out");
      if (blk->has_projection()) {
        blk->proj_conv()->set_name(base + ".proj.conv");
        blk->proj_bn()->set_name(base + ".proj.bn");
      }
      blocks.push_back(blk);
      in_ch = stage_channels[stage];
    }
  }
  m.net->add(std::make_unique<GlobalAvgPool>())->set_name("gap");
  auto* fc = m.net->add(std::make_unique<Linear>(in_ch, cfg.num_classes));
  fc->set_name("fc");

  // Paper constraint: only the first conv of each residual block is
  // prunable; its sole consumer is the block's second conv.
  for (BasicBlock* blk : blocks) {
    PrunableUnit u;
    u.name = blk->conv1().name();
    u.conv = &blk->conv1();
    u.bn = &blk->bn1();
    u.score_point = &blk->relu1();
    ConsumerRef c;
    c.conv = &blk->conv2();
    u.consumers.push_back(c);
    m.units.push_back(u);
  }

  Rng rng(cfg.init_seed);
  nn::init_all(*m.net, rng);
  return m;
}

}  // namespace

Model make_vgg11(const BuildConfig& cfg) {
  // 8 convs + pools.
  return make_vgg("vgg11", {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1}, cfg);
}

Model make_vgg13(const BuildConfig& cfg) {
  // 10 convs + pools.
  return make_vgg("vgg13",
                  {64, 64, -1, 128, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1}, cfg);
}

Model make_vgg16(const BuildConfig& cfg) {
  // 13 convs + pools: the standard VGG16 feature plan.
  return make_vgg("vgg16",
                  {64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512,
                   512, -1},
                  cfg);
}

Model make_vgg19(const BuildConfig& cfg) {
  // 16 convs + pools.
  return make_vgg("vgg19",
                  {64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1, 512, 512, 512, 512, -1,
                   512, 512, 512, 512, -1},
                  cfg);
}

Model make_resnet20(const BuildConfig& cfg) { return make_resnet("resnet20", 3, cfg); }

Model make_resnet32(const BuildConfig& cfg) { return make_resnet("resnet32", 5, cfg); }

Model make_resnet44(const BuildConfig& cfg) { return make_resnet("resnet44", 7, cfg); }

Model make_resnet56(const BuildConfig& cfg) { return make_resnet("resnet56", 9, cfg); }

Model make_tiny_cnn(const BuildConfig& cfg) {
  Model m;
  m.arch = "tiny";
  m.input_shape = {cfg.input_channels, cfg.input_size, cfg.input_size};
  m.num_classes = cfg.num_classes;
  m.net = std::make_unique<Sequential>();
  const int64_t c1 = scale_channels(16, cfg.width_mult * 2);
  const int64_t c2 = scale_channels(32, cfg.width_mult * 2);
  auto* conv0 = m.net->add(std::make_unique<Conv2d>(cfg.input_channels, c1, 3, 1, 1, false));
  conv0->set_name("conv0");
  auto* bn0 = m.net->add(std::make_unique<BatchNorm2d>(c1));
  bn0->set_name("bn0");
  auto* relu0 = m.net->add(std::make_unique<ReLU>());
  relu0->set_name("relu0");
  m.net->add(std::make_unique<MaxPool2d>(2))->set_name("pool0");
  auto* conv1 = m.net->add(std::make_unique<Conv2d>(c1, c2, 3, 1, 1, false));
  conv1->set_name("conv1");
  auto* bn1 = m.net->add(std::make_unique<BatchNorm2d>(c2));
  bn1->set_name("bn1");
  auto* relu1 = m.net->add(std::make_unique<ReLU>());
  relu1->set_name("relu1");
  m.net->add(std::make_unique<GlobalAvgPool>())->set_name("gap");
  auto* fc = m.net->add(std::make_unique<Linear>(c2, cfg.num_classes));
  fc->set_name("fc");

  PrunableUnit u0;
  u0.name = "conv0";
  u0.conv = conv0;
  u0.bn = bn0;
  u0.score_point = relu0;
  u0.consumers.push_back(ConsumerRef{conv1, nullptr, 1});
  m.units.push_back(u0);
  PrunableUnit u1;
  u1.name = "conv1";
  u1.conv = conv1;
  u1.bn = bn1;
  u1.score_point = relu1;
  u1.consumers.push_back(ConsumerRef{nullptr, fc, 1});
  m.units.push_back(u1);

  Rng rng(cfg.init_seed);
  nn::init_all(*m.net, rng);
  return m;
}

Model make_model(const std::string& arch, const BuildConfig& cfg) {
  if (arch == "vgg11") return make_vgg11(cfg);
  if (arch == "vgg13") return make_vgg13(cfg);
  if (arch == "vgg16") return make_vgg16(cfg);
  if (arch == "vgg19") return make_vgg19(cfg);
  if (arch == "resnet20") return make_resnet20(cfg);
  if (arch == "resnet32") return make_resnet32(cfg);
  if (arch == "resnet44") return make_resnet44(cfg);
  if (arch == "resnet56") return make_resnet56(cfg);
  if (arch == "tiny") return make_tiny_cnn(cfg);
  throw std::invalid_argument("unknown architecture '" + arch + "'");
}

std::vector<std::string> available_archs() {
  return {"vgg11", "vgg13", "vgg16", "vgg19", "resnet20", "resnet32", "resnet44",
          "resnet56", "tiny"};
}

}  // namespace capr::models
