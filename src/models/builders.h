// Network builders used by the paper's experiments.
//
// All builders are width- and resolution-parametric: `width_mult` scales
// every channel count (floor 4) so the full architectures stay runnable
// on the 1-core reproduction host while keeping the exact layer topology
// (and hence the pruning-coupling structure) of the originals.
//
// Builders also attach the pruning metadata: every structurally prunable
// conv is registered as a PrunableUnit with its BatchNorm, its score
// point (the ReLU carrying the filter's activations), and its channel
// consumers. For the ResNets this encodes the paper's constraint that
// only the first conv of each residual block is pruned.
#pragma once

#include <cstdint>
#include <string>

#include "nn/model.h"
#include "tensor/rng.h"

namespace capr::models {

struct BuildConfig {
  int64_t num_classes = 10;
  int64_t input_channels = 3;
  int64_t input_size = 16;   // paper: 32 (CIFAR); reduced default for CPU
  float width_mult = 0.25f;  // paper: 1.0
  uint64_t init_seed = 1234;
};

/// VGG11/13/16/19 with batch norm, CIFAR-style (global average pool +
/// one FC). VGG16/19 are the paper's models; 11/13 complete the family.
nn::Model make_vgg11(const BuildConfig& cfg);
nn::Model make_vgg13(const BuildConfig& cfg);
nn::Model make_vgg16(const BuildConfig& cfg);
nn::Model make_vgg19(const BuildConfig& cfg);

/// CIFAR ResNets with n basic blocks per stage (depth 6n+2). ResNet-56
/// is the paper's model; the others complete the family. Only first
/// convs of blocks are prunable (shortcut constraint).
nn::Model make_resnet20(const BuildConfig& cfg);
nn::Model make_resnet32(const BuildConfig& cfg);
nn::Model make_resnet44(const BuildConfig& cfg);
nn::Model make_resnet56(const BuildConfig& cfg);

/// Two-conv toy network used by unit tests and the quickstart example.
nn::Model make_tiny_cnn(const BuildConfig& cfg);

/// Builds by name: "vgg11", "vgg13", "vgg16", "vgg19", "resnet20",
/// "resnet32", "resnet44", "resnet56", "tiny".
/// Throws std::invalid_argument for unknown names.
nn::Model make_model(const std::string& arch, const BuildConfig& cfg);

/// Names accepted by make_model.
std::vector<std::string> available_archs();

/// Channel count after width scaling: max(4, round(base * mult)).
int64_t scale_channels(int64_t base, float mult);

}  // namespace capr::models
