#include "baselines/magnitude.h"

#include <cmath>

namespace capr::baselines {
namespace {

/// Sum over one out-channel slice of a conv weight: |w| (p=1) or w^2 (p=2).
double filter_reduce(const nn::Conv2d& conv, int64_t filter, int p) {
  const int64_t fsz = conv.in_channels() * conv.kernel() * conv.kernel();
  const float* w = conv.weight().value.data() + filter * fsz;
  double acc = 0.0;
  for (int64_t i = 0; i < fsz; ++i) {
    acc += p == 1 ? std::fabs(w[i]) : static_cast<double>(w[i]) * w[i];
  }
  return acc;
}

/// Sum over the in-channel slice `ch` of a consumer conv: w^2.
double in_channel_sq(const nn::Conv2d& conv, int64_t ch) {
  const int64_t kk = conv.kernel() * conv.kernel();
  double acc = 0.0;
  for (int64_t f = 0; f < conv.out_channels(); ++f) {
    const float* w = conv.weight().value.data() + (f * conv.in_channels() + ch) * kk;
    for (int64_t i = 0; i < kk; ++i) acc += static_cast<double>(w[i]) * w[i];
  }
  return acc;
}

/// Sum over the in-feature block of a consumer linear for channel `ch`.
double linear_block_sq(const nn::Linear& lin, int64_t ch, int64_t spatial) {
  double acc = 0.0;
  for (int64_t o = 0; o < lin.out_features(); ++o) {
    const float* w = lin.weight().value.data() + o * lin.in_features() + ch * spatial;
    for (int64_t i = 0; i < spatial; ++i) acc += static_cast<double>(w[i]) * w[i];
  }
  return acc;
}

}  // namespace

UnitFilterScores L1Criterion::score(nn::Model& model, const data::Dataset&) {
  UnitFilterScores out;
  for (const nn::PrunableUnit& u : model.units) {
    std::vector<float> s(static_cast<size_t>(u.conv->out_channels()));
    for (int64_t f = 0; f < u.conv->out_channels(); ++f) {
      s[static_cast<size_t>(f)] = static_cast<float>(filter_reduce(*u.conv, f, 1));
    }
    out.push_back(std::move(s));
  }
  return out;
}

UnitFilterScores L2Criterion::score(nn::Model& model, const data::Dataset&) {
  UnitFilterScores out;
  for (const nn::PrunableUnit& u : model.units) {
    std::vector<float> s(static_cast<size_t>(u.conv->out_channels()));
    for (int64_t f = 0; f < u.conv->out_channels(); ++f) {
      s[static_cast<size_t>(f)] = static_cast<float>(std::sqrt(filter_reduce(*u.conv, f, 2)));
    }
    out.push_back(std::move(s));
  }
  return out;
}

UnitFilterScores DepGraphCriterion::score(nn::Model& model, const data::Dataset&) {
  UnitFilterScores out;
  for (nn::PrunableUnit& u : model.units) {
    std::vector<float> s(static_cast<size_t>(u.conv->out_channels()));
    for (int64_t f = 0; f < u.conv->out_channels(); ++f) {
      double group = filter_reduce(*u.conv, f, 2);
      if (full_grouping_) {
        if (u.bn != nullptr) {
          const float g = u.bn->gamma().value[f];
          const float b = u.bn->beta().value[f];
          group += static_cast<double>(g) * g + static_cast<double>(b) * b;
        }
        for (const nn::ConsumerRef& c : u.consumers) {
          if (c.conv != nullptr) {
            group += in_channel_sq(*c.conv, f);
          } else if (c.linear != nullptr) {
            group += linear_block_sq(*c.linear, f, c.spatial);
          }
        }
      }
      s[static_cast<size_t>(f)] = static_cast<float>(std::sqrt(group));
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace capr::baselines
