#include "baselines/activation.h"

#include <cmath>
#include <memory>
#include <vector>

#include "nn/loss.h"

namespace capr::baselines {
namespace {

struct CaptureAll {
  nn::Model& model;
  explicit CaptureAll(nn::Model& m) : model(m) {
    for (auto& u : model.units) u.score_point->instrument().capture = true;
  }
  ~CaptureAll() {
    for (auto& u : model.units) {
      u.score_point->instrument().capture = false;
      u.score_point->instrument().release_captures();
    }
  }
  CaptureAll(const CaptureAll&) = delete;
  CaptureAll& operator=(const CaptureAll&) = delete;
};

}  // namespace

int64_t matrix_rank(const float* data, int64_t h, int64_t w, float rel_tol) {
  std::vector<double> m(static_cast<size_t>(h * w));
  double max_abs = 0.0;
  for (int64_t i = 0; i < h * w; ++i) {
    m[static_cast<size_t>(i)] = data[i];
    max_abs = std::max(max_abs, std::fabs(static_cast<double>(data[i])));
  }
  if (max_abs == 0.0) return 0;
  const double tol = static_cast<double>(rel_tol) * max_abs;
  int64_t rank = 0;
  int64_t row = 0;
  for (int64_t col = 0; col < w && row < h; ++col) {
    // Partial pivot in this column.
    int64_t pivot = -1;
    double best = tol;
    for (int64_t r = row; r < h; ++r) {
      const double v = std::fabs(m[static_cast<size_t>(r * w + col)]);
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (pivot < 0) continue;
    if (pivot != row) {
      for (int64_t c = 0; c < w; ++c) {
        std::swap(m[static_cast<size_t>(row * w + c)], m[static_cast<size_t>(pivot * w + c)]);
      }
    }
    const double lead = m[static_cast<size_t>(row * w + col)];
    for (int64_t r = row + 1; r < h; ++r) {
      const double factor = m[static_cast<size_t>(r * w + col)] / lead;
      if (factor == 0.0) continue;
      for (int64_t c = col; c < w; ++c) {
        m[static_cast<size_t>(r * w + c)] -= factor * m[static_cast<size_t>(row * w + c)];
      }
    }
    ++row;
    ++rank;
  }
  return rank;
}

UnitFilterScores APoZCriterion::score(nn::Model& model, const data::Dataset& train_set) {
  const data::Batch batch = balanced_sample(train_set, images_per_class_, seed_);
  CaptureAll guard(model);
  model.forward(batch.images, /*training=*/false);
  UnitFilterScores out;
  for (auto& u : model.units) {
    const Tensor& a = u.score_point->instrument().captured_output;
    const int64_t n = a.dim(0), f = a.dim(1);
    const int64_t plane = a.numel() / (n * f);
    std::vector<float> s(static_cast<size_t>(f));
    for (int64_t filter = 0; filter < f; ++filter) {
      int64_t zeros = 0;
      for (int64_t img = 0; img < n; ++img) {
        const float* p = a.data() + (img * f + filter) * plane;
        for (int64_t k = 0; k < plane; ++k) {
          if (p[k] == 0.0f) ++zeros;
        }
      }
      const float apoz = static_cast<float>(zeros) / static_cast<float>(n * plane);
      s[static_cast<size_t>(filter)] = 1.0f - apoz;
    }
    out.push_back(std::move(s));
  }
  return out;
}

UnitFilterScores HRankCriterion::score(nn::Model& model, const data::Dataset& train_set) {
  const data::Batch batch = balanced_sample(train_set, images_per_class_, seed_);
  CaptureAll guard(model);
  model.forward(batch.images, /*training=*/false);
  UnitFilterScores out;
  for (auto& u : model.units) {
    const Tensor& a = u.score_point->instrument().captured_output;
    const int64_t n = a.dim(0), f = a.dim(1);
    if (a.rank() != 4) {
      // Rank of a scalar activation is its nonzero-ness; degenerate case.
      std::vector<float> s(static_cast<size_t>(f), 1.0f);
      out.push_back(std::move(s));
      continue;
    }
    const int64_t h = a.dim(2), w = a.dim(3);
    std::vector<float> s(static_cast<size_t>(f), 0.0f);
    for (int64_t filter = 0; filter < f; ++filter) {
      double acc = 0.0;
      for (int64_t img = 0; img < n; ++img) {
        const float* p = a.data() + (img * f + filter) * h * w;
        acc += static_cast<double>(matrix_rank(p, h, w, rel_tol_));
      }
      s[static_cast<size_t>(filter)] = static_cast<float>(acc / n);
    }
    out.push_back(std::move(s));
  }
  return out;
}

UnitFilterScores TaylorFOCriterion::score(nn::Model& model, const data::Dataset& train_set) {
  const data::Batch batch = balanced_sample(train_set, images_per_class_, seed_);
  CaptureAll guard(model);
  nn::SoftmaxCrossEntropy ce;
  const Tensor logits = model.forward(batch.images, /*training=*/false);
  ce.forward(logits, batch.labels);
  model.backward(ce.backward());
  UnitFilterScores out;
  for (auto& u : model.units) {
    const Tensor& a = u.score_point->instrument().captured_output;
    const Tensor& g = u.score_point->instrument().captured_grad;
    const int64_t n = a.dim(0), f = a.dim(1);
    const int64_t plane = a.numel() / (n * f);
    std::vector<float> s(static_cast<size_t>(f), 0.0f);
    for (int64_t filter = 0; filter < f; ++filter) {
      double acc = 0.0;
      for (int64_t img = 0; img < n; ++img) {
        const float* pa = a.data() + (img * f + filter) * plane;
        const float* pg = g.data() + (img * f + filter) * plane;
        double dot = 0.0;
        for (int64_t k = 0; k < plane; ++k) dot += static_cast<double>(pa[k]) * pg[k];
        acc += std::fabs(dot);
      }
      s[static_cast<size_t>(filter)] = static_cast<float>(acc / n);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace capr::baselines
