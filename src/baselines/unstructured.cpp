#include "baselines/unstructured.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/conv2d.h"
#include "nn/linear.h"

namespace capr::baselines {

UnstructuredResult UnstructuredPruner::run(nn::Model& model, const data::Dataset& train_set,
                                           const data::Dataset& test_set) {
  if (cfg_.sparsity <= 0.0f || cfg_.sparsity >= 1.0f) {
    throw std::invalid_argument("UnstructuredPruner: sparsity must be in (0, 1)");
  }
  UnstructuredResult result;
  result.accuracy_before = nn::evaluate(model, test_set);

  // Collect the weight params to mask.
  masks_.clear();
  model.net->visit([this](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      masks_.push_back({&conv->weight(), {}});
    } else if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      if (cfg_.include_linear) masks_.push_back({&lin->weight(), {}});
    }
  });

  // Global magnitude threshold at the sparsity quantile.
  std::vector<float> magnitudes;
  for (const MaskedParam& mp : masks_) {
    result.weights_total += mp.param->value.numel();
    for (int64_t i = 0; i < mp.param->value.numel(); ++i) {
      magnitudes.push_back(std::fabs(mp.param->value[i]));
    }
  }
  if (magnitudes.empty()) throw std::logic_error("UnstructuredPruner: no prunable weights");
  const auto k = static_cast<size_t>(
      static_cast<double>(cfg_.sparsity) * static_cast<double>(magnitudes.size() - 1));
  std::nth_element(magnitudes.begin(), magnitudes.begin() + static_cast<int64_t>(k),
                   magnitudes.end());
  const float threshold = magnitudes[k];

  for (MaskedParam& mp : masks_) {
    mp.masked.assign(static_cast<size_t>(mp.param->value.numel()), 0);
    for (int64_t i = 0; i < mp.param->value.numel(); ++i) {
      if (std::fabs(mp.param->value[i]) <= threshold) {
        mp.masked[static_cast<size_t>(i)] = 1;
        ++result.weights_masked;
      }
    }
  }
  apply_masks();

  nn::TrainConfig ft = cfg_.finetune;
  ft.after_step = [this] { apply_masks(); };
  nn::train(model, train_set, ft);
  apply_masks();

  result.accuracy_after = nn::evaluate(model, test_set);
  return result;
}

void UnstructuredPruner::apply_masks() const {
  for (const MaskedParam& mp : masks_) {
    for (int64_t i = 0; i < mp.param->value.numel(); ++i) {
      if (mp.masked[static_cast<size_t>(i)] != 0) mp.param->value[i] = 0.0f;
    }
  }
}

}  // namespace capr::baselines
