// Adapts a baseline Criterion to the graph-driven PruneStrategy
// interface. Criteria score model.units positionally; the adapter keeps
// only the scores of units the graph admits as prunable, which is how
// baselines inherit the residual-constraint filter (a criterion can no
// longer nominate a filter the analyzer would refuse).
#pragma once

#include <memory>

#include "baselines/criterion.h"
#include "strategy/strategy.h"

namespace capr::baselines {

class CriterionStrategy final : public strategy::PruneStrategy {
 public:
  /// Non-owning: `criterion` must outlive the strategy.
  explicit CriterionStrategy(Criterion& criterion) : criterion_(&criterion) {}

  /// Owning: the tournament roster uses this form.
  explicit CriterionStrategy(std::unique_ptr<Criterion> criterion)
      : owned_(std::move(criterion)), criterion_(owned_.get()) {}

  std::string name() const override { return criterion_->name(); }
  strategy::ScoreSet score(const strategy::StrategyContext& ctx) override;
  nn::Regularizer* train_regularizer() override { return criterion_->train_regularizer(); }

  Criterion& criterion() { return *criterion_; }

 private:
  std::unique_ptr<Criterion> owned_;
  Criterion* criterion_ = nullptr;
};

}  // namespace capr::baselines
