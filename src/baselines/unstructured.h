// Unstructured (individual-weight) magnitude pruning — the paper's
// Background comparator [9]: remove weights with small absolute values,
// regardless of structure.
//
// Unstructured pruning reaches higher sparsity than filter pruning but
// leaves an irregular weight matrix: the dense layer shapes (and hence
// dense-hardware FLOPs) are unchanged, which is exactly the paper's
// argument for structured pruning on systolic-array-like hardware. The
// report therefore distinguishes *sparsity* (weights zeroed) from
// *dense FLOPs reduction* (always 0 here).
#pragma once

#include <vector>

#include "nn/model.h"
#include "nn/trainer.h"

namespace capr::baselines {

struct UnstructuredConfig {
  /// Fraction of weights to zero, chosen by global magnitude threshold.
  float sparsity = 0.9f;
  /// Include linear layers (conv weights always participate).
  bool include_linear = true;
  /// Mask-respecting fine-tuning after pruning.
  nn::TrainConfig finetune{};
};

struct UnstructuredResult {
  float accuracy_before = 0.0f;
  float accuracy_after = 0.0f;
  int64_t weights_total = 0;
  int64_t weights_masked = 0;
  double achieved_sparsity() const {
    return weights_total ? static_cast<double>(weights_masked) / weights_total : 0.0;
  }
};

/// Applies global magnitude masking to `model` and fine-tunes with the
/// masks enforced after every optimizer step.
class UnstructuredPruner {
 public:
  explicit UnstructuredPruner(UnstructuredConfig cfg) : cfg_(cfg) {}

  UnstructuredResult run(nn::Model& model, const data::Dataset& train_set,
                         const data::Dataset& test_set);

  /// Re-zeroes all masked weights (exposed for tests).
  void apply_masks() const;

 private:
  UnstructuredConfig cfg_;
  /// Masked positions per parameter (parallel to the masked Param set).
  struct MaskedParam {
    nn::Param* param;
    std::vector<uint8_t> masked;  // 1 = forced to zero
  };
  std::vector<MaskedParam> masks_;
};

}  // namespace capr::baselines
