// Weight-magnitude criteria.
#pragma once

#include "baselines/criterion.h"

namespace capr::baselines {

/// L1-norm filter pruning (Li et al., "Pruning Filters for Efficient
/// ConvNets", ICLR 2017 — paper ref [23]): importance of a filter is the
/// sum of absolute values of its weights.
class L1Criterion final : public Criterion {
 public:
  L1Criterion() = default;
  std::string name() const override { return "L1"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;
};

/// L2 (sum of square roots in [13]'s terminology normalised to the
/// common L2 form) filter norm; used as the in-group norm by DepGraph.
class L2Criterion final : public Criterion {
 public:
  L2Criterion() = default;
  std::string name() const override { return "L2"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;
};

/// DepGraph (Fang et al., CVPR 2023 — paper ref [13]): group pruning on
/// the channel-dependency graph. With full grouping the importance of
/// filter c aggregates the norms of ALL coupled parameters — the conv's
/// out-channel, the following BatchNorm's affine pair, and every
/// consumer's in-channel slice. With no grouping only the producing
/// conv's out-channel norm is used.
class DepGraphCriterion final : public Criterion {
 public:
  explicit DepGraphCriterion(bool full_grouping) : full_grouping_(full_grouping) {}
  std::string name() const override {
    return full_grouping_ ? "DepGraph-FG" : "DepGraph-NG";
  }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;

 private:
  bool full_grouping_;
};

}  // namespace capr::baselines
