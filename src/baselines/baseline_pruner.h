// Iterative prune/fine-tune driver for any baseline Criterion.
//
// Thin facade over strategy::run_strategy: the criterion is adapted to
// the graph-driven PruneStrategy interface (CriterionStrategy) and run
// through the SAME loop, selection engine and certification path as the
// class-aware method and every tournament entrant — Fig. 6's comparison
// is apples-to-apples by construction.
#pragma once

#include <string>

#include "baselines/criterion.h"
#include "core/strategy.h"
#include "flops/flops.h"
#include "nn/trainer.h"

namespace capr::baselines {

/// Protection knobs inherit from core::SelectionLimits — one struct for
/// every method, so baselines cannot run under different caps/floors
/// than the class-aware path.
struct BaselinePrunerConfig : core::SelectionLimits {
  int max_iterations = 20;
  float max_accuracy_drop = 0.02f;
  nn::TrainConfig finetune{};
};

struct BaselineRunResult {
  std::string method;
  float original_accuracy = 0.0f;
  float final_accuracy = 0.0f;
  flops::PruningReport report;
  int iterations_run = 0;
  std::string stop_reason;
};

class BaselinePruner {
 public:
  explicit BaselinePruner(BaselinePrunerConfig cfg) : cfg_(cfg) {}

  /// Prunes `model` in place using `criterion`. Fine-tuning uses the
  /// criterion's own regularizer when it provides one.
  BaselineRunResult run(nn::Model& model, Criterion& criterion,
                        const data::Dataset& train_set, const data::Dataset& test_set);

 private:
  BaselinePrunerConfig cfg_;
};

}  // namespace capr::baselines
