// Iterative prune/fine-tune driver for any baseline Criterion.
//
// Mirrors the ClassAwarePruner loop so Fig. 6's comparison runs every
// method through identical machinery: score -> remove the lowest-scoring
// fraction of filters -> fine-tune -> stop when the accuracy drop cannot
// be recovered or the iteration budget is exhausted.
#pragma once

#include <string>
#include <vector>

#include "baselines/criterion.h"
#include "flops/flops.h"
#include "nn/trainer.h"

namespace capr::baselines {

struct BaselinePrunerConfig {
  /// Fraction of remaining filters removed per iteration (network-wide).
  float fraction_per_iter = 0.10f;
  /// Per-layer cap per iteration, mirroring PruneStrategyConfig so the
  /// Fig. 6 comparison gives every criterion the same protection against
  /// gutting a single thin layer in one step.
  float max_layer_fraction_per_iter = 0.5f;
  int max_iterations = 20;
  float max_accuracy_drop = 0.02f;
  int64_t min_filters_per_layer = 2;
  nn::TrainConfig finetune{};
};

struct BaselineRunResult {
  std::string method;
  float original_accuracy = 0.0f;
  float final_accuracy = 0.0f;
  flops::PruningReport report;
  int iterations_run = 0;
  std::string stop_reason;
};

class BaselinePruner {
 public:
  explicit BaselinePruner(BaselinePrunerConfig cfg) : cfg_(std::move(cfg)) {}

  /// Prunes `model` in place using `criterion`. Fine-tuning uses the
  /// criterion's own regularizer when it provides one.
  BaselineRunResult run(nn::Model& model, Criterion& criterion,
                        const data::Dataset& train_set, const data::Dataset& test_set);

 private:
  BaselinePrunerConfig cfg_;
};

}  // namespace capr::baselines
