#include "baselines/strategy_adapter.h"

namespace capr::baselines {

strategy::ScoreSet CriterionStrategy::score(const strategy::StrategyContext& ctx) {
  const UnitFilterScores scores = criterion_->score(ctx.model, ctx.train_set);
  strategy::ScoreSet out;
  out.num_classes = ctx.train_set.num_classes();
  for (const strategy::PrunableGroup& pg : strategy::prunable_groups(ctx)) {
    strategy::GroupScores g{pg.unit_index, pg.group->name, scores.at(pg.unit_index)};
    out.groups.push_back(std::move(g));
  }
  return out;
}

}  // namespace capr::baselines
