#include "baselines/criterion.h"

#include <stdexcept>

namespace capr::baselines {

data::Batch balanced_sample(const data::Dataset& set, int64_t per_class, uint64_t seed) {
  if (per_class <= 0) throw std::invalid_argument("balanced_sample: per_class must be > 0");
  Rng rng(seed);
  std::vector<int64_t> indices;
  for (int64_t cls = 0; cls < set.num_classes(); ++cls) {
    std::vector<int64_t> pool = set.indices_of_class(cls);
    rng.shuffle(pool);
    const int64_t take = std::min<int64_t>(per_class, static_cast<int64_t>(pool.size()));
    indices.insert(indices.end(), pool.begin(), pool.begin() + take);
  }
  if (indices.empty()) throw std::invalid_argument("balanced_sample: empty dataset");
  return set.gather(indices);
}

}  // namespace capr::baselines
