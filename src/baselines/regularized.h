// Criteria that pair a scoring rule with a training-time regularizer:
// SSS (scaling-factor sparsity), OrthConv (orthogonality), and the
// TPP-style trainability-preserving proxy.
#pragma once

#include <memory>

#include "baselines/criterion.h"
#include "core/modified_loss.h"

namespace capr::baselines {

/// SSS (Huang & Wang, ECCV 2018 — paper ref [27]): sparse structure
/// selection via per-structure scaling factors trained with an L1
/// sparsity term. We realise the scaling factors as the BatchNorm gammas
/// of each prunable conv (the standard scaling-factor formulation);
/// filters whose |gamma| is driven to zero are removed.
class SSSCriterion final : public Criterion {
 public:
  explicit SSSCriterion(float sparsity_lambda = 1e-3f);
  std::string name() const override { return "SSS"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;
  nn::Regularizer* train_regularizer() override { return reg_.get(); }

 private:
  class GammaL1 final : public nn::Regularizer {
   public:
    explicit GammaL1(float lambda) : lambda_(lambda) {}
    float apply(nn::Model& model) override;

   private:
    float lambda_;
  };
  std::unique_ptr<GammaL1> reg_;
};

/// OrthConv (Wang et al., CVPR 2020 — paper ref [31]): trains with the
/// filter-orthogonality penalty (no L1), then prunes by filter L1 norm.
/// This is the "orthogonality improves accuracy" comparator of Fig. 6.
class OrthConvCriterion final : public Criterion {
 public:
  explicit OrthConvCriterion(float lambda_orth = 1e-2f);
  std::string name() const override { return "OrthConv"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;
  nn::Regularizer* train_regularizer() override { return reg_.get(); }

 private:
  std::unique_ptr<core::ModifiedLoss> reg_;
};

/// TPP-style criterion (Wang & Fu, ICLR 2023 — paper ref [18]):
/// trainability-preserving pruning protects filters whose removal would
/// damage gradient flow. Proxy used here: importance of a filter is
/// ||w_f||_2 * ||dL/dw_f||_2 averaged over a scoring batch — filters
/// with both small weights and small gradient traffic are the safest to
/// remove. (The original adds a transplant regularizer; the ranking
/// behaviour is what the Fig. 6 comparison needs.)
class TPPCriterion final : public Criterion {
 public:
  explicit TPPCriterion(int64_t images_per_class = 4, uint64_t seed = 37)
      : images_per_class_(images_per_class), seed_(seed) {}
  std::string name() const override { return "TPP"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;

 private:
  int64_t images_per_class_;
  uint64_t seed_;
};

}  // namespace capr::baselines
