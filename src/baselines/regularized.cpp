#include "baselines/regularized.h"

#include <cmath>

#include "nn/loss.h"
#include "nn/optim.h"

namespace capr::baselines {

SSSCriterion::SSSCriterion(float sparsity_lambda)
    : reg_(std::make_unique<GammaL1>(sparsity_lambda)) {}

float SSSCriterion::GammaL1::apply(nn::Model& model) {
  double penalty = 0.0;
  for (nn::PrunableUnit& u : model.units) {
    if (u.bn == nullptr) continue;
    Tensor& g = u.bn->gamma().value;
    Tensor& grad = u.bn->gamma().grad;
    for (int64_t i = 0; i < g.numel(); ++i) {
      penalty += std::fabs(g[i]);
      if (g[i] > 0.0f) {
        grad[i] += lambda_;
      } else if (g[i] < 0.0f) {
        grad[i] -= lambda_;
      }
    }
  }
  return static_cast<float>(static_cast<double>(lambda_) * penalty);
}

UnitFilterScores SSSCriterion::score(nn::Model& model, const data::Dataset&) {
  UnitFilterScores out;
  for (nn::PrunableUnit& u : model.units) {
    std::vector<float> s(static_cast<size_t>(u.conv->out_channels()), 1.0f);
    if (u.bn != nullptr) {
      for (int64_t f = 0; f < u.bn->channels(); ++f) {
        s[static_cast<size_t>(f)] = std::fabs(u.bn->gamma().value[f]);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

OrthConvCriterion::OrthConvCriterion(float lambda_orth) {
  core::ModifiedLossConfig cfg;
  cfg.lambda1 = 0.0f;  // orthogonality only
  cfg.lambda2 = lambda_orth;
  reg_ = std::make_unique<core::ModifiedLoss>(cfg);
}

UnitFilterScores OrthConvCriterion::score(nn::Model& model, const data::Dataset&) {
  UnitFilterScores out;
  for (const nn::PrunableUnit& u : model.units) {
    const int64_t fsz = u.conv->in_channels() * u.conv->kernel() * u.conv->kernel();
    std::vector<float> s(static_cast<size_t>(u.conv->out_channels()));
    for (int64_t f = 0; f < u.conv->out_channels(); ++f) {
      const float* w = u.conv->weight().value.data() + f * fsz;
      double acc = 0.0;
      for (int64_t i = 0; i < fsz; ++i) acc += std::fabs(w[i]);
      s[static_cast<size_t>(f)] = static_cast<float>(acc);
    }
    out.push_back(std::move(s));
  }
  return out;
}

UnitFilterScores TPPCriterion::score(nn::Model& model, const data::Dataset& train_set) {
  const data::Batch batch = balanced_sample(train_set, images_per_class_, seed_);
  const std::vector<nn::Param*> params = model.params();
  nn::SGD::zero_grad(params);
  nn::SoftmaxCrossEntropy ce;
  const Tensor logits = model.forward(batch.images, /*training=*/false);
  ce.forward(logits, batch.labels);
  model.backward(ce.backward());

  UnitFilterScores out;
  for (const nn::PrunableUnit& u : model.units) {
    const int64_t fsz = u.conv->in_channels() * u.conv->kernel() * u.conv->kernel();
    std::vector<float> s(static_cast<size_t>(u.conv->out_channels()));
    for (int64_t f = 0; f < u.conv->out_channels(); ++f) {
      const float* w = u.conv->weight().value.data() + f * fsz;
      const float* g = u.conv->weight().grad.data() + f * fsz;
      double wn = 0.0, gn = 0.0;
      for (int64_t i = 0; i < fsz; ++i) {
        wn += static_cast<double>(w[i]) * w[i];
        gn += static_cast<double>(g[i]) * g[i];
      }
      s[static_cast<size_t>(f)] = static_cast<float>(std::sqrt(wn) * std::sqrt(gn));
    }
    out.push_back(std::move(s));
  }
  nn::SGD::zero_grad(params);
  return out;
}

}  // namespace capr::baselines
