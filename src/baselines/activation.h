// Activation-driven criteria: APoZ, HRank, Taylor-FO.
#pragma once

#include "baselines/criterion.h"

namespace capr::baselines {

/// APoZ (Hu et al., "Network Trimming", 2016 — paper ref [24]): filters
/// whose post-ReLU feature maps are mostly zero are unimportant. Score is
/// 1 - (average percentage of zeros).
class APoZCriterion final : public Criterion {
 public:
  explicit APoZCriterion(int64_t images_per_class = 4, uint64_t seed = 31)
      : images_per_class_(images_per_class), seed_(seed) {}
  std::string name() const override { return "APoZ"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;

 private:
  int64_t images_per_class_;
  uint64_t seed_;
};

/// HRank (Lin et al., CVPR 2020 — paper ref [19]): filters producing
/// low-rank feature maps carry less information. Score is the average
/// numerical rank of the filter's [H, W] feature map over sample images
/// (rank via row-reduction with a relative tolerance — equivalent to the
/// SVD rank the paper computes).
class HRankCriterion final : public Criterion {
 public:
  explicit HRankCriterion(int64_t images_per_class = 4, uint64_t seed = 33,
                          float rel_tol = 1e-4f)
      : images_per_class_(images_per_class), seed_(seed), rel_tol_(rel_tol) {}
  std::string name() const override { return "HRank"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;

 private:
  int64_t images_per_class_;
  uint64_t seed_;
  float rel_tol_;
};

/// First-order Taylor filter importance (Molchanov et al., ICLR 2017 /
/// CVPR 2019 — paper refs [25][28]): |sum over the feature map of
/// a * dL/da|, averaged over a scoring batch. Unlike the class-aware
/// criterion this mixes all classes into a single expectation.
class TaylorFOCriterion final : public Criterion {
 public:
  explicit TaylorFOCriterion(int64_t images_per_class = 4, uint64_t seed = 35)
      : images_per_class_(images_per_class), seed_(seed) {}
  std::string name() const override { return "Taylor-FO"; }
  UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) override;

 private:
  int64_t images_per_class_;
  uint64_t seed_;
};

/// Numerical rank of a row-major [h, w] matrix by Gaussian elimination
/// with partial pivoting; pivots below rel_tol * max|entry| count as zero.
int64_t matrix_rank(const float* data, int64_t h, int64_t w, float rel_tol);

}  // namespace capr::baselines
