#include "baselines/baseline_pruner.h"

#include "baselines/strategy_adapter.h"
#include "strategy/runner.h"

namespace capr::baselines {

BaselineRunResult BaselinePruner::run(nn::Model& model, Criterion& criterion,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test_set) {
  CriterionStrategy strat(criterion);
  strategy::StrategyRunConfig rcfg;
  rcfg.limits = cfg_;
  rcfg.max_iterations = cfg_.max_iterations;
  rcfg.max_accuracy_drop = cfg_.max_accuracy_drop;
  rcfg.finetune = cfg_.finetune;
  const strategy::StrategyRunResult r =
      strategy::run_strategy(model, strat, train_set, test_set, rcfg);

  BaselineRunResult result;
  result.method = r.method;
  result.original_accuracy = r.original_accuracy;
  result.final_accuracy = r.final_accuracy;
  result.report = r.report;
  result.iterations_run = r.iterations_run;
  result.stop_reason = r.stop_reason;
  return result;
}

}  // namespace capr::baselines
