#include "baselines/baseline_pruner.h"

#include <algorithm>
#include <stdexcept>

#include "core/surgeon.h"

namespace capr::baselines {
namespace {

struct Candidate {
  size_t unit;
  int64_t filter;
  float score;
};

/// Lowest-scoring `fraction` of all filters, respecting the per-layer
/// floor and the per-layer fraction cap.
std::vector<core::UnitSelection> select_lowest(const UnitFilterScores& scores, float fraction,
                                               float layer_fraction, int64_t min_per_layer) {
  std::vector<Candidate> candidates;
  int64_t total = 0;
  for (size_t u = 0; u < scores.size(); ++u) {
    const int64_t f = static_cast<int64_t>(scores[u].size());
    total += f;
    const auto layer_cap =
        static_cast<int64_t>(static_cast<double>(f) * layer_fraction);
    const int64_t removable = std::min(f - min_per_layer, layer_cap);
    if (removable <= 0) continue;
    std::vector<int64_t> order(static_cast<size_t>(f));
    for (int64_t i = 0; i < f; ++i) order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&scores, u](int64_t a, int64_t b) {
      return scores[u][static_cast<size_t>(a)] < scores[u][static_cast<size_t>(b)];
    });
    for (int64_t k = 0; k < removable; ++k) {
      const int64_t filter = order[static_cast<size_t>(k)];
      candidates.push_back({u, filter, scores[u][static_cast<size_t>(filter)]});
    }
  }
  const auto cap = static_cast<int64_t>(static_cast<double>(total) * fraction);
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
  if (static_cast<int64_t>(candidates.size()) > cap) {
    candidates.resize(static_cast<size_t>(std::max<int64_t>(cap, 0)));
  }

  std::vector<core::UnitSelection> out;
  for (size_t u = 0; u < scores.size(); ++u) {
    core::UnitSelection sel;
    sel.unit_index = u;
    for (const Candidate& c : candidates) {
      if (c.unit == u) sel.filters.push_back(c.filter);
    }
    if (!sel.filters.empty()) {
      std::sort(sel.filters.begin(), sel.filters.end());
      out.push_back(std::move(sel));
    }
  }
  return out;
}

}  // namespace

BaselineRunResult BaselinePruner::run(nn::Model& model, Criterion& criterion,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test_set) {
  if (cfg_.fraction_per_iter <= 0.0f || cfg_.fraction_per_iter > 1.0f) {
    throw std::invalid_argument("BaselinePruner: fraction_per_iter must be in (0, 1]");
  }
  BaselineRunResult result;
  result.method = criterion.name();
  const flops::ModelCost cost_before = flops::count(model);
  result.original_accuracy = nn::evaluate(model, test_set);
  result.stop_reason = "max iterations reached";

  float accuracy = result.original_accuracy;
  for (int iter = 0; iter < cfg_.max_iterations; ++iter) {
    const UnitFilterScores scores = criterion.score(model, train_set);
    const auto selection = select_lowest(scores, cfg_.fraction_per_iter,
                                         cfg_.max_layer_fraction_per_iter,
                                         cfg_.min_filters_per_layer);
    if (selection.empty()) {
      result.stop_reason = "no prunable filters remain";
      break;
    }
    core::apply_selection(model, selection);

    nn::TrainConfig ft = cfg_.finetune;
    ft.loader_seed = cfg_.finetune.loader_seed + static_cast<uint64_t>(iter) + 1;
    nn::train(model, train_set, ft, criterion.train_regularizer());
    accuracy = nn::evaluate(model, test_set);
    result.iterations_run = iter + 1;

    if (result.original_accuracy - accuracy > cfg_.max_accuracy_drop) {
      result.stop_reason = "accuracy drop not recovered by fine-tuning";
      break;
    }
  }

  result.final_accuracy = accuracy;
  result.report = flops::compare(cost_before, flops::count(model));
  return result;
}

}  // namespace capr::baselines
