// Common interface for baseline filter-importance criteria (paper Fig. 6
// comparison set). Each criterion scores every filter of every
// PrunableUnit; higher scores mean more important. The BaselinePruner
// drives any criterion through the same iterative prune/fine-tune loop
// so the comparison against class-aware pruning is apples-to-apples.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace capr::baselines {

/// Per-unit, per-filter importance scores: scores[u][f].
using UnitFilterScores = std::vector<std::vector<float>>;

class Criterion {
 public:
  virtual ~Criterion() = default;
  Criterion(const Criterion&) = delete;
  Criterion& operator=(const Criterion&) = delete;

  /// Human-readable method name, e.g. "L1" or "HRank".
  virtual std::string name() const = 0;

  /// Scores all prunable units. Data-driven criteria sample from
  /// `train_set`; weight-only criteria ignore it.
  virtual UnitFilterScores score(nn::Model& model, const data::Dataset& train_set) = 0;

  /// Regularizer to use during (re)training, or nullptr. SSS returns its
  /// scaling-factor sparsity term; OrthConv its orthogonality term.
  virtual nn::Regularizer* train_regularizer() { return nullptr; }

 protected:
  Criterion() = default;
};

/// Samples a scoring batch with a balanced number of images per class.
/// Lives in data:: (the strategy library shares it); aliased here for
/// the criteria and existing callers.
using data::balanced_sample;

}  // namespace capr::baselines
