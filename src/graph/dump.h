// Machine-readable ModuleGraph dumps.
//
// to_json emits the deterministic "capr-module-graph-v1" document the
// golden topology tests and the CI drift gate pin: nodes (id, path,
// kind, name, shapes, param counts, edges, conv/linear attrs) and
// coupling groups, in graph order. Nothing volatile (pointers, weights,
// timestamps) enters the document, so two builds of the same
// architecture are bitwise identical.
//
// to_dot renders the same structure as Graphviz for eyeballing
// (capr-analyze --dump-dot).
#pragma once

#include <string>

#include "graph/graph.h"

namespace capr::graph {

/// Pretty-printed JSON, trailing newline included. `arch` is recorded
/// verbatim in the document ("" when unknown). Ill-formed graphs dump
/// their partial node list plus an "error" object.
std::string to_json(const ModuleGraph& g, const std::string& arch = "");

/// Graphviz digraph of nodes and data-flow edges; producers of prunable
/// coupling groups are highlighted, constrained producers marked.
std::string to_dot(const ModuleGraph& g, const std::string& arch = "");

}  // namespace capr::graph
