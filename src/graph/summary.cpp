// nn::summary rendered from the ModuleGraph.
//
// The table rows are exactly the graph's nodes in order (one row per
// primitive layer plus the synthetic ".add" of each residual block), so
// the summary can never drift from what the other graph consumers see.
#include "nn/summary.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "graph/graph.h"

namespace capr::nn {

std::string summary(const Model& model) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  if (!g.ok()) {
    throw std::logic_error("summary: " + g.error()->format());
  }

  struct Row {
    std::string name, kind, shape;
    int64_t params;
  };
  std::vector<Row> rows;
  rows.reserve(g.nodes().size());
  for (const graph::Node& n : g.nodes()) {
    rows.push_back({n.name.empty() ? "(anonymous)" : n.name, graph::to_string(n.kind),
                    to_string(n.out_shape), n.params});
  }

  size_t wname = 5, wkind = 4, wshape = 12;
  for (const Row& r : rows) {
    wname = std::max(wname, r.name.size());
    wkind = std::max(wkind, r.kind.size());
    wshape = std::max(wshape, r.shape.size());
  }
  std::ostringstream os;
  os << model.arch << " (input " << to_string(model.input_shape) << ", "
     << model.num_classes << " classes)\n";
  os << std::left << std::setw(static_cast<int>(wname) + 2) << "layer"
     << std::setw(static_cast<int>(wkind) + 2) << "kind"
     << std::setw(static_cast<int>(wshape) + 2) << "output shape"
     << "params\n";
  os << std::string(wname + wkind + wshape + 14, '-') << '\n';
  int64_t total = 0;
  for (const Row& r : rows) {
    os << std::left << std::setw(static_cast<int>(wname) + 2) << r.name
       << std::setw(static_cast<int>(wkind) + 2) << r.kind
       << std::setw(static_cast<int>(wshape) + 2) << r.shape << r.params << '\n';
    total += r.params;
  }
  os << std::string(wname + wkind + wshape + 14, '-') << '\n';
  os << "total parameters: " << total << '\n';
  os << "prunable units  : " << model.units.size() << " (";
  int64_t filters = 0;
  for (const PrunableUnit& u : model.units) filters += u.conv->out_channels();
  os << filters << " filters)\n";
  return os.str();
}

}  // namespace capr::nn
