#include "graph/graph.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace capr::graph {

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kConv2d: return "conv2d";
    case Kind::kBatchNorm2d: return "batchnorm2d";
    case Kind::kReLU: return "relu";
    case Kind::kLeakyReLU: return "leakyrelu";
    case Kind::kDropout: return "dropout";
    case Kind::kMaxPool2d: return "maxpool2d";
    case Kind::kAvgPool2d: return "avgpool2d";
    case Kind::kGlobalAvgPool: return "gavgpool";
    case Kind::kFlatten: return "flatten";
    case Kind::kLinear: return "linear";
    case Kind::kAdd: return "add";
  }
  return "unknown";
}

std::string GraphError::where() const {
  std::string out = "layer " + path + " (" + kind;
  if (!name.empty()) out += " '" + name + "'";
  out += ")";
  return out;
}

std::string GraphError::format() const { return where() + ": " + message; }

namespace {

int64_t param_count(const nn::Layer& layer) {
  int64_t n = 0;
  for (const nn::Param* p : layer.params()) n += p->value.numel();
  return n;
}

}  // namespace

/// Single-pass walk replicating the depgraph/shape-inference semantics:
/// validates every edge, materializes nodes, and tracks the "open"
/// channel producer to record coupling groups.
struct Builder {
  ModuleGraph g;
  int64_t position = 0;          // flattened top-level position
  NodeId prev = kNoNode;         // data-flow predecessor
  Shape shape;                   // current activation shape (no batch)
  int64_t spatial_per_channel = 1;  // features per channel if flattened
  bool collapsed = false;        // a Flatten/GAP has run since the conv
  bool failed = false;

  CouplingGroup pending;  // valid iff has_pending
  bool has_pending = false;

  void fail(const std::string& path, const char* kind, const std::string& name,
            GraphError::Code code, std::string message) {
    GraphError err;
    err.code = code;
    err.node = static_cast<NodeId>(g.nodes_.size());
    err.path = path;
    err.kind = kind;
    err.name = name;
    err.message = std::move(message);
    g.error_ = std::move(err);
    failed = true;
  }

  NodeId add_node(Kind kind, const std::string& path, const nn::Layer* layer,
                  const Shape& in, Shape out, std::vector<NodeId> inputs) {
    Node n;
    n.id = static_cast<NodeId>(g.nodes_.size());
    n.kind = kind;
    n.path = path;
    n.name = layer != nullptr ? layer->name() : std::string();
    n.layer = layer;
    n.in_shape = in;
    n.out_shape = std::move(out);
    n.params = layer != nullptr ? param_count(*layer) : 0;
    for (NodeId src : inputs) {
      if (src == kNoNode) continue;
      n.inputs.push_back(src);
      g.nodes_[static_cast<size_t>(src)].outputs.push_back(n.id);
    }
    if (auto* conv = dynamic_cast<const nn::Conv2d*>(layer)) {
      n.conv = ConvAttrs{conv->in_channels(), conv->out_channels(), conv->kernel(),
                         conv->stride(),      conv->padding(),      conv->has_bias()};
    } else if (auto* lin = dynamic_cast<const nn::Linear*>(layer)) {
      n.linear = LinearAttrs{lin->in_features(), lin->out_features()};
    }
    g.nodes_.push_back(std::move(n));
    return g.nodes_.back().id;
  }

  /// Closes the open producer group with one more consumer.
  void finalize_pending(GroupConsumer consumer) {
    if (!has_pending) return;
    pending.consumers.push_back(consumer);
    g.groups_.push_back(std::move(pending));
    pending = CouplingGroup{};
    has_pending = false;
  }

  void open_pending(NodeId producer, NodeId bn, std::string name, bool constrained) {
    pending = CouplingGroup{};
    pending.name = std::move(name);
    pending.producer = producer;
    pending.bn = bn;
    pending.residual_constrained = constrained;
    has_pending = true;
  }

  /// Validates and materializes one conv fed by `in` from `src`.
  NodeId conv_node(const std::string& path, const nn::Conv2d& conv, const Shape& in,
                   NodeId src) {
    if (in.size() != 3) {
      fail(path, "conv2d", conv.name(), GraphError::Code::kShapeMismatch,
           "expects rank-3 [C,H,W] input, producer yields " + capr::to_string(in));
      return kNoNode;
    }
    if (in[0] != conv.in_channels()) {
      fail(path, "conv2d", conv.name(), GraphError::Code::kShapeMismatch,
           "expects C_in=" + std::to_string(conv.in_channels()) + ", producer yields " +
               std::to_string(in[0]));
      return kNoNode;
    }
    const int64_t oh = (in[1] + 2 * conv.padding() - conv.kernel()) / conv.stride() + 1;
    const int64_t ow = (in[2] + 2 * conv.padding() - conv.kernel()) / conv.stride() + 1;
    if (oh <= 0 || ow <= 0) {
      std::ostringstream os;
      os << "kernel " << conv.kernel() << " stride " << conv.stride() << " padding "
         << conv.padding() << " does not fit input " << capr::to_string(in);
      fail(path, "conv2d", conv.name(), GraphError::Code::kShapeMismatch, os.str());
      return kNoNode;
    }
    return add_node(Kind::kConv2d, path, &conv, in, {conv.out_channels(), oh, ow}, {src});
  }

  NodeId bn_node(const std::string& path, const nn::BatchNorm2d& bn, const Shape& in,
                 NodeId src) {
    if (in.size() != 3 || in[0] != bn.channels()) {
      fail(path, "batchnorm2d", bn.name(), GraphError::Code::kShapeMismatch,
           "expects " + std::to_string(bn.channels()) + " channels, producer yields " +
               capr::to_string(in));
      return kNoNode;
    }
    return add_node(Kind::kBatchNorm2d, path, &bn, in, in, {src});
  }

  /// A residual block: one flattened position, expanded into its
  /// primitive nodes plus the synthetic add.
  void block(const std::string& path, const nn::BasicBlock& blk) {
    if (shape.size() != 3 || shape[0] != blk.conv1().in_channels()) {
      fail(path, "basicblock", blk.name(), GraphError::Code::kShapeMismatch,
           "residual block expects " + std::to_string(blk.conv1().in_channels()) +
               " input channels, producer yields " + capr::to_string(shape));
      return;
    }
    const NodeId entry = prev;
    const Shape in = shape;

    const NodeId c1 = conv_node(path + ".conv1", blk.conv1(), in, entry);
    if (failed) return;
    Shape main = g.nodes_[static_cast<size_t>(c1)].out_shape;
    const NodeId b1 = bn_node(path + ".bn1", blk.bn1(), main, c1);
    if (failed) return;
    const NodeId r1 = add_node(Kind::kReLU, path + ".relu1", &blk.relu1(), main, main, {b1});
    const NodeId c2 = conv_node(path + ".conv2", blk.conv2(), main, r1);
    if (failed) return;
    main = g.nodes_[static_cast<size_t>(c2)].out_shape;
    const NodeId b2 = bn_node(path + ".bn2", blk.bn2(), main, c2);
    if (failed) return;

    Shape shortcut = in;
    NodeId shortcut_src = entry;
    NodeId p = kNoNode;
    NodeId pb = kNoNode;
    if (blk.has_projection()) {
      p = conv_node(path + ".proj", *blk.proj_conv(), in, entry);
      if (failed) return;
      shortcut = g.nodes_[static_cast<size_t>(p)].out_shape;
      pb = bn_node(path + ".proj_bn", *blk.proj_bn(), shortcut, p);
      if (failed) return;
      shortcut_src = pb;
    }
    if (main != shortcut) {
      fail(path, "basicblock", blk.name(), GraphError::Code::kResidualShape,
           "residual add: main path yields " + capr::to_string(main) + ", shortcut yields " +
               capr::to_string(shortcut));
      return;
    }
    const NodeId sum =
        add_node(Kind::kAdd, path + ".add", nullptr, main, main, {b2, shortcut_src});
    g.nodes_[static_cast<size_t>(sum)].name = blk.name() + ".add";
    const NodeId rout =
        add_node(Kind::kReLU, path + ".relu_out", &blk.relu_out(), main, main, {sum});

    // Incumbent producer feeds conv1 and (via the shortcut) the residual
    // add. With an identity shortcut its channel count is pinned by the
    // add -> constrained. With a projection shortcut its channels only
    // enter conv1 and proj_conv as inputs -> a legal two-consumer group.
    if (has_pending) {
      pending.consumers.push_back(GroupConsumer{c1, 1});
      if (blk.has_projection()) {
        pending.consumers.push_back(GroupConsumer{p, 1});
      } else {
        pending.residual_constrained = true;
      }
      g.groups_.push_back(std::move(pending));
      pending = CouplingGroup{};
      has_pending = false;
    }
    // conv1 is freely prunable into conv2 (the paper's ResNet rule).
    CouplingGroup g1;
    g1.name = blk.conv1().name().empty() ? blk.name() + ".conv1" : blk.conv1().name();
    g1.producer = c1;
    g1.bn = b1;
    g1.score_point = r1;
    g1.consumers.push_back(GroupConsumer{c2, 1});
    g.groups_.push_back(std::move(g1));
    // The projection conv feeds the add directly: constrained, no
    // channel consumers of its own.
    if (p != kNoNode) {
      CouplingGroup gp;
      gp.name = blk.proj_conv()->name().empty() ? blk.name() + ".proj"
                                                : blk.proj_conv()->name();
      gp.producer = p;
      gp.bn = pb;
      gp.residual_constrained = true;
      g.groups_.push_back(std::move(gp));
    }
    // conv2 becomes the open producer so downstream consumers resolve to
    // it — but the add pins its channel count, so the group stays
    // constrained whatever consumes it.
    open_pending(c2, b2,
                 blk.conv2().name().empty() ? blk.name() + ".conv2" : blk.conv2().name(),
                 /*constrained=*/true);

    shape = main;
    collapsed = false;
    spatial_per_channel = 1;
    prev = rout;
  }

  /// One primitive (non-composite) layer at a top-level position.
  void step(const std::string& path, const nn::Layer& layer) {
    if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
      const NodeId id = conv_node(path, *conv, shape, prev);
      if (failed) return;
      finalize_pending(GroupConsumer{id, 1});
      open_pending(id, kNoNode, conv->name(), /*constrained=*/false);
      shape = g.nodes_[static_cast<size_t>(id)].out_shape;
      collapsed = false;
      spatial_per_channel = 1;
      prev = id;
      return;
    }
    if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&layer)) {
      const NodeId id = bn_node(path, *bn, shape, prev);
      if (failed) return;
      if (has_pending && pending.bn == kNoNode &&
          bn->channels() == g.nodes_[static_cast<size_t>(pending.producer)].conv.out_channels) {
        pending.bn = id;
      }
      prev = id;
      return;
    }
    if (const auto* relu = dynamic_cast<const nn::ReLU*>(&layer)) {
      const NodeId id = add_node(Kind::kReLU, path, relu, shape, shape, {prev});
      if (has_pending && pending.score_point == kNoNode) pending.score_point = id;
      prev = id;
      return;
    }
    if (dynamic_cast<const nn::LeakyReLU*>(&layer) != nullptr) {
      prev = add_node(Kind::kLeakyReLU, path, &layer, shape, shape, {prev});
      return;
    }
    if (dynamic_cast<const nn::Dropout*>(&layer) != nullptr) {
      prev = add_node(Kind::kDropout, path, &layer, shape, shape, {prev});
      return;
    }
    if (dynamic_cast<const nn::MaxPool2d*>(&layer) != nullptr ||
        dynamic_cast<const nn::AvgPool2d*>(&layer) != nullptr) {
      const Kind kind = dynamic_cast<const nn::MaxPool2d*>(&layer) != nullptr
                            ? Kind::kMaxPool2d
                            : Kind::kAvgPool2d;
      // Pool geometry lives behind output_shape; its exceptions become
      // the error (the message already names window/input).
      try {
        Shape out = layer.output_shape(shape);
        prev = add_node(kind, path, &layer, shape, out, {prev});
        shape = std::move(out);
      } catch (const std::exception& e) {
        fail(path, to_string(kind), layer.name(), GraphError::Code::kShapeMismatch, e.what());
      }
      return;
    }
    if (dynamic_cast<const nn::GlobalAvgPool*>(&layer) != nullptr) {
      try {
        Shape out = layer.output_shape(shape);
        prev = add_node(Kind::kGlobalAvgPool, path, &layer, shape, out, {prev});
        shape = std::move(out);
        collapsed = true;
        spatial_per_channel = 1;
      } catch (const std::exception& e) {
        fail(path, "gavgpool", layer.name(), GraphError::Code::kShapeMismatch, e.what());
      }
      return;
    }
    if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr) {
      if (shape.size() == 3) spatial_per_channel = shape[1] * shape[2];
      Shape out{numel_of(shape)};
      prev = add_node(Kind::kFlatten, path, &layer, shape, out, {prev});
      shape = std::move(out);
      collapsed = true;
      return;
    }
    if (const auto* lin = dynamic_cast<const nn::Linear*>(&layer)) {
      if (shape.size() == 3) {
        fail(path, "linear", lin->name(), GraphError::Code::kShapeMismatch,
             "applied to spatial output " + capr::to_string(shape) + " without Flatten");
        return;
      }
      if (shape.size() != 1 || shape[0] != lin->in_features()) {
        fail(path, "linear", lin->name(), GraphError::Code::kShapeMismatch,
             "expects in_features=" + std::to_string(lin->in_features()) +
                 ", producer yields " + capr::to_string(shape));
        return;
      }
      const NodeId id = add_node(Kind::kLinear, path, lin, shape, {lin->out_features()}, {prev});
      finalize_pending(GroupConsumer{id, spatial_per_channel});
      shape = {lin->out_features()};
      collapsed = false;
      spatial_per_channel = 1;
      prev = id;
      return;
    }
    fail(path, layer.kind().c_str(), layer.name(), GraphError::Code::kUnknownLayer,
         "unsupported layer kind '" + layer.kind() + "'");
  }

  void walk(const nn::Sequential& seq) {
    for (size_t i = 0; i < seq.size() && !failed; ++i) {
      const nn::Layer& child = seq.child(i);
      if (const auto* nested = dynamic_cast<const nn::Sequential*>(&child)) {
        walk(*nested);  // containers are transparent to numbering
        continue;
      }
      const std::string path = std::to_string(position++);
      if (const auto* blk = dynamic_cast<const nn::BasicBlock*>(&child)) {
        block(path, *blk);
      } else {
        step(path, child);
      }
    }
  }
};

ModuleGraph ModuleGraph::build(const nn::Sequential& net, const Shape& input_shape) {
  Builder b;
  b.g.input_ = input_shape;
  b.shape = input_shape;
  b.walk(net);
  if (!b.failed) {
    // A producer never consumed (e.g. a trailing conv) stays recorded as
    // a consumer-less group: visible to queries, never prunable.
    if (b.has_pending) {
      b.g.groups_.push_back(std::move(b.pending));
      b.has_pending = false;
    }
    b.g.output_ = std::move(b.shape);
  }
  return std::move(b.g);
}

ModuleGraph ModuleGraph::build(const nn::Model& model) {
  if (model.net == nullptr) {
    throw std::invalid_argument("ModuleGraph: model has no layer graph (net == nullptr)");
  }
  return build(*model.net, model.input_shape);
}

const Node* ModuleGraph::find(const nn::Layer* layer) const {
  if (layer == nullptr) return nullptr;
  for (const Node& n : nodes_) {
    if (n.layer == layer) return &n;
  }
  return nullptr;
}

const CouplingGroup* ModuleGraph::group_for(const nn::Conv2d* conv) const {
  if (conv == nullptr) return nullptr;
  for (const CouplingGroup& g : groups_) {
    if (g.producer != kNoNode && node(g.producer).layer == conv) return &g;
  }
  return nullptr;
}

nn::PrunableUnit ModuleGraph::materialize(const CouplingGroup& group) const {
  nn::PrunableUnit u;
  u.name = group.name;
  u.conv = const_cast<nn::Conv2d*>(
      static_cast<const nn::Conv2d*>(node(group.producer).layer));
  if (group.bn != kNoNode) {
    u.bn = const_cast<nn::BatchNorm2d*>(
        static_cast<const nn::BatchNorm2d*>(node(group.bn).layer));
  }
  if (group.score_point != kNoNode) {
    u.score_point = const_cast<nn::Layer*>(node(group.score_point).layer);
  }
  for (const GroupConsumer& c : group.consumers) {
    const Node& n = node(c.node);
    nn::ConsumerRef ref;
    if (n.kind == Kind::kConv2d) {
      ref.conv = const_cast<nn::Conv2d*>(static_cast<const nn::Conv2d*>(n.layer));
    } else {
      ref.linear = const_cast<nn::Linear*>(static_cast<const nn::Linear*>(n.layer));
      ref.spatial = c.spatial;
    }
    u.consumers.push_back(ref);
  }
  return u;
}

std::vector<nn::PrunableUnit> ModuleGraph::prunable_units() const {
  std::vector<nn::PrunableUnit> units;
  for (const CouplingGroup& g : groups_) {
    if (g.residual_constrained || g.consumers.empty()) continue;
    units.push_back(materialize(g));
  }
  return units;
}

}  // namespace capr::graph
