// nn::derive_units / nn::annotate_model as ModuleGraph queries.
//
// The dependency walk itself lives in graph.cpp; this file only adapts
// the graph's coupling groups to the legacy interface declared in
// nn/depgraph.h: a flat list of PrunableUnits and a std::logic_error on
// graphs the analysis cannot prove safe.
#include "nn/depgraph.h"

#include <stdexcept>

#include "graph/graph.h"

namespace capr::nn {

std::vector<PrunableUnit> derive_units(const Sequential& net, const Shape& input_shape) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(net, input_shape);
  if (!g.ok()) {
    throw std::logic_error("derive_units: " + g.error()->format());
  }
  return g.prunable_units();
}

void annotate_model(Model& model) {
  model.units = derive_units(*model.net, model.input_shape);
}

}  // namespace capr::nn
