// ModuleGraph: the typed, immutable IR of a model's layer structure.
//
// Every subsystem that needs to reason about model structure — dependency
// derivation (nn/depgraph.h), shape inference and plan certification
// (src/analysis), FLOPs accounting (src/flops), pruning surgery
// (src/core/surgeon), model summaries (nn/summary.h) and checkpoint
// replay in serving (src/serve) — consumes this one graph instead of
// re-walking the Sequential tree with its own dynamic_cast chain.
//
// The graph is built once from a Model (or a bare Sequential plus input
// shape) and is immutable afterwards:
//
//   - Nodes are primitives (conv, bn, relu, pool, flatten, linear, ...)
//     plus one synthetic kAdd node per residual block. Each node carries
//     a Kind enum (no string dispatch), the resolved input/output
//     activation shape, its parameter count, and a stable NodeId. The
//     `path` ("7", "12.conv2", "12.add") names the node the way a
//     compiler names a source line; containers are transparent and a
//     BasicBlock occupies ONE flattened position.
//   - Edges (Node::inputs/outputs) carry data flow, including the
//     two-input residual add.
//   - CouplingGroups make channel-dependency structure first-class: the
//     producer conv, its attached BatchNorm and score-point ReLU, the
//     consumers of its output channels (with the Linear-after-Flatten
//     spatial factor), and whether a residual add pins the producer's
//     channel count (the paper's ResNet rule: only conv1 of each block
//     is prunable; conv2/projection and anything feeding an identity
//     shortcut are constrained).
//
// Building never throws on an ill-formed model: the walk stops at the
// first bad edge and records a GraphError naming the offending position,
// so analyzers can surface it as a diagnostic while derive_units turns
// it into the legacy std::logic_error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/model.h"

namespace capr::graph {

/// Node kinds. One per primitive layer (tag strings in to_string match
/// Layer::kind()) plus kAdd for the synthetic residual-add node.
enum class Kind {
  kConv2d,
  kBatchNorm2d,
  kReLU,
  kLeakyReLU,
  kDropout,
  kMaxPool2d,
  kAvgPool2d,
  kGlobalAvgPool,
  kFlatten,
  kLinear,
  kAdd,
};

/// Display tag: "conv2d", "batchnorm2d", ..., "add".
const char* to_string(Kind kind);

using NodeId = int64_t;
inline constexpr NodeId kNoNode = -1;

/// Conv geometry snapshot (valid iff Node::kind == kConv2d).
struct ConvAttrs {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 0;
  int64_t stride = 0;
  int64_t padding = 0;
  bool bias = false;
};

/// Linear geometry snapshot (valid iff Node::kind == kLinear).
struct LinearAttrs {
  int64_t in_features = 0;
  int64_t out_features = 0;
};

struct Node {
  NodeId id = kNoNode;
  Kind kind = Kind::kAdd;
  std::string path;  // stable flattened position: "7", "12.conv2", "12.add"
  std::string name;  // builder-assigned layer name ("" if anonymous)
  const nn::Layer* layer = nullptr;  // backing layer; null for kAdd
  Shape in_shape;
  Shape out_shape;
  int64_t params = 0;  // trainable parameter count of the backing layer
  std::vector<NodeId> inputs;
  std::vector<NodeId> outputs;
  ConvAttrs conv;
  LinearAttrs linear;
};

/// One consumer of a producer's output channels. For kLinear consumers,
/// `spatial` is the flattened features per channel at the Flatten point.
struct GroupConsumer {
  NodeId node = kNoNode;
  int64_t spatial = 1;
};

/// A channel-coupling group: the conv producing a channel dimension plus
/// everything structurally tied to it. Groups with residual_constrained
/// set (or with no consumers, e.g. a trailing conv) are not prunable.
struct CouplingGroup {
  std::string name;  // unit display name (producer's, with block fallback)
  NodeId producer = kNoNode;     // the conv node
  NodeId bn = kNoNode;           // BatchNorm on the producer output
  NodeId score_point = kNoNode;  // first ReLU after the producer
  std::vector<GroupConsumer> consumers;
  bool residual_constrained = false;  // channels pinned by a residual add
};

/// First ill-formed edge found while building; mirrors the analyzer's
/// graph-level diagnostic codes.
struct GraphError {
  enum class Code {
    kShapeMismatch,  // an edge's produced shape violates the consumer
    kUnknownLayer,   // a layer kind the walk cannot certify
    kResidualShape,  // residual add with unequal branch shapes
  };
  Code code = Code::kShapeMismatch;
  /// Stable id the offending node would have received (it is not added).
  NodeId node = kNoNode;
  std::string path;  // flattened position ("2", "5.conv2", or block path)
  std::string kind;  // display kind at that position
  std::string name;  // layer name ("" if anonymous)
  std::string message;

  /// "layer 7 (conv2d 'features.7')" — compiler-style location.
  std::string where() const;
  /// where() + ": " + message.
  std::string format() const;
};

class ModuleGraph {
 public:
  ModuleGraph() = default;

  /// Builds the graph by walking `net` with `input_shape` ([C, H, W]).
  /// Never throws on ill-formed structure; check ok()/error().
  static ModuleGraph build(const nn::Sequential& net, const Shape& input_shape);

  /// Convenience: model.net + model.input_shape. Throws
  /// std::invalid_argument only when the model has no layer graph.
  static ModuleGraph build(const nn::Model& model);

  bool ok() const { return !error_.has_value(); }
  const std::optional<GraphError>& error() const { return error_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<size_t>(id)); }
  const std::vector<CouplingGroup>& groups() const { return groups_; }

  const Shape& input_shape() const { return input_; }
  /// Final activation shape; meaningful only when ok().
  const Shape& output_shape() const { return output_; }

  /// The node backed by `layer`, or nullptr (kAdd nodes have no layer).
  const Node* find(const nn::Layer* layer) const;

  /// The coupling group whose producer is `conv`, or nullptr.
  const CouplingGroup* group_for(const nn::Conv2d* conv) const;

  /// Renders one coupling group as the mutation handle the surgeon
  /// consumes. The const_casts are sound: a PrunableUnit is inherently a
  /// handle for editing a model the caller owns mutably; the graph
  /// itself is never modified.
  nn::PrunableUnit materialize(const CouplingGroup& group) const;

  /// Graph-derived prunable units, in graph order: every group that is
  /// neither residual-constrained nor consumer-less. Equivalent to the
  /// builders' hand annotations (tests assert this on all 9 archs).
  std::vector<nn::PrunableUnit> prunable_units() const;

 private:
  friend struct Builder;

  std::vector<Node> nodes_;
  std::vector<CouplingGroup> groups_;
  Shape input_;
  Shape output_;
  std::optional<GraphError> error_;
};

}  // namespace capr::graph
