#include "graph/dump.h"

#include <cstdio>
#include <sstream>

namespace capr::graph {
namespace {

/// Minimal JSON string escaping; names here are identifiers, but a
/// custom layer name could contain anything.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void shape_json(std::ostringstream& os, const Shape& s) {
  os << '[';
  for (size_t i = 0; i < s.size(); ++i) {
    if (i != 0) os << ", ";
    os << s[i];
  }
  os << ']';
}

void ids_json(std::ostringstream& os, const std::vector<NodeId>& ids) {
  os << '[';
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << ", ";
    os << ids[i];
  }
  os << ']';
}

const char* error_code(GraphError::Code code) {
  switch (code) {
    case GraphError::Code::kShapeMismatch: return "shape-mismatch";
    case GraphError::Code::kUnknownLayer: return "unknown-layer";
    case GraphError::Code::kResidualShape: return "residual-shape";
  }
  return "unknown";
}

}  // namespace

std::string to_json(const ModuleGraph& g, const std::string& arch) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"capr-module-graph-v1\",\n";
  os << "  \"arch\": \"" << escape(arch) << "\",\n";
  os << "  \"input_shape\": ";
  shape_json(os, g.input_shape());
  os << ",\n  \"output_shape\": ";
  shape_json(os, g.output_shape());
  os << ",\n  \"nodes\": [\n";
  const auto& nodes = g.nodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    os << "    {\"id\": " << n.id << ", \"path\": \"" << escape(n.path) << "\", \"kind\": \""
       << to_string(n.kind) << "\", \"name\": \"" << escape(n.name) << "\", \"in\": ";
    shape_json(os, n.in_shape);
    os << ", \"out\": ";
    shape_json(os, n.out_shape);
    os << ", \"params\": " << n.params << ", \"inputs\": ";
    ids_json(os, n.inputs);
    os << ", \"outputs\": ";
    ids_json(os, n.outputs);
    if (n.kind == Kind::kConv2d) {
      os << ", \"attrs\": {\"in_channels\": " << n.conv.in_channels
         << ", \"out_channels\": " << n.conv.out_channels << ", \"kernel\": " << n.conv.kernel
         << ", \"stride\": " << n.conv.stride << ", \"padding\": " << n.conv.padding
         << ", \"bias\": " << (n.conv.bias ? "true" : "false") << "}";
    } else if (n.kind == Kind::kLinear) {
      os << ", \"attrs\": {\"in_features\": " << n.linear.in_features
         << ", \"out_features\": " << n.linear.out_features << "}";
    }
    os << "}" << (i + 1 < nodes.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"groups\": [\n";
  const auto& groups = g.groups();
  for (size_t i = 0; i < groups.size(); ++i) {
    const CouplingGroup& grp = groups[i];
    os << "    {\"name\": \"" << escape(grp.name) << "\", \"producer\": " << grp.producer
       << ", \"bn\": " << grp.bn << ", \"score_point\": " << grp.score_point
       << ", \"residual_constrained\": " << (grp.residual_constrained ? "true" : "false")
       << ", \"consumers\": [";
    for (size_t c = 0; c < grp.consumers.size(); ++c) {
      if (c != 0) os << ", ";
      os << "{\"node\": " << grp.consumers[c].node
         << ", \"spatial\": " << grp.consumers[c].spatial << "}";
    }
    os << "]}" << (i + 1 < groups.size() ? "," : "") << "\n";
  }
  os << "  ]";
  if (!g.ok()) {
    const GraphError& e = *g.error();
    os << ",\n  \"error\": {\"code\": \"" << error_code(e.code) << "\", \"node\": " << e.node
       << ", \"path\": \"" << escape(e.path) << "\", \"kind\": \"" << escape(e.kind)
       << "\", \"message\": \"" << escape(e.message) << "\"}";
  }
  os << "\n}\n";
  return os.str();
}

std::string to_dot(const ModuleGraph& g, const std::string& arch) {
  std::ostringstream os;
  os << "digraph capr_module_graph {\n";
  if (!arch.empty()) os << "  label=\"" << escape(arch) << "\";\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  // Producer highlighting from the coupling groups.
  std::vector<int> role(g.nodes().size(), 0);  // 1 = prunable, 2 = constrained
  for (const CouplingGroup& grp : g.groups()) {
    if (grp.producer == kNoNode) continue;
    const bool prunable = !grp.residual_constrained && !grp.consumers.empty();
    role[static_cast<size_t>(grp.producer)] = prunable ? 1 : 2;
  }
  for (const Node& n : g.nodes()) {
    os << "  n" << n.id << " [label=\"" << escape(n.path) << ": " << to_string(n.kind);
    if (!n.name.empty()) os << "\\n" << escape(n.name);
    os << "\\n" << capr::to_string(n.in_shape) << " -> " << capr::to_string(n.out_shape)
       << "\"";
    if (role[static_cast<size_t>(n.id)] == 1) {
      os << ", style=filled, fillcolor=palegreen";
    } else if (role[static_cast<size_t>(n.id)] == 2) {
      os << ", style=filled, fillcolor=lightsalmon";
    }
    os << "];\n";
  }
  for (const Node& n : g.nodes()) {
    for (NodeId dst : n.outputs) os << "  n" << n.id << " -> n" << dst << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace capr::graph
