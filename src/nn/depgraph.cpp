#include "nn/depgraph.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace capr::nn {
namespace {

/// Walk state: the conv whose output channels are currently "open"
/// (produced but not yet consumed), plus layout bookkeeping.
struct WalkState {
  PrunableUnit pending;            // valid iff pending.conv != nullptr
  bool pending_constrained = false;  // channels feed a residual add
  Shape shape;                     // current activation shape (no batch)
  int64_t spatial_per_channel = 1;  // features per channel if flattened
  bool collapsed = false;          // a Flatten/GAP has run since the conv
  int64_t next_index = 0;          // flattened position of the next layer
  int64_t index = 0;               // flattened position of the current layer
  std::vector<PrunableUnit> units;

  /// "layer 7 (linear 'fc')" — locates errors the way a compiler names a
  /// source line; indices count flattened non-composite positions.
  std::string where(const Layer& layer) const {
    std::string out = "layer " + std::to_string(index) + " (" + layer.kind();
    if (!layer.name().empty()) out += " '" + layer.name() + "'";
    out += ")";
    return out;
  }

  void finalize_with_consumer(ConsumerRef consumer) {
    if (pending.conv == nullptr) return;
    if (!pending_constrained) {
      pending.consumers.push_back(consumer);
      units.push_back(pending);
    }
    pending = PrunableUnit{};
    pending_constrained = false;
  }

  void drop_pending() {
    pending = PrunableUnit{};
    pending_constrained = false;
  }
};

void walk(Sequential& seq, WalkState& st);

void walk_layer(Layer& layer, WalkState& st) {
  if (auto* blk = dynamic_cast<BasicBlock*>(&layer)) {
    // A residual block whose input channel count disagrees with conv1
    // would leave the shortcut add dangling; refuse rather than derive
    // bogus couplings.
    if (st.shape.size() != 3 || st.shape[0] != blk->conv1().in_channels()) {
      throw std::logic_error("derive_units: " + st.where(layer) +
                             ": residual block expects " +
                             std::to_string(blk->conv1().in_channels()) +
                             " input channels, producer yields " + to_string(st.shape));
    }
    // Incumbent producer feeds conv1 and (via the shortcut) the residual
    // add. With an identity shortcut its channel count is pinned by the
    // add -> constrained. With a projection shortcut its channels only
    // enter conv1 and proj_conv as inputs -> a legal two-consumer unit.
    if (st.pending.conv != nullptr) {
      if (blk->has_projection()) {
        if (!st.pending_constrained) {
          st.pending.consumers.push_back(ConsumerRef{&blk->conv1(), nullptr, 1});
          st.pending.consumers.push_back(ConsumerRef{blk->proj_conv(), nullptr, 1});
          st.units.push_back(st.pending);
        }
        st.pending = PrunableUnit{};
        st.pending_constrained = false;
      } else {
        st.drop_pending();
      }
    }
    // Inside the block: conv1 is freely prunable into conv2 (the paper's
    // ResNet rule); conv2/proj feed the add and are constrained.
    PrunableUnit u;
    u.name = blk->conv1().name().empty() ? blk->name() + ".conv1" : blk->conv1().name();
    u.conv = &blk->conv1();
    u.bn = &blk->bn1();
    u.score_point = &blk->relu1();
    u.consumers.push_back(ConsumerRef{&blk->conv2(), nullptr, 1});
    st.units.push_back(u);
    st.shape = blk->output_shape(st.shape);
    st.collapsed = false;
    st.spatial_per_channel = 1;
    return;
  }
  if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
    if (st.shape.size() != 3 || st.shape[0] != conv->in_channels()) {
      throw std::logic_error("derive_units: " + st.where(layer) + ": expects C_in=" +
                             std::to_string(conv->in_channels()) + ", producer yields " +
                             to_string(st.shape));
    }
    st.finalize_with_consumer(ConsumerRef{conv, nullptr, 1});
    st.pending = PrunableUnit{};
    st.pending.name = conv->name();
    st.pending.conv = conv;
    st.shape = conv->output_shape(st.shape);
    st.collapsed = false;
    st.spatial_per_channel = 1;
    return;
  }
  if (auto* bn = dynamic_cast<BatchNorm2d*>(&layer)) {
    if (st.pending.conv != nullptr && st.pending.bn == nullptr &&
        bn->channels() == st.pending.conv->out_channels()) {
      st.pending.bn = bn;
    }
    return;
  }
  if (auto* relu = dynamic_cast<ReLU*>(&layer)) {
    if (st.pending.conv != nullptr && st.pending.score_point == nullptr) {
      st.pending.score_point = relu;
    }
    return;
  }
  if (dynamic_cast<LeakyReLU*>(&layer) != nullptr ||
      dynamic_cast<Dropout*>(&layer) != nullptr) {
    return;  // channel- and layout-preserving
  }
  if (dynamic_cast<MaxPool2d*>(&layer) != nullptr ||
      dynamic_cast<AvgPool2d*>(&layer) != nullptr) {
    st.shape = layer.output_shape(st.shape);
    return;
  }
  if (dynamic_cast<GlobalAvgPool*>(&layer) != nullptr) {
    st.shape = layer.output_shape(st.shape);
    st.collapsed = true;
    st.spatial_per_channel = 1;
    return;
  }
  if (dynamic_cast<Flatten*>(&layer) != nullptr) {
    if (st.shape.size() == 3) st.spatial_per_channel = st.shape[1] * st.shape[2];
    st.shape = layer.output_shape(st.shape);
    st.collapsed = true;
    return;
  }
  if (auto* lin = dynamic_cast<Linear*>(&layer)) {
    if (!st.collapsed && st.shape.size() == 3) {
      // Linear applied to unflattened input would be a shape error at
      // runtime; the analysis refuses rather than guessing — whether or
      // not a prunable producer is open.
      throw std::logic_error("derive_units: " + st.where(layer) +
                             ": applied to spatial output " + to_string(st.shape) +
                             " without Flatten");
    }
    if (st.shape.size() == 1 && st.shape[0] != lin->in_features()) {
      throw std::logic_error("derive_units: " + st.where(layer) + ": expects in_features=" +
                             std::to_string(lin->in_features()) + ", producer yields " +
                             to_string(st.shape));
    }
    if (st.pending.conv != nullptr) {
      st.finalize_with_consumer(ConsumerRef{nullptr, lin, st.spatial_per_channel});
    }
    st.shape = {lin->out_features()};
    st.collapsed = false;
    st.spatial_per_channel = 1;
    return;
  }
  throw std::logic_error("derive_units: " + st.where(layer) + ": unsupported layer kind '" +
                         layer.kind() + "'");
}

void walk(Sequential& seq, WalkState& st) {
  for (size_t i = 0; i < seq.size(); ++i) {
    Layer& child = seq.child(i);
    if (auto* nested = dynamic_cast<Sequential*>(&child)) {
      walk(*nested, st);  // containers are transparent to numbering
      continue;
    }
    st.index = st.next_index++;
    walk_layer(child, st);
  }
}

}  // namespace

std::vector<PrunableUnit> derive_units(Sequential& net, const Shape& input_shape) {
  WalkState st;
  st.shape = input_shape;
  walk(net, st);
  // A producer never consumed (e.g. a trailing conv) cannot be pruned
  // safely; it is silently excluded, matching the builders.
  for (const PrunableUnit& u : st.units) {
    if (u.conv == nullptr || u.consumers.empty()) {
      throw std::logic_error("derive_units: internal invariant violated");
    }
  }
  return st.units;
}

void annotate_model(Model& model) {
  model.units = derive_units(*model.net, model.input_shape);
}

}  // namespace capr::nn
