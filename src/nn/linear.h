// Fully-connected layer and flattening.
#pragma once

#include "nn/layer.h"

namespace capr::nn {

/// Affine layer: y = x W^T + b with W of shape [out_features, in_features].
class Linear final : public Layer {
 public:
  Linear(int64_t in_features, int64_t out_features, bool bias = true);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "linear"; }
  Shape output_shape(const Shape& in) const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

  /// Removes input features (surgery when an upstream conv channel dies;
  /// the caller maps channels to flattened feature indices).
  void remove_in_features(const std::vector<int64_t>& features);

  /// Removes output features (rows of W and bias entries). Used by the
  /// class-specialization extension to shrink a classifier head to a
  /// subset of classes.
  void remove_out_features(const std::vector<int64_t>& features);

 private:
  int64_t in_features_, out_features_;
  bool has_bias_;
  Param weight_, bias_;
  Tensor cached_input_;
};

/// Flattens [N, C, H, W] (or any batched shape) to [N, rest].
class Flatten final : public Layer {
 public:
  Flatten() = default;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "flatten"; }
  Shape output_shape(const Shape& in) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace capr::nn
