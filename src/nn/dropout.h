// Dropout and additional activation layers.
#pragma once

#include <vector>

#include "nn/layer.h"
#include "tensor/rng.h"

namespace capr::nn {

/// Inverted dropout: at train time zeroes each element with probability
/// p and scales survivors by 1/(1-p); identity at eval time. The mask is
/// drawn from a per-layer RNG stream seeded at construction, keeping
/// whole-training determinism.
class Dropout final : public Layer {
 public:
  explicit Dropout(float p, uint64_t seed = 0xD20u);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "dropout"; }
  Shape output_shape(const Shape& in) const override { return in; }

  float probability() const { return p_; }

 private:
  float p_;
  Rng rng_;
  std::vector<float> mask_;  // scale per element from the last forward
  bool last_was_training_ = false;
};

/// LeakyReLU: x if x > 0 else slope * x.
class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "leakyrelu"; }
  Shape output_shape(const Shape& in) const override { return in; }

  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

/// Average pooling with square window and stride (windowed counterpart of
/// GlobalAvgPool; used by pooling-ablation experiments).
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(int64_t window, int64_t stride = 0);  // stride 0 => window

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "avgpool2d"; }
  Shape output_shape(const Shape& in) const override;

  int64_t window() const { return window_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t window_, stride_;
  Shape cached_in_shape_;
};

}  // namespace capr::nn
