#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace capr::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax: expected [N, C] logits");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float m = row[0];
    for (int64_t j = 1; j < c; ++j) m = row[j] > m ? row[j] : m;
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - m);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

float SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int64_t>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("cross-entropy: expected [N, C] logits");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n) {
    throw std::invalid_argument("cross-entropy: " + std::to_string(labels.size()) +
                                " labels for batch of " + std::to_string(n));
  }
  for (int64_t lbl : labels) {
    if (lbl < 0 || lbl >= c) throw std::out_of_range("cross-entropy: label out of range");
  }
  probs_ = softmax(logits);
  labels_ = labels;
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float p = probs_[i * c + labels[static_cast<size_t>(i)]];
    loss -= std::log(static_cast<double>(p) + 1e-12);
  }
  return static_cast<float>(loss / n);
}

Tensor SoftmaxCrossEntropy::backward() const {
  if (probs_.empty()) throw std::logic_error("cross-entropy: backward before forward");
  const int64_t n = probs_.dim(0), c = probs_.dim(1);
  Tensor grad = probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    grad[i * c + labels_[static_cast<size_t>(i)]] -= 1.0f;
    for (int64_t j = 0; j < c; ++j) grad[i * c + j] *= inv_n;
  }
  return grad;
}

float accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  if (logits.rank() != 2) throw std::invalid_argument("accuracy: expected [N, C] logits");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != n || n == 0) {
    throw std::invalid_argument("accuracy: label/batch size mismatch");
  }
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<size_t>(i)]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace capr::nn
