#include "nn/linear.h"

#include <stdexcept>

#include "nn/conv2d.h"  // normalize_indices / surviving_indices
#include "tensor/gemm.h"

namespace capr::nn {

Linear::Linear(int64_t in_features, int64_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_("weight", {out_features, in_features}),
      bias_("bias", bias ? Shape{out_features} : Shape{0}) {
  if (in_features <= 0 || out_features <= 0) {
    throw std::invalid_argument("Linear: non-positive feature count");
  }
}

Shape Linear::output_shape(const Shape& in) const {
  if (in.size() != 1 || in[0] != in_features_) {
    throw std::invalid_argument("Linear " + name_ + ": input shape " + to_string(in) +
                                " incompatible with in_features " +
                                std::to_string(in_features_));
  }
  return {out_features_};
}

Tensor Linear::forward(const Tensor& input, bool training) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Linear " + name_ + ": bad input " + to_string(input.shape()));
  }
  Tensor out = matmul_nt(input, weight_.value);  // [N, out]
  if (has_bias_) {
    const int64_t n = out.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      float* row = out.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
    }
  }
  (void)training;  // backward must work after either mode (scoring passes)
  cached_input_ = input;
  apply_output_instrumentation(out);
  return out;
}

Tensor Linear::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;  // matmul_nt manages its own pack buffers
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Linear " + name_ + ": bad input " + to_string(input.shape()));
  }
  Tensor out = matmul_nt(input, weight_.value);  // [N, out]
  if (has_bias_) {
    const int64_t n = out.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      float* row = out.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
    }
  }
  apply_inference_interventions(out);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_input_.empty()) {
    throw std::logic_error("Linear " + name_ + ": backward without cached forward");
  }
  const int64_t n = cached_input_.dim(0);
  if (grad_output.shape() != Shape{n, out_features_}) {
    throw std::invalid_argument("Linear " + name_ + ": grad shape mismatch");
  }
  // dW = go^T x ; dx = go W ; db = col sums of go.
  Tensor dw = matmul_tn(grad_output, cached_input_);  // [out, in]
  for (int64_t i = 0; i < dw.numel(); ++i) weight_.grad[i] += dw[i];
  if (has_bias_) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = grad_output.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) bias_.grad[j] += row[j];
    }
  }
  return matmul(grad_output, weight_.value);  // [N, in]
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

void Linear::remove_in_features(const std::vector<int64_t>& features) {
  const auto removed = normalize_indices(features, in_features_, "Linear::remove_in_features");
  if (removed.empty()) return;
  if (static_cast<int64_t>(removed.size()) >= in_features_) {
    throw std::invalid_argument("Linear " + name_ + ": cannot remove all input features");
  }
  const auto keep = surviving_indices(removed, in_features_);
  Tensor nw({out_features_, static_cast<int64_t>(keep.size())});
  for (int64_t o = 0; o < out_features_; ++o) {
    const float* src = weight_.value.data() + o * in_features_;
    float* dst = nw.data() + o * static_cast<int64_t>(keep.size());
    for (size_t k = 0; k < keep.size(); ++k) dst[k] = src[keep[k]];
  }
  weight_.assign(std::move(nw));
  in_features_ = static_cast<int64_t>(keep.size());
}

void Linear::remove_out_features(const std::vector<int64_t>& features) {
  const auto removed = normalize_indices(features, out_features_, "Linear::remove_out_features");
  if (removed.empty()) return;
  if (static_cast<int64_t>(removed.size()) >= out_features_) {
    throw std::invalid_argument("Linear " + name_ + ": cannot remove all output features");
  }
  const auto keep = surviving_indices(removed, out_features_);
  Tensor nw({static_cast<int64_t>(keep.size()), in_features_});
  for (size_t k = 0; k < keep.size(); ++k) {
    const float* src = weight_.value.data() + keep[k] * in_features_;
    std::copy(src, src + in_features_, nw.data() + static_cast<int64_t>(k) * in_features_);
  }
  weight_.assign(std::move(nw));
  if (has_bias_) {
    Tensor nb({static_cast<int64_t>(keep.size())});
    for (size_t k = 0; k < keep.size(); ++k) nb[static_cast<int64_t>(k)] = bias_.value[keep[k]];
    bias_.assign(std::move(nb));
  }
  out_features_ = static_cast<int64_t>(keep.size());
}

Tensor Flatten::forward(const Tensor& input, bool training) {
  if (input.rank() < 2) throw std::invalid_argument("Flatten: expected batched input");
  cached_in_shape_ = input.shape();
  Tensor out = input.reshape({input.dim(0), -1});
  (void)training;
  apply_output_instrumentation(out);
  return out;
}

Tensor Flatten::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;
  if (input.rank() < 2) throw std::invalid_argument("Flatten: expected batched input");
  Tensor out = input.reshape({input.dim(0), -1});
  apply_inference_interventions(out);
  return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_in_shape_.empty()) throw std::logic_error("Flatten: backward without forward");
  return grad_output.reshape(cached_in_shape_);
}

Shape Flatten::output_shape(const Shape& in) const { return {numel_of(in)}; }

}  // namespace capr::nn
