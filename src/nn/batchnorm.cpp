#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

#include "nn/conv2d.h"  // normalize_indices / surviving_indices
#include "nn/eval_kernels.h"

namespace capr::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_("gamma", {channels}),
      beta_("beta", {channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  if (channels <= 0) throw std::invalid_argument("BatchNorm2d: channels must be positive");
  gamma_.value.fill(1.0f);
}

Shape BatchNorm2d::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != channels_) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": input " + to_string(in) +
                                " incompatible with " + std::to_string(channels_) + " channels");
  }
  return in;
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": bad input " +
                                to_string(input.shape()));
  }
  const int64_t n = input.dim(0), c = channels_, h = input.dim(2), w = input.dim(3);
  const int64_t plane = h * w;
  const int64_t count = n * plane;
  Tensor out({n, c, h, w});

  if (training) {
    xhat_ = Tensor({n, c, h, w});
    inv_std_ = Tensor({c});
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
    for (int64_t ch = 0; ch < c; ++ch) {
      double msum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * c + ch) * plane;
        for (int64_t k = 0; k < plane; ++k) msum += p[k];
      }
      const float mean = static_cast<float>(msum / count);
      double vsum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * c + ch) * plane;
        for (int64_t k = 0; k < plane; ++k) {
          const double d = p[k] - mean;
          vsum += d * d;
        }
      }
      const float var = static_cast<float>(vsum / count);
      const float inv = 1.0f / std::sqrt(var + eps_);
      inv_std_[ch] = inv;
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] + momentum_ * mean;
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] + momentum_ * var;
      const float g = gamma_.value[ch], b = beta_.value[ch];
      for (int64_t i = 0; i < n; ++i) {
        const float* p = input.data() + (i * c + ch) * plane;
        float* xh = xhat_.data() + (i * c + ch) * plane;
        float* o = out.data() + (i * c + ch) * plane;
        for (int64_t k = 0; k < plane; ++k) {
          xh[k] = (p[k] - mean) * inv;
          o[k] = g * xh[k] + b;
        }
      }
    }
  } else {
    xhat_ = Tensor({n, c, h, w});
    inv_std_ = Tensor({c});
    cached_n_ = n;
    cached_h_ = h;
    cached_w_ = w;
    // Shared out-of-line eval kernel (eval_kernels.h): the one compiled
    // body that forward_inference and the compiled plan also run, so all
    // three stay bitwise identical under per-TU FP contraction.
    bn_eval(input.data(), out.data(), xhat_.data(), inv_std_.data(), n, c, plane,
            gamma_.value.data(), beta_.value.data(), running_mean_.data(), running_var_.data(),
            eps_);
  }
  cached_training_ = training;
  apply_output_instrumentation(out);
  return out;
}

Tensor BatchNorm2d::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;  // elementwise normalisation needs no workspace
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": bad input " +
                                to_string(input.shape()));
  }
  const int64_t n = input.dim(0), c = channels_, h = input.dim(2), w = input.dim(3);
  const int64_t plane = h * w;
  Tensor out({n, c, h, w});
  // Same shared eval kernel as the eval branch of forward() (no cache
  // outputs), so logits stay bitwise identical across the three paths.
  bn_eval(input.data(), out.data(), nullptr, nullptr, n, c, plane, gamma_.value.data(),
          beta_.value.data(), running_mean_.data(), running_var_.data(), eps_);
  apply_inference_interventions(out);
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (xhat_.empty()) {
    throw std::logic_error("BatchNorm2d " + name_ + ": backward without forward");
  }
  const int64_t n = cached_n_, c = channels_, h = cached_h_, w = cached_w_;
  const int64_t plane = h * w;
  const int64_t count = n * plane;
  if (grad_output.shape() != Shape{n, c, h, w}) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": grad shape mismatch");
  }
  Tensor grad_in({n, c, h, w});
  for (int64_t ch = 0; ch < c; ++ch) {
    double dg = 0.0, db = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* go = grad_output.data() + (i * c + ch) * plane;
      const float* xh = xhat_.data() + (i * c + ch) * plane;
      for (int64_t k = 0; k < plane; ++k) {
        dg += static_cast<double>(go[k]) * xh[k];
        db += go[k];
      }
    }
    gamma_.grad[ch] += static_cast<float>(dg);
    beta_.grad[ch] += static_cast<float>(db);
    const float g = gamma_.value[ch];
    const float inv = inv_std_[ch];
    if (cached_training_) {
      // dx = (gamma * inv_std / m) * (m*dy - sum(dy) - xhat * sum(dy*xhat))
      const float scale = g * inv / static_cast<float>(count);
      const float sum_dy = static_cast<float>(db);
      const float sum_dy_xhat = static_cast<float>(dg);
      for (int64_t i = 0; i < n; ++i) {
        const float* go = grad_output.data() + (i * c + ch) * plane;
        const float* xh = xhat_.data() + (i * c + ch) * plane;
        float* gi = grad_in.data() + (i * c + ch) * plane;
        for (int64_t k = 0; k < plane; ++k) {
          gi[k] = scale * (static_cast<float>(count) * go[k] - sum_dy - xh[k] * sum_dy_xhat);
        }
      }
    } else {
      // Eval mode treats the running statistics as constants.
      const float scale = g * inv;
      for (int64_t i = 0; i < n; ++i) {
        const float* go = grad_output.data() + (i * c + ch) * plane;
        float* gi = grad_in.data() + (i * c + ch) * plane;
        for (int64_t k = 0; k < plane; ++k) gi[k] = scale * go[k];
      }
    }
  }
  return grad_in;
}

std::vector<Param*> BatchNorm2d::params() { return {&gamma_, &beta_}; }

void BatchNorm2d::remove_channels(const std::vector<int64_t>& channels) {
  const auto removed = normalize_indices(channels, channels_, "BatchNorm2d::remove_channels");
  if (removed.empty()) return;
  if (static_cast<int64_t>(removed.size()) >= channels_) {
    throw std::invalid_argument("BatchNorm2d " + name_ + ": cannot remove all channels");
  }
  const auto keep = surviving_indices(removed, channels_);
  const auto take = [&keep](const Tensor& src) {
    Tensor dst({static_cast<int64_t>(keep.size())});
    for (size_t k = 0; k < keep.size(); ++k) dst[static_cast<int64_t>(k)] = src[keep[k]];
    return dst;
  };
  Tensor ng = take(gamma_.value);
  Tensor nb = take(beta_.value);
  running_mean_ = take(running_mean_);
  running_var_ = take(running_var_);
  gamma_.assign(std::move(ng));
  beta_.assign(std::move(nb));
  channels_ = static_cast<int64_t>(keep.size());
  instrument_.reset_interventions();
}

}  // namespace capr::nn
