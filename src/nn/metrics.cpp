#include "nn/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace capr::nn {

std::vector<std::vector<int64_t>> confusion_matrix(Model& model, const data::Dataset& set,
                                                   int64_t batch_size) {
  const int64_t c = set.num_classes();
  std::vector<std::vector<int64_t>> counts(static_cast<size_t>(c),
                                           std::vector<int64_t>(static_cast<size_t>(c), 0));
  for (int64_t first = 0; first < set.size(); first += batch_size) {
    const int64_t count = std::min(batch_size, set.size() - first);
    const data::Batch batch = set.slice(first, count);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    const int64_t nc = logits.dim(1);
    for (int64_t i = 0; i < count; ++i) {
      const float* row = logits.data() + i * nc;
      int64_t best = 0;
      for (int64_t j = 1; j < nc; ++j) {
        if (row[j] > row[best]) best = j;
      }
      const int64_t actual = batch.labels[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(actual)][static_cast<size_t>(best)];
    }
  }
  return counts;
}

std::vector<float> per_class_accuracy(Model& model, const data::Dataset& set,
                                      int64_t batch_size) {
  const auto cm = confusion_matrix(model, set, batch_size);
  std::vector<float> acc(cm.size(), 0.0f);
  for (size_t c = 0; c < cm.size(); ++c) {
    int64_t total = 0;
    for (int64_t n : cm[c]) total += n;
    if (total > 0) acc[c] = static_cast<float>(cm[c][c]) / static_cast<float>(total);
  }
  return acc;
}

float topk_accuracy(Model& model, const data::Dataset& set, int64_t k, int64_t batch_size) {
  if (k <= 0) throw std::invalid_argument("topk_accuracy: k must be positive");
  int64_t correct = 0;
  for (int64_t first = 0; first < set.size(); first += batch_size) {
    const int64_t count = std::min(batch_size, set.size() - first);
    const data::Batch batch = set.slice(first, count);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    const int64_t nc = logits.dim(1);
    const int64_t kk = std::min(k, nc);
    for (int64_t i = 0; i < count; ++i) {
      const float* row = logits.data() + i * nc;
      const float label_logit = row[batch.labels[static_cast<size_t>(i)]];
      // Rank of the label logit: count of strictly larger entries.
      int64_t larger = 0;
      for (int64_t j = 0; j < nc; ++j) {
        if (row[j] > label_logit) ++larger;
      }
      if (larger < kk) ++correct;
    }
  }
  return set.size() ? static_cast<float>(correct) / static_cast<float>(set.size()) : 0.0f;
}

}  // namespace capr::nn
