// Training and evaluation loops.
#pragma once

#include <functional>
#include <string>

#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optim.h"

namespace capr::nn {

/// A differentiable penalty added to the data loss. Implementations
/// return the penalty value and must ADD their gradient contribution to
/// the parameter grads of `model` (called after the data-loss backward,
/// before the optimizer step). The class-aware ModifiedLoss implements
/// this; a null regularizer means plain cross-entropy training.
class Regularizer {
 public:
  virtual ~Regularizer() = default;
  virtual float apply(Model& model) = 0;
};

class LrSchedule;

struct TrainConfig {
  int epochs = 5;
  int64_t batch_size = 32;
  SGD::Config sgd{};
  bool augment = false;
  /// Multiply the lr by `lr_decay` every `lr_decay_every` epochs (0 = off).
  float lr_decay = 0.5f;
  int lr_decay_every = 0;
  /// Optional schedule object (see nn/schedulers.h); when set it takes
  /// precedence over lr_decay/lr_decay_every. Not owned; must outlive the
  /// train() call.
  const LrSchedule* lr_schedule = nullptr;
  uint64_t loader_seed = 7;
  /// Optional per-epoch observer: (epoch, train_loss).
  std::function<void(int, float)> on_epoch;
  /// Optional hook run after every optimizer step. Used by mask-based
  /// (unstructured) pruning to keep masked weights at zero during
  /// fine-tuning.
  std::function<void()> after_step;
};

struct TrainStats {
  float final_loss = 0.0f;
  int epochs_run = 0;
};

/// Checked-mode hook: certifies the model graph at the top of train()
/// (and evaluate()), throwing to reject an ill-formed model before any
/// epoch is spent. Installed by analysis::enable_checked_mode(); nn only
/// knows the hook so the layering stays acyclic.
using ModelValidator = std::function<void(Model&)>;

/// Installs (or, with an empty function, clears) the global validator.
void set_model_validator(ModelValidator validator);

/// The installed validator; empty when checked mode is off.
const ModelValidator& model_validator();

/// Trains `model` in place with SGD and an optional regularizer.
TrainStats train(Model& model, const data::Dataset& train_set, const TrainConfig& cfg,
                 Regularizer* reg = nullptr);

/// Top-1 accuracy of `model` on `set` in eval mode.
float evaluate(Model& model, const data::Dataset& set, int64_t batch_size = 64);

/// Mean cross-entropy of `model` on `set` in eval mode.
float evaluate_loss(Model& model, const data::Dataset& set, int64_t batch_size = 64);

}  // namespace capr::nn
