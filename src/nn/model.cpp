#include "nn/model.h"

#include <stdexcept>

namespace capr::nn {

std::map<std::string, Tensor> Model::state_dict() const {
  std::map<std::string, Tensor> dict;
  const Sequential& graph = *net;
  graph.visit([&dict](const Layer& l) {
    for (const Param* p : l.params()) {
      const std::string key = l.name() + "." + p->name;
      if (!dict.emplace(key, p->value).second) {
        throw std::runtime_error("duplicate state key '" + key +
                                 "'; builder must assign unique layer names");
      }
    }
    if (const auto* bn = dynamic_cast<const BatchNorm2d*>(&l)) {
      dict.emplace(l.name() + ".running_mean", bn->running_mean());
      dict.emplace(l.name() + ".running_var", bn->running_var());
    }
  });
  return dict;
}

void Model::load_state_dict(const std::map<std::string, Tensor>& dict) {
  size_t used = 0;
  net->visit([&dict, &used](Layer& l) {
    const auto fetch = [&](const std::string& key) -> const Tensor& {
      auto it = dict.find(key);
      if (it == dict.end()) throw std::runtime_error("state dict missing key '" + key + "'");
      return it->second;
    };
    for (Param* p : l.params()) {
      const std::string key = l.name() + "." + p->name;
      const Tensor& src = fetch(key);
      if (src.shape() != p->value.shape()) {
        throw std::runtime_error("state dict shape mismatch for '" + key + "': " +
                                 to_string(src.shape()) + " vs " + to_string(p->value.shape()));
      }
      p->value = src;
      ++used;
    }
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      bn->running_mean() = fetch(l.name() + ".running_mean");
      bn->running_var() = fetch(l.name() + ".running_var");
      used += 2;
    }
  });
  if (used != dict.size()) {
    throw std::runtime_error("state dict has " + std::to_string(dict.size() - used) +
                             " unused entries; model/checkpoint mismatch");
  }
}

int64_t Model::parameter_count() const {
  int64_t n = 0;
  const Sequential& graph = *net;
  graph.visit([&n](const Layer& l) {
    for (const Param* p : l.params()) n += p->value.numel();
  });
  return n;
}

PrunableUnit* Model::find_unit(const Conv2d* conv) {
  for (auto& u : units) {
    if (u.conv == conv) return &u;
  }
  return nullptr;
}

}  // namespace capr::nn
