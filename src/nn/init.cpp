#include "nn/init.h"

#include <cmath>

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace capr::nn {

void kaiming_init(Conv2d& conv, Rng& rng) {
  const float fan_in =
      static_cast<float>(conv.in_channels() * conv.kernel() * conv.kernel());
  const float stddev = std::sqrt(2.0f / fan_in);
  rng.fill_normal(conv.weight().value, 0.0f, stddev);
  if (conv.has_bias()) conv.bias().value.fill(0.0f);
}

void kaiming_init(Linear& linear, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(linear.in_features()));
  rng.fill_normal(linear.weight().value, 0.0f, stddev);
  linear.bias().value.fill(0.0f);
}

void init_all(Sequential& root, Rng& rng) {
  root.visit([&rng](Layer& l) {
    if (auto* conv = dynamic_cast<Conv2d*>(&l)) {
      kaiming_init(*conv, rng);
    } else if (auto* lin = dynamic_cast<Linear*>(&l)) {
      kaiming_init(*lin, rng);
    }
  });
}

}  // namespace capr::nn
