#include "nn/sequential.h"

#include <stdexcept>

#include "nn/activations.h"
#include "tensor/ops.h"

namespace capr::nn {

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& child : children_) x = child->forward(x, training);
  return x;
}

Tensor Sequential::forward_inference(const Tensor& input, InferScratch& scratch) const {
  Tensor x = input;
  for (const auto& child : children_) x = child->forward_inference(x, scratch);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& child : children_) {
    for (Param* p : child->params()) out.push_back(p);
  }
  return out;
}

Shape Sequential::output_shape(const Shape& in) const {
  Shape s = in;
  for (const auto& child : children_) s = child->output_shape(s);
  return s;
}

void Sequential::visit(const std::function<void(Layer&)>& fn) {
  for (auto& child : children_) {
    if (auto* seq = dynamic_cast<Sequential*>(child.get())) {
      seq->visit(fn);
    } else if (auto* blk = dynamic_cast<BasicBlock*>(child.get())) {
      blk->visit(fn);
    } else {
      fn(*child);
    }
  }
}

void Sequential::visit(const std::function<void(const Layer&)>& fn) const {
  for (const auto& child : children_) {
    if (const auto* seq = dynamic_cast<const Sequential*>(child.get())) {
      seq->visit(fn);
    } else if (const auto* blk = dynamic_cast<const BasicBlock*>(child.get())) {
      blk->visit(fn);
    } else {
      fn(*child);
    }
  }
}

BasicBlock::BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride)
    : conv1_(std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1, false)),
      bn1_(std::make_unique<BatchNorm2d>(out_channels)),
      relu1_(std::make_unique<ReLU>()),
      conv2_(std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, false)),
      bn2_(std::make_unique<BatchNorm2d>(out_channels)),
      relu_out_(std::make_unique<ReLU>()) {
  if (stride != 1 || in_channels != out_channels) {
    proj_conv_ = std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, false);
    proj_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& input, bool training) {
  Tensor main = conv1_->forward(input, training);
  main = bn1_->forward(main, training);
  main = relu1_->forward(main, training);
  main = conv2_->forward(main, training);
  main = bn2_->forward(main, training);
  Tensor shortcut = input;
  if (proj_conv_) {
    shortcut = proj_conv_->forward(input, training);
    shortcut = proj_bn_->forward(shortcut, training);
  }
  add_inplace(main, shortcut);
  return relu_out_->forward(main, training);
}

Tensor BasicBlock::forward_inference(const Tensor& input, InferScratch& scratch) const {
  Tensor main = conv1_->forward_inference(input, scratch);
  main = bn1_->forward_inference(main, scratch);
  main = relu1_->forward_inference(main, scratch);
  main = conv2_->forward_inference(main, scratch);
  main = bn2_->forward_inference(main, scratch);
  Tensor shortcut = input;
  if (proj_conv_) {
    shortcut = proj_conv_->forward_inference(input, scratch);
    shortcut = proj_bn_->forward_inference(shortcut, scratch);
  }
  add_inplace(main, shortcut);
  return relu_out_->forward_inference(main, scratch);
}

Tensor BasicBlock::backward(const Tensor& grad_output) {
  const Tensor g = relu_out_->backward(grad_output);
  // The elementwise add fans the gradient out to both branches unchanged.
  Tensor gmain = bn2_->backward(g);
  gmain = conv2_->backward(gmain);
  gmain = relu1_->backward(gmain);
  gmain = bn1_->backward(gmain);
  gmain = conv1_->backward(gmain);
  if (proj_conv_) {
    Tensor gshort = proj_bn_->backward(g);
    gshort = proj_conv_->backward(gshort);
    add_inplace(gmain, gshort);
  } else {
    add_inplace(gmain, g);
  }
  return gmain;
}

std::vector<Param*> BasicBlock::params() {
  std::vector<Param*> out;
  for (Layer* l : std::initializer_list<Layer*>{conv1_.get(), bn1_.get(), conv2_.get(),
                                                bn2_.get(), proj_conv_.get(), proj_bn_.get()}) {
    if (!l) continue;
    for (Param* p : l->params()) out.push_back(p);
  }
  return out;
}

Shape BasicBlock::output_shape(const Shape& in) const {
  Shape s = conv1_->output_shape(in);
  s = bn1_->output_shape(s);
  s = conv2_->output_shape(s);
  return bn2_->output_shape(s);
}

void BasicBlock::visit(const std::function<void(Layer&)>& fn) {
  fn(*conv1_);
  fn(*bn1_);
  fn(*relu1_);
  fn(*conv2_);
  fn(*bn2_);
  if (proj_conv_) {
    fn(*proj_conv_);
    fn(*proj_bn_);
  }
  fn(*relu_out_);
}

void BasicBlock::visit(const std::function<void(const Layer&)>& fn) const {
  fn(*conv1_);
  fn(*bn1_);
  fn(*relu1_);
  fn(*conv2_);
  fn(*bn2_);
  if (proj_conv_) {
    fn(*proj_conv_);
    fn(*proj_bn_);
  }
  fn(*relu_out_);
}

}  // namespace capr::nn
