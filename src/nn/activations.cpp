#include "nn/activations.h"

#include <stdexcept>

namespace capr::nn {

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  (void)training;  // backward must work after either mode (scoring passes)
  apply_output_instrumentation(out);
  cached_output_ = out;
  return out;
}

Tensor ReLU::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;
  Tensor out(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  apply_inference_interventions(out);
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_output_.empty()) {
    throw std::logic_error("ReLU " + name_ + ": backward without cached forward");
  }
  if (grad_output.shape() != cached_output_.shape()) {
    throw std::invalid_argument("ReLU " + name_ + ": grad shape mismatch");
  }
  Tensor grad_in(grad_output.shape());
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[i] = cached_output_[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad_in;
}

}  // namespace capr::nn
