#include "nn/optim.h"

namespace capr::nn {

void SGD::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    if (p->value.numel() == 0) continue;
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    Tensor& v = it->second;
    if (!inserted && v.shape() != p->value.shape()) {
      // Shape changed under us (surgery without reset_state); recover safely.
      v = Tensor(p->value.shape());
    }
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i] + cfg_.weight_decay * p->value[i];
      v[i] = cfg_.momentum * v[i] + g;
      p->value[i] -= cfg_.lr * v[i];
    }
  }
}

void SGD::zero_grad(const std::vector<Param*>& params) {
  for (Param* p : params) p->zero_grad();
}

}  // namespace capr::nn
