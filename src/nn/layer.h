// Layer abstraction: explicit forward/backward with cached state.
//
// The framework is deliberately layer-based (Caffe-style) rather than a
// taped autograd: pruning experiments need precise control over where
// activations are captured, zeroed, and masked, and a fixed layer graph
// makes structural surgery (removing filters) straightforward.
//
// Conventions:
//  - Activations are NCHW: [N, C, H, W]; fully-connected activations are
//    [N, F]. Batch dimension always first.
//  - forward(x, training) caches whatever backward needs. backward(g)
//    consumes that cache and must be called at most once per forward.
//  - Parameter gradients ACCUMULATE across backward calls; the optimizer
//    zeroes them. (Accumulation is what per-class scoring loops rely on.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tensor/scratch.h"
#include "tensor/tensor.h"

namespace capr::nn {

/// Per-caller workspace for the stateless inference path
/// (Layer::forward_inference). A layer shared by many threads keeps no
/// mutable state of its own during inference; every temporary it needs
/// (im2col column matrices, GEMM pack buffers) comes from here. Each
/// concurrent caller — a serving worker, a benchmark thread — owns one.
struct InferScratch {
  ScratchArena arena;

  /// Value slots owned by the compiled execution path (src/compile): one
  /// Tensor per ExecutionPlan slot, re-shaped in place (Tensor::reset)
  /// every run so the steady-state hot loop reuses capacity and performs
  /// no allocation. Unused (empty) on the interpreted path.
  std::vector<Tensor> slots;

  /// Owning copy of the last compiled result for callers that need a
  /// Tensor value rather than a slot reference (ExecutionPlan::run).
  Tensor result;
};

/// A trainable parameter: value plus accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string n = {}) : name(std::move(n)) {}
  Param(std::string n, Shape shape) : name(std::move(n)), value(shape), grad(std::move(shape)) {}

  void zero_grad() { grad.fill(0.0f); }
  /// Re-shapes value and grad together (used by pruning surgery).
  void assign(Tensor new_value) {
    grad = Tensor(new_value.shape());
    value = std::move(new_value);
  }
};

/// Optional per-layer instrumentation used by importance scoring.
///
/// When `capture` is set, forward stores the layer output and backward
/// stores the incoming gradient, giving exactly the (a, dL/da) pairs of
/// the paper's Eq. 4. `zero_flat_index` implements the exact zero-out
/// intervention of Eq. 3: the given flat element of the output (within
/// the whole batch tensor) is forced to zero during forward.
/// `channel_scale` multiplies output channel c by channel_scale[c]
/// (empty = identity); masks simulate pruning before real surgery.
struct Instrument {
  bool capture = false;
  Tensor captured_output;
  Tensor captured_grad;
  std::optional<int64_t> zero_flat_index;
  std::vector<float> channel_scale;

  void reset_interventions() {
    zero_flat_index.reset();
    channel_scale.clear();
  }

  /// Drops the captured (a, dL/da) tensors. Scoring rounds call this
  /// when they are done reading so capture memory is not retained
  /// across pruning iterations (reset_interventions deliberately does
  /// not touch captures — surgery resets masks, not scoring state).
  void release_captures() {
    captured_output = Tensor();
    captured_grad = Tensor();
  }
};

/// Base class of all layers.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output; caches state for backward when needed.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Inference-only forward: bitwise-identical to forward(x, false) but
  /// touches NO mutable layer state (no backward caches, no capture), so
  /// one layer instance may serve any number of concurrent callers, each
  /// supplying its own scratch. Read-only interventions (channel_scale,
  /// zero_flat_index) still apply; Instrument capture does not. The
  /// default implementation throws: every layer shipped here overrides
  /// it, and custom layers must opt in before they can be served.
  virtual Tensor forward_inference(const Tensor& input, InferScratch& scratch) const;

  /// Propagates gradients; accumulates into parameter grads, returns
  /// gradient with respect to the layer input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters of this layer (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Read-only view of the same parameters for const traversals
  /// (analyzers, serving, the module graph). Logically const: it calls
  /// the virtual params() on a cast-away-const this, which no shipped
  /// override mutates. Call through a Layer reference — subclass
  /// overrides of the virtual hide this overload by name.
  std::vector<const Param*> params() const;

  /// Short kind tag, e.g. "conv2d"; used in reports and checkpoints.
  virtual std::string kind() const = 0;

  /// Output shape (excluding batch) for an input shape (excluding batch).
  virtual Shape output_shape(const Shape& in) const = 0;

  /// Stable name assigned by the model builder; empty if anonymous.
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  Instrument& instrument() { return instrument_; }
  const Instrument& instrument() const { return instrument_; }

 protected:
  Layer() = default;

  /// Applies capture / zero / channel-scale interventions to a computed
  /// output tensor (NCHW or NF). Call at the end of forward.
  void apply_output_instrumentation(Tensor& out);

  /// The read-only subset of the above (channel_scale + zero_flat_index,
  /// never capture): mutates only `out`, so it is safe from concurrent
  /// forward_inference calls. Call at the end of forward_inference.
  void apply_inference_interventions(Tensor& out) const;

  /// Captures grad_output if capture is on. Call at the start of backward.
  void apply_grad_instrumentation(const Tensor& grad_output);

  std::string name_;
  Instrument instrument_;
};

}  // namespace capr::nn
