#include "nn/summary.h"

#include <iomanip>
#include <sstream>

#include "nn/dropout.h"
#include "nn/pooling.h"

namespace capr::nn {
namespace {

struct Row {
  std::string name, kind, shape;
  int64_t params;
};

int64_t layer_params(Layer& l) {
  int64_t n = 0;
  for (Param* p : l.params()) n += p->value.numel();
  return n;
}

void walk(Layer& layer, Shape& shape, std::vector<Row>& rows);

void walk_block(BasicBlock& blk, Shape& shape, std::vector<Row>& rows) {
  const Shape in = shape;
  Shape s = in;
  walk(blk.conv1(), s, rows);
  walk(blk.bn1(), s, rows);
  walk(blk.relu1(), s, rows);
  walk(blk.conv2(), s, rows);
  walk(blk.bn2(), s, rows);
  if (blk.has_projection()) {
    Shape p = in;
    walk(*blk.proj_conv(), p, rows);
    walk(*blk.proj_bn(), p, rows);
  }
  rows.push_back({blk.name() + ".add", "add", to_string(s), 0});
  walk(blk.relu_out(), s, rows);
  shape = s;
}

void walk(Layer& layer, Shape& shape, std::vector<Row>& rows) {
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) {
    for (size_t i = 0; i < seq->size(); ++i) walk(seq->child(i), shape, rows);
    return;
  }
  if (auto* blk = dynamic_cast<BasicBlock*>(&layer)) {
    walk_block(*blk, shape, rows);
    return;
  }
  shape = layer.output_shape(shape);
  rows.push_back({layer.name().empty() ? "(anonymous)" : layer.name(), layer.kind(),
                  to_string(shape), layer_params(layer)});
}

}  // namespace

std::string summary(Model& model) {
  std::vector<Row> rows;
  Shape shape = model.input_shape;
  for (size_t i = 0; i < model.net->size(); ++i) walk(model.net->child(i), shape, rows);

  size_t wname = 5, wkind = 4, wshape = 12;
  for (const Row& r : rows) {
    wname = std::max(wname, r.name.size());
    wkind = std::max(wkind, r.kind.size());
    wshape = std::max(wshape, r.shape.size());
  }
  std::ostringstream os;
  os << model.arch << " (input " << to_string(model.input_shape) << ", "
     << model.num_classes << " classes)\n";
  os << std::left << std::setw(static_cast<int>(wname) + 2) << "layer"
     << std::setw(static_cast<int>(wkind) + 2) << "kind"
     << std::setw(static_cast<int>(wshape) + 2) << "output shape"
     << "params\n";
  os << std::string(wname + wkind + wshape + 14, '-') << '\n';
  int64_t total = 0;
  for (const Row& r : rows) {
    os << std::left << std::setw(static_cast<int>(wname) + 2) << r.name
       << std::setw(static_cast<int>(wkind) + 2) << r.kind
       << std::setw(static_cast<int>(wshape) + 2) << r.shape << r.params << '\n';
    total += r.params;
  }
  os << std::string(wname + wkind + wshape + 14, '-') << '\n';
  os << "total parameters: " << total << '\n';
  os << "prunable units  : " << model.units.size() << " (";
  int64_t filters = 0;
  for (const PrunableUnit& u : model.units) filters += u.conv->out_channels();
  os << filters << " filters)\n";
  return os.str();
}

}  // namespace capr::nn
