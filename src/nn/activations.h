// Activation layers.
#pragma once

#include "nn/layer.h"

namespace capr::nn {

/// Rectified linear unit. This is the canonical "score point" of the
/// class-aware pruner: channel c of a ReLU following a conv carries the
/// activation outputs of filter c, and the Instrument capture gives the
/// (a, dL/da) pairs needed by Taylor scoring (paper Eq. 4).
class ReLU final : public Layer {
 public:
  ReLU() = default;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "relu"; }
  Shape output_shape(const Shape& in) const override { return in; }

 private:
  Tensor cached_output_;  // ReLU grad only needs the output's sign pattern
};

}  // namespace capr::nn
