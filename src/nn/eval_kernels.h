// Shared inference-eval kernels with pinned floating-point semantics.
//
// The compiled execution plan (src/compile) promises bitwise identity
// with the interpreted layer-by-layer forward. That promise dies the
// moment the same arithmetic is compiled twice in different translation
// units: at -O3 with default -ffp-contract the expression `g * xh + b`
// may become an FMA in one TU and a mul+add in another, and the results
// differ in the last ulp. Every expression with a contractable mul+add
// chain that both paths evaluate therefore lives HERE, out of line, in
// a TU built with -ffp-contract=off (see src/nn/CMakeLists.txt):
// BatchNorm2d's eval branch, its stateless forward_inference, and the
// compiled BatchNorm step all call the one compiled body below.
// (Single-operation element loops — ReLU compares, adds, pooling
// accumulations — cannot contract and may be re-implemented freely.)
#pragma once

#include <cstdint>

namespace capr::nn {

/// Activation fused into an eval kernel's write-back. Applying the
/// activation to the value before the store is bitwise identical to
/// storing first and activating in a second pass: ReLU/LeakyReLU read
/// one already-rounded float and never introduce a new rounding of the
/// producer's arithmetic.
enum class EvalAct { kNone, kReLU, kLeakyReLU };

/// Eval-mode batch normalisation over NCHW data, statement-for-statement
/// the eval branch of BatchNorm2d::forward:
///
///   inv = 1 / sqrt(var[ch] + eps)
///   xh  = (x - mean[ch]) * inv
///   y   = gamma[ch] * xh + beta[ch]     (then optional activation)
///
/// `xhat` (size n*c*plane) and `inv_std_out` (size c) are optional
/// outputs for the backward caches; pass nullptr when not needed.
/// `in` and `out` may not alias.
void bn_eval(const float* in, float* out, float* xhat, float* inv_std_out, int64_t n, int64_t c,
             int64_t plane, const float* gamma, const float* beta, const float* mean,
             const float* var, float eps, EvalAct act = EvalAct::kNone, float slope = 0.0f);

}  // namespace capr::nn
