#include "nn/schedulers.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace capr::nn {

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(cfg_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(cfg_.beta2, static_cast<float>(t_));
  for (Param* p : params) {
    if (p->value.numel() == 0) continue;
    auto [it, inserted] = moments_.try_emplace(p);
    Moments& mo = it->second;
    if (inserted || mo.m.shape() != p->value.shape()) {
      mo.m = Tensor(p->value.shape());
      mo.v = Tensor(p->value.shape());
    }
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      mo.m[i] = cfg_.beta1 * mo.m[i] + (1.0f - cfg_.beta1) * g;
      mo.v[i] = cfg_.beta2 * mo.v[i] + (1.0f - cfg_.beta2) * g * g;
      const float mhat = mo.m[i] / bc1;
      const float vhat = mo.v[i] / bc2;
      // Decoupled weight decay (AdamW form).
      p->value[i] -= cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                                cfg_.weight_decay * p->value[i]);
    }
  }
}

void Adam::reset_state() {
  moments_.clear();
  t_ = 0;
}

StepLr::StepLr(int step_size, float gamma) : step_size_(step_size), gamma_(gamma) {
  if (step_size <= 0) throw std::invalid_argument("StepLr: step_size must be positive");
  if (gamma <= 0.0f) throw std::invalid_argument("StepLr: gamma must be positive");
}

float StepLr::multiplier(int epoch) const {
  if (epoch < 0) throw std::invalid_argument("StepLr: negative epoch");
  return std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

CosineLr::CosineLr(int total_epochs, float min_mult)
    : total_epochs_(total_epochs), min_mult_(min_mult) {
  if (total_epochs <= 0) throw std::invalid_argument("CosineLr: total_epochs must be positive");
  if (min_mult < 0.0f || min_mult > 1.0f) {
    throw std::invalid_argument("CosineLr: min_mult must be in [0, 1]");
  }
}

float CosineLr::multiplier(int epoch) const {
  if (epoch < 0) throw std::invalid_argument("CosineLr: negative epoch");
  const float t = std::min(1.0f, static_cast<float>(epoch) / static_cast<float>(total_epochs_));
  return min_mult_ + (1.0f - min_mult_) * 0.5f *
                         (1.0f + std::cos(std::numbers::pi_v<float> * t));
}

}  // namespace capr::nn
