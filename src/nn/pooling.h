// Pooling layers.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace capr::nn {

/// Max pooling with square window and stride (window == stride covers the
/// VGG/ResNet use; general stride supported).
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int64_t window, int64_t stride = 0);  // stride 0 => window

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "maxpool2d"; }
  Shape output_shape(const Shape& in) const override;

  int64_t window() const { return window_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t window_, stride_;
  Shape cached_in_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  GlobalAvgPool() = default;

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string kind() const override { return "gavgpool"; }
  Shape output_shape(const Shape& in) const override;

 private:
  Shape cached_in_shape_;
};

}  // namespace capr::nn
