// Built with -ffp-contract=off: see eval_kernels.h for why.
#include "nn/eval_kernels.h"

#include <cmath>

namespace capr::nn {

void bn_eval(const float* in, float* out, float* xhat, float* inv_std_out, int64_t n, int64_t c,
             int64_t plane, const float* gamma, const float* beta, const float* mean,
             const float* var, float eps, EvalAct act, float slope) {
  for (int64_t ch = 0; ch < c; ++ch) {
    const float inv = 1.0f / std::sqrt(var[ch] + eps);
    const float m = mean[ch];
    const float g = gamma[ch], b = beta[ch];
    if (inv_std_out != nullptr) inv_std_out[ch] = inv;
    for (int64_t i = 0; i < n; ++i) {
      const float* p = in + (i * c + ch) * plane;
      float* o = out + (i * c + ch) * plane;
      float* xh_row = xhat != nullptr ? xhat + (i * c + ch) * plane : nullptr;
      for (int64_t k = 0; k < plane; ++k) {
        const float xh = (p[k] - m) * inv;
        if (xh_row != nullptr) xh_row[k] = xh;
        float v = g * xh + b;
        if (act == EvalAct::kReLU) {
          v = v > 0.0f ? v : 0.0f;
        } else if (act == EvalAct::kLeakyReLU) {
          v = v > 0.0f ? v : slope * v;
        }
        o[k] = v;
      }
    }
  }
}

}  // namespace capr::nn
