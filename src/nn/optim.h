// Optimizers.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/layer.h"

namespace capr::nn {

/// SGD with classical momentum and decoupled-from-loss L2 weight decay,
/// matching the paper's training setup (lr 0.01, momentum 0.9, wd 5e-4).
///
/// Momentum buffers are keyed by Param address; pruning surgery reallocates
/// parameter tensors, after which `reset_state()` must be called (the
/// ClassAwarePruner does this after every surgery step).
class SGD {
 public:
  struct Config {
    float lr = 0.01f;
    float momentum = 0.9f;
    float weight_decay = 5e-4f;
  };

  explicit SGD(Config cfg) : cfg_(cfg) {}

  /// One update step over the given parameters; does not zero grads.
  void step(const std::vector<Param*>& params);

  /// Sets all gradients to zero.
  static void zero_grad(const std::vector<Param*>& params);

  /// Drops all momentum buffers (required after structural surgery).
  void reset_state() { velocity_.clear(); }

  Config& config() { return cfg_; }

 private:
  Config cfg_;
  std::unordered_map<const Param*, Tensor> velocity_;
};

}  // namespace capr::nn
