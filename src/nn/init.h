// Weight initialisation.
#pragma once

#include "nn/layer.h"
#include "tensor/rng.h"

namespace capr::nn {

class Conv2d;
class Linear;

/// Kaiming-normal (He) init for a conv: N(0, sqrt(2 / fan_in)).
void kaiming_init(Conv2d& conv, Rng& rng);

/// Kaiming-normal init for a linear layer; bias zeroed.
void kaiming_init(Linear& linear, Rng& rng);

/// Initialises every Conv2d/Linear reachable from `root` (composites are
/// traversed); BatchNorm keeps its (1, 0) affine defaults.
class Sequential;
void init_all(Sequential& root, Rng& rng);

}  // namespace capr::nn
