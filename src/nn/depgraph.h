// Automatic channel-dependency analysis.
//
// The model builders in src/models hand-annotate which convs are
// prunable and where their output channels flow. This module derives the
// same information from the layer graph itself — the core mechanism of
// DepGraph [13]: walk the graph, track which layer currently "owns" the
// channel dimension, and record couplings:
//
//   - Conv2d produces a fresh channel dimension (it is a candidate
//     producer); its input channels couple to the incumbent producer.
//   - BatchNorm2d, ReLU and pooling are channel-preserving: they attach
//     to the incumbent producer (BN as coupled parameters, the first
//     ReLU as the score point).
//   - Flatten/GlobalAvgPool change layout; a following Linear consumes
//     the incumbent producer's channels (with the flattened spatial
//     factor).
//   - BasicBlock residual adds constrain the block output channels to
//     the shortcut: the block's second conv (and projection) are NOT
//     independently prunable, exactly the constraint the paper applies.
//
// `derive_units` returns PrunableUnits equivalent to what the builders
// annotate; tests assert the equivalence on every architecture. It also
// lets users bring their own Sequential models without hand annotation.
//
// Since the ModuleGraph refactor the walk itself lives in src/graph
// (graph::ModuleGraph records every coupling group, constrained or not);
// this interface is the thin legacy adapter implemented in
// src/graph/derive.cpp.
#pragma once

#include <vector>

#include "nn/model.h"

namespace capr::nn {

/// Derives prunable units from a model's layer graph.
///
/// `input_shape` is the [C, H, W] the model consumes (needed to track the
/// spatial factor entering a Linear after Flatten). Producers whose
/// channels are structurally constrained (feed a residual add) are
/// excluded. Throws std::logic_error on graphs the analysis cannot prove
/// safe (unknown layer kinds).
std::vector<PrunableUnit> derive_units(const Sequential& net, const Shape& input_shape);

/// Replaces model.units with the derived ones (convenience).
void annotate_model(Model& model);

}  // namespace capr::nn
