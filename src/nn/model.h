// Model: a layer graph plus the pruning metadata the builders attach.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/sequential.h"

namespace capr::nn {

/// Where the output channels of a prunable conv are consumed. Removing
/// output filter c of the producer requires removing input channel c of
/// every conv consumer, or the feature block [c*spatial, (c+1)*spatial)
/// of every linear consumer.
struct ConsumerRef {
  Conv2d* conv = nullptr;
  Linear* linear = nullptr;
  /// For linear consumers: flattened features per channel (H*W at the
  /// flatten point). 1 when the flatten follows a global pooling.
  int64_t spatial = 1;
};

/// One structurally prunable conv together with its coupled layers.
struct PrunableUnit {
  std::string name;
  Conv2d* conv = nullptr;
  BatchNorm2d* bn = nullptr;  // batchnorm on the conv output (nullable)
  /// Layer whose output channel c carries the activations of filter c —
  /// the ReLU after the conv; importance scoring captures here.
  Layer* score_point = nullptr;
  std::vector<ConsumerRef> consumers;
};

/// A network plus everything the pruning framework needs to know about it.
///
/// Builders (src/models) construct the layer graph, assign stable layer
/// names, and enumerate PrunableUnits with their channel couplings.
class Model {
 public:
  Model() = default;

  Tensor forward(const Tensor& x, bool training) { return net->forward(x, training); }

  /// Stateless inference forward: bitwise-identical to forward(x, false)
  /// but const and safe for concurrent callers (each brings its own
  /// scratch). The serving runtime (src/serve) drives this path.
  Tensor forward_inference(const Tensor& x, InferScratch& scratch) const {
    return net->forward_inference(x, scratch);
  }

  Tensor backward(const Tensor& grad) { return net->backward(grad); }
  std::vector<Param*> params() { return net->params(); }

  /// All parameters keyed by "<layer-name>.<param-name>".
  std::map<std::string, Tensor> state_dict() const;

  /// Loads values saved by state_dict; shapes must match exactly.
  /// Throws std::runtime_error on unknown keys or shape mismatches.
  void load_state_dict(const std::map<std::string, Tensor>& dict);

  /// Total number of weights (all trainable params).
  int64_t parameter_count() const;

  /// The unit owning `conv`, or nullptr.
  PrunableUnit* find_unit(const Conv2d* conv);

  std::string arch;            // e.g. "vgg16"
  Shape input_shape;           // [C, H, W]
  int64_t num_classes = 0;
  std::unique_ptr<Sequential> net;
  std::vector<PrunableUnit> units;
};

}  // namespace capr::nn
