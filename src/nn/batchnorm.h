// Batch normalization over the channel dimension of NCHW tensors.
#pragma once

#include "nn/layer.h"

namespace capr::nn {

/// Standard BatchNorm2d: per-channel statistics over (N, H, W) during
/// training, running statistics at eval time. gamma/beta trainable.
///
/// The per-channel gamma doubles as the "scaling factor" that the SSS
/// baseline sparsifies and ranks (see src/baselines/sss.h).
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(int64_t channels, float eps = 1e-5f, float momentum = 0.1f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "batchnorm2d"; }
  Shape output_shape(const Shape& in) const override;

  int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  Param& gamma() { return gamma_; }
  const Param& gamma() const { return gamma_; }
  Param& beta() { return beta_; }
  const Param& beta() const { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  const Tensor& running_mean() const { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  const Tensor& running_var() const { return running_var_; }

  /// Removes the given channels (surgery companion to Conv2d filter removal).
  void remove_channels(const std::vector<int64_t>& channels);

 private:
  int64_t channels_;
  float eps_, momentum_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // backward cache. Backward works after either forward mode: a
  // training-mode forward uses the full batch-statistics gradient; an
  // eval-mode forward treats mean/var as constants (the form importance
  // scoring needs when differentiating the frozen, trained network).
  Tensor xhat_;
  Tensor inv_std_;  // [C]
  int64_t cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
  bool cached_training_ = false;
};

}  // namespace capr::nn
