#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace capr::nn {

MaxPool2d::MaxPool2d(int64_t window, int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  if (window_ <= 0 || stride_ <= 0) throw std::invalid_argument("MaxPool2d: bad window/stride");
}

Shape MaxPool2d::output_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument("MaxPool2d: expected CHW input shape");
  const int64_t oh = (in[1] - window_) / stride_ + 1;
  const int64_t ow = (in[2] - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("MaxPool2d: window does not fit input " + to_string(in));
  }
  return {in[0], oh, ow};
}

Tensor MaxPool2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2d: expected NCHW input");
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const Shape out_chw = output_shape({c, h, w});
  const int64_t oh = out_chw[1], ow = out_chw[2];
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<size_t>(out.numel()), 0);
  cached_in_shape_ = input.shape();
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      const int64_t plane_base = (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_at = 0;
          for (int64_t dy = 0; dy < window_; ++dy) {
            const int64_t iy = y * stride_ + dy;
            for (int64_t dx = 0; dx < window_; ++dx) {
              const int64_t ix = x * stride_ + dx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_at = iy * w + ix;
              }
            }
          }
          out[oidx] = best;
          argmax_[static_cast<size_t>(oidx)] = plane_base + best_at;
        }
      }
    }
  }
  (void)training;
  apply_output_instrumentation(out);
  return out;
}

Tensor MaxPool2d::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;
  if (input.rank() != 4) throw std::invalid_argument("MaxPool2d: expected NCHW input");
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const Shape out_chw = output_shape({c, h, w});
  const int64_t oh = out_chw[1], ow = out_chw[2];
  Tensor out({n, c, oh, ow});
  // Same window scan as forward(), minus the argmax bookkeeping that only
  // backward needs.
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t dy = 0; dy < window_; ++dy) {
            const int64_t iy = y * stride_ + dy;
            for (int64_t dx = 0; dx < window_; ++dx) {
              const int64_t ix = x * stride_ + dx;
              const float v = plane[iy * w + ix];
              if (v > best) best = v;
            }
          }
          out[oidx] = best;
        }
      }
    }
  }
  apply_inference_interventions(out);
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_in_shape_.empty()) {
    throw std::logic_error("MaxPool2d: backward without cached forward");
  }
  if (grad_output.numel() != static_cast<int64_t>(argmax_.size())) {
    throw std::invalid_argument("MaxPool2d: grad element count mismatch");
  }
  Tensor grad_in(cached_in_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[argmax_[static_cast<size_t>(i)]] += grad_output[i];
  }
  return grad_in;
}

Shape GlobalAvgPool::output_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument("GlobalAvgPool: expected CHW input shape");
  return {in[0]};
}

Tensor GlobalAvgPool::forward(const Tensor& input, bool training) {
  if (input.rank() != 4) throw std::invalid_argument("GlobalAvgPool: expected NCHW input");
  const int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  cached_in_shape_ = input.shape();
  Tensor out({n, c});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (i * c + ch) * plane;
      double acc = 0.0;
      for (int64_t k = 0; k < plane; ++k) acc += p[k];
      out[i * c + ch] = static_cast<float>(acc / plane);
    }
  }
  (void)training;
  apply_output_instrumentation(out);
  return out;
}

Tensor GlobalAvgPool::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;
  if (input.rank() != 4) throw std::invalid_argument("GlobalAvgPool: expected NCHW input");
  const int64_t n = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
  Tensor out({n, c});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (i * c + ch) * plane;
      double acc = 0.0;
      for (int64_t k = 0; k < plane; ++k) acc += p[k];
      out[i * c + ch] = static_cast<float>(acc / plane);
    }
  }
  apply_inference_interventions(out);
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_in_shape_.empty()) {
    throw std::logic_error("GlobalAvgPool: backward without cached forward");
  }
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1];
  const int64_t plane = cached_in_shape_[2] * cached_in_shape_[3];
  if (grad_output.shape() != Shape{n, c}) {
    throw std::invalid_argument("GlobalAvgPool: grad shape mismatch");
  }
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_output[i * c + ch] * inv;
      float* p = grad_in.data() + (i * c + ch) * plane;
      for (int64_t k = 0; k < plane; ++k) p[k] = g;
    }
  }
  return grad_in;
}

}  // namespace capr::nn
