#include "nn/dropout.h"

#include <stdexcept>

namespace capr::nn {

Dropout::Dropout(float p, uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0f || p >= 1.0f) throw std::invalid_argument("Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  last_was_training_ = training;
  if (!training || p_ == 0.0f) {
    Tensor out = input;
    apply_output_instrumentation(out);
    return out;
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  mask_.assign(static_cast<size_t>(input.numel()), 0.0f);
  Tensor out(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) {
    if (rng_.uniform() >= p_) {
      mask_[static_cast<size_t>(i)] = keep_scale;
      out[i] = input[i] * keep_scale;
    }
  }
  apply_output_instrumentation(out);
  return out;
}

Tensor Dropout::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;  // inverted dropout is the identity at inference time
  Tensor out = input;
  apply_inference_interventions(out);
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (!last_was_training_ || p_ == 0.0f) return grad_output;
  if (static_cast<int64_t>(mask_.size()) != grad_output.numel()) {
    throw std::logic_error("Dropout: backward without matching forward");
  }
  Tensor grad_in(grad_output.shape());
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[i] = grad_output[i] * mask_[static_cast<size_t>(i)];
  }
  return grad_in;
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {
  if (slope < 0.0f || slope >= 1.0f) {
    throw std::invalid_argument("LeakyReLU: slope must be in [0, 1)");
  }
}

Tensor LeakyReLU::forward(const Tensor& input, bool training) {
  (void)training;
  cached_input_ = input;
  Tensor out(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : slope_ * input[i];
  }
  apply_output_instrumentation(out);
  return out;
}

Tensor LeakyReLU::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;
  Tensor out(input.shape());
  for (int64_t i = 0; i < input.numel(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : slope_ * input[i];
  }
  apply_inference_interventions(out);
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_input_.empty()) throw std::logic_error("LeakyReLU: backward without forward");
  if (grad_output.shape() != cached_input_.shape()) {
    throw std::invalid_argument("LeakyReLU: grad shape mismatch");
  }
  Tensor grad_in(grad_output.shape());
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    grad_in[i] = cached_input_[i] > 0.0f ? grad_output[i] : slope_ * grad_output[i];
  }
  return grad_in;
}

AvgPool2d::AvgPool2d(int64_t window, int64_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  if (window_ <= 0 || stride_ <= 0) throw std::invalid_argument("AvgPool2d: bad window/stride");
}

Shape AvgPool2d::output_shape(const Shape& in) const {
  if (in.size() != 3) throw std::invalid_argument("AvgPool2d: expected CHW input shape");
  const int64_t oh = (in[1] - window_) / stride_ + 1;
  const int64_t ow = (in[2] - window_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw std::invalid_argument("AvgPool2d: window does not fit input " + to_string(in));
  }
  return {in[0], oh, ow};
}

Tensor AvgPool2d::forward(const Tensor& input, bool training) {
  (void)training;
  if (input.rank() != 4) throw std::invalid_argument("AvgPool2d: expected NCHW input");
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const Shape out_chw = output_shape({c, h, w});
  const int64_t oh = out_chw[1], ow = out_chw[2];
  cached_in_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          double acc = 0.0;
          for (int64_t dy = 0; dy < window_; ++dy) {
            const float* row = plane + (y * stride_ + dy) * w + x * stride_;
            for (int64_t dx = 0; dx < window_; ++dx) acc += row[dx];
          }
          out[oidx] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  apply_output_instrumentation(out);
  return out;
}

Tensor AvgPool2d::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)scratch;
  if (input.rank() != 4) throw std::invalid_argument("AvgPool2d: expected NCHW input");
  const int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
  const Shape out_chw = output_shape({c, h, w});
  const int64_t oh = out_chw[1], ow = out_chw[2];
  Tensor out({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          double acc = 0.0;
          for (int64_t dy = 0; dy < window_; ++dy) {
            const float* row = plane + (y * stride_ + dy) * w + x * stride_;
            for (int64_t dx = 0; dx < window_; ++dx) acc += row[dx];
          }
          out[oidx] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  apply_inference_interventions(out);
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_in_shape_.empty()) throw std::logic_error("AvgPool2d: backward without forward");
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1];
  const int64_t h = cached_in_shape_[2], w = cached_in_shape_[3];
  const int64_t oh = grad_output.dim(2), ow = grad_output.dim(3);
  Tensor grad_in(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* plane = grad_in.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          const float g = grad_output[oidx] * inv;
          for (int64_t dy = 0; dy < window_; ++dy) {
            float* row = plane + (y * stride_ + dy) * w + x * stride_;
            for (int64_t dx = 0; dx < window_; ++dx) row[dx] += g;
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace capr::nn
