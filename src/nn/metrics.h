// Classification metrics beyond top-1 accuracy — per-class views that
// the class-aware analysis naturally wants.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace capr::nn {

/// counts[actual][predicted] over a dataset, eval mode.
std::vector<std::vector<int64_t>> confusion_matrix(Model& model, const data::Dataset& set,
                                                   int64_t batch_size = 64);

/// Top-1 accuracy per class (recall): correct_c / total_c. Classes with
/// no examples report 0.
std::vector<float> per_class_accuracy(Model& model, const data::Dataset& set,
                                      int64_t batch_size = 64);

/// Top-k accuracy: label within the k highest logits.
float topk_accuracy(Model& model, const data::Dataset& set, int64_t k,
                    int64_t batch_size = 64);

}  // namespace capr::nn
