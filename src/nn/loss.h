// Classification loss.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace capr::nn {

/// Numerically stable softmax + cross-entropy over logits [N, C].
///
/// forward returns the mean loss over the batch; backward returns
/// dL/dlogits (already divided by N).
class SoftmaxCrossEntropy {
 public:
  /// `labels` holds one class index per batch row.
  float forward(const Tensor& logits, const std::vector<int64_t>& labels);
  Tensor backward() const;

  /// Softmax probabilities from the last forward, [N, C].
  const Tensor& probs() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int64_t> labels_;
};

/// Row-wise softmax of logits [N, C] (used standalone by a few baselines).
Tensor softmax(const Tensor& logits);

/// Fraction of rows whose argmax equals the label.
float accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace capr::nn
