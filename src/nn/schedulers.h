// Learning-rate schedules and the Adam optimizer.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "nn/layer.h"
#include "nn/optim.h"

namespace capr::nn {

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW when
/// weight_decay > 0). Provided as the common alternative to the paper's
/// SGD for users adapting the library; the reproduction benches use SGD.
class Adam {
 public:
  struct Config {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
  };

  explicit Adam(Config cfg) : cfg_(cfg) {}

  void step(const std::vector<Param*>& params);
  void reset_state();
  Config& config() { return cfg_; }

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };
  Config cfg_;
  std::unordered_map<const Param*, Moments> moments_;
  int64_t t_ = 0;
};

/// Learning-rate schedule interface: maps an epoch index to a multiplier
/// of the base learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Multiplier applied to the base lr at `epoch` (0-based).
  virtual float multiplier(int epoch) const = 0;
};

/// Multiply by `gamma` every `step_size` epochs (classic step decay).
class StepLr final : public LrSchedule {
 public:
  StepLr(int step_size, float gamma);
  float multiplier(int epoch) const override;

 private:
  int step_size_;
  float gamma_;
};

/// Cosine annealing from 1 down to `min_mult` over `total_epochs`.
class CosineLr final : public LrSchedule {
 public:
  explicit CosineLr(int total_epochs, float min_mult = 0.0f);
  float multiplier(int epoch) const override;

 private:
  int total_epochs_;
  float min_mult_;
};

}  // namespace capr::nn
