#include "nn/layer.h"

#include <stdexcept>

namespace capr::nn {

std::vector<const Param*> Layer::params() const {
  std::vector<const Param*> out;
  for (Param* p : const_cast<Layer*>(this)->params()) out.push_back(p);
  return out;
}

Tensor Layer::forward_inference(const Tensor& input, InferScratch& scratch) const {
  (void)input;
  (void)scratch;
  throw std::logic_error("Layer " + name_ + " (" + kind() +
                         "): no inference path; forward_inference not implemented");
}

void Layer::apply_inference_interventions(Tensor& out) const {
  if (!instrument_.channel_scale.empty()) {
    if (out.rank() < 2) throw std::invalid_argument("channel_scale needs a batched output");
    const int64_t n = out.dim(0);
    const int64_t c = out.dim(1);
    if (static_cast<int64_t>(instrument_.channel_scale.size()) != c) {
      throw std::invalid_argument("channel_scale size " +
                                  std::to_string(instrument_.channel_scale.size()) +
                                  " does not match channel count " + std::to_string(c));
    }
    const int64_t plane = out.numel() / (n * c);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float s = instrument_.channel_scale[static_cast<size_t>(ch)];
        if (s == 1.0f) continue;
        float* p = out.data() + (i * c + ch) * plane;
        for (int64_t k = 0; k < plane; ++k) p[k] *= s;
      }
    }
  }
  if (instrument_.zero_flat_index) {
    const int64_t idx = *instrument_.zero_flat_index;
    if (idx < 0 || idx >= out.numel()) {
      throw std::out_of_range("zero_flat_index " + std::to_string(idx) +
                              " out of range for output with " + std::to_string(out.numel()) +
                              " elements");
    }
    out[idx] = 0.0f;
  }
}

void Layer::apply_output_instrumentation(Tensor& out) {
  apply_inference_interventions(out);
  if (instrument_.capture) instrument_.captured_output = out;
}

void Layer::apply_grad_instrumentation(const Tensor& grad_output) {
  if (instrument_.capture) instrument_.captured_grad = grad_output;
}

}  // namespace capr::nn
