#include "nn/trainer.h"

#include "nn/schedulers.h"

namespace capr::nn {
namespace {

ModelValidator& validator_slot() {
  static ModelValidator validator;
  return validator;
}

}  // namespace

void set_model_validator(ModelValidator validator) { validator_slot() = std::move(validator); }

const ModelValidator& model_validator() { return validator_slot(); }

TrainStats train(Model& model, const data::Dataset& train_set, const TrainConfig& cfg,
                 Regularizer* reg) {
  if (model_validator()) model_validator()(model);
  SGD sgd(cfg.sgd);
  data::DataLoader::Options lopts;
  lopts.batch_size = cfg.batch_size;
  lopts.shuffle = true;
  lopts.augment = cfg.augment;
  data::DataLoader loader(train_set, lopts, Rng(cfg.loader_seed));

  SoftmaxCrossEntropy ce;
  const std::vector<Param*> params = model.params();
  TrainStats stats;
  const float base_lr = cfg.sgd.lr;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.lr_schedule != nullptr) {
      sgd.config().lr = base_lr * cfg.lr_schedule->multiplier(epoch);
    } else if (cfg.lr_decay_every > 0 && epoch > 0 && epoch % cfg.lr_decay_every == 0) {
      sgd.config().lr *= cfg.lr_decay;
    }
    loader.reset();
    double loss_sum = 0.0;
    int64_t batches = 0;
    data::Batch batch;
    while (loader.next(batch)) {
      SGD::zero_grad(params);
      const Tensor logits = model.forward(batch.images, /*training=*/true);
      float loss = ce.forward(logits, batch.labels);
      model.backward(ce.backward());
      if (reg) loss += reg->apply(model);
      sgd.step(params);
      if (cfg.after_step) cfg.after_step();
      loss_sum += loss;
      ++batches;
    }
    stats.final_loss = batches ? static_cast<float>(loss_sum / batches) : 0.0f;
    stats.epochs_run = epoch + 1;
    if (cfg.on_epoch) cfg.on_epoch(epoch, stats.final_loss);
  }
  return stats;
}

float evaluate(Model& model, const data::Dataset& set, int64_t batch_size) {
  if (model_validator()) model_validator()(model);
  int64_t correct = 0;
  for (int64_t first = 0; first < set.size(); first += batch_size) {
    const int64_t count = std::min(batch_size, set.size() - first);
    const data::Batch batch = set.slice(first, count);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    correct += static_cast<int64_t>(
        accuracy(logits, batch.labels) * static_cast<float>(count) + 0.5f);
  }
  return set.size() ? static_cast<float>(correct) / static_cast<float>(set.size()) : 0.0f;
}

float evaluate_loss(Model& model, const data::Dataset& set, int64_t batch_size) {
  SoftmaxCrossEntropy ce;
  double loss_sum = 0.0;
  int64_t total = 0;
  for (int64_t first = 0; first < set.size(); first += batch_size) {
    const int64_t count = std::min(batch_size, set.size() - first);
    const data::Batch batch = set.slice(first, count);
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    loss_sum += static_cast<double>(ce.forward(logits, batch.labels)) * count;
    total += count;
  }
  return total ? static_cast<float>(loss_sum / total) : 0.0f;
}

}  // namespace capr::nn
