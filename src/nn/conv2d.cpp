#include "nn/conv2d.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace capr::nn {

std::vector<int64_t> normalize_indices(std::vector<int64_t> idx, int64_t extent,
                                       const char* what) {
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  for (int64_t i : idx) {
    if (i < 0 || i >= extent) {
      throw std::out_of_range(std::string(what) + ": index " + std::to_string(i) +
                              " out of range [0, " + std::to_string(extent) + ")");
    }
  }
  return idx;
}

std::vector<int64_t> surviving_indices(const std::vector<int64_t>& removed, int64_t extent) {
  std::vector<int64_t> keep;
  keep.reserve(static_cast<size_t>(extent) - removed.size());
  size_t r = 0;
  for (int64_t i = 0; i < extent; ++i) {
    if (r < removed.size() && removed[r] == i) {
      ++r;
    } else {
      keep.push_back(i);
    }
  }
  return keep;
}

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
               int64_t padding, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_("weight", {out_channels, in_channels, kernel, kernel}),
      bias_("bias", bias ? Shape{out_channels} : Shape{0}) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 || padding < 0) {
    throw std::invalid_argument("Conv2d: non-positive dimension");
  }
}

ConvGeom Conv2d::geom_for(int64_t h, int64_t w) const {
  ConvGeom g;
  g.in_channels = in_channels_;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  g.validate();
  return g;
}

Shape Conv2d::output_shape(const Shape& in) const {
  if (in.size() != 3 || in[0] != in_channels_) {
    throw std::invalid_argument("Conv2d " + name_ + ": input shape " + to_string(in) +
                                " incompatible with in_channels " +
                                std::to_string(in_channels_));
  }
  const ConvGeom g = geom_for(in[1], in[2]);
  return {out_channels_, g.out_h(), g.out_w()};
}

Tensor Conv2d::compute_forward(const Tensor& input, ScratchArena& arena) const {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d " + name_ + ": bad input " + to_string(input.shape()));
  }
  const int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const ConvGeom g = geom_for(h, w);
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t cols = g.col_cols();
  const int64_t krows = g.col_rows();

  Tensor out({n, out_channels_, oh, ow});
  const Tensor wmat = filter_matrix();
  const int workers = std::max(1, std::min<int>(num_threads(), static_cast<int>(n)));
  // Arena buffers (column matrix + GEMM packing) persist across calls, so
  // the steady-state batch loop allocates nothing.
  arena.prepare(workers);
  parallel_for(0, n, [&](int tid, int64_t i) {
    float* col = arena.floats(tid, 0, krows * cols);
    im2col(input.data() + i * in_channels_ * h * w, g, col);
    gemm_auto(wmat.data(), col, out.data() + i * out_channels_ * cols, out_channels_, krows,
              cols, /*accumulate=*/false, &arena.gemm(tid));
    if (has_bias_) {
      float* obase = out.data() + i * out_channels_ * cols;
      for (int64_t c = 0; c < out_channels_; ++c) {
        const float b = bias_.value[c];
        float* row = obase + c * cols;
        for (int64_t j = 0; j < cols; ++j) row[j] += b;
      }
    }
  });
  return out;
}

Tensor Conv2d::forward(const Tensor& input, bool training) {
  Tensor out = compute_forward(input, scratch_);
  (void)training;  // backward must work after either mode (scoring passes)
  cached_input_ = input;
  apply_output_instrumentation(out);
  return out;
}

Tensor Conv2d::forward_inference(const Tensor& input, InferScratch& scratch) const {
  Tensor out = compute_forward(input, scratch.arena);
  apply_inference_interventions(out);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  apply_grad_instrumentation(grad_output);
  if (cached_input_.empty()) {
    throw std::logic_error("Conv2d " + name_ + ": backward without cached forward");
  }
  const Tensor& input = cached_input_;
  const int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const ConvGeom g = geom_for(h, w);
  const int64_t cols = g.col_cols();
  const int64_t krows = g.col_rows();
  if (grad_output.shape() != Shape{n, out_channels_, g.out_h(), g.out_w()}) {
    throw std::invalid_argument("Conv2d " + name_ + ": grad shape " +
                                to_string(grad_output.shape()) + " mismatch");
  }

  Tensor grad_in({n, in_channels_, h, w});
  const Tensor wmat = filter_matrix();   // [Cout, krows]
  const Tensor wmatT = transpose(wmat);  // [krows, Cout]

  // Per-thread scratch from the arena: column matrices plus private
  // dW/db accumulators, reduced after the batch loop (keeps the parallel
  // region race-free). Arena buffers are reused across calls, so the
  // accumulators must be zeroed explicitly before the loop.
  const int workers = std::max(1, std::min<int>(num_threads(), static_cast<int>(n)));
  scratch_.prepare(workers);
  const int64_t gwsz = out_channels_ * krows;
  const int64_t gbsz = has_bias_ ? out_channels_ : 0;
  enum Slot { kCol = 0, kGcol = 1, kGw = 2, kGb = 3 };
  for (int tid = 0; tid < workers; ++tid) {
    float* gw = scratch_.floats(tid, kGw, gwsz);
    std::fill(gw, gw + gwsz, 0.0f);
    if (has_bias_) {
      float* gb = scratch_.floats(tid, kGb, gbsz);
      std::fill(gb, gb + gbsz, 0.0f);
    }
  }

  parallel_for(0, n, [&](int tid, int64_t i) {
    // Recompute im2col rather than caching per-image column matrices;
    // trades FLOPs for an O(batch) memory saving across deep stacks.
    float* col = scratch_.floats(tid, kCol, krows * cols);
    float* gcol = scratch_.floats(tid, kGcol, krows * cols);
    float* gw = scratch_.floats(tid, kGw, gwsz);
    GemmScratch& gs = scratch_.gemm(tid);
    im2col(input.data() + i * in_channels_ * h * w, g, col);
    const float* go = grad_output.data() + i * out_channels_ * cols;

    // dW += go[Cout, cols] * col[krows, cols]^T.
    gemm_nt_auto(go, col, gw, out_channels_, cols, krows, /*accumulate=*/true, &gs);

    // dcol = W^T[krows, Cout] * go[Cout, cols]; then col2im into grad_in.
    gemm_auto(wmatT.data(), go, gcol, krows, out_channels_, cols, /*accumulate=*/false, &gs);
    col2im(gcol, g, grad_in.data() + i * in_channels_ * h * w);

    if (has_bias_) {
      float* gb = scratch_.floats(tid, kGb, gbsz);
      for (int64_t c = 0; c < out_channels_; ++c) {
        const float* gorow = go + c * cols;
        double acc = 0.0;
        for (int64_t j = 0; j < cols; ++j) acc += gorow[j];
        gb[c] += static_cast<float>(acc);
      }
    }
  });

  for (int tid = 0; tid < workers; ++tid) {
    const float* gw = scratch_.floats(tid, kGw, gwsz);
    for (int64_t i = 0; i < gwsz; ++i) weight_.grad[i] += gw[i];
    if (has_bias_) {
      const float* gb = scratch_.floats(tid, kGb, gbsz);
      for (int64_t c = 0; c < out_channels_; ++c) bias_.grad[c] += gb[c];
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> p{&weight_};
  if (has_bias_) p.push_back(&bias_);
  return p;
}

Tensor Conv2d::filter_matrix() const {
  return weight_.value.reshape({out_channels_, in_channels_ * kernel_ * kernel_});
}

void Conv2d::remove_out_channels(const std::vector<int64_t>& filters) {
  const auto removed = normalize_indices(filters, out_channels_, "Conv2d::remove_out_channels");
  if (removed.empty()) return;
  if (static_cast<int64_t>(removed.size()) >= out_channels_) {
    throw std::invalid_argument("Conv2d " + name_ + ": cannot remove all " +
                                std::to_string(out_channels_) + " filters");
  }
  const auto keep = surviving_indices(removed, out_channels_);
  const int64_t fsz = in_channels_ * kernel_ * kernel_;
  Tensor nw({static_cast<int64_t>(keep.size()), in_channels_, kernel_, kernel_});
  for (size_t k = 0; k < keep.size(); ++k) {
    const float* src = weight_.value.data() + keep[k] * fsz;
    std::copy(src, src + fsz, nw.data() + static_cast<int64_t>(k) * fsz);
  }
  weight_.assign(std::move(nw));
  if (has_bias_) {
    Tensor nb({static_cast<int64_t>(keep.size())});
    for (size_t k = 0; k < keep.size(); ++k) nb[static_cast<int64_t>(k)] = bias_.value[keep[k]];
    bias_.assign(std::move(nb));
  }
  out_channels_ = static_cast<int64_t>(keep.size());
  instrument_.reset_interventions();
}

void Conv2d::remove_in_channels(const std::vector<int64_t>& channels) {
  const auto removed = normalize_indices(channels, in_channels_, "Conv2d::remove_in_channels");
  if (removed.empty()) return;
  if (static_cast<int64_t>(removed.size()) >= in_channels_) {
    throw std::invalid_argument("Conv2d " + name_ + ": cannot remove all input channels");
  }
  const auto keep = surviving_indices(removed, in_channels_);
  const int64_t kk = kernel_ * kernel_;
  Tensor nw({out_channels_, static_cast<int64_t>(keep.size()), kernel_, kernel_});
  for (int64_t f = 0; f < out_channels_; ++f) {
    for (size_t k = 0; k < keep.size(); ++k) {
      const float* src = weight_.value.data() + (f * in_channels_ + keep[k]) * kk;
      float* dst = nw.data() + (f * static_cast<int64_t>(keep.size()) +
                                static_cast<int64_t>(k)) * kk;
      std::copy(src, src + kk, dst);
    }
  }
  weight_.assign(std::move(nw));
  in_channels_ = static_cast<int64_t>(keep.size());
}

}  // namespace capr::nn
