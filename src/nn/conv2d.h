// 2-D convolution layer (im2col + GEMM lowering).
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "tensor/scratch.h"

namespace capr::nn {

/// Convolution over NCHW inputs with square kernels, stride and padding.
///
/// Weight layout: [out_channels, in_channels, kernel, kernel];
/// bias: [out_channels] (optional; conventionally off when a BatchNorm
/// follows). Supports structural surgery used by pruning: removal of
/// whole output filters and of input channels.
class Conv2d final : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
         int64_t padding, bool bias);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "conv2d"; }
  Shape output_shape(const Shape& in) const override;

  int64_t in_channels() const { return in_channels_; }
  int64_t out_channels() const { return out_channels_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t padding() const { return padding_; }
  bool has_bias() const { return has_bias_; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  Param& bias() { return bias_; }
  const Param& bias() const { return bias_; }

  /// Weight viewed as the [out_channels, in_channels*k*k] filter matrix.
  Tensor filter_matrix() const;

  /// Removes the given output filters (sorted unique indices expected;
  /// validated). Shrinks weight (and bias) along dim 0.
  void remove_out_channels(const std::vector<int64_t>& filters);

  /// Removes the given input channels; shrinks weight along dim 1.
  void remove_in_channels(const std::vector<int64_t>& channels);

 private:
  ConvGeom geom_for(int64_t h, int64_t w) const;

  /// The im2col+GEMM forward shared by the training and inference paths;
  /// all temporaries come from `arena`, nothing else is written.
  Tensor compute_forward(const Tensor& input, ScratchArena& arena) const;

  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Param weight_;
  Param bias_;
  Tensor cached_input_;   // [N, Cin, H, W] kept for backward
  ScratchArena scratch_;  // per-worker im2col/GEMM buffers, reused across calls
};

/// Validates and normalises a channel-index list against `extent`:
/// sorts, de-duplicates, and throws on out-of-range entries.
std::vector<int64_t> normalize_indices(std::vector<int64_t> idx, int64_t extent,
                                       const char* what);

/// Complement of `removed` in [0, extent): the indices that survive.
std::vector<int64_t> surviving_indices(const std::vector<int64_t>& removed, int64_t extent);

}  // namespace capr::nn
