// Human-readable model summaries.
#pragma once

#include <string>

#include "nn/model.h"

namespace capr::nn {

/// Keras-style per-layer table: name, kind, output shape, parameters —
/// plus totals and the list of prunable units. Rows come straight from
/// the graph::ModuleGraph nodes (implemented in src/graph/summary.cpp);
/// throws std::logic_error when the model's graph is ill-formed.
std::string summary(const Model& model);

}  // namespace capr::nn
