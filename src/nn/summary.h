// Human-readable model summaries.
#pragma once

#include <string>

#include "nn/model.h"

namespace capr::nn {

/// Keras-style per-layer table: name, kind, output shape, parameters —
/// plus totals and the list of prunable units. Shapes are computed by a
/// probe walk from model.input_shape.
std::string summary(Model& model);

}  // namespace capr::nn
