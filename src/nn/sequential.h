// Composite layers: sequential containers and residual blocks.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/layer.h"

namespace capr::nn {

/// Runs child layers in order. Owns its children.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer and returns a typed pointer to it (builder idiom):
  ///   auto* conv = seq.add(std::make_unique<Conv2d>(...));
  template <typename L>
  L* add(std::unique_ptr<L> layer) {
    L* raw = layer.get();
    children_.push_back(std::move(layer));
    return raw;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "sequential"; }
  Shape output_shape(const Shape& in) const override;

  size_t size() const { return children_.size(); }
  Layer& child(size_t i) { return *children_.at(i); }
  const Layer& child(size_t i) const { return *children_.at(i); }

  /// Depth-first visit of all non-composite layers.
  void visit(const std::function<void(Layer&)>& fn);
  void visit(const std::function<void(const Layer&)>& fn) const;

 private:
  std::vector<std::unique_ptr<Layer>> children_;
};

/// ResNet basic block: conv1-bn1-relu1-conv2-bn2 (+ optional projection
/// shortcut conv-bn), elementwise add, final relu.
///
/// Only conv1 is structurally prunable — conv2's output must keep the
/// block's channel count so the residual add stays shape-legal. This is
/// exactly the constraint the paper applies to ResNet56 ("only the first
/// layer of each residual block is pruned").
class BasicBlock final : public Layer {
 public:
  /// stride > 1 (or in != out channels) adds a 1x1 projection shortcut.
  BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor forward_inference(const Tensor& input, InferScratch& scratch) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::string kind() const override { return "basicblock"; }
  Shape output_shape(const Shape& in) const override;

  Conv2d& conv1() { return *conv1_; }
  const Conv2d& conv1() const { return *conv1_; }
  BatchNorm2d& bn1() { return *bn1_; }
  const BatchNorm2d& bn1() const { return *bn1_; }
  class ReLU& relu1() { return *relu1_; }
  const class ReLU& relu1() const { return *relu1_; }
  Conv2d& conv2() { return *conv2_; }
  const Conv2d& conv2() const { return *conv2_; }
  BatchNorm2d& bn2() { return *bn2_; }
  const BatchNorm2d& bn2() const { return *bn2_; }
  bool has_projection() const { return proj_conv_ != nullptr; }
  Conv2d* proj_conv() { return proj_conv_.get(); }
  const Conv2d* proj_conv() const { return proj_conv_.get(); }
  BatchNorm2d* proj_bn() { return proj_bn_.get(); }
  const BatchNorm2d* proj_bn() const { return proj_bn_.get(); }
  class ReLU& relu_out() { return *relu_out_; }
  const class ReLU& relu_out() const { return *relu_out_; }

  void visit(const std::function<void(Layer&)>& fn);
  void visit(const std::function<void(const Layer&)>& fn) const;

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<class ReLU> relu1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> proj_conv_;     // null for identity shortcut
  std::unique_ptr<BatchNorm2d> proj_bn_;  // null for identity shortcut
  std::unique_ptr<class ReLU> relu_out_;
};

}  // namespace capr::nn
