#include "testutil/testutil.h"

#include <limits>
#include <sstream>

namespace capr::testing {

AllcloseReport allclose_report(const Tensor& got, const Tensor& want, float atol, float rtol) {
  AllcloseReport r;
  if (got.shape() != want.shape()) {
    r.ok = false;
    r.mismatches = std::max(got.numel(), want.numel());
    r.message = "shape mismatch: got " + to_string(got.shape()) + ", want " +
                to_string(want.shape());
    return r;
  }
  float worst_excess = 0.0f;  // how far past tolerance the worst element is
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float g = got[i], w = want[i];
    const float ad = std::fabs(g - w);
    const float tol = atol + rtol * std::fabs(w);
    const bool bad = std::isnan(ad) || ad > tol;
    if (bad) ++r.mismatches;
    const float excess = std::isnan(ad) ? std::numeric_limits<float>::infinity() : ad - tol;
    if (r.worst_index < 0 || excess > worst_excess) {
      worst_excess = excess;
      r.worst_index = i;
      r.got = g;
      r.want = w;
    }
    if (!std::isnan(ad)) {
      r.max_abs_diff = std::max(r.max_abs_diff, ad);
      r.max_rel_err = std::max(r.max_rel_err, rel_err(g, w));
    } else {
      r.max_abs_diff = std::numeric_limits<float>::infinity();
      r.max_rel_err = std::numeric_limits<float>::infinity();
    }
  }
  r.ok = r.mismatches == 0;
  if (!r.ok) {
    std::ostringstream os;
    os << r.mismatches << "/" << got.numel() << " elements outside atol=" << atol
       << " rtol=" << rtol << "; worst at flat index " << r.worst_index << ": got " << r.got
       << ", want " << r.want << " (|diff| "
       << (std::isnan(r.got - r.want) ? std::numeric_limits<float>::quiet_NaN()
                                      : std::fabs(r.got - r.want))
       << ", max_abs_diff " << r.max_abs_diff << ")";
    r.message = os.str();
  }
  return r;
}

}  // namespace capr::testing
