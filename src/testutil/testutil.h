// Numeric test helpers shared by the test suite and src/verify.
//
// Promoted from tests/test_util.h so that the verification subsystem
// (gradcheck, kernel oracle) can reuse the same comparison and
// finite-difference primitives that the unit tests assert with. Keeps no
// GTest dependency: tests adapt AllcloseReport to EXPECT macros in
// tests/test_util.h.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace capr::testing {

/// Central finite difference d f / d x[i]. The difference quotient is
/// computed in the objective's own precision: a float-valued f quantises
/// the quotient at ULP(|f|) / (2 eps) — with |f| ~ 100 and eps = 1e-3
/// that alone is ~4e-3 of gradient error — so precision-sensitive
/// callers (gradcheck) pass a double-valued objective.
template <typename F>
inline auto numerical_grad(F&& f, float& x, float eps = 1e-3f) -> decltype(f()) {
  using R = decltype(f());
  const float saved = x;
  x = saved + eps;
  const R fp = f();
  x = saved - eps;
  const R fm = f();
  x = saved;
  return (fp - fm) / (R(2) * static_cast<R>(eps));
}

/// Max absolute difference between two tensors (shapes must match).
inline float max_abs_diff(const Tensor& a, const Tensor& b) {
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float d = std::fabs(a[i] - b[i]);
    m = d > m ? d : m;
  }
  return m;
}

/// Relative error tolerant of tiny denominators.
inline float rel_err(float got, float want, float floor = 1e-4f) {
  return std::fabs(got - want) / std::max(std::fabs(want), floor);
}

inline Tensor random_tensor(Shape shape, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  rng.fill_uniform(t, lo, hi);
  return t;
}

/// Outcome of an element-wise tensor comparison. Unlike a bare max-diff
/// float, pinpoints the worst offender so a failed assertion says WHERE
/// two tensors diverge, not just by how much.
struct AllcloseReport {
  bool ok = true;
  int64_t mismatches = 0;      // elements outside tolerance
  int64_t worst_index = -1;    // flat index of the worst mismatch
  float got = 0.0f;            // value at worst_index in `got`
  float want = 0.0f;           // value at worst_index in `want`
  float max_abs_diff = 0.0f;
  float max_rel_err = 0.0f;
  std::string message;         // human-readable summary (set when !ok)
};

/// Compares `got` against `want` element-wise. An element passes when
/// |got - want| <= atol + rtol * |want|; NaN never passes (including
/// NaN == NaN, so the check also catches NaN leaks). A shape mismatch
/// fails with worst_index == -1.
AllcloseReport allclose_report(const Tensor& got, const Tensor& want, float atol = 1e-5f,
                               float rtol = 0.0f);

}  // namespace capr::testing
