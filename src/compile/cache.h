// Plan caching: deterministic graph hashing plus a keyed plan store.
//
// A compiled ExecutionPlan is specialised to (structure, weights,
// compile options, per-image input shape). The hash splits the first two
// so tools can report a platform-stable structural identity (no float
// bytes) separately from the weight identity used for cache keying:
//
//   - `structural` covers the per-image input shape and, per node in id
//     order, the kind, path, resolved shapes, conv/linear attributes and
//     input edges. No floating-point bytes, so the value is stable
//     across machines and appears in the plan-dump goldens.
//   - `weights` covers every parameter tensor's raw float bytes (via the
//     const params() traversal) plus BatchNorm running statistics and
//     eps. Pruning surgery changes both halves (shapes move), while a
//     fine-tuning step changes only `weights` — either way the combined
//     key moves and a stale plan can never be served.
//
// Both are FNV-1a 64; plan_key() mixes them with CompileOptions::bits().
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "graph/graph.h"
#include "util/thread_annotations.h"

namespace capr::compile {

class ExecutionPlan;
struct CompileOptions;

struct GraphHash {
  uint64_t structural = 0;
  uint64_t weights = 0;
};

/// Hashes a well-formed graph (callers check g.ok() first; an ill-formed
/// graph hashes whatever prefix was built, which is fine because it is
/// never compiled or cached).
GraphHash hash_graph(const graph::ModuleGraph& g);

/// The cache key for a (graph, options) pair.
uint64_t plan_key(const GraphHash& h, const CompileOptions& opts);

/// Thread-safe key -> plan store. Only shareable() plans (no interpreted
/// fallback steps, hence no layer pointers) are ever inserted, so a hit
/// may be served to any model with the same structure and weights.
class PlanCache {
 public:
  std::shared_ptr<const ExecutionPlan> find(uint64_t key) CAPR_EXCLUDES(mu_);
  void insert(uint64_t key, std::shared_ptr<const ExecutionPlan> plan) CAPR_EXCLUDES(mu_);

  size_t size() const CAPR_EXCLUDES(mu_);
  void clear() CAPR_EXCLUDES(mu_);
  uint64_t hits() const CAPR_EXCLUDES(mu_);
  uint64_t misses() const CAPR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const ExecutionPlan>> plans_
      CAPR_GUARDED_BY(mu_);
  uint64_t hits_ CAPR_GUARDED_BY(mu_) = 0;
  uint64_t misses_ CAPR_GUARDED_BY(mu_) = 0;
};

/// Process-wide cache used by serving sessions.
PlanCache& global_plan_cache();

}  // namespace capr::compile
