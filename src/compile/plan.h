// ExecutionPlan: the immutable compiled form of a model's inference
// forward pass.
//
// The interpreted path (Layer::forward_inference) re-decides everything
// per call: it copies the filter matrix, re-packs the im2col operand for
// the tiled GEMM, allocates every intermediate activation, and walks the
// layer tree. A plan front-loads all of that to compile time
// (src/compile/compiler.h): layers become a flat vector of Steps over
// numbered value slots, BatchNorms can be folded into their producer
// convs, ReLU/LeakyReLU epilogues are fused into the producing step's
// write-back, and conv/linear weights are pre-packed into the tiled
// kernel's strip/panel layouts. At run time the plan only executes.
//
// Numerics contract (pinned by tests/compile_test.cpp):
//   - With BN folding OFF, a plan's output is BITWISE identical to the
//     interpreted forward under either GEMM kernel: every step either
//     re-runs the interpreted arithmetic through the same shared
//     out-of-line kernels (bn_eval, gemm_nt_ref_rows, the tiled
//     micro-kernel) or replicates its exact element-order float ops.
//     Epilogue fusion and weight pre-packing are exact transformations.
//   - BN folding is the one value-changing pass: it rewrites weights as
//     w' = w * gamma/sqrt(var+eps) in double precision, so folded plans
//     agree with the interpreted forward to a small relative epsilon,
//     not bitwise (documented in HACKING.md).
//
// Threading: a plan is immutable after build and holds no mutable state;
// any number of threads may run it concurrently, each with its own
// InferScratch. Per-run temporaries (value slots, im2col panels, GEMM
// pack buffers) all live in the scratch, and after one warm() at the
// target batch size the steady-state hot path performs zero
// float-buffer allocation (tensor/alloc_stats.h).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "nn/layer.h"
#include "tensor/gemm_tiled.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"

namespace capr::compile {

/// What a Step computes. One step usually covers one graph node; fusion
/// passes merge activation nodes into their producer's step.
enum class StepKind {
  kConv,
  kBatchNorm,
  kActivation,
  kAdd,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kFlatten,
  kLinear,
  kInterpreted,  // per-node fallback: runs the layer's forward_inference
};

const char* to_string(StepKind kind);

/// Activation fused into a step's write-back (kNone when unfused).
enum class Epilogue { kNone = 0, kReLU = 1, kLeakyReLU = 2 };

/// One executable operation over value slots. Slot -1 is the plan input
/// batch; every other slot is an InferScratch tensor indexed by number.
struct Step {
  StepKind kind = StepKind::kInterpreted;
  std::vector<graph::NodeId> nodes;  // graph nodes covered (>1 after fusion)
  int in0 = -1;
  int in1 = -1;  // second operand (kAdd only)
  int out = -1;
  Shape out_shape;  // per-image output shape (batch dim excluded)

  Epilogue act = Epilogue::kNone;
  float alpha = 0.0f;  // LeakyReLU slope when act == kLeakyReLU

  // kConv: weight is the (possibly BN-folded) [Cout, Cin*K*K] filter
  // matrix; bias [Cout] or empty. kLinear reuses weight/bias as the
  // [out_features, in_features] matrix and its bias.
  ConvGeom geom;
  int64_t out_channels = 0;  // conv Cout / linear out_features
  Tensor weight;
  Tensor bias;
  PackedA packed_w;   // kConv: pre-packed weight strips
  PackedB packed_in;  // kLinear: pre-packed transposed weight panels
  bool prepacked = false;
  bool folded_bn = false;  // kConv: a BatchNorm was folded into weight/bias

  // kBatchNorm: owned copies so a shareable plan outlives the model.
  std::vector<float> bn_gamma, bn_beta, bn_mean, bn_var;
  float bn_eps = 0.0f;

  // kMaxPool / kAvgPool
  int64_t window = 0, stride = 0;

  // kInterpreted: the backing layer. Plans holding any such pointer are
  // tied to their model instance and are never cached across models.
  const nn::Layer* layer = nullptr;
};

/// The compiled plan. Built by compile() (compiler.h); immutable after.
class ExecutionPlan {
 public:
  /// Runs the plan on a batch [N, C, H, W] (N may vary per call, shapes
  /// must match input_shape()). Returns a reference to the output slot
  /// inside `scratch` — valid until the next run with that scratch, and
  /// allocation-free at steady state.
  const Tensor& run_ref(const Tensor& batch, nn::InferScratch& scratch) const;

  /// Value-returning convenience: exactly one Tensor allocation (the
  /// copy of the output slot into the returned value).
  Tensor run(const Tensor& batch, nn::InferScratch& scratch) const;

  /// Pre-sizes every slot, arena buffer, and GEMM scratch in `scratch`
  /// by running a zero batch of `max_batch` images; afterwards runs at
  /// batch sizes <= max_batch allocate nothing.
  void warm(nn::InferScratch& scratch, int64_t max_batch) const;

  const std::vector<Step>& steps() const { return steps_; }
  const Shape& input_shape() const { return input_; }  // per-image [C, H, W]
  int slot_count() const { return num_slots_; }
  int output_slot() const { return output_slot_; }

  /// True when no step holds a layer pointer: the plan is self-contained
  /// and may be shared across models via the PlanCache.
  bool shareable() const { return interpreted_steps_ == 0; }
  int interpreted_steps() const { return interpreted_steps_; }
  int folded_batchnorms() const { return folded_bn_; }
  int fused_epilogues() const { return fused_epilogues_; }
  /// Total pre-packed weight floats held by the plan.
  int64_t prepacked_floats() const;
  /// Worst-case per-worker arena floats a run needs (im2col buffers).
  /// Computed once at build time from step geometry; the plan verifier
  /// (compile/verifier.h) re-derives the demand independently and
  /// rejects a plan whose declared value is too small.
  int64_t scratch_floats() const { return scratch_floats_; }

 private:
  friend struct PlanBuilder;
  friend struct PlanTestAccess;

  void exec_step(const Step& s, const Tensor& batch, nn::InferScratch& scratch) const;
  const Tensor& value(int slot, const Tensor& batch, nn::InferScratch& scratch) const;
  /// Re-derives scratch_floats_ from the current steps (PlanBuilder).
  void recompute_scratch_floats();

  std::vector<Step> steps_;
  Shape input_;
  int num_slots_ = 0;
  int output_slot_ = -1;
  int interpreted_steps_ = 0;
  int folded_bn_ = 0;
  int fused_epilogues_ = 0;
  int64_t scratch_floats_ = 0;
};

/// Test-only backdoor into a plan's private state. The corrupted-plan
/// suite (tests/plan_verifier_test.cpp) copies a real compiled plan and
/// tampers with it to prove the verifier rejects each corruption class;
/// nothing outside tests may use this.
struct PlanTestAccess {
  static std::vector<Step>& steps(ExecutionPlan& p) { return p.steps_; }
  static int& num_slots(ExecutionPlan& p) { return p.num_slots_; }
  static int& output_slot(ExecutionPlan& p) { return p.output_slot_; }
  static int64_t& scratch_floats(ExecutionPlan& p) { return p.scratch_floats_; }
  static int& interpreted_steps(ExecutionPlan& p) { return p.interpreted_steps_; }
};

}  // namespace capr::compile
