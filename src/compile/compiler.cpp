#include "compile/compiler.h"

#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace capr::compile {

/// Friend of ExecutionPlan: the only writer of its private state.
struct PlanBuilder {
  ExecutionPlan plan;
  int next_slot = 0;

  int fresh_slot() { return next_slot++; }
  std::vector<Step>& steps() { return plan.steps_; }
  void set_folded(int n) { plan.folded_bn_ = n; }
  void set_fused(int n) { plan.fused_epilogues_ = n; }

  /// Number of steps reading `slot` (through either operand).
  int consumers_of(int slot) const {
    int n = 0;
    for (const Step& s : plan.steps_) {
      if (s.in0 == slot) ++n;
      if (s.in1 == slot) ++n;
    }
    return n;
  }

  std::shared_ptr<const ExecutionPlan> finish(const graph::ModuleGraph& g, int output_slot) {
    plan.input_ = g.input_shape();
    plan.num_slots_ = next_slot;
    plan.output_slot_ = output_slot;
    plan.interpreted_steps_ = 0;
    for (const Step& s : plan.steps_) {
      if (s.kind == StepKind::kInterpreted) ++plan.interpreted_steps_;
    }
    plan.recompute_scratch_floats();
    return std::make_shared<const ExecutionPlan>(std::move(plan));
  }
};

bool requires_interpreted_fallback(const nn::Layer* layer) {
  if (layer == nullptr) return false;
  const nn::Instrument& in = layer->instrument();
  return !in.channel_scale.empty() || in.zero_flat_index.has_value();
}

namespace {

std::vector<float> to_vector(const Tensor& t) {
  return std::vector<float>(t.data(), t.data() + t.numel());
}

/// Pass 1: one step per node over numbered slots; Dropout elided.
void lower(const graph::ModuleGraph& g, PlanBuilder& b, std::vector<int>& slot_of) {
  slot_of.assign(g.nodes().size(), -1);
  for (const graph::Node& node : g.nodes()) {
    const int in0 = node.inputs.empty() ? -1 : slot_of[static_cast<size_t>(node.inputs[0])];

    if (requires_interpreted_fallback(node.layer)) {
      Step s;
      s.kind = StepKind::kInterpreted;
      s.nodes = {node.id};
      s.in0 = in0;
      s.out = b.fresh_slot();
      s.out_shape = node.out_shape;
      s.layer = node.layer;
      slot_of[static_cast<size_t>(node.id)] = s.out;
      b.steps().push_back(std::move(s));
      continue;
    }

    if (node.kind == graph::Kind::kDropout) {
      // Inference identity: alias the producer's slot, emit nothing.
      slot_of[static_cast<size_t>(node.id)] = in0;
      continue;
    }

    Step s;
    s.nodes = {node.id};
    s.in0 = in0;
    s.out_shape = node.out_shape;
    switch (node.kind) {
      case graph::Kind::kConv2d: {
        const auto* conv = dynamic_cast<const nn::Conv2d*>(node.layer);
        s.kind = StepKind::kConv;
        s.geom = ConvGeom{node.conv.in_channels, node.in_shape[1], node.in_shape[2],
                          node.conv.kernel,      node.conv.kernel, node.conv.stride,
                          node.conv.padding};
        s.out_channels = node.conv.out_channels;
        s.weight = conv->filter_matrix();
        if (conv->has_bias()) s.bias = conv->bias().value;
        break;
      }
      case graph::Kind::kBatchNorm2d: {
        const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(node.layer);
        s.kind = StepKind::kBatchNorm;
        s.bn_gamma = to_vector(bn->gamma().value);
        s.bn_beta = to_vector(bn->beta().value);
        s.bn_mean = to_vector(bn->running_mean());
        s.bn_var = to_vector(bn->running_var());
        s.bn_eps = bn->eps();
        break;
      }
      case graph::Kind::kReLU:
        s.kind = StepKind::kActivation;
        s.act = Epilogue::kReLU;
        break;
      case graph::Kind::kLeakyReLU: {
        const auto* lrelu = dynamic_cast<const nn::LeakyReLU*>(node.layer);
        s.kind = StepKind::kActivation;
        s.act = Epilogue::kLeakyReLU;
        s.alpha = lrelu->slope();
        break;
      }
      case graph::Kind::kMaxPool2d: {
        const auto* pool = dynamic_cast<const nn::MaxPool2d*>(node.layer);
        s.kind = StepKind::kMaxPool;
        s.window = pool->window();
        s.stride = pool->stride();
        break;
      }
      case graph::Kind::kAvgPool2d: {
        const auto* pool = dynamic_cast<const nn::AvgPool2d*>(node.layer);
        s.kind = StepKind::kAvgPool;
        s.window = pool->window();
        s.stride = pool->stride();
        break;
      }
      case graph::Kind::kGlobalAvgPool:
        s.kind = StepKind::kGlobalAvgPool;
        break;
      case graph::Kind::kFlatten:
        s.kind = StepKind::kFlatten;
        break;
      case graph::Kind::kLinear: {
        const auto* fc = dynamic_cast<const nn::Linear*>(node.layer);
        s.kind = StepKind::kLinear;
        s.out_channels = node.linear.out_features;
        s.weight = fc->weight().value;
        s.bias = fc->bias().value;  // Shape{0} (empty) when bias-less
        break;
      }
      case graph::Kind::kAdd:
        s.kind = StepKind::kAdd;
        s.in1 = slot_of[static_cast<size_t>(node.inputs[1])];
        break;
      case graph::Kind::kDropout:
        break;  // handled above
    }
    s.out = b.fresh_slot();
    slot_of[static_cast<size_t>(node.id)] = s.out;
    b.steps().push_back(std::move(s));
  }
}

/// Pass 2 (eps-bounded): BatchNorm folded into its sole-producer conv.
/// The fold runs in double precision: w' = w * gamma/sqrt(var + eps),
/// b' = beta + (b - mean) * gamma/sqrt(var + eps).
int fold_batchnorm(PlanBuilder& b) {
  int folded = 0;
  auto& steps = b.steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind != StepKind::kBatchNorm) continue;
    Step* conv = nullptr;
    for (Step& p : steps) {
      if (p.kind == StepKind::kConv && p.out == steps[i].in0) {
        conv = &p;
        break;
      }
    }
    if (conv == nullptr) continue;
    // Legality: the BN must be the conv's only consumer; a second reader
    // of the pre-BN activation would observe folded values.
    if (b.consumers_of(conv->out) != 1) continue;

    Step& bn = steps[i];
    const int64_t cout = conv->out_channels;
    const int64_t krows = conv->weight.dim(1);
    Tensor bias({cout});
    for (int64_t c = 0; c < cout; ++c) {
      const double inv = 1.0 / std::sqrt(static_cast<double>(bn.bn_var[c]) +
                                         static_cast<double>(bn.bn_eps));
      const double scale = static_cast<double>(bn.bn_gamma[c]) * inv;
      float* row = conv->weight.data() + c * krows;
      for (int64_t k = 0; k < krows; ++k) {
        row[k] = static_cast<float>(static_cast<double>(row[k]) * scale);
      }
      const double b0 = conv->bias.empty() ? 0.0 : static_cast<double>(conv->bias[c]);
      bias[c] = static_cast<float>(static_cast<double>(bn.bn_beta[c]) +
                                   (b0 - static_cast<double>(bn.bn_mean[c])) * scale);
    }
    conv->bias = std::move(bias);
    conv->out = bn.out;
    conv->folded_bn = true;
    conv->nodes.insert(conv->nodes.end(), bn.nodes.begin(), bn.nodes.end());
    steps.erase(steps.begin() + static_cast<std::ptrdiff_t>(i));
    --i;
    ++folded;
  }
  return folded;
}

/// Pass 3 (exact): a ReLU/LeakyReLU step merges into the write-back of
/// its sole producer. Element-wise, so fused output is bitwise identical.
int fuse_epilogues(PlanBuilder& b) {
  int fused = 0;
  auto& steps = b.steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind != StepKind::kActivation) continue;
    Step* prod = nullptr;
    for (Step& p : steps) {
      if (&p == &steps[i] || p.out != steps[i].in0) continue;
      if (p.kind == StepKind::kInterpreted || p.kind == StepKind::kActivation) break;
      if (p.act != Epilogue::kNone) break;  // already carries an epilogue
      prod = &p;
      break;
    }
    if (prod == nullptr) continue;
    if (b.consumers_of(prod->out) != 1) continue;

    Step& act = steps[i];
    prod->act = act.act;
    prod->alpha = act.alpha;
    prod->out = act.out;
    prod->nodes.insert(prod->nodes.end(), act.nodes.begin(), act.nodes.end());
    steps.erase(steps.begin() + static_cast<std::ptrdiff_t>(i));
    --i;
    ++fused;
  }
  return fused;
}

/// Pass 4 (exact): weights move into the tiled kernel's pack layouts so
/// the per-call re-pack disappears from the hot path.
void prepack_weights(PlanBuilder& b) {
  for (Step& s : b.steps()) {
    if (s.kind == StepKind::kConv) {
      // The strip layout depends on the tuning config (mc/kc/mr), so
      // resolve the config for the GEMM this step will actually run —
      // [out_channels, krows] x [krows, col_cols] — and bake it into the
      // PackedA. The packed executor replays exactly that config.
      const GemmTuneConfig cfg = resolve_gemm_config(
          GemmVariant::kNN, s.out_channels, s.weight.dim(1), s.geom.col_cols());
      s.packed_w = pack_a_full(s.weight.data(), s.out_channels, s.weight.dim(1), cfg);
      s.prepacked = true;
    } else if (s.kind == StepKind::kLinear) {
      s.packed_in = pack_b_nt(s.weight.data(), s.out_channels, s.weight.dim(1));
      s.prepacked = true;
    }
  }
}

}  // namespace

std::string CompileError::format() const {
  std::string out = "node " + std::to_string(node);
  if (!path.empty()) out += " (" + path + ")";
  out += ": " + message;
  return out;
}

CompileResult compile(const graph::ModuleGraph& g, const CompileOptions& opts) {
  CompileResult result;
  result.key = plan_key(hash_graph(g), opts);

  if (!g.ok()) {
    const graph::GraphError& err = *g.error();
    CompileError ce;
    ce.code = CompileError::Code::kIllFormedGraph;
    ce.node = err.node;
    ce.path = err.path;
    ce.message = err.format();
    result.errors.push_back(std::move(ce));
    return result;
  }
  if (g.nodes().empty()) {
    CompileError ce;
    ce.code = CompileError::Code::kEmptyGraph;
    ce.message = "graph has no nodes to compile";
    result.errors.push_back(std::move(ce));
    return result;
  }

  PlanBuilder b;
  std::vector<int> slot_of;
  lower(g, b, slot_of);
  if (opts.fold_batchnorm) b.set_folded(fold_batchnorm(b));
  if (opts.fuse_epilogues) b.set_fused(fuse_epilogues(b));
  if (opts.prepack_weights) prepack_weights(b);

  const int output_slot = slot_of[g.nodes().size() - 1];
  std::shared_ptr<const ExecutionPlan> plan = b.finish(g, output_slot);

  // Mandatory post-compile lint: every plan is machine-checked against
  // the graph it lowers before it can be returned, cached, or served.
  PlanLint lint = lint_plan(*plan, g);
  if (!lint.ok()) {
    result.lint = lint.diags();
    CompileError ce;
    ce.code = CompileError::Code::kPlanRejected;
    ce.message = "emitted plan failed verification:\n" + lint.to_string();
    result.errors.push_back(std::move(ce));
    return result;  // plan stays null: a rejected plan must never run
  }

  result.plan = std::move(plan);
  result.interpreted_nodes = result.plan->interpreted_steps();
  return result;
}

CompileResult compile_cached(const graph::ModuleGraph& g, const CompileOptions& opts,
                             PlanCache& cache) {
  const uint64_t key = plan_key(hash_graph(g), opts);
  if (auto plan = cache.find(key)) {
    CompileResult result;
    result.plan = std::move(plan);
    result.cache_hit = true;
    result.key = key;
    return result;
  }
  CompileResult result = compile(g, opts);
  if (result.plan && result.plan->shareable()) cache.insert(key, result.plan);
  return result;
}

}  // namespace capr::compile
