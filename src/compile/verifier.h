// ExecutionPlan static verifier: post-compile lint of the lowered IR.
//
// The compiler's passes are individually simple, but their composition
// (slot aliasing for Dropout elision, BN folds retargeting output slots,
// epilogue fusion merging steps, ahead-of-time weight packing) leaves
// plenty of room for an emitted plan to be subtly wrong while still
// executing without crashing. lint_plan() re-derives, from the plan and
// the ModuleGraph it claims to lower, every structural invariant the
// executor relies on:
//
//   - every slot is defined before use and written by exactly one step
//     (E-PLAN-USE-BEFORE-DEF, E-PLAN-MULTI-WRITER, E-PLAN-SLOT);
//   - slot aliasing only elides inference identities, and step operands
//     resolve to exactly the slots the graph edges imply (E-PLAN-ALIAS);
//   - step order is consistent with ModuleGraph topology, and each step
//     implements the node(s) it claims to cover (E-PLAN-ORDER);
//   - declared output shapes agree with the graph's resolved shapes and
//     with each step's own geometry/parameters (E-PLAN-SHAPE);
//   - the plan's declared scratch pre-size covers the worst-case im2col
//     demand of its conv steps (E-PLAN-SCRATCH);
//   - pre-packed operands agree with the tiled-kernel strip/panel layout
//     they will be fed to (E-PLAN-PANEL);
//   - interpreted-fallback steps appear exactly on the nodes whose layer
//     carries active interventions — no more, no fewer (E-PLAN-FALLBACK);
//   - the declared output slot exists and is defined (E-PLAN-OUTPUT).
//
// Like CompileError and analysis::Diagnostic, findings are recorded
// values with stable machine codes — the verifier never throws, even on
// arbitrarily corrupted plans (tests/plan_verifier_test.cpp feeds it
// hand-mangled IR). compile() runs it on every plan it builds and
// refuses to return a plan that fails (CompileError::Code::kPlanRejected);
// `capr-analyze --lint-plan` exposes the same pass on the command line,
// and CI lints all committed golden plans.
#pragma once

#include <string>
#include <vector>

#include "compile/plan.h"
#include "graph/graph.h"

namespace capr::compile {

/// Stable machine codes for plan-lint findings. The rendered "E-PLAN-*"
/// strings extend the analyzer's E-SHAPE…E-THRESHOLD family and are part
/// of the tool output contract: existing codes never change meaning.
enum class PlanDiagCode {
  kSlotRange,         // E-PLAN-SLOT: slot or node id outside the plan/graph
  kUseBeforeDef,      // E-PLAN-USE-BEFORE-DEF: operand slot read before any write
  kMultiWriter,       // E-PLAN-MULTI-WRITER: two steps write one slot
  kBadAlias,          // E-PLAN-ALIAS: elision/operand aliasing is illegal
  kStepOrder,         // E-PLAN-ORDER: step order/coverage violates graph topology
  kShapeDisagree,     // E-PLAN-SHAPE: declared shape disagrees with graph/geometry
  kScratchUndersized, // E-PLAN-SCRATCH: declared pre-size below worst-case demand
  kPanelShape,        // E-PLAN-PANEL: packed operand disagrees with kernel layout
  kSpuriousFallback,  // E-PLAN-FALLBACK: interpreted step without (or missing on) interventions
  kBadOutput,         // E-PLAN-OUTPUT: output slot missing or never defined
};

/// The stable "E-PLAN-*" rendering of a code.
const char* to_string(PlanDiagCode code);

/// One lint finding. `step` is an index into ExecutionPlan::steps() (-1
/// for plan-level findings); `node` the graph node involved, if any.
struct PlanDiag {
  PlanDiagCode code = PlanDiagCode::kSlotRange;
  int step = -1;
  graph::NodeId node = graph::kNoNode;
  std::string message;

  /// "[E-PLAN-ORDER] step 4, node 7: <message>"-style rendering.
  std::string format() const;
};

/// The result of one lint pass: empty means the plan is well-formed.
class PlanLint {
 public:
  bool ok() const { return diags_.empty(); }
  const std::vector<PlanDiag>& diags() const { return diags_; }

  /// True when any finding carries `code` (test and tool convenience).
  bool has(PlanDiagCode code) const;

  /// All findings, one formatted line each, '\n'-separated.
  std::string to_string() const;

  void add(PlanDiag diag) { diags_.push_back(std::move(diag)); }

 private:
  std::vector<PlanDiag> diags_;
};

/// Lints `plan` against the graph it was compiled from. Never throws:
/// corrupt ids/slots become findings, not crashes. `g` must be the same
/// built graph (same nodes, same shapes) that produced the plan; an
/// ill-formed graph yields a single E-PLAN-ORDER finding because the
/// topology checks have nothing sound to compare against.
PlanLint lint_plan(const ExecutionPlan& plan, const graph::ModuleGraph& g);

}  // namespace capr::compile
