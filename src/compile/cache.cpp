#include "compile/cache.h"

#include <cstring>

#include "compile/compiler.h"
#include "nn/batchnorm.h"

namespace capr::compile {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void mix_bytes(uint64_t& h, const void* p, size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void mix_i64(uint64_t& h, int64_t v) { mix_bytes(h, &v, sizeof(v)); }

void mix_u64(uint64_t& h, uint64_t v) { mix_bytes(h, &v, sizeof(v)); }

void mix_str(uint64_t& h, const std::string& s) {
  mix_i64(h, static_cast<int64_t>(s.size()));
  mix_bytes(h, s.data(), s.size());
}

void mix_shape(uint64_t& h, const Shape& s) {
  mix_i64(h, static_cast<int64_t>(s.size()));
  for (int64_t d : s) mix_i64(h, d);
}

void mix_floats(uint64_t& h, const float* p, int64_t n) {
  mix_i64(h, n);
  mix_bytes(h, p, static_cast<size_t>(n) * sizeof(float));
}

}  // namespace

GraphHash hash_graph(const graph::ModuleGraph& g) {
  GraphHash out;

  // Structural half: shapes, kinds, attributes, edges. No float bytes,
  // so the value is platform-stable and safe to commit in goldens.
  uint64_t s = kFnvOffset;
  mix_shape(s, g.input_shape());
  mix_i64(s, static_cast<int64_t>(g.nodes().size()));
  for (const graph::Node& node : g.nodes()) {
    mix_i64(s, static_cast<int64_t>(node.kind));
    mix_str(s, node.path);
    mix_shape(s, node.in_shape);
    mix_shape(s, node.out_shape);
    mix_i64(s, node.conv.in_channels);
    mix_i64(s, node.conv.out_channels);
    mix_i64(s, node.conv.kernel);
    mix_i64(s, node.conv.stride);
    mix_i64(s, node.conv.padding);
    mix_i64(s, node.conv.bias ? 1 : 0);
    mix_i64(s, node.linear.in_features);
    mix_i64(s, node.linear.out_features);
    mix_i64(s, static_cast<int64_t>(node.inputs.size()));
    for (graph::NodeId id : node.inputs) mix_i64(s, id);
  }
  out.structural = s;

  // Weight half: every parameter's raw bytes plus the BatchNorm running
  // statistics (not Params, but they shape inference output).
  uint64_t w = kFnvOffset;
  for (const graph::Node& node : g.nodes()) {
    if (node.layer == nullptr) continue;
    const nn::Layer& layer = *node.layer;
    for (const nn::Param* p : layer.params()) {
      mix_shape(w, p->value.shape());
      mix_floats(w, p->value.data(), p->value.numel());
    }
    if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(node.layer)) {
      mix_floats(w, bn->running_mean().data(), bn->running_mean().numel());
      mix_floats(w, bn->running_var().data(), bn->running_var().numel());
      const float eps = bn->eps();
      mix_bytes(w, &eps, sizeof(eps));
    }
  }
  out.weights = w;
  return out;
}

uint64_t plan_key(const GraphHash& h, const CompileOptions& opts) {
  uint64_t key = kFnvOffset;
  mix_u64(key, h.structural);
  mix_u64(key, h.weights);
  mix_u64(key, opts.bits());
  return key;
}

std::shared_ptr<const ExecutionPlan> PlanCache::find(uint64_t key) {
  MutexLock lock(mu_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void PlanCache::insert(uint64_t key, std::shared_ptr<const ExecutionPlan> plan) {
  MutexLock lock(mu_);
  plans_[key] = std::move(plan);
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return plans_.size();
}

void PlanCache::clear() {
  MutexLock lock(mu_);
  plans_.clear();
  hits_ = 0;
  misses_ = 0;
}

uint64_t PlanCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

PlanCache& global_plan_cache() {
  static PlanCache cache;
  return cache;
}

}  // namespace capr::compile
