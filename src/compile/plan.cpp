#include "compile/plan.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "nn/eval_kernels.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace capr::compile {
namespace {

nn::EvalAct to_eval_act(Epilogue act) {
  switch (act) {
    case Epilogue::kReLU: return nn::EvalAct::kReLU;
    case Epilogue::kLeakyReLU: return nn::EvalAct::kLeakyReLU;
    case Epilogue::kNone: break;
  }
  return nn::EvalAct::kNone;
}

/// Unfused activation pass over a contiguous range: the exact single-op
/// loops of ReLU::forward_inference / LeakyReLU::forward_inference.
void apply_act(Epilogue act, float alpha, float* p, int64_t count) {
  if (act == Epilogue::kReLU) {
    for (int64_t i = 0; i < count; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  } else if (act == Epilogue::kLeakyReLU) {
    for (int64_t i = 0; i < count; ++i) p[i] = p[i] > 0.0f ? p[i] : alpha * p[i];
  }
}

/// Conv bias + activation applied after an unfused GEMM: bitwise the
/// bias loop of Conv2d::compute_forward followed by the activation
/// layer's element pass.
void apply_bias_act(const Step& s, float* obase, int64_t cout, int64_t cols) {
  if (!s.bias.empty()) {
    for (int64_t c = 0; c < cout; ++c) {
      const float b = s.bias[c];
      float* row = obase + c * cols;
      for (int64_t j = 0; j < cols; ++j) row[j] += b;
    }
  }
  apply_act(s.act, s.alpha, obase, cout * cols);
}

void exec_conv(const Step& s, const Tensor& in, Tensor& out, ScratchArena& arena) {
  const ConvGeom& g = s.geom;
  const int64_t n = in.dim(0);
  const int64_t cols = g.col_cols();
  const int64_t krows = g.col_rows();
  const int64_t cout = s.out_channels;
  const int64_t in_stride = g.in_channels * g.in_h * g.in_w;
  out.reset({n, cout, g.out_h(), g.out_w()});
  // Worker layout mirrors Conv2d::compute_forward so the parallel_for
  // decisions (and therefore every nested-GEMM dispatch) are identical.
  const int workers = std::max(1, std::min<int>(num_threads(), static_cast<int>(n)));
  arena.prepare(workers);
  const bool tiled = gemm_kernel() == GemmKernel::kTiled;
  parallel_for(0, n, [&](int tid, int64_t i) {
    float* obase = out.data() + i * cout * cols;
    if (tiled) {
      if (s.prepacked) {
        float* panels = arena.floats(tid, 0, packed_b_floats(krows, cols));
        if (im2col_packed(in.data() + i * in_stride, g, panels)) {
          GemmEpilogue ep;
          ep.bias_row = s.bias.empty() ? nullptr : s.bias.data();
          ep.act = static_cast<int>(s.act);
          ep.alpha = s.alpha;
          gemm_tiled_packed(s.packed_w, panels, obase, cols, ep);
          return;
        }
        // Non-finite activations: fall through to the strong-zero
        // reference product, the same condition and fallback pack_b
        // triggers on the per-call tiled path.
      } else {
        float* col = arena.floats(tid, 1, krows * cols);
        im2col(in.data() + i * in_stride, g, col);
        gemm_tiled(s.weight.data(), col, obase, cout, krows, cols, /*accumulate=*/false,
                   &arena.gemm(tid));
        apply_bias_act(s, obase, cout, cols);
        return;
      }
    }
    float* col = arena.floats(tid, 1, krows * cols);
    im2col(in.data() + i * in_stride, g, col);
    gemm(s.weight.data(), col, obase, cout, krows, cols, /*accumulate=*/false);
    apply_bias_act(s, obase, cout, cols);
  });
}

void exec_batchnorm(const Step& s, const Tensor& in, Tensor& out) {
  const int64_t n = in.dim(0);
  const int64_t c = s.out_shape[0];
  const int64_t plane = s.out_shape[1] * s.out_shape[2];
  out.reset({n, c, s.out_shape[1], s.out_shape[2]});
  nn::bn_eval(in.data(), out.data(), nullptr, nullptr, n, c, plane, s.bn_gamma.data(),
              s.bn_beta.data(), s.bn_mean.data(), s.bn_var.data(), s.bn_eps, to_eval_act(s.act),
              s.alpha);
}

void exec_activation(const Step& s, const Tensor& in, Tensor& out) {
  Shape shape = in.shape();
  out.reset(std::move(shape));
  const float* p = in.data();
  float* o = out.data();
  const int64_t count = in.numel();
  if (s.act == Epilogue::kLeakyReLU) {
    const float slope = s.alpha;
    for (int64_t i = 0; i < count; ++i) o[i] = p[i] > 0.0f ? p[i] : slope * p[i];
  } else {
    for (int64_t i = 0; i < count; ++i) o[i] = p[i] > 0.0f ? p[i] : 0.0f;
  }
}

void exec_add(const Step& s, const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument("ExecutionPlan: residual add shape mismatch");
  }
  Shape shape = a.shape();
  out.reset(std::move(shape));
  const float* pa = a.data();
  const float* pb = b.data();
  float* o = out.data();
  const int64_t count = a.numel();
  if (s.act == Epilogue::kReLU) {
    // t = a + b then ReLU on the rounded sum: bitwise add_inplace
    // followed by the separate ReLU pass.
    for (int64_t i = 0; i < count; ++i) {
      const float t = pa[i] + pb[i];
      o[i] = t > 0.0f ? t : 0.0f;
    }
  } else if (s.act == Epilogue::kLeakyReLU) {
    const float slope = s.alpha;
    for (int64_t i = 0; i < count; ++i) {
      const float t = pa[i] + pb[i];
      o[i] = t > 0.0f ? t : slope * t;
    }
  } else {
    for (int64_t i = 0; i < count; ++i) o[i] = pa[i] + pb[i];
  }
}

void exec_maxpool(const Step& s, const Tensor& in, Tensor& out) {
  const int64_t n = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int64_t oh = s.out_shape[1], ow = s.out_shape[2];
  out.reset({n, c, oh, ow});
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t dy = 0; dy < s.window; ++dy) {
            const int64_t iy = y * s.stride + dy;
            for (int64_t dx = 0; dx < s.window; ++dx) {
              const int64_t ix = x * s.stride + dx;
              const float v = plane[iy * w + ix];
              if (v > best) best = v;
            }
          }
          out[oidx] = best;
        }
      }
    }
  }
  apply_act(s.act, s.alpha, out.data(), out.numel());
}

void exec_avgpool(const Step& s, const Tensor& in, Tensor& out) {
  const int64_t n = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int64_t oh = s.out_shape[1], ow = s.out_shape[2];
  out.reset({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(s.window * s.window);
  int64_t oidx = 0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in.data() + (i * c + ch) * h * w;
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x, ++oidx) {
          double acc = 0.0;
          for (int64_t dy = 0; dy < s.window; ++dy) {
            const float* row = plane + (y * s.stride + dy) * w + x * s.stride;
            for (int64_t dx = 0; dx < s.window; ++dx) acc += row[dx];
          }
          out[oidx] = static_cast<float>(acc) * inv;
        }
      }
    }
  }
  apply_act(s.act, s.alpha, out.data(), out.numel());
}

void exec_gavgpool(const Step& s, const Tensor& in, Tensor& out) {
  const int64_t n = in.dim(0), c = in.dim(1), plane = in.dim(2) * in.dim(3);
  out.reset({n, c});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* p = in.data() + (i * c + ch) * plane;
      double acc = 0.0;
      for (int64_t k = 0; k < plane; ++k) acc += p[k];
      out[i * c + ch] = static_cast<float>(acc / plane);
    }
  }
  apply_act(s.act, s.alpha, out.data(), out.numel());
}

void exec_flatten(const Step& s, const Tensor& in, Tensor& out) {
  const int64_t n = in.dim(0);
  out.reset({n, s.out_shape[0]});
  std::memcpy(out.data(), in.data(), static_cast<size_t>(in.numel()) * sizeof(float));
  apply_act(s.act, s.alpha, out.data(), out.numel());
}

void exec_linear(const Step& s, const Tensor& in, Tensor& out, ScratchArena& arena) {
  const int64_t n = in.dim(0);
  const int64_t infeat = in.dim(1);
  const int64_t outfeat = s.out_channels;
  out.reset({n, outfeat});
  arena.prepare(1);
  const bool tiled = gemm_kernel() == GemmKernel::kTiled;
  if (tiled && s.prepacked && s.packed_in.finite) {
    GemmEpilogue ep;
    ep.bias_col = s.bias.empty() ? nullptr : s.bias.data();
    ep.act = static_cast<int>(s.act);
    ep.alpha = s.alpha;
    gemm_tiled_packed_nt(in.data(), s.packed_in, out.data(), n, ep, &arena.gemm(0));
    return;
  }
  if (tiled) {
    // Not pre-packed, or the weight scan found non-finite values: the
    // per-call tiled NT kernel, which itself takes the transpose +
    // strong-zero reference fallback exactly as matmul_nt would.
    gemm_tiled_nt(in.data(), s.weight.data(), out.data(), n, infeat, outfeat,
                  /*accumulate=*/false, &arena.gemm(0));
  } else {
    gemm_nt_ref_rows(in.data(), s.weight.data(), out.data(), n, infeat, outfeat);
  }
  if (!s.bias.empty()) {
    for (int64_t i = 0; i < n; ++i) {
      float* row = out.data() + i * outfeat;
      for (int64_t j = 0; j < outfeat; ++j) row[j] += s.bias[j];
    }
  }
  apply_act(s.act, s.alpha, out.data(), out.numel());
}

}  // namespace

const char* to_string(StepKind kind) {
  switch (kind) {
    case StepKind::kConv: return "conv";
    case StepKind::kBatchNorm: return "batchnorm";
    case StepKind::kActivation: return "activation";
    case StepKind::kAdd: return "add";
    case StepKind::kMaxPool: return "maxpool";
    case StepKind::kAvgPool: return "avgpool";
    case StepKind::kGlobalAvgPool: return "gavgpool";
    case StepKind::kFlatten: return "flatten";
    case StepKind::kLinear: return "linear";
    case StepKind::kInterpreted: return "interpreted";
  }
  return "unknown";
}

const Tensor& ExecutionPlan::value(int slot, const Tensor& batch,
                                   nn::InferScratch& scratch) const {
  return slot < 0 ? batch : scratch.slots[static_cast<size_t>(slot)];
}

void ExecutionPlan::exec_step(const Step& s, const Tensor& batch,
                              nn::InferScratch& scratch) const {
  const Tensor& in = value(s.in0, batch, scratch);
  Tensor& out = scratch.slots[static_cast<size_t>(s.out)];
  switch (s.kind) {
    case StepKind::kConv: exec_conv(s, in, out, scratch.arena); break;
    case StepKind::kBatchNorm: exec_batchnorm(s, in, out); break;
    case StepKind::kActivation: exec_activation(s, in, out); break;
    case StepKind::kAdd: exec_add(s, in, value(s.in1, batch, scratch), out); break;
    case StepKind::kMaxPool: exec_maxpool(s, in, out); break;
    case StepKind::kAvgPool: exec_avgpool(s, in, out); break;
    case StepKind::kGlobalAvgPool: exec_gavgpool(s, in, out); break;
    case StepKind::kFlatten: exec_flatten(s, in, out); break;
    case StepKind::kLinear: exec_linear(s, in, out, scratch.arena); break;
    case StepKind::kInterpreted: out = s.layer->forward_inference(in, scratch); break;
  }
}

const Tensor& ExecutionPlan::run_ref(const Tensor& batch, nn::InferScratch& scratch) const {
  if (batch.rank() != static_cast<int64_t>(input_.size()) + 1) {
    throw std::invalid_argument("ExecutionPlan: batch rank " + std::to_string(batch.rank()) +
                                " does not match compiled input " + capr::to_string(input_));
  }
  for (size_t d = 0; d < input_.size(); ++d) {
    if (batch.dim(static_cast<int64_t>(d) + 1) != input_[d]) {
      throw std::invalid_argument("ExecutionPlan: batch shape " + capr::to_string(batch.shape()) +
                                  " does not match compiled input " + capr::to_string(input_));
    }
  }
  if (scratch.slots.size() < static_cast<size_t>(num_slots_)) {
    scratch.slots.resize(static_cast<size_t>(num_slots_));
  }
  for (const Step& s : steps_) exec_step(s, batch, scratch);
  return scratch.slots[static_cast<size_t>(output_slot_)];
}

Tensor ExecutionPlan::run(const Tensor& batch, nn::InferScratch& scratch) const {
  return run_ref(batch, scratch);
}

void ExecutionPlan::warm(nn::InferScratch& scratch, int64_t max_batch) const {
  if (max_batch < 1) max_batch = 1;
  // Pre-size the per-worker GEMM scratch for the tuning config dispatch
  // resolves on each step's shape (the installed table decides mc/kc/mr
  // and the strategy, hence the buffer demand), then run one zero batch
  // so the arena slot buffers also reach steady state. After warm() the
  // hot loop allocates nothing, whatever table is installed.
  const int workers =
      std::max(1, std::min<int>(num_threads(), static_cast<int>(max_batch)));
  scratch.arena.prepare(workers);
  for (const Step& s : steps_) {
    if (s.kind == StepKind::kConv) {
      for (int t = 0; t < workers; ++t) {
        reserve_gemm_scratch(scratch.arena.gemm(t), GemmVariant::kNN, s.out_channels,
                             s.geom.col_rows(), s.geom.col_cols());
      }
    } else if (s.kind == StepKind::kLinear && s.weight.rank() == 2) {
      reserve_gemm_scratch(scratch.arena.gemm(0), GemmVariant::kNT, max_batch,
                           s.weight.dim(1), s.out_channels);
    }
  }
  Shape shape;
  shape.reserve(input_.size() + 1);
  shape.push_back(max_batch);
  for (int64_t e : input_) shape.push_back(e);
  const Tensor zero(shape);
  (void)run_ref(zero, scratch);
}

int64_t ExecutionPlan::prepacked_floats() const {
  int64_t total = 0;
  for (const Step& s : steps_) {
    total += static_cast<int64_t>(s.packed_w.strips.size());
    total += static_cast<int64_t>(s.packed_in.panels.size());
  }
  return total;
}

void ExecutionPlan::recompute_scratch_floats() {
  // Per-worker arena demand: slot 0 holds im2col panel buffers, slot 1
  // plain column matrices; each is sized to the largest conv that uses
  // it, matching ScratchArena's grow-only slots.
  int64_t panels = 0, col = 0;
  for (const Step& s : steps_) {
    if (s.kind != StepKind::kConv) continue;
    const int64_t krows = s.geom.col_rows();
    const int64_t cols = s.geom.col_cols();
    if (s.prepacked) panels = std::max(panels, packed_b_floats(krows, cols));
    col = std::max(col, krows * cols);
  }
  scratch_floats_ = panels + col;
}

}  // namespace capr::compile
