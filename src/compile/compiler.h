// The graph compiler: ModuleGraph -> ExecutionPlan.
//
// compile() runs a fixed pass pipeline (HACKING.md "Graph compiler"
// documents each pass and its legality rules):
//
//   1. lower            — one Step per graph node over numbered value
//                         slots; Dropout (inference identity) is elided
//                         by slot aliasing; any node whose layer has
//                         active read-only interventions (channel_scale
//                         or zero_flat_index) lowers to a kInterpreted
//                         fallback step so compiled serving honours them.
//   2. fold_batchnorm   — folds a BatchNorm into its single-producer
//                         conv's weights/bias (double-precision fold;
//                         the one eps-bounded pass). [opts.fold_batchnorm]
//   3. fuse_epilogues   — merges a ReLU/LeakyReLU step into its single
//                         producer's write-back. Exact. [opts.fuse_epilogues]
//   4. prepack_weights  — packs conv filter matrices into tiled A-strips
//                         and the linear weight into B-panels at build
//                         time. Exact. [opts.prepack_weights]
//   5. finalize         — slot count, output slot, stats.
//
// Compilation never throws on model problems: an ill-formed graph (or an
// empty one) produces a null plan plus recorded CompileError values
// naming the offending node, mirroring GraphError.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compile/cache.h"
#include "compile/plan.h"
#include "compile/verifier.h"
#include "graph/graph.h"

namespace capr::compile {

/// Pass toggles. Defaults enable every exact pass AND the eps-bounded
/// BN fold; serving modes that need the bitwise interpreted contract
/// compile with fold_batchnorm = false (serve/session.h).
struct CompileOptions {
  bool fold_batchnorm = true;
  bool fuse_epilogues = true;
  bool prepack_weights = true;

  /// Stable encoding mixed into the plan cache key.
  uint64_t bits() const {
    return (fold_batchnorm ? 1u : 0u) | (fuse_epilogues ? 2u : 0u) |
           (prepack_weights ? 4u : 0u);
  }
};

/// A recorded compilation failure (never thrown).
struct CompileError {
  enum class Code {
    kIllFormedGraph,  // ModuleGraph::build stopped at a bad edge
    kEmptyGraph,      // no nodes to compile
    kPlanRejected,    // the emitted plan failed lint_plan (see CompileResult::lint)
  };
  Code code = Code::kIllFormedGraph;
  graph::NodeId node = graph::kNoNode;
  std::string path;     // flattened position of the offending node
  std::string message;  // human-readable diagnostic

  /// "node 7 (12.conv2): <message>"-style rendering.
  std::string format() const;
};

struct CompileResult {
  /// Null when compilation failed (see errors). Shared so sessions and
  /// the cache can hold the same immutable plan.
  std::shared_ptr<const ExecutionPlan> plan;
  std::vector<CompileError> errors;
  /// Verifier findings when the plan was rejected (kPlanRejected); empty
  /// on success — compile() never returns a plan that failed lint_plan.
  std::vector<PlanDiag> lint;
  /// Nodes that fell back to per-node interpretation (interventions).
  int interpreted_nodes = 0;
  bool cache_hit = false;
  uint64_t key = 0;  // plan_key(hash_graph(g), opts)
};

/// True when serving must honour a read-only intervention on this layer
/// (mask simulation / Eq. 3 zero-outs): the node cannot be lowered to a
/// native step and must fall back to forward_inference. Shared between
/// the lowering pass and the plan verifier so both sides of the
/// fallback-legality contract apply the same predicate.
bool requires_interpreted_fallback(const nn::Layer* layer);

/// Compiles a built graph. `g` must outlive nothing: the plan copies all
/// weights it needs, except for kInterpreted fallback steps which pin the
/// backing model (plan->shareable() reports which case applies).
CompileResult compile(const graph::ModuleGraph& g, const CompileOptions& opts = {});

/// compile() with a cache lookup first. Only shareable plans are stored.
CompileResult compile_cached(const graph::ModuleGraph& g, const CompileOptions& opts,
                             PlanCache& cache);

}  // namespace capr::compile
