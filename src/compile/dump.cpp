#include "compile/dump.h"

#include <cstdio>
#include <sstream>

namespace capr::compile {
namespace {

void shape_json(std::ostringstream& os, const Shape& s) {
  os << '[';
  for (size_t i = 0; i < s.size(); ++i) {
    if (i != 0) os << ", ";
    os << s[i];
  }
  os << ']';
}

void ids_json(std::ostringstream& os, const std::vector<graph::NodeId>& ids) {
  os << '[';
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) os << ", ";
    os << ids[i];
  }
  os << ']';
}

const char* epilogue_name(Epilogue e) {
  switch (e) {
    case Epilogue::kNone: return "none";
    case Epilogue::kReLU: return "relu";
    case Epilogue::kLeakyReLU: return "leakyrelu";
  }
  return "unknown";
}

std::string hex64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string to_json(const ExecutionPlan& plan, const graph::ModuleGraph& g,
                    const CompileOptions& opts, const std::string& arch) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"capr-exec-plan-v1\",\n";
  os << "  \"arch\": \"" << arch << "\",\n";
  // Structural half only: weight bytes would make the golden depend on
  // the init RNG, which is seeded but float-format fragile.
  os << "  \"structural_hash\": \"" << hex64(hash_graph(g).structural) << "\",\n";
  os << "  \"options\": {\"fold_batchnorm\": " << (opts.fold_batchnorm ? "true" : "false")
     << ", \"fuse_epilogues\": " << (opts.fuse_epilogues ? "true" : "false")
     << ", \"prepack_weights\": " << (opts.prepack_weights ? "true" : "false") << "},\n";
  os << "  \"input_shape\": ";
  shape_json(os, plan.input_shape());
  os << ",\n  \"steps\": [\n";
  const auto& steps = plan.steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    os << "    {\"op\": \"" << to_string(s.kind) << "\", \"nodes\": ";
    ids_json(os, s.nodes);
    os << ", \"in0\": " << s.in0;
    if (s.in1 >= 0) os << ", \"in1\": " << s.in1;
    os << ", \"out\": " << s.out << ", \"out_shape\": ";
    shape_json(os, s.out_shape);
    os << ", \"epilogue\": \"" << epilogue_name(s.act) << "\"";
    if (s.kind == StepKind::kConv) {
      os << ", \"folded_bn\": " << (s.folded_bn ? "true" : "false")
         << ", \"prepacked\": " << (s.prepacked ? "true" : "false")
         << ", \"prepacked_floats\": " << static_cast<int64_t>(s.packed_w.strips.size());
      if (s.prepacked) {
        // Packing provenance: the tuning config the strips were laid out
        // for. Changes when a tuning table re-shapes the packed layout,
        // which is exactly what the golden diff should surface.
        os << ", \"packed_mc\": " << s.packed_w.cfg.mc
           << ", \"packed_kc\": " << s.packed_w.cfg.kc
           << ", \"packed_mr\": " << s.packed_w.cfg.mr
           << ", \"packed_strategy\": \"" << to_string(s.packed_w.cfg.strategy) << "\"";
      }
    } else if (s.kind == StepKind::kLinear) {
      os << ", \"prepacked\": " << (s.prepacked ? "true" : "false")
         << ", \"prepacked_floats\": " << static_cast<int64_t>(s.packed_in.panels.size());
    }
    os << "}" << (i + 1 < steps.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"summary\": {\"steps\": " << static_cast<int64_t>(steps.size())
     << ", \"slots\": " << plan.slot_count() << ", \"output_slot\": " << plan.output_slot()
     << ", \"interpreted_steps\": " << plan.interpreted_steps()
     << ", \"folded_batchnorms\": " << plan.folded_batchnorms()
     << ", \"fused_epilogues\": " << plan.fused_epilogues()
     << ", \"prepacked_floats\": " << plan.prepacked_floats()
     << ", \"scratch_floats\": " << plan.scratch_floats() << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace capr::compile
