#include "compile/verifier.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "compile/compiler.h"
#include "tensor/gemm_tiled.h"

namespace capr::compile {
namespace {

std::string shape_str(const Shape& s) { return capr::to_string(s); }

PlanDiag diag(PlanDiagCode code, int step, graph::NodeId node, std::string message) {
  PlanDiag d;
  d.code = code;
  d.step = step;
  d.node = node;
  d.message = std::move(message);
  return d;
}

/// The native StepKind a graph node lowers to (pass 1 of the compiler);
/// kInterpreted is accepted for any kind and handled separately.
bool kind_matches(graph::Kind node_kind, StepKind step_kind) {
  switch (node_kind) {
    case graph::Kind::kConv2d: return step_kind == StepKind::kConv;
    case graph::Kind::kBatchNorm2d: return step_kind == StepKind::kBatchNorm;
    case graph::Kind::kReLU:
    case graph::Kind::kLeakyReLU: return step_kind == StepKind::kActivation;
    case graph::Kind::kMaxPool2d: return step_kind == StepKind::kMaxPool;
    case graph::Kind::kAvgPool2d: return step_kind == StepKind::kAvgPool;
    case graph::Kind::kGlobalAvgPool: return step_kind == StepKind::kGlobalAvgPool;
    case graph::Kind::kFlatten: return step_kind == StepKind::kFlatten;
    case graph::Kind::kLinear: return step_kind == StepKind::kLinear;
    case graph::Kind::kAdd: return step_kind == StepKind::kAdd;
    case graph::Kind::kDropout: return false;  // only ever elided or interpreted
  }
  return false;
}

/// Kinds the fusion passes may append to a producer's step (BN fold,
/// ReLU/LeakyReLU epilogue fusion). Anything else in a tail position is
/// a coverage lie.
bool fusable_kind(graph::Kind kind) {
  return kind == graph::Kind::kBatchNorm2d || kind == graph::Kind::kReLU ||
         kind == graph::Kind::kLeakyReLU;
}

/// Where a node's value lives after aliasing: the out slot of the step
/// covering it, or — for elided nodes — of the nearest covered producer
/// up the inputs[0] chain (the batch, slot -1, when the chain runs out).
struct Resolved {
  int slot = -1;
  graph::NodeId producer = graph::kNoNode;  // covered node the slot belongs to
  bool unknown = false;       // broken id / cycle: cannot resolve
  bool intermediate = false;  // resolves to a fused-away (non-final) node
};

}  // namespace

const char* to_string(PlanDiagCode code) {
  switch (code) {
    case PlanDiagCode::kSlotRange: return "E-PLAN-SLOT";
    case PlanDiagCode::kUseBeforeDef: return "E-PLAN-USE-BEFORE-DEF";
    case PlanDiagCode::kMultiWriter: return "E-PLAN-MULTI-WRITER";
    case PlanDiagCode::kBadAlias: return "E-PLAN-ALIAS";
    case PlanDiagCode::kStepOrder: return "E-PLAN-ORDER";
    case PlanDiagCode::kShapeDisagree: return "E-PLAN-SHAPE";
    case PlanDiagCode::kScratchUndersized: return "E-PLAN-SCRATCH";
    case PlanDiagCode::kPanelShape: return "E-PLAN-PANEL";
    case PlanDiagCode::kSpuriousFallback: return "E-PLAN-FALLBACK";
    case PlanDiagCode::kBadOutput: return "E-PLAN-OUTPUT";
  }
  return "E-PLAN-UNKNOWN";
}

std::string PlanDiag::format() const {
  std::string out = "[";
  out += compile::to_string(code);
  out += "]";
  if (step >= 0) out += " step " + std::to_string(step);
  if (node != graph::kNoNode) {
    out += step >= 0 ? ", " : " ";
    out += "node " + std::to_string(node);
  }
  out += ": " + message;
  return out;
}

bool PlanLint::has(PlanDiagCode code) const {
  for (const PlanDiag& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string PlanLint::to_string() const {
  std::string out;
  for (const PlanDiag& d : diags_) {
    if (!out.empty()) out += '\n';
    out += d.format();
  }
  return out;
}

PlanLint lint_plan(const ExecutionPlan& plan, const graph::ModuleGraph& g) {
  PlanLint lint;
  const std::vector<Step>& steps = plan.steps();
  const int num_slots = plan.slot_count();

  if (!g.ok()) {
    lint.add(diag(PlanDiagCode::kStepOrder, -1, graph::kNoNode,
                  "cannot verify plan against an ill-formed graph: " + g.error()->format()));
    return lint;
  }
  if (plan.input_shape() != g.input_shape()) {
    lint.add(diag(PlanDiagCode::kShapeDisagree, -1, graph::kNoNode,
                  "plan input shape " + shape_str(plan.input_shape()) +
                      " does not match graph input " + shape_str(g.input_shape())));
  }

  // ---- Pass 1: slot discipline (graph-independent) --------------------
  // Slot -1 is the input batch and always defined; every other slot must
  // be written exactly once, before any read.
  std::vector<bool> defined(num_slots > 0 ? static_cast<size_t>(num_slots) : 0, false);
  std::vector<int> writer(defined.size(), -1);
  const auto check_read = [&](int i, int slot, const char* operand) {
    if (slot < -1 || slot >= num_slots) {
      lint.add(diag(PlanDiagCode::kSlotRange, i, graph::kNoNode,
                    std::string(operand) + " slot " + std::to_string(slot) +
                        " outside [-1, " + std::to_string(num_slots) + ")"));
      return;
    }
    if (slot >= 0 && !defined[static_cast<size_t>(slot)]) {
      lint.add(diag(PlanDiagCode::kUseBeforeDef, i, graph::kNoNode,
                    std::string(operand) + " reads slot " + std::to_string(slot) +
                        " before any step writes it"));
    }
  };
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    const int idx = static_cast<int>(i);
    check_read(idx, s.in0, "in0");
    if (s.kind == StepKind::kAdd) {
      check_read(idx, s.in1, "in1");
    } else if (s.in1 != -1) {
      lint.add(diag(PlanDiagCode::kSlotRange, idx, graph::kNoNode,
                    "second operand (slot " + std::to_string(s.in1) +
                        ") on a non-add step"));
    }
    if (s.out < 0 || s.out >= num_slots) {
      lint.add(diag(PlanDiagCode::kSlotRange, idx, graph::kNoNode,
                    "out slot " + std::to_string(s.out) + " outside [0, " +
                        std::to_string(num_slots) + ")"));
      continue;
    }
    if (writer[static_cast<size_t>(s.out)] != -1) {
      lint.add(diag(PlanDiagCode::kMultiWriter, idx, graph::kNoNode,
                    "slot " + std::to_string(s.out) + " already written by step " +
                        std::to_string(writer[static_cast<size_t>(s.out)])));
    }
    writer[static_cast<size_t>(s.out)] = idx;
    defined[static_cast<size_t>(s.out)] = true;
  }
  const int out_slot = plan.output_slot();
  if (out_slot < 0 || out_slot >= num_slots) {
    lint.add(diag(PlanDiagCode::kBadOutput, -1, graph::kNoNode,
                  "output slot " + std::to_string(out_slot) + " outside [0, " +
                      std::to_string(num_slots) + ")"));
  } else if (!defined[static_cast<size_t>(out_slot)]) {
    lint.add(diag(PlanDiagCode::kBadOutput, -1, graph::kNoNode,
                  "output slot " + std::to_string(out_slot) + " is never written"));
  }

  // ---- Pass 2: graph coverage and step order --------------------------
  const std::vector<graph::Node>& nodes = g.nodes();
  const auto n_nodes = static_cast<graph::NodeId>(nodes.size());
  std::vector<int> cover_step(nodes.size(), -1);
  std::vector<bool> is_final(nodes.size(), false);
  std::vector<bool> step_ok(steps.size(), true);  // node ids sane, graph checks apply
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    const int idx = static_cast<int>(i);
    if (s.nodes.empty()) {
      lint.add(diag(PlanDiagCode::kStepOrder, idx, graph::kNoNode,
                    "step covers no graph node"));
      step_ok[i] = false;
      continue;
    }
    for (graph::NodeId nid : s.nodes) {
      if (nid < 0 || nid >= n_nodes) {
        lint.add(diag(PlanDiagCode::kSlotRange, idx, nid,
                      "unknown graph node (graph has " + std::to_string(n_nodes) +
                          " nodes)"));
        step_ok[i] = false;
      }
    }
    if (!step_ok[i]) continue;
    for (graph::NodeId nid : s.nodes) {
      const auto ni = static_cast<size_t>(nid);
      if (cover_step[ni] != -1) {
        lint.add(diag(PlanDiagCode::kStepOrder, idx, nid,
                      "node already covered by step " + std::to_string(cover_step[ni])));
        step_ok[i] = false;
        continue;
      }
      cover_step[ni] = idx;
    }
    if (!step_ok[i]) continue;
    is_final[static_cast<size_t>(s.nodes.back())] = true;
    // A fused tail must be a fusable kind that consumes its predecessor:
    // the fold/fuse passes only merge a node into the step producing its
    // sole input.
    for (size_t k = 1; k < s.nodes.size(); ++k) {
      const graph::Node& tail = nodes[static_cast<size_t>(s.nodes[k])];
      if (!fusable_kind(tail.kind)) {
        lint.add(diag(PlanDiagCode::kStepOrder, idx, tail.id,
                      std::string("fused node of kind ") + graph::to_string(tail.kind) +
                          " is not a fusable epilogue"));
      }
      const graph::NodeId prev = s.nodes[k - 1];
      if (std::find(tail.inputs.begin(), tail.inputs.end(), prev) == tail.inputs.end()) {
        lint.add(diag(PlanDiagCode::kStepOrder, idx, tail.id,
                      "fused node does not consume its predecessor node " +
                          std::to_string(prev)));
      }
    }
  }
  for (const graph::Node& node : nodes) {
    if (cover_step[static_cast<size_t>(node.id)] != -1) continue;
    if (node.kind != graph::Kind::kDropout) {
      lint.add(diag(PlanDiagCode::kBadAlias, -1, node.id,
                    std::string("node of kind ") + graph::to_string(node.kind) +
                        " was elided but is not an inference identity"));
    }
  }

  // Resolves where `nid`'s value lives after dropout elision.
  const auto resolve = [&](graph::NodeId nid) {
    Resolved r;
    int64_t guard = 0;
    while (true) {
      if (nid < 0 || nid >= n_nodes || ++guard > n_nodes + 1) {
        r.unknown = true;
        return r;
      }
      const auto ni = static_cast<size_t>(nid);
      if (cover_step[ni] != -1) {
        r.producer = nid;
        r.slot = steps[static_cast<size_t>(cover_step[ni])].out;
        r.intermediate = !is_final[ni];
        return r;
      }
      // Elided node: its value aliases its producer's (the batch when
      // the chain runs out at an input-consuming identity).
      if (nodes[ni].inputs.empty()) return r;  // slot -1
      nid = nodes[ni].inputs[0];
    }
  };

  const auto check_operand = [&](int idx, const graph::Node& first, size_t input_index,
                                 int got_slot, const char* operand) {
    if (first.inputs.size() <= input_index) {
      if (got_slot != -1) {
        lint.add(diag(PlanDiagCode::kBadAlias, idx, first.id,
                      std::string(operand) + " is slot " + std::to_string(got_slot) +
                          " but the node reads the input batch"));
      }
      return;
    }
    const Resolved r = resolve(first.inputs[input_index]);
    if (r.unknown) {
      lint.add(diag(PlanDiagCode::kBadAlias, idx, first.id,
                    std::string(operand) + ": cannot resolve graph input " +
                        std::to_string(first.inputs[input_index])));
      return;
    }
    if (r.intermediate) {
      lint.add(diag(PlanDiagCode::kBadAlias, idx, first.id,
                    std::string(operand) + " reads node " + std::to_string(r.producer) +
                        ", which was fused away into the middle of step " +
                        std::to_string(cover_step[static_cast<size_t>(r.producer)])));
      return;
    }
    if (r.slot != got_slot) {
      lint.add(diag(PlanDiagCode::kBadAlias, idx, first.id,
                    std::string(operand) + " is slot " + std::to_string(got_slot) +
                        " but graph input " + std::to_string(first.inputs[input_index]) +
                        " lives in slot " + std::to_string(r.slot)));
      return;
    }
    if (r.producer != graph::kNoNode) {
      const int prod_step = cover_step[static_cast<size_t>(r.producer)];
      if (prod_step >= idx) {
        lint.add(diag(PlanDiagCode::kStepOrder, idx, first.id,
                      std::string(operand) + " consumes node " + std::to_string(r.producer) +
                          ", produced only later by step " + std::to_string(prod_step)));
      }
    }
  };

  for (size_t i = 0; i < steps.size(); ++i) {
    if (!step_ok[i]) continue;
    const Step& s = steps[i];
    const int idx = static_cast<int>(i);
    const graph::Node& first = nodes[static_cast<size_t>(s.nodes.front())];
    const graph::Node& last = nodes[static_cast<size_t>(s.nodes.back())];

    if (s.kind != StepKind::kInterpreted && !kind_matches(first.kind, s.kind)) {
      lint.add(diag(PlanDiagCode::kStepOrder, idx, first.id,
                    std::string("step kind ") + compile::to_string(s.kind) +
                        " does not lower a node of kind " + graph::to_string(first.kind)));
    }
    check_operand(idx, first, 0, s.in0, "in0");
    if (s.kind == StepKind::kAdd) check_operand(idx, first, 1, s.in1, "in1");

    if (s.out_shape != last.out_shape) {
      lint.add(diag(PlanDiagCode::kShapeDisagree, idx, last.id,
                    "step out_shape " + shape_str(s.out_shape) +
                        " does not match the node's resolved shape " +
                        shape_str(last.out_shape)));
    }

    // ---- Fallback legality ------------------------------------------
    if (s.kind == StepKind::kInterpreted) {
      if (s.nodes.size() != 1) {
        lint.add(diag(PlanDiagCode::kSpuriousFallback, idx, first.id,
                      "interpreted fallback covering more than one node"));
      }
      if (s.layer == nullptr) {
        lint.add(diag(PlanDiagCode::kSpuriousFallback, idx, first.id,
                      "interpreted step has no backing layer"));
      } else if (s.layer != first.layer) {
        lint.add(diag(PlanDiagCode::kSpuriousFallback, idx, first.id,
                      "interpreted step's layer is not the covered node's layer"));
      } else if (!requires_interpreted_fallback(s.layer)) {
        lint.add(diag(PlanDiagCode::kSpuriousFallback, idx, first.id,
                      "interpreted fallback on a node without active interventions"));
      }
    } else {
      for (graph::NodeId nid : s.nodes) {
        const graph::Node& node = nodes[static_cast<size_t>(nid)];
        if (requires_interpreted_fallback(node.layer)) {
          lint.add(diag(PlanDiagCode::kSpuriousFallback, idx, nid,
                        "node carries active interventions but was lowered natively "
                        "(missing fallback)"));
        }
      }
    }
  }

  // ---- Pass 3: step geometry and packed-operand layout ----------------
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    const int idx = static_cast<int>(i);
    if (s.kind == StepKind::kConv) {
      const int64_t krows = s.geom.col_rows();
      if (s.weight.rank() != 2 || s.weight.dim(0) != s.out_channels ||
          s.weight.dim(1) != krows) {
        lint.add(diag(PlanDiagCode::kShapeDisagree, idx, graph::kNoNode,
                      "conv weight " + shape_str(s.weight.shape()) +
                          " does not match [out_channels, col_rows] = [" +
                          std::to_string(s.out_channels) + ", " + std::to_string(krows) +
                          "]"));
      }
      const Shape want{s.out_channels, s.geom.out_h(), s.geom.out_w()};
      if (s.out_shape != want) {
        lint.add(diag(PlanDiagCode::kShapeDisagree, idx, graph::kNoNode,
                      "conv out_shape " + shape_str(s.out_shape) +
                          " does not match its geometry " + shape_str(want)));
      }
      if (!s.bias.empty() && s.bias.numel() != s.out_channels) {
        lint.add(diag(PlanDiagCode::kShapeDisagree, idx, graph::kNoNode,
                      "conv bias has " + std::to_string(s.bias.numel()) +
                          " floats for " + std::to_string(s.out_channels) + " channels"));
      }
      if (s.prepacked) {
        if (s.packed_w.rows != s.out_channels || s.packed_w.depth != krows) {
          lint.add(diag(PlanDiagCode::kPanelShape, idx, graph::kNoNode,
                        "packed conv strips are [" + std::to_string(s.packed_w.rows) +
                            ", " + std::to_string(s.packed_w.depth) +
                            "] for a logical [" + std::to_string(s.out_channels) + ", " +
                            std::to_string(krows) + "] weight"));
        } else if (std::string why; !gemm_config_valid(s.packed_w.cfg, &why)) {
          lint.add(diag(PlanDiagCode::kPanelShape, idx, graph::kNoNode,
                        "packed conv strips record an illegal tuning config: " + why));
        } else if (const GemmTuneConfig& cfg = s.packed_w.cfg;
                   s.packed_w.kblocks != (krows + cfg.kc - 1) / cfg.kc ||
                   s.packed_w.block_offset.size() !=
                       static_cast<size_t>(((s.out_channels + cfg.mc - 1) / cfg.mc) *
                                           s.packed_w.kblocks) ||
                   s.packed_w.strips.size() !=
                       static_cast<size_t>(gemm_apack_all_floats(
                           s.packed_w.rows, s.packed_w.depth, cfg))) {
          // Exact recompute from the recorded config: block count and
          // strip floats must match the pack_a_full layout to the float.
          lint.add(diag(PlanDiagCode::kPanelShape, idx, graph::kNoNode,
                        "packed conv strip buffer holds " +
                            std::to_string(s.packed_w.strips.size()) +
                            " floats in " + std::to_string(s.packed_w.kblocks) +
                            " k-blocks; the recorded config (mc=" +
                            std::to_string(cfg.mc) + " kc=" + std::to_string(cfg.kc) +
                            " mr=" + std::to_string(cfg.mr) + ") lays out " +
                            std::to_string(gemm_apack_all_floats(
                                s.packed_w.rows, s.packed_w.depth, cfg)) +
                            " floats in " +
                            std::to_string((krows + cfg.kc - 1) / cfg.kc) + " k-blocks"));
        }
      }
    } else if (s.kind == StepKind::kLinear) {
      if (s.weight.rank() != 2 || s.weight.dim(0) != s.out_channels) {
        lint.add(diag(PlanDiagCode::kShapeDisagree, idx, graph::kNoNode,
                      "linear weight " + shape_str(s.weight.shape()) + " does not have " +
                          std::to_string(s.out_channels) + " output rows"));
      }
      if (s.prepacked && s.packed_in.finite) {
        if (s.packed_in.depth != s.weight.dim(1) || s.packed_in.cols != s.out_channels) {
          lint.add(diag(PlanDiagCode::kPanelShape, idx, graph::kNoNode,
                        "packed linear panels are [K=" + std::to_string(s.packed_in.depth) +
                            ", N=" + std::to_string(s.packed_in.cols) +
                            "] for a logical [K=" + std::to_string(s.weight.dim(1)) +
                            ", N=" + std::to_string(s.out_channels) + "] operand"));
        } else if (s.packed_in.panels.size() !=
                   static_cast<size_t>(packed_b_floats(s.packed_in.depth, s.packed_in.cols))) {
          lint.add(diag(PlanDiagCode::kPanelShape, idx, graph::kNoNode,
                        "packed linear panel buffer holds " +
                            std::to_string(s.packed_in.panels.size()) + " floats, layout needs " +
                            std::to_string(packed_b_floats(s.packed_in.depth,
                                                           s.packed_in.cols))));
        }
      }
    } else if (s.kind == StepKind::kBatchNorm) {
      const int64_t c = s.out_shape.empty() ? -1 : s.out_shape[0];
      const auto want = static_cast<size_t>(c < 0 ? 0 : c);
      if (s.bn_gamma.size() != want || s.bn_beta.size() != want ||
          s.bn_mean.size() != want || s.bn_var.size() != want) {
        lint.add(diag(PlanDiagCode::kShapeDisagree, idx, graph::kNoNode,
                      "batchnorm parameter vectors do not all have " +
                          std::to_string(c) + " channels"));
      }
    }
  }

  // ---- Pass 4: scratch pre-size sufficiency ---------------------------
  // Recomputed with the same per-worker demand model the executor uses
  // (arena slot 0: packed im2col panels, slot 1: plain column matrices),
  // so a plan whose declared pre-size lies is caught before warm() ever
  // trusts it.
  int64_t panels = 0, col = 0;
  for (const Step& s : steps) {
    if (s.kind != StepKind::kConv) continue;
    const int64_t krows = s.geom.col_rows();
    const int64_t cols = s.geom.col_cols();
    if (s.prepacked) panels = std::max(panels, packed_b_floats(krows, cols));
    col = std::max(col, krows * cols);
  }
  if (plan.scratch_floats() < panels + col) {
    lint.add(diag(PlanDiagCode::kScratchUndersized, -1, graph::kNoNode,
                  "declared scratch pre-size " + std::to_string(plan.scratch_floats()) +
                      " floats is below the worst-case step demand of " +
                      std::to_string(panels + col)));
  }

  return lint;
}

}  // namespace capr::compile
