// Machine-readable ExecutionPlan dumps.
//
// to_json emits the deterministic "capr-exec-plan-v1" document pinned by
// the golden plan tests and the CI drift gate (capr-analyze --dump-plan):
// compile options, the structural graph hash (the platform-stable half of
// GraphHash — no weight bytes), and every step with its covered nodes,
// value slots, epilogue, fold/prepack state and derived buffer sizes.
// Nothing volatile (pointers, weights, timestamps) enters the document,
// so two builds of the same architecture are bitwise identical.
#pragma once

#include <string>

#include "compile/compiler.h"
#include "graph/graph.h"

namespace capr::compile {

/// Pretty-printed JSON, trailing newline included. `g` must be the graph
/// `plan` was compiled from (its structural hash is recorded); `arch` is
/// recorded verbatim ("" when unknown).
std::string to_json(const ExecutionPlan& plan, const graph::ModuleGraph& g,
                    const CompileOptions& opts, const std::string& arch = "");

}  // namespace capr::compile
