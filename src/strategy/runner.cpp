#include "strategy/runner.h"

#include <stdexcept>

#include "analysis/analyzer.h"
#include "core/surgeon.h"
#include "graph/graph.h"

namespace capr::strategy {

StrategyRunResult run_strategy(nn::Model& model, PruneStrategy& strat,
                               const data::Dataset& train_set, const data::Dataset& test_set,
                               const StrategyRunConfig& cfg) {
  if (cfg.limits.max_fraction_per_iter <= 0.0f || cfg.limits.max_fraction_per_iter > 1.0f) {
    throw std::invalid_argument("run_strategy: max_fraction_per_iter must be in (0, 1]");
  }
  StrategyRunResult result;
  result.method = strat.name();
  const flops::ModelCost cost_before = flops::count(model);
  result.original_accuracy = nn::evaluate(model, test_set);
  result.stop_reason = "max iterations reached";

  float accuracy = result.original_accuracy;
  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    const graph::ModuleGraph graph = graph::ModuleGraph::build(model);
    if (!graph.ok()) {
      throw std::logic_error("run_strategy: model graph ill-formed: " + graph.error()->format());
    }
    const StrategyContext ctx{model, graph, train_set};
    const ScoreSet scores = strat.score(ctx);
    const auto selection = select(scores, strat, cfg.limits);
    if (selection.empty()) {
      result.stop_reason = "no prunable filters remain";
      break;
    }
    if (cfg.certify) {
      const core::PruneStrategyConfig scfg = selection_config(strat, cfg.limits);
      analysis::VerifyOptions opts;
      opts.strategy = &scfg;
      analysis::require_ok(analysis::analyze_plan(model, selection, opts));
    }
    result.filters_removed += core::apply_selection(model, selection);

    nn::TrainConfig ft = cfg.finetune;
    ft.loader_seed = cfg.finetune.loader_seed + static_cast<uint64_t>(iter) + 1;
    nn::train(model, train_set, ft, strat.train_regularizer());
    accuracy = nn::evaluate(model, test_set);
    result.iterations_run = iter + 1;

    if (cfg.on_iteration) {
      const flops::ModelCost cost_now = flops::count(model);
      core::IterationRecord rec;
      rec.iteration = iter;
      rec.filters_removed = core::selection_size(selection);
      rec.filters_remaining = core::total_prunable_filters(model);
      rec.accuracy_after_finetune = accuracy;
      rec.params = cost_now.total_params;
      rec.flops = cost_now.total_flops;
      cfg.on_iteration(rec);
    }

    if (result.original_accuracy - accuracy > cfg.max_accuracy_drop) {
      result.stop_reason = "accuracy drop not recovered by fine-tuning";
      break;
    }
  }

  result.final_accuracy = accuracy;
  result.report = flops::compare(cost_before, flops::count(model));
  return result;
}

}  // namespace capr::strategy
