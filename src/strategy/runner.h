// The shared iterative prune/fine-tune driver every strategy runs under.
//
//   score the graph's prunable groups -> select through the shared
//   engine -> certify the plan with the static analyzer -> apply the
//   surgery -> fine-tune (with the strategy's regularizer) -> stop when
//   nothing is selectable, the accuracy drop is unrecovered, or the
//   iteration budget is exhausted.
//
// This is the machinery baselines::BaselinePruner and the tournament
// both drive, so "apples-to-apples" is structural: one loop, one
// selection engine, one certification path.
#pragma once

#include <functional>
#include <string>

#include "core/pruner.h"
#include "core/strategy.h"
#include "flops/flops.h"
#include "nn/trainer.h"
#include "strategy/strategy.h"

namespace capr::strategy {

struct StrategyRunConfig {
  /// Caps and floors every selection runs under.
  core::SelectionLimits limits{};
  int max_iterations = 20;
  float max_accuracy_drop = 0.02f;
  nn::TrainConfig finetune{};
  /// Certify every selection with analysis::require_ok before surgery.
  /// Independent of checked mode — the tournament always certifies.
  bool certify = true;
  /// Optional observer invoked after each completed iteration.
  std::function<void(const core::IterationRecord&)> on_iteration;
};

struct StrategyRunResult {
  std::string method;
  float original_accuracy = 0.0f;
  float final_accuracy = 0.0f;
  flops::PruningReport report;
  int iterations_run = 0;
  int64_t filters_removed = 0;
  std::string stop_reason;
};

/// Prunes `model` in place with `strat`. `train_set` feeds scoring and
/// fine-tuning; `test_set` drives the stop rule. Throws
/// std::invalid_argument on out-of-range limits (before any training)
/// and analysis::AnalysisError when certification rejects a plan.
StrategyRunResult run_strategy(nn::Model& model, PruneStrategy& strat,
                               const data::Dataset& train_set, const data::Dataset& test_set,
                               const StrategyRunConfig& cfg);

}  // namespace capr::strategy
