#include "strategy/competitors.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace capr::strategy {
namespace {

/// Sum of w^2 over out-filter slice `filter` of a conv weight.
double filter_sq(const nn::Conv2d& conv, int64_t filter) {
  const int64_t fsz = conv.in_channels() * conv.kernel() * conv.kernel();
  const float* w = conv.weight().value.data() + filter * fsz;
  double acc = 0.0;
  for (int64_t i = 0; i < fsz; ++i) acc += static_cast<double>(w[i]) * w[i];
  return acc;
}

/// Sum of w^2 over in-channel slice `ch` of a consumer conv.
double in_channel_sq(const nn::Conv2d& conv, int64_t ch) {
  const int64_t kk = conv.kernel() * conv.kernel();
  double acc = 0.0;
  for (int64_t f = 0; f < conv.out_channels(); ++f) {
    const float* w = conv.weight().value.data() + (f * conv.in_channels() + ch) * kk;
    for (int64_t i = 0; i < kk; ++i) acc += static_cast<double>(w[i]) * w[i];
  }
  return acc;
}

/// Sum of w^2 over the in-feature block of a consumer linear for
/// channel `ch` ([ch*spatial, (ch+1)*spatial) of every output row).
double linear_block_sq(const nn::Linear& lin, int64_t ch, int64_t spatial) {
  double acc = 0.0;
  for (int64_t o = 0; o < lin.out_features(); ++o) {
    const float* w = lin.weight().value.data() + o * lin.in_features() + ch * spatial;
    for (int64_t i = 0; i < spatial; ++i) acc += static_cast<double>(w[i]) * w[i];
  }
  return acc;
}

/// RAII capture scope over the score points of the given groups.
struct CaptureGroups {
  std::vector<PrunableGroup>& groups;
  explicit CaptureGroups(std::vector<PrunableGroup>& g) : groups(g) {
    for (auto& pg : groups) pg.unit.score_point->instrument().capture = true;
  }
  ~CaptureGroups() {
    for (auto& pg : groups) {
      pg.unit.score_point->instrument().capture = false;
      pg.unit.score_point->instrument().release_captures();
    }
  }
  CaptureGroups(const CaptureGroups&) = delete;
  CaptureGroups& operator=(const CaptureGroups&) = delete;
};

}  // namespace

ScoreSet DependencyAwareStrategy::score(const StrategyContext& ctx) {
  ScoreSet out;
  out.num_classes = ctx.train_set.num_classes();
  for (const PrunableGroup& pg : prunable_groups(ctx)) {
    const nn::PrunableUnit& u = pg.unit;
    GroupScores g{pg.unit_index, pg.group->name, {}};
    g.total.resize(static_cast<size_t>(u.conv->out_channels()));
    for (int64_t f = 0; f < u.conv->out_channels(); ++f) {
      double coupled = filter_sq(*u.conv, f);
      if (u.bn != nullptr) {
        const float gamma = u.bn->gamma().value[f];
        const float beta = u.bn->beta().value[f];
        coupled += static_cast<double>(gamma) * gamma + static_cast<double>(beta) * beta;
      }
      for (const nn::ConsumerRef& c : u.consumers) {
        if (c.conv != nullptr) {
          coupled += in_channel_sq(*c.conv, f);
        } else if (c.linear != nullptr) {
          coupled += linear_block_sq(*c.linear, f, c.spatial);
        }
      }
      g.total[static_cast<size_t>(f)] = static_cast<float>(std::sqrt(coupled));
    }
    out.groups.push_back(std::move(g));
  }
  return out;
}

ScoreSet ProvableStrategy::score(const StrategyContext& ctx) {
  std::vector<PrunableGroup> groups = prunable_groups(ctx);
  const data::Batch batch = data::balanced_sample(ctx.train_set, cfg_.images_per_class, cfg_.seed);
  {
    CaptureGroups guard(groups);
    ctx.model.forward(batch.images, /*training=*/false);

    ScoreSet out;
    out.num_classes = ctx.train_set.num_classes();
    for (const PrunableGroup& pg : groups) {
      const Tensor& a = pg.unit.score_point->instrument().captured_output;
      const int64_t n = a.dim(0), f = a.dim(1);
      const int64_t plane = a.numel() / (n * f);
      // Mean absolute activation per (image, filter).
      std::vector<double> mass(static_cast<size_t>(n * f), 0.0);
      for (int64_t img = 0; img < n; ++img) {
        for (int64_t filter = 0; filter < f; ++filter) {
          const float* p = a.data() + (img * f + filter) * plane;
          double acc = 0.0;
          for (int64_t k = 0; k < plane; ++k) acc += std::fabs(static_cast<double>(p[k]));
          mass[static_cast<size_t>(img * f + filter)] = acc / static_cast<double>(plane);
        }
      }
      // Empirical sensitivity: worst-case share of the layer's
      // activation mass this filter carries over the sample.
      GroupScores g{pg.unit_index, pg.group->name, {}};
      g.total.resize(static_cast<size_t>(f), 0.0f);
      for (int64_t img = 0; img < n; ++img) {
        double denom = 0.0;
        for (int64_t filter = 0; filter < f; ++filter) {
          denom += mass[static_cast<size_t>(img * f + filter)];
        }
        if (denom <= 0.0) continue;
        for (int64_t filter = 0; filter < f; ++filter) {
          const auto share =
              static_cast<float>(mass[static_cast<size_t>(img * f + filter)] / denom);
          float& s = g.total[static_cast<size_t>(filter)];
          s = std::max(s, share);
        }
      }
      out.groups.push_back(std::move(g));
    }
    return out;
  }
}

ScoreSet UnstructuredEquivalentStrategy::score(const StrategyContext& ctx) {
  std::vector<PrunableGroup> groups = prunable_groups(ctx);

  // Global magnitude threshold at the configured sparsity quantile over
  // every prunable producer's weights.
  std::vector<float> magnitudes;
  for (const PrunableGroup& pg : groups) {
    const Tensor& w = pg.unit.conv->weight().value;
    for (int64_t i = 0; i < w.numel(); ++i) magnitudes.push_back(std::fabs(w[i]));
  }
  float threshold = 0.0f;
  if (!magnitudes.empty()) {
    const float clamped = std::clamp(cfg_.sparsity, 0.0f, 1.0f);
    auto k = static_cast<size_t>(static_cast<double>(magnitudes.size() - 1) * clamped);
    std::nth_element(magnitudes.begin(), magnitudes.begin() + static_cast<int64_t>(k),
                     magnitudes.end());
    threshold = magnitudes[k];
  }

  ScoreSet out;
  out.num_classes = ctx.train_set.num_classes();
  for (const PrunableGroup& pg : groups) {
    const nn::Conv2d& conv = *pg.unit.conv;
    const int64_t fsz = conv.in_channels() * conv.kernel() * conv.kernel();
    GroupScores g{pg.unit_index, pg.group->name, {}};
    g.total.resize(static_cast<size_t>(conv.out_channels()));
    for (int64_t f = 0; f < conv.out_channels(); ++f) {
      const float* w = conv.weight().value.data() + f * fsz;
      double kept = 0.0, total = 0.0;
      for (int64_t i = 0; i < fsz; ++i) {
        const double m = std::fabs(static_cast<double>(w[i]));
        total += m;
        if (m > threshold) kept += m;
      }
      g.total[static_cast<size_t>(f)] = total > 0.0 ? static_cast<float>(kept / total) : 0.0f;
    }
    out.groups.push_back(std::move(g));
  }
  return out;
}

}  // namespace capr::strategy
