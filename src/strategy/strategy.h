// The graph-driven pruning strategy interface.
//
// Historically the repo had two parallel pruning drivers: the
// class-aware path (core::ClassAwarePruner over ImportanceResult) and
// the baseline path (baselines::BaselinePruner over flat per-unit score
// vectors), each with its own copy of the selection machinery. This
// library collapses them: a PruneStrategy consumes the model together
// with its graph::ModuleGraph, scores each prunable CouplingGroup, and
// every method's scores flow through the ONE selection engine
// (core::select_scored) under the same SelectionLimits.
//
// The graph is the source of truth for what may be pruned: groups that
// are residual-constrained or consumer-less are filtered out BEFORE
// selection, so no strategy — class-aware, baseline or tournament
// entrant — can emit a plan the analyzer would refuse.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "data/dataset.h"
#include "graph/graph.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace capr::strategy {

/// Everything a strategy may look at when scoring. The model reference
/// is mutable because data-driven scorers run forward/backward passes
/// (capture instrumentation); scoring must leave weights unmodified.
struct StrategyContext {
  nn::Model& model;
  const graph::ModuleGraph& graph;
  const data::Dataset& train_set;
};

/// Per-group scores as a strategy emits them (higher = more important).
/// `unit_index` is the index into model.units — the surgeon's unit
/// space — so selections built from these scores apply directly.
struct GroupScores {
  size_t unit_index = 0;
  std::string name;
  std::vector<float> total;
};

struct ScoreSet {
  std::vector<GroupScores> groups;
  int64_t num_classes = 0;
};

/// A pruning method: scores graph coupling groups. The selection policy
/// (mode, threshold) is part of the method; the protection limits
/// (caps, floors) are supplied by the caller so every entrant in a
/// comparison runs under identical protections.
class PruneStrategy {
 public:
  virtual ~PruneStrategy() = default;
  PruneStrategy(const PruneStrategy&) = delete;
  PruneStrategy& operator=(const PruneStrategy&) = delete;

  /// Stable method name, e.g. "class-aware" or "dependency-aware".
  virtual std::string name() const = 0;

  /// Scores every prunable coupling group of ctx.graph.
  virtual ScoreSet score(const StrategyContext& ctx) = 0;

  /// Selection mode this method prunes under. Baselines are
  /// percentage-driven; the class-aware method thresholds.
  virtual core::StrategyMode mode() const { return core::StrategyMode::kPercentage; }

  /// Score threshold for kThreshold/kBoth modes; < 0 selects the
  /// paper's 0.3 * num_classes rule.
  virtual float score_threshold() const { return -1.0f; }

  /// Regularizer applied during fine-tuning, or nullptr for plain CE.
  /// Owned by the strategy; valid until the strategy is destroyed.
  virtual nn::Regularizer* train_regularizer() { return nullptr; }

 protected:
  PruneStrategy() = default;
};

/// One prunable coupling group resolved against the surgeon's unit
/// space: the graph group, its model.units index, and the materialized
/// mutation/read handle.
struct PrunableGroup {
  size_t unit_index = 0;
  const graph::CouplingGroup* group = nullptr;
  nn::PrunableUnit unit;
};

/// The prunable groups of ctx.graph in model-unit order: every
/// model.units entry whose coupling group is neither
/// residual-constrained nor consumer-less. Entries the graph refuses
/// (hand-annotated units on constrained convs) are dropped — this is
/// the residual-constraint filter every strategy inherits.
std::vector<PrunableGroup> prunable_groups(const StrategyContext& ctx);

/// The selection config a strategy + limits pair implies (what the
/// engine and the analyzer certify against).
core::PruneStrategyConfig selection_config(const PruneStrategy& strat,
                                           const core::SelectionLimits& limits);

/// Runs the shared selection engine over a strategy's scores: mode and
/// threshold from the strategy, caps and floors from `limits`.
std::vector<core::UnitSelection> select(const ScoreSet& scores, const PruneStrategy& strat,
                                        const core::SelectionLimits& limits);

}  // namespace capr::strategy
