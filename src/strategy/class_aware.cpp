#include "strategy/class_aware.h"

namespace capr::strategy {

ClassAwareStrategy::ClassAwareStrategy(ClassAwareStrategyConfig cfg) : cfg_(cfg) {
  if (cfg_.finetune_with_modified_loss) {
    modified_loss_ = std::make_unique<core::ModifiedLoss>(cfg_.loss);
  }
}

ScoreSet ClassAwareStrategy::score(const StrategyContext& ctx) {
  core::ImportanceEvaluator evaluator(cfg_.importance);
  const core::ImportanceResult result = evaluator.evaluate(ctx.model, ctx.train_set);

  ScoreSet out;
  out.num_classes = result.num_classes;
  for (const PrunableGroup& pg : prunable_groups(ctx)) {
    // The evaluator scores model.units positionally; forward the totals
    // of the units the graph admits, untouched (bitwise parity with the
    // legacy select_filters path).
    const core::UnitScores& scores = result.units.at(pg.unit_index);
    out.groups.push_back({pg.unit_index, scores.unit_name, scores.total});
  }
  return out;
}

nn::Regularizer* ClassAwareStrategy::train_regularizer() { return modified_loss_.get(); }

}  // namespace capr::strategy
