// Tournament competitors introduced at the strategy layer (PAPERS.md):
//
//  - DependencyAwareStrategy — Dependency-Aware Filter Pruning (Zhao et
//    al.): a filter's importance is the l2 norm of the WHOLE coupled
//    channel, read directly off the graph's CouplingGroup (producer
//    out-slice + BN gamma/beta + every consumer in-slice, with the
//    Linear spatial factor). Where the DepGraph baseline walks the
//    hand-annotated model.units, this one is computed from the graph
//    IR itself — the CouplingGroups ARE the dependency sets.
//  - ProvableStrategy — Provable Filter Pruning (Liebenwein et al.):
//    sampling-based empirical sensitivity. Over a balanced sample,
//    a filter's sensitivity is the worst-case (max over images) share
//    it contributes to its layer's total activation mass; keeping
//    high-sensitivity filters bounds the relative output error on the
//    sampled distribution.
//  - UnstructuredEquivalentStrategy — the structured equivalent of
//    global magnitude (unstructured) pruning: threshold all producer
//    weights at the target sparsity quantile, then rank each filter by
//    the fraction of its weight MASS that survives. Filters that
//    unstructured pruning would have hollowed out rank lowest.
#pragma once

#include <cstdint>

#include "strategy/strategy.h"

namespace capr::strategy {

class DependencyAwareStrategy final : public PruneStrategy {
 public:
  std::string name() const override { return "dependency-aware"; }
  ScoreSet score(const StrategyContext& ctx) override;
};

struct ProvableStrategyConfig {
  /// Sample size per class for the sensitivity estimate.
  int64_t images_per_class = 10;
  uint64_t seed = 131;
};

class ProvableStrategy final : public PruneStrategy {
 public:
  explicit ProvableStrategy(ProvableStrategyConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "provable"; }
  ScoreSet score(const StrategyContext& ctx) override;

 private:
  ProvableStrategyConfig cfg_;
};

struct UnstructuredEquivalentConfig {
  /// Global weight sparsity the magnitude threshold is set at.
  float sparsity = 0.7f;
};

class UnstructuredEquivalentStrategy final : public PruneStrategy {
 public:
  explicit UnstructuredEquivalentStrategy(UnstructuredEquivalentConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "unstructured-equiv"; }
  ScoreSet score(const StrategyContext& ctx) override;

 private:
  UnstructuredEquivalentConfig cfg_;
};

}  // namespace capr::strategy
