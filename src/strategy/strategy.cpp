#include "strategy/strategy.h"

namespace capr::strategy {

std::vector<PrunableGroup> prunable_groups(const StrategyContext& ctx) {
  std::vector<PrunableGroup> out;
  out.reserve(ctx.model.units.size());
  for (size_t i = 0; i < ctx.model.units.size(); ++i) {
    const nn::PrunableUnit& u = ctx.model.units[i];
    const graph::CouplingGroup* g = ctx.graph.group_for(u.conv);
    if (g == nullptr || g->residual_constrained || g->consumers.empty()) continue;
    out.push_back({i, g, ctx.graph.materialize(*g)});
  }
  return out;
}

core::PruneStrategyConfig selection_config(const PruneStrategy& strat,
                                           const core::SelectionLimits& limits) {
  core::PruneStrategyConfig cfg;
  static_cast<core::SelectionLimits&>(cfg) = limits;
  cfg.mode = strat.mode();
  cfg.score_threshold = strat.score_threshold();
  return cfg;
}

std::vector<core::UnitSelection> select(const ScoreSet& scores, const PruneStrategy& strat,
                                        const core::SelectionLimits& limits) {
  std::vector<core::ScoredUnit> units;
  units.reserve(scores.groups.size());
  for (const GroupScores& g : scores.groups) {
    units.push_back({g.unit_index, g.total});
  }
  return core::select_scored(units, selection_config(strat, limits), scores.num_classes);
}

}  // namespace capr::strategy
