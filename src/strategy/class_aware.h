// The paper's class-aware method behind the PruneStrategy interface.
//
// Scoring delegates to core::ImportanceEvaluator (Eqs. 3-7) and is
// bitwise-identical to the legacy select_filters path: the evaluator's
// per-unit totals are forwarded untouched, and the shared engine is the
// same code the legacy path calls (tests/strategy_iface_test.cpp proves
// selection and surgery parity on all nine architectures).
#pragma once

#include <memory>

#include "core/importance.h"
#include "core/modified_loss.h"
#include "strategy/strategy.h"

namespace capr::strategy {

struct ClassAwareStrategyConfig {
  core::ImportanceConfig importance{};
  core::ModifiedLossConfig loss{};
  /// Paper default: threshold capped by the per-iteration percentage.
  core::StrategyMode mode = core::StrategyMode::kBoth;
  /// < 0 selects the paper's 0.3 * num_classes rule.
  float score_threshold = -1.0f;
  /// Fine-tune with the modified cost (Eq. 1), as the paper does.
  bool finetune_with_modified_loss = true;
};

class ClassAwareStrategy final : public PruneStrategy {
 public:
  explicit ClassAwareStrategy(ClassAwareStrategyConfig cfg = {});

  std::string name() const override { return "class-aware"; }
  ScoreSet score(const StrategyContext& ctx) override;
  core::StrategyMode mode() const override { return cfg_.mode; }
  float score_threshold() const override { return cfg_.score_threshold; }
  nn::Regularizer* train_regularizer() override;

  const ClassAwareStrategyConfig& config() const { return cfg_; }

 private:
  ClassAwareStrategyConfig cfg_;
  std::unique_ptr<core::ModifiedLoss> modified_loss_;
};

}  // namespace capr::strategy
