// The overall class-aware pruning framework (paper Section III-D, Fig. 5):
//
//   train with modified cost -> evaluate importance scores -> prune
//   filters important for few classes -> fine-tune -> repeat until no
//   filter is prunable or the accuracy cannot be recovered.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/importance.h"
#include "core/modified_loss.h"
#include "core/strategy.h"
#include "core/surgeon.h"
#include "flops/flops.h"
#include "nn/trainer.h"

namespace capr::core {

struct IterationRecord {
  int iteration = 0;
  int64_t filters_removed = 0;
  int64_t filters_remaining = 0;
  float accuracy_after_finetune = 0.0f;
  int64_t params = 0;
  int64_t flops = 0;
};

struct ClassAwarePrunerConfig {
  ImportanceConfig importance{};
  PruneStrategyConfig strategy{};
  ModifiedLossConfig loss{};
  /// Fine-tuning schedule applied after every pruning iteration (the
  /// paper retrains up to 130 epochs on an A100; scale to the host).
  nn::TrainConfig finetune{};
  /// Stop when (original accuracy - fine-tuned accuracy) exceeds this.
  float max_accuracy_drop = 0.02f;
  /// Extra fine-tuning rounds attempted when an iteration violates the
  /// drop bound, before declaring it unrecoverable. Mirrors the paper's
  /// "retraining was performed for up to 130 epochs" — recovery effort
  /// scales with need, not a fixed schedule.
  int recovery_rounds = 2;
  int max_iterations = 20;
  /// Fine-tune with the modified cost (Eq. 1), as the paper does.
  bool finetune_with_modified_loss = true;
  /// Optional observer invoked after each completed iteration (also the
  /// failing one, before any rollback) — used for progress reporting.
  std::function<void(const IterationRecord&)> on_iteration;
  /// Optional factory returning a fresh, unpruned copy of the model
  /// architecture (same builder, same init config). When provided, an
  /// iteration whose accuracy cannot be recovered is ROLLED BACK: the
  /// pruner rebuilds the pre-iteration model (replaying the cumulative
  /// filter removals and reloading the weights) so the reported model is
  /// the last one that satisfied the drop bound — the operating point the
  /// paper's tables quote. Without a factory the degraded model is kept.
  std::function<nn::Model()> model_factory;
};

struct PruneRunResult {
  float original_accuracy = 0.0f;
  float final_accuracy = 0.0f;
  flops::PruningReport report;
  std::vector<IterationRecord> iterations;
  /// Score snapshots for the figure benches (Figs. 4 and 7).
  ImportanceResult scores_before;
  ImportanceResult scores_after;
  std::string stop_reason;
};

/// Drives the iterative prune/fine-tune loop on an already-trained model.
class ClassAwarePruner {
 public:
  explicit ClassAwarePruner(ClassAwarePrunerConfig cfg) : cfg_(std::move(cfg)) {}

  /// Prunes `model` in place. `train_set` supplies both the scoring
  /// images (M per class) and the fine-tuning batches; `test_set` is
  /// used for the stop rule and reporting.
  PruneRunResult run(nn::Model& model, const data::Dataset& train_set,
                     const data::Dataset& test_set);

  /// The selection one iteration would remove, per the configured
  /// strategy. Pure: no model access, no mutation.
  std::vector<UnitSelection> plan(const ImportanceResult& scores) const;

  /// Executes one pruning mutation: certifies `selection` against the
  /// analyzer when checked mode is on (see core::set_plan_validator —
  /// rejection throws BEFORE any mutation), applies the surgery, and
  /// records it in `history` when given. Returns filters removed.
  int64_t step(nn::Model& model, const std::vector<UnitSelection>& selection,
               PruneHistory* history = nullptr);

  const ClassAwarePrunerConfig& config() const { return cfg_; }

 private:
  ClassAwarePrunerConfig cfg_;
};

}  // namespace capr::core
