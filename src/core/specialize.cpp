#include "core/specialize.h"

#include <algorithm>
#include <stdexcept>

#include "core/surgeon.h"
#include "nn/linear.h"

namespace capr::core {
namespace {

/// The classifier head: the last Linear in the top-level layer graph.
nn::Linear* find_head(nn::Model& model) {
  for (size_t i = model.net->size(); i-- > 0;) {
    if (auto* lin = dynamic_cast<nn::Linear*>(&model.net->child(i))) return lin;
  }
  throw std::logic_error("specialize: model has no Linear classifier head");
}

}  // namespace

data::Dataset restrict_to_classes(const data::Dataset& set,
                                  const std::vector<int64_t>& classes) {
  if (classes.empty()) throw std::invalid_argument("restrict_to_classes: empty class list");
  std::vector<int64_t> remap(static_cast<size_t>(set.num_classes()), -1);
  for (size_t k = 0; k < classes.size(); ++k) {
    const int64_t cls = classes[k];
    if (cls < 0 || cls >= set.num_classes()) {
      throw std::out_of_range("restrict_to_classes: class " + std::to_string(cls) +
                              " out of range");
    }
    if (remap[static_cast<size_t>(cls)] != -1) {
      throw std::invalid_argument("restrict_to_classes: duplicate class " +
                                  std::to_string(cls));
    }
    remap[static_cast<size_t>(cls)] = static_cast<int64_t>(k);
  }
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < set.size(); ++i) {
    if (remap[static_cast<size_t>(set.label(i))] != -1) indices.push_back(i);
  }
  data::Batch gathered = set.gather(indices);
  std::vector<int64_t> labels(gathered.labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = remap[static_cast<size_t>(gathered.labels[i])];
  }
  return data::Dataset(std::move(gathered.images), std::move(labels),
                       static_cast<int64_t>(classes.size()));
}

SpecializeResult specialize_to_classes(nn::Model& model, const data::Dataset& train_set,
                                       const data::Dataset& test_set,
                                       const std::vector<int64_t>& classes,
                                       const SpecializeConfig& cfg) {
  if (model.num_classes != train_set.num_classes()) {
    throw std::invalid_argument("specialize: model/dataset class count mismatch");
  }
  const auto k = static_cast<int64_t>(classes.size());
  if (k <= 1 || k >= model.num_classes) {
    throw std::invalid_argument("specialize: need 1 < |classes| < num_classes");
  }

  const flops::ModelCost cost_before = flops::count(model);

  // 1. Per-class importance on the ORIGINAL model and dataset.
  ImportanceEvaluator evaluator(cfg.importance);
  const ImportanceResult full_scores = evaluator.evaluate(model, train_set);

  // 2. Re-total the scores over the kept classes only.
  ImportanceResult subset_scores;
  subset_scores.num_classes = k;
  for (const UnitScores& u : full_scores.units) {
    UnitScores s;
    s.unit_name = u.unit_name;
    s.unit_index = u.unit_index;
    s.total.assign(u.total.size(), 0.0f);
    for (int64_t cls : classes) {
      const auto& per = u.per_class[static_cast<size_t>(cls)];
      for (size_t f = 0; f < per.size(); ++f) s.total[f] += per[f];
    }
    subset_scores.units.push_back(std::move(s));
  }

  // 3. Shrink the classifier head to the kept rows (in the given order).
  nn::Linear* head = find_head(model);
  std::vector<int64_t> dropped;
  for (int64_t cls = 0; cls < model.num_classes; ++cls) {
    if (std::find(classes.begin(), classes.end(), cls) == classes.end()) {
      dropped.push_back(cls);
    }
  }
  head->remove_out_features(dropped);
  model.num_classes = k;
  // remove_out_features keeps ascending order; reorder rows if the caller
  // asked for a non-ascending class order.
  std::vector<int64_t> kept_sorted(classes);
  std::sort(kept_sorted.begin(), kept_sorted.end());
  if (kept_sorted != classes) {
    Tensor w = head->weight().value;
    Tensor b = head->bias().value;
    for (size_t row = 0; row < classes.size(); ++row) {
      const auto src = static_cast<int64_t>(
          std::find(kept_sorted.begin(), kept_sorted.end(), classes[row]) -
          kept_sorted.begin());
      std::copy(w.data() + src * head->in_features(),
                w.data() + (src + 1) * head->in_features(),
                head->weight().value.data() + static_cast<int64_t>(row) * head->in_features());
      head->bias().value[static_cast<int64_t>(row)] = b[src];
    }
  }

  const data::Dataset sub_train = restrict_to_classes(train_set, classes);
  const data::Dataset sub_test = restrict_to_classes(test_set, classes);

  SpecializeResult result;
  result.subset_accuracy_before = nn::evaluate(model, sub_test);

  // 4. Prune filters unimportant for the kept classes.
  PruneStrategyConfig strat;
  strat.mode = StrategyMode::kBoth;
  strat.score_threshold = cfg.threshold_fraction * static_cast<float>(k);
  strat.max_fraction_per_iter = cfg.max_fraction;
  strat.min_filters_per_layer = cfg.min_filters_per_layer;
  const std::vector<UnitSelection> selection = select_filters(subset_scores, strat);
  result.filters_removed = apply_selection(model, selection);

  // 5. Fine-tune on the retained classes and report.
  nn::train(model, sub_train, cfg.finetune);
  result.subset_accuracy_after = nn::evaluate(model, sub_test);
  result.report = flops::compare(cost_before, flops::count(model));
  return result;
}

}  // namespace capr::core
