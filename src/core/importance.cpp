#include "core/importance.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "nn/loss.h"

namespace capr::core {
namespace {

/// Per-image cross-entropy losses (no batch averaging) — Eq. 3/4 are
/// defined per image x_j.
std::vector<float> per_image_ce(const Tensor& logits, const std::vector<int64_t>& labels) {
  const Tensor probs = nn::softmax(logits);
  const int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<float> out(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float p = probs[i * c + labels[static_cast<size_t>(i)]];
    out[static_cast<size_t>(i)] = -std::log(p + 1e-12f);
  }
  return out;
}

struct CaptureGuard {
  nn::Layer* layer;
  explicit CaptureGuard(nn::Layer* l) : layer(l) { layer->instrument().capture = true; }
  ~CaptureGuard() {
    layer->instrument().capture = false;
    layer->instrument().release_captures();
  }
  CaptureGuard(const CaptureGuard&) = delete;
  CaptureGuard& operator=(const CaptureGuard&) = delete;
};

}  // namespace

std::vector<float> ImportanceResult::all_scores() const {
  std::vector<float> out;
  for (const UnitScores& u : units) out.insert(out.end(), u.total.begin(), u.total.end());
  return out;
}

std::vector<float> ImportanceResult::mean_per_unit() const {
  std::vector<float> out;
  out.reserve(units.size());
  for (const UnitScores& u : units) {
    double acc = 0.0;
    for (float s : u.total) acc += s;
    out.push_back(u.total.empty() ? 0.0f : static_cast<float>(acc / u.total.size()));
  }
  return out;
}

Tensor ImportanceEvaluator::taylor_activation_scores(nn::Model& model, size_t unit_index,
                                                     const data::Batch& batch) {
  if (unit_index >= model.units.size()) {
    throw std::out_of_range("taylor_activation_scores: unit index out of range");
  }
  nn::PrunableUnit& unit = model.units[unit_index];
  CaptureGuard guard(unit.score_point);
  nn::SoftmaxCrossEntropy ce;
  const Tensor logits = model.forward(batch.images, /*training=*/false);
  ce.forward(logits, batch.labels);
  // ce.backward() divides by N; Eq. 4 wants per-image dL(x_j)/da, so the
  // captured gradients are rescaled by N below.
  model.backward(ce.backward());
  const Tensor& a = unit.score_point->instrument().captured_output;
  const Tensor& g = unit.score_point->instrument().captured_grad;
  if (a.empty() || g.empty()) {
    throw std::logic_error("taylor scores: capture produced no data for unit " + unit.name);
  }
  const float n = static_cast<float>(batch.size());
  Tensor scores(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) scores[i] = std::fabs(a[i] * g[i] * n);
  return scores;
}

Tensor ImportanceEvaluator::exact_activation_scores(nn::Model& model, size_t unit_index,
                                                    const data::Batch& batch) {
  if (unit_index >= model.units.size()) {
    throw std::out_of_range("exact_activation_scores: unit index out of range");
  }
  nn::PrunableUnit& unit = model.units[unit_index];
  Tensor base_logits;
  Shape act_shape;
  {
    CaptureGuard guard(unit.score_point);
    base_logits = model.forward(batch.images, /*training=*/false);
    act_shape = unit.score_point->instrument().captured_output.shape();
  }
  const std::vector<float> base_loss = per_image_ce(base_logits, batch.labels);
  const int64_t per_image = numel_of(act_shape) / act_shape[0];

  Tensor scores(act_shape);
  nn::Instrument& inst = unit.score_point->instrument();
  for (int64_t idx = 0; idx < scores.numel(); ++idx) {
    inst.zero_flat_index = idx;
    const Tensor logits = model.forward(batch.images, /*training=*/false);
    const std::vector<float> loss = per_image_ce(logits, batch.labels);
    const int64_t image = idx / per_image;
    scores[idx] = std::fabs(loss[static_cast<size_t>(image)] -
                            base_loss[static_cast<size_t>(image)]);
  }
  inst.zero_flat_index.reset();
  return scores;
}

ImportanceResult ImportanceEvaluator::evaluate(nn::Model& model,
                                               const data::Dataset& train_set) {
  if (model.units.empty()) {
    throw std::invalid_argument("ImportanceEvaluator: model has no prunable units");
  }
  const int64_t num_classes = train_set.num_classes();
  Rng rng(cfg_.sample_seed);

  ImportanceResult result;
  result.num_classes = num_classes;
  result.units.resize(model.units.size());
  for (size_t u = 0; u < model.units.size(); ++u) {
    result.units[u].unit_name = model.units[u].name;
    result.units[u].unit_index = u;
    result.units[u].per_class.resize(static_cast<size_t>(num_classes));
    result.units[u].total.assign(static_cast<size_t>(model.units[u].conv->out_channels()),
                                 0.0f);
  }

  for (int64_t cls = 0; cls < num_classes; ++cls) {
    const data::Batch batch = train_set.sample_class(cls, cfg_.images_per_class, rng);
    const float m = static_cast<float>(batch.size());

    // Taylor mode scores every unit from a single forward+backward pass:
    // enable capture everywhere, run once, then read (a, dL/da) per unit.
    std::vector<Tensor> thetas(model.units.size());
    if (cfg_.mode == ScoreMode::kTaylor) {
      std::vector<std::unique_ptr<CaptureGuard>> guards;
      guards.reserve(model.units.size());
      for (auto& unit : model.units) {
        guards.push_back(std::make_unique<CaptureGuard>(unit.score_point));
      }
      nn::SoftmaxCrossEntropy ce;
      const Tensor logits = model.forward(batch.images, /*training=*/false);
      ce.forward(logits, batch.labels);
      model.backward(ce.backward());
      const float n = static_cast<float>(batch.size());
      for (size_t u = 0; u < model.units.size(); ++u) {
        const Tensor& a = model.units[u].score_point->instrument().captured_output;
        const Tensor& g = model.units[u].score_point->instrument().captured_grad;
        if (a.empty() || g.empty()) {
          throw std::logic_error("importance: no capture for unit " + model.units[u].name);
        }
        Tensor theta(a.shape());
        for (int64_t i = 0; i < a.numel(); ++i) theta[i] = std::fabs(a[i] * g[i] * n);
        thetas[u] = std::move(theta);
      }
    }

    for (size_t u = 0; u < model.units.size(); ++u) {
      const Tensor theta = cfg_.mode == ScoreMode::kTaylor
                               ? std::move(thetas[u])
                               : exact_activation_scores(model, u, batch);

      // Resolve tau for this (class, unit): fixed (paper rule) or a
      // quantile of the unit's own positive scores. Per-unit adaptation
      // matters because activation magnitudes vary strongly with depth —
      // a network-wide threshold would zero out whole layers whose
      // activations are merely smaller-scaled, not less class-relevant.
      float tau = cfg_.tau;
      if (cfg_.tau_mode == TauMode::kQuantile) {
        std::vector<float> positive;
        positive.reserve(static_cast<size_t>(theta.numel()));
        for (int64_t i = 0; i < theta.numel(); ++i) {
          if (theta[i] > 0.0f) positive.push_back(theta[i]);
        }
        if (!positive.empty()) {
          const float q = std::clamp(cfg_.tau_quantile, 0.0f, 1.0f);
          const auto k =
              static_cast<size_t>(q * static_cast<double>(positive.size() - 1));
          std::nth_element(positive.begin(), positive.begin() + static_cast<int64_t>(k),
                           positive.end());
          tau = positive[k];
        }
      }
      const int64_t n = theta.dim(0);
      const int64_t f = theta.dim(1);
      const int64_t plane = theta.numel() / (n * f);

      // Eq. 5 + Eq. 6: binarise against tau, average over the M images.
      std::vector<float> s_ave(static_cast<size_t>(f * plane), 0.0f);
      for (int64_t img = 0; img < n; ++img) {
        const float* t = theta.data() + img * f * plane;
        for (int64_t k = 0; k < f * plane; ++k) {
          if (t[k] > tau) s_ave[static_cast<size_t>(k)] += 1.0f / m;
        }
      }

      // Eq. 7: aggregate the activation scores of each filter.
      std::vector<float>& cls_scores = result.units[u].per_class[static_cast<size_t>(cls)];
      cls_scores.assign(static_cast<size_t>(f), 0.0f);
      for (int64_t filter = 0; filter < f; ++filter) {
        const float* s = s_ave.data() + filter * plane;
        float agg = 0.0f;
        if (cfg_.aggregate == SpatialAggregate::kMax) {
          for (int64_t k = 0; k < plane; ++k) agg = s[k] > agg ? s[k] : agg;
        } else {
          for (int64_t k = 0; k < plane; ++k) agg += s[k];
          agg /= static_cast<float>(plane);
        }
        cls_scores[static_cast<size_t>(filter)] = agg;
        result.units[u].total[static_cast<size_t>(filter)] += agg;
      }
    }

    // End-of-round hygiene: captured activation/gradient tensors for a
    // whole batch dominate peak memory during scoring; drop them before
    // sampling the next class (guards only release on scope exit, and
    // the exact path re-captures per perturbation).
    for (auto& unit : model.units) unit.score_point->instrument().release_captures();
  }
  return result;
}

}  // namespace capr::core
