#include "core/surgeon.h"

#include <stdexcept>

#include "graph/graph.h"

namespace capr::core {
namespace {

PlanValidator& validator_slot() {
  static PlanValidator validator;
  return validator;
}

}  // namespace

void set_plan_validator(PlanValidator validator) { validator_slot() = std::move(validator); }

const PlanValidator& plan_validator() { return validator_slot(); }

void remove_filters(nn::Model& model, size_t unit_index, const std::vector<int64_t>& filters) {
  if (unit_index >= model.units.size()) {
    throw std::out_of_range("remove_filters: unit index out of range");
  }
  if (filters.empty()) return;

  // The edit is driven by the graph's coupling group, not the hand
  // annotations: the group re-resolves producer/BN/consumers from the
  // current structure, so stale or tampered unit metadata cannot steer
  // the surgeon into an illegal edit.
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  if (!g.ok()) {
    throw std::logic_error("remove_filters: " + g.error()->format());
  }
  const graph::CouplingGroup* grp = g.group_for(model.units[unit_index].conv);
  if (grp == nullptr) {
    throw std::logic_error("remove_filters: unit " + std::to_string(unit_index) +
                           " has no coupling group in the model graph");
  }
  if (grp->residual_constrained) {
    throw std::logic_error("remove_filters: unit " + std::to_string(unit_index) +
                           " ('" + grp->name + "') is residual-constrained");
  }
  nn::PrunableUnit unit = g.materialize(*grp);

  unit.conv->remove_out_channels(filters);
  if (unit.bn != nullptr) unit.bn->remove_channels(filters);
  for (nn::ConsumerRef& c : unit.consumers) {
    if (c.conv != nullptr) {
      c.conv->remove_in_channels(filters);
    } else if (c.linear != nullptr) {
      if (c.spatial <= 0) throw std::logic_error("ConsumerRef: non-positive spatial factor");
      std::vector<int64_t> features;
      features.reserve(filters.size() * static_cast<size_t>(c.spatial));
      for (int64_t f : filters) {
        for (int64_t k = 0; k < c.spatial; ++k) features.push_back(f * c.spatial + k);
      }
      c.linear->remove_in_features(features);
    } else {
      throw std::logic_error("ConsumerRef: neither conv nor linear set");
    }
  }
}

int64_t apply_selection(nn::Model& model, const std::vector<UnitSelection>& selection) {
  if (plan_validator()) plan_validator()(model, selection, nullptr);
  int64_t removed = 0;
  for (const UnitSelection& sel : selection) {
    remove_filters(model, sel.unit_index, sel.filters);
    removed += static_cast<int64_t>(sel.filters.size());
  }
  return removed;
}

int64_t total_prunable_filters(const nn::Model& model) {
  int64_t n = 0;
  for (const nn::PrunableUnit& u : model.units) n += u.conv->out_channels();
  return n;
}

void load_pruned_checkpoint(nn::Model& model, const std::map<std::string, Tensor>& dict) {
  for (size_t u = 0; u < model.units.size(); ++u) {
    const nn::Conv2d* conv = model.units[u].conv;
    const auto it = dict.find(conv->name() + ".weight");
    if (it == dict.end()) {
      throw std::runtime_error("checkpoint lacks weights for prunable conv '" + conv->name() +
                               "'");
    }
    const int64_t want = it->second.dim(0);
    const int64_t have = conv->out_channels();
    if (want > have) {
      throw std::runtime_error("checkpoint has " + std::to_string(want) + " filters for '" +
                               conv->name() + "', architecture has only " +
                               std::to_string(have));
    }
    if (want < have) {
      // WHICH original filters survived does not matter here: every
      // surviving weight is about to be overwritten from the checkpoint,
      // so shrinking from the tail yields the right shapes.
      std::vector<int64_t> drop;
      drop.reserve(static_cast<size_t>(have - want));
      for (int64_t f = want; f < have; ++f) drop.push_back(f);
      remove_filters(model, u, drop);
    }
  }
  model.load_state_dict(dict);
}

PruneHistory::PruneHistory(const nn::Model& model) {
  kept_.reserve(model.units.size());
  for (const nn::PrunableUnit& u : model.units) {
    std::vector<int64_t> all(static_cast<size_t>(u.conv->out_channels()));
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
    kept_.push_back(std::move(all));
    original_counts_.push_back(u.conv->out_channels());
  }
}

void PruneHistory::apply(const std::vector<UnitSelection>& selection) {
  for (const UnitSelection& sel : selection) {
    if (sel.unit_index >= kept_.size()) {
      throw std::out_of_range("PruneHistory: unit index " + std::to_string(sel.unit_index) +
                              " out of range (history tracks " + std::to_string(kept_.size()) +
                              " units)");
    }
    std::vector<int64_t>& kept = kept_[sel.unit_index];
    // sel.filters must be sorted ascending and duplicate-free — an
    // unsorted or repeated index would silently erase the wrong
    // originals; erase from the back so earlier positions stay valid.
    for (size_t i = 1; i < sel.filters.size(); ++i) {
      if (sel.filters[i] <= sel.filters[i - 1]) {
        throw std::invalid_argument(
            "PruneHistory: unit " + std::to_string(sel.unit_index) +
            ": filter indices must be strictly ascending, got " +
            std::to_string(sel.filters[i - 1]) + " before " + std::to_string(sel.filters[i]));
      }
    }
    for (int64_t f : sel.filters) {
      if (f < 0 || f >= static_cast<int64_t>(kept.size())) {
        throw std::out_of_range("PruneHistory: unit " + std::to_string(sel.unit_index) +
                                ": filter index " + std::to_string(f) + " out of range (" +
                                std::to_string(kept.size()) + " live filters)");
      }
    }
    for (auto it = sel.filters.rbegin(); it != sel.filters.rend(); ++it) {
      kept.erase(kept.begin() + static_cast<int64_t>(*it));
    }
  }
}

std::vector<std::vector<int64_t>> PruneHistory::removed_original() const {
  std::vector<std::vector<int64_t>> out(kept_.size());
  for (size_t u = 0; u < kept_.size(); ++u) {
    size_t k = 0;
    for (int64_t i = 0; i < original_counts_[u]; ++i) {
      if (k < kept_[u].size() && kept_[u][k] == i) {
        ++k;
      } else {
        out[u].push_back(i);
      }
    }
  }
  return out;
}

}  // namespace capr::core
