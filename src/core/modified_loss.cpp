#include "core/modified_loss.h"

#include <stdexcept>

#include "nn/linear.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"

namespace capr::core {
namespace {

using nn::Conv2d;
using nn::Linear;

/// d(||W||_1)/dW = sign(W); accumulated scaled into grad.
float l1_term(const Tensor& w, Tensor& grad, float lambda) {
  double penalty = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    penalty += std::abs(w[i]);
    if (w[i] > 0.0f) {
      grad[i] += lambda;
    } else if (w[i] < 0.0f) {
      grad[i] -= lambda;
    }
  }
  return static_cast<float>(penalty);
}

}  // namespace

float orth_penalty_filter_matrix(const Conv2d& conv, Tensor* grad, float scale) {
  const Tensor k = conv.filter_matrix();  // [F, D]
  const int64_t f = k.dim(0);
  // G = K K^T - I
  Tensor g = matmul_nt(k, k);
  for (int64_t i = 0; i < f; ++i) g[i * f + i] -= 1.0f;
  double penalty = 0.0;
  for (int64_t i = 0; i < g.numel(); ++i) penalty += static_cast<double>(g[i]) * g[i];
  if (grad != nullptr) {
    // d||G||_F^2/dK = 4 G K (G symmetric); grad has the conv weight shape,
    // which is the filter matrix in memory.
    Tensor gk = matmul(g, k);  // [F, D]
    if (grad->numel() != gk.numel()) {
      throw std::invalid_argument("orth gradient: shape mismatch with conv weight");
    }
    for (int64_t i = 0; i < gk.numel(); ++i) (*grad)[i] += scale * 4.0f * gk[i];
  }
  return static_cast<float>(penalty);
}

Tensor toeplitz_matrix(const Conv2d& conv, int64_t in_h, int64_t in_w) {
  ConvGeom geom;
  geom.in_channels = conv.in_channels();
  geom.in_h = in_h;
  geom.in_w = in_w;
  geom.kernel_h = conv.kernel();
  geom.kernel_w = conv.kernel();
  geom.stride = conv.stride();
  geom.padding = conv.padding();
  geom.validate();
  const int64_t oh = geom.out_h(), ow = geom.out_w();
  const int64_t rows = conv.out_channels() * oh * ow;
  const int64_t cols = conv.in_channels() * in_h * in_w;
  Tensor t({rows, cols});
  const Tensor& w = conv.weight().value;
  const int64_t k = conv.kernel();
  for (int64_t f = 0; f < conv.out_channels(); ++f) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const int64_t row = (f * oh + oy) * ow + ox;
        for (int64_t c = 0; c < conv.in_channels(); ++c) {
          for (int64_t kh = 0; kh < k; ++kh) {
            const int64_t iy = oy * conv.stride() + kh - conv.padding();
            if (iy < 0 || iy >= in_h) continue;
            for (int64_t kw = 0; kw < k; ++kw) {
              const int64_t ix = ox * conv.stride() + kw - conv.padding();
              if (ix < 0 || ix >= in_w) continue;
              const int64_t col = (c * in_h + iy) * in_w + ix;
              t[row * cols + col] = w[((f * conv.in_channels() + c) * k + kh) * k + kw];
            }
          }
        }
      }
    }
  }
  return t;
}

float orth_penalty_toeplitz(const Conv2d& conv, int64_t in_h, int64_t in_w, Tensor* grad,
                            float scale) {
  const Tensor t = toeplitz_matrix(conv, in_h, in_w);
  const int64_t rows = t.dim(0), cols = t.dim(1);
  Tensor g = matmul_nt(t, t);
  for (int64_t i = 0; i < rows; ++i) g[i * rows + i] -= 1.0f;
  double penalty = 0.0;
  for (int64_t i = 0; i < g.numel(); ++i) penalty += static_cast<double>(g[i]) * g[i];
  if (grad != nullptr) {
    if (grad->shape() != conv.weight().value.shape()) {
      throw std::invalid_argument("toeplitz orth gradient: shape mismatch with conv weight");
    }
    // dP/dT = 4 G T (G symmetric); chain back through T's structure by
    // walking the same enumeration that toeplitz_matrix uses: weight
    // element w[f,c,kh,kw] occupies T[row, col] for every valid output
    // position, so its gradient is the sum of 4(GT)[row, col] over them.
    const Tensor gt = matmul(g, t);  // [rows, cols]
    ConvGeom geom;
    geom.in_channels = conv.in_channels();
    geom.in_h = in_h;
    geom.in_w = in_w;
    geom.kernel_h = conv.kernel();
    geom.kernel_w = conv.kernel();
    geom.stride = conv.stride();
    geom.padding = conv.padding();
    const int64_t oh = geom.out_h(), ow = geom.out_w();
    const int64_t k = conv.kernel();
    for (int64_t f = 0; f < conv.out_channels(); ++f) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const int64_t row = (f * oh + oy) * ow + ox;
          for (int64_t c = 0; c < conv.in_channels(); ++c) {
            for (int64_t kh = 0; kh < k; ++kh) {
              const int64_t iy = oy * conv.stride() + kh - conv.padding();
              if (iy < 0 || iy >= in_h) continue;
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t ix = ox * conv.stride() + kw - conv.padding();
                if (ix < 0 || ix >= in_w) continue;
                const int64_t col = (c * in_h + iy) * in_w + ix;
                const int64_t widx = ((f * conv.in_channels() + c) * k + kh) * k + kw;
                (*grad)[widx] += scale * 4.0f * gt[row * cols + col];
              }
            }
          }
        }
      }
    }
  }
  return static_cast<float>(penalty);
}

float ModifiedLoss::apply(nn::Model& model) {
  double total = 0.0;
  model.net->visit([this, &total](nn::Layer& layer) {
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      if (cfg_.lambda1 != 0.0f) {
        total += static_cast<double>(cfg_.lambda1) *
                 l1_term(conv->weight().value, conv->weight().grad, cfg_.lambda1);
      }
      if (cfg_.lambda2 != 0.0f) {
        if (cfg_.orth_form == OrthForm::kFilterMatrix) {
          total += static_cast<double>(cfg_.lambda2) *
                   orth_penalty_filter_matrix(*conv, &conv->weight().grad, cfg_.lambda2);
        } else {
          // Exact Toeplitz penalty with its exact gradient (verified by
          // tests/gradcheck_test.cpp against finite differences).
          total += static_cast<double>(cfg_.lambda2) *
                   orth_penalty_toeplitz(*conv, cfg_.toeplitz_h, cfg_.toeplitz_w,
                                         &conv->weight().grad, cfg_.lambda2);
        }
      }
    } else if (auto* lin = dynamic_cast<Linear*>(&layer)) {
      if (cfg_.lambda1 != 0.0f && cfg_.l1_on_linear) {
        total += static_cast<double>(cfg_.lambda1) *
                 l1_term(lin->weight().value, lin->weight().grad, cfg_.lambda1);
      }
    }
  });
  return static_cast<float>(total);
}

}  // namespace capr::core
