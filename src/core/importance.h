// Class-aware filter importance (paper Section III-B, Eqs. 3-7).
//
// For filter f and class n:
//   1. Sample M images of class n from the training set.
//   2. For every activation a in the filter's output feature map compute
//      the Taylor score  theta'(a, x_j) = |a * dL(x_j)/da|   (Eq. 4)
//      — one forward + one backward per image batch — or, in exact mode,
//      theta(a, x_j) = |L(x_j) - L(x_j; a<-0)|                (Eq. 3)
//      — one extra forward per activation (validation only).
//   3. Binarise against tau (Eq. 5), average over the M images (Eq. 6),
//      and aggregate over the feature map with max (Eq. 7) to get
//      s_{f,n} in [0, 1].
// The total importance score of a filter is sum_n s_{f,n} in [0, C].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"

namespace capr::core {

enum class ScoreMode { kTaylor, kExactZeroOut };
enum class SpatialAggregate { kMax, kMean };

/// How tau (Eq. 5) is chosen.
///
/// kAbsolute is the paper's rule: a fixed constant (1e-50 in the paper,
/// i.e. "exactly nonzero"; the float32 equivalent default here is 1e-12).
/// It presumes long, strongly-regularized training that drives unimportant
/// filters to *exact* zeros.
///
/// kQuantile adapts tau to the network: tau is the given quantile of the
/// positive Taylor scores observed for the class at hand. This keeps the
/// binarisation meaningful at reduced training scales, where unimportant
/// filters are merely tiny rather than exactly dead. Both modes produce
/// the paper's absolute rule in the limit of a fully polarised network.
enum class TauMode { kAbsolute, kQuantile };

struct ImportanceConfig {
  /// M in Eq. 6; the paper uses 10 and reports saturation beyond that.
  int64_t images_per_class = 10;
  /// tau in Eq. 5 (kAbsolute mode). The paper's 1e-50 is below float32
  /// resolution; this is the float32 "effectively nonzero" equivalent.
  float tau = 1e-12f;
  TauMode tau_mode = TauMode::kAbsolute;
  /// Quantile of positive scores used when tau_mode == kQuantile.
  float tau_quantile = 0.5f;
  ScoreMode mode = ScoreMode::kTaylor;
  SpatialAggregate aggregate = SpatialAggregate::kMax;
  uint64_t sample_seed = 99;
};

/// Importance scores for the filters of one PrunableUnit.
struct UnitScores {
  std::string unit_name;
  size_t unit_index = 0;
  /// s_{f,n}: per_class[n][f] in [0, 1].
  std::vector<std::vector<float>> per_class;
  /// Total score per filter: sum over classes, in [0, num_classes].
  std::vector<float> total;
};

struct ImportanceResult {
  std::vector<UnitScores> units;
  int64_t num_classes = 0;

  /// All total scores flattened (histograms for Figs. 4 and 8).
  std::vector<float> all_scores() const;
  /// Mean total score per unit (series for Fig. 7).
  std::vector<float> mean_per_unit() const;
};

/// Evaluates class-aware importance for every PrunableUnit of a model.
class ImportanceEvaluator {
 public:
  explicit ImportanceEvaluator(ImportanceConfig cfg = {}) : cfg_(cfg) {}

  /// Scores all units against `train_set`. The model is used for forward
  /// and backward passes (eval-mode statistics) and left unmodified.
  ImportanceResult evaluate(nn::Model& model, const data::Dataset& train_set);

  /// Exact Eq. 3 scores of every activation of one unit for one image
  /// batch: returns |L - L(a<-0)| with shape [N, F, H, W] flattened per
  /// batch element. O(activations) forwards — validation/testing only.
  Tensor exact_activation_scores(nn::Model& model, size_t unit_index, const data::Batch& batch);

  /// Taylor scores |a * dL/da| of every activation of one unit for one
  /// batch, same layout as exact_activation_scores.
  Tensor taylor_activation_scores(nn::Model& model, size_t unit_index, const data::Batch& batch);

  const ImportanceConfig& config() const { return cfg_; }

 private:
  ImportanceConfig cfg_;
};

}  // namespace capr::core
