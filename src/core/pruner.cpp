#include "core/pruner.h"

#include <map>

namespace capr::core {

std::vector<UnitSelection> ClassAwarePruner::plan(const ImportanceResult& scores) const {
  return select_filters(scores, cfg_.strategy);
}

int64_t ClassAwarePruner::step(nn::Model& model, const std::vector<UnitSelection>& selection,
                               PruneHistory* history) {
  // In checked mode, certify with full strategy context (caps, floor)
  // before the first mutation; apply_selection re-runs the structural
  // half, which is cheap relative to the surgery itself.
  if (plan_validator()) plan_validator()(model, selection, &cfg_.strategy);
  const int64_t removed = apply_selection(model, selection);
  if (history != nullptr) history->apply(selection);
  return removed;
}

PruneRunResult ClassAwarePruner::run(nn::Model& model, const data::Dataset& train_set,
                                     const data::Dataset& test_set) {
  PruneRunResult result;
  const flops::ModelCost cost_before = flops::count(model);
  result.original_accuracy = nn::evaluate(model, test_set);

  ImportanceEvaluator evaluator(cfg_.importance);
  ModifiedLoss reg(cfg_.loss);
  nn::Regularizer* finetune_reg = cfg_.finetune_with_modified_loss ? &reg : nullptr;

  result.scores_before = evaluator.evaluate(model, train_set);
  result.stop_reason = "max iterations reached";

  const bool can_rollback = static_cast<bool>(cfg_.model_factory);
  PruneHistory tracker(model);

  float accuracy = result.original_accuracy;
  for (int iter = 0; iter < cfg_.max_iterations; ++iter) {
    const ImportanceResult scores =
        iter == 0 ? result.scores_before : evaluator.evaluate(model, train_set);
    const std::vector<UnitSelection> selection = plan(scores);
    if (selection.empty()) {
      result.stop_reason = "no prunable filters remain";
      break;
    }

    // Snapshot for rollback before mutating the model.
    std::map<std::string, Tensor> weights_snapshot;
    std::vector<std::vector<int64_t>> kept_snapshot;
    if (can_rollback) {
      weights_snapshot = model.state_dict();
      kept_snapshot = tracker.snapshot();
    }

    const int64_t removed = step(model, selection, &tracker);

    nn::TrainConfig ft = cfg_.finetune;
    ft.loader_seed = cfg_.finetune.loader_seed + static_cast<uint64_t>(iter) + 1;
    nn::train(model, train_set, ft, finetune_reg);
    float new_accuracy = nn::evaluate(model, test_set);

    // Spend extra recovery fine-tuning before declaring the iteration
    // unrecoverable (the paper fine-tunes for up to 130 epochs).
    for (int round = 0; round < cfg_.recovery_rounds &&
                        result.original_accuracy - new_accuracy > cfg_.max_accuracy_drop;
         ++round) {
      ft.loader_seed += 7919;
      nn::train(model, train_set, ft, finetune_reg);
      new_accuracy = nn::evaluate(model, test_set);
    }

    if (result.original_accuracy - new_accuracy > cfg_.max_accuracy_drop) {
      result.stop_reason = "accuracy drop not recovered by fine-tuning";
      if (can_rollback) {
        tracker.restore(std::move(kept_snapshot));
        nn::Model fresh = cfg_.model_factory();
        const auto removed_orig = tracker.removed_original();
        for (size_t u = 0; u < removed_orig.size(); ++u) {
          if (!removed_orig[u].empty()) remove_filters(fresh, u, removed_orig[u]);
        }
        fresh.load_state_dict(weights_snapshot);
        model = std::move(fresh);
        result.stop_reason += " (iteration rolled back)";
      } else {
        accuracy = new_accuracy;
        const flops::ModelCost cost_now = flops::count(model);
        const IterationRecord rec{iter, removed, total_prunable_filters(model), new_accuracy,
                                  cost_now.total_params, cost_now.total_flops};
        if (cfg_.on_iteration) cfg_.on_iteration(rec);
        result.iterations.push_back(rec);
      }
      break;
    }

    accuracy = new_accuracy;
    const flops::ModelCost cost_now = flops::count(model);
    const IterationRecord rec{iter, removed, total_prunable_filters(model), new_accuracy,
                              cost_now.total_params, cost_now.total_flops};
    if (cfg_.on_iteration) cfg_.on_iteration(rec);
    result.iterations.push_back(rec);
  }

  result.final_accuracy = accuracy;
  result.scores_after = evaluator.evaluate(model, train_set);
  result.report = flops::compare(cost_before, flops::count(model));
  return result;
}

}  // namespace capr::core
