// Filter selection strategy (paper Section III-C and Table II).
//
// Three modes:
//  - kThreshold:  remove every filter whose total score is below the
//    score threshold (paper: 3 for 10 classes, 30 for 100 classes).
//  - kPercentage: remove the globally lowest-scoring fraction of filters.
//  - kBoth (paper default): filters below the threshold, capped at the
//    per-iteration percentage (lowest scores evicted first).
// A per-layer floor (min_filters_per_layer) guarantees surgery legality.
//
// The selection machinery is implemented ONCE (select_scored): the
// class-aware path (select_filters), the baseline criteria and the
// graph-driven PruneStrategy interface (src/strategy) all feed their
// scores through the same engine, so every method runs under identical
// cap/floor protections.
#pragma once

#include <cstdint>
#include <vector>

#include "core/importance.h"

namespace capr::core {

enum class StrategyMode { kThreshold, kPercentage, kBoth };

/// The protection knobs every selection — class-aware, baseline or
/// tournament entrant — runs under. Shared by PruneStrategyConfig and
/// baselines::BaselinePrunerConfig so no method can accidentally run
/// with different caps or floors than its competitors.
struct SelectionLimits {
  /// Per-iteration cap as a fraction of currently remaining filters,
  /// network-wide (the paper's "no more than 10% per iteration").
  float max_fraction_per_iter = 0.10f;
  /// Per-iteration cap within a single layer, as a fraction of that
  /// layer's current filters. Prevents one iteration from gutting a thin
  /// layer down to the floor before fine-tuning can react. 1.0 disables.
  float max_layer_fraction_per_iter = 0.5f;
  /// Never shrink a layer below this many filters.
  int64_t min_filters_per_layer = 2;
};

struct PruneStrategyConfig : SelectionLimits {
  StrategyMode mode = StrategyMode::kBoth;
  /// Score threshold; < 0 selects the paper's rule of thumb
  /// 0.3 * num_classes (3 for CIFAR-10, 30 for CIFAR-100).
  float score_threshold = -1.0f;
};

/// Filters selected for removal in one unit.
struct UnitSelection {
  size_t unit_index = 0;
  std::vector<int64_t> filters;
};

/// One unit's per-filter scores as the selection engine consumes them
/// (higher = more important). `unit_index` is the index the emitted
/// UnitSelection carries — the surgeon's unit space.
struct ScoredUnit {
  size_t unit_index = 0;
  std::vector<float> scores;
};

/// The single selection engine: applies mode, threshold, per-layer floor
/// and caps, and the global percentage cap to the given scores.
/// Selections come back grouped per unit, filters sorted ascending.
std::vector<UnitSelection> select_scored(const std::vector<ScoredUnit>& units,
                                         const PruneStrategyConfig& cfg, int64_t num_classes);

/// Applies the strategy to an importance result. Selections respect the
/// per-layer floor and, in capped modes, the global percentage limit.
/// Thin wrapper over select_scored.
std::vector<UnitSelection> select_filters(const ImportanceResult& scores,
                                          const PruneStrategyConfig& cfg);

/// Effective threshold: cfg.score_threshold, or the paper's default rule
/// when negative.
float effective_threshold(const PruneStrategyConfig& cfg, int64_t num_classes);

/// Total number of filters selected across units.
int64_t selection_size(const std::vector<UnitSelection>& sel);

}  // namespace capr::core
