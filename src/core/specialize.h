// Class-subset specialization — an application the class-aware scores
// make possible beyond the paper's experiments.
//
// Edge deployments frequently need only a subset of a classifier's
// classes (a door camera needs {person, car, pet}, not all hundred).
// Because the importance evaluation (Eqs. 4-7) produces a PER-CLASS
// score s_{f,n} for every filter, specialization is a direct corollary:
// sum the scores over the retained classes only, prune filters that are
// unimportant for that subset, shrink the classifier head to the kept
// rows, and fine-tune on the retained classes. Filters that existed only
// to tell discarded classes apart are exactly the ones removed.
#pragma once

#include <vector>

#include "core/importance.h"
#include "core/strategy.h"
#include "flops/flops.h"
#include "nn/trainer.h"

namespace capr::core {

struct SpecializeConfig {
  ImportanceConfig importance{};
  /// Filters whose summed score over the KEPT classes is below
  /// threshold_fraction * |kept| are candidates (the 0.3*C rule applied
  /// to the subset).
  float threshold_fraction = 0.3f;
  /// Upper bound on the fraction of filters removed in the single
  /// specialization pass.
  float max_fraction = 0.5f;
  int64_t min_filters_per_layer = 2;
  /// Fine-tuning on the retained classes after surgery.
  nn::TrainConfig finetune{};
};

struct SpecializeResult {
  /// Accuracy on the retained classes before specialization (original
  /// model, original head restricted to kept classes).
  float subset_accuracy_before = 0.0f;
  /// Accuracy of the specialized model on the retained classes.
  float subset_accuracy_after = 0.0f;
  int64_t filters_removed = 0;
  flops::PruningReport report;
};

/// Restriction of `set` to `classes`, with labels remapped to 0..k-1 in
/// the order given. Throws if a class is out of range or duplicated.
data::Dataset restrict_to_classes(const data::Dataset& set,
                                  const std::vector<int64_t>& classes);

/// Specializes `model` in place to `classes`: scores filters on the full
/// training set, prunes those unimportant for the kept classes, shrinks
/// the classifier head (the final Linear of the model graph), and
/// fine-tunes on the restricted training set.
SpecializeResult specialize_to_classes(nn::Model& model, const data::Dataset& train_set,
                                       const data::Dataset& test_set,
                                       const std::vector<int64_t>& classes,
                                       const SpecializeConfig& cfg);

}  // namespace capr::core
