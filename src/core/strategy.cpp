#include "core/strategy.h"

#include <algorithm>
#include <stdexcept>

namespace capr::core {
namespace {

struct Candidate {
  size_t unit_index;
  int64_t filter;
  float score;
};

}  // namespace

float effective_threshold(const PruneStrategyConfig& cfg, int64_t num_classes) {
  if (cfg.score_threshold >= 0.0f) return cfg.score_threshold;
  return 0.3f * static_cast<float>(num_classes);
}

int64_t selection_size(const std::vector<UnitSelection>& sel) {
  int64_t n = 0;
  for (const auto& s : sel) n += static_cast<int64_t>(s.filters.size());
  return n;
}

std::vector<UnitSelection> select_scored(const std::vector<ScoredUnit>& units,
                                         const PruneStrategyConfig& cfg, int64_t num_classes) {
  if (cfg.max_fraction_per_iter <= 0.0f || cfg.max_fraction_per_iter > 1.0f) {
    throw std::invalid_argument("PruneStrategy: max_fraction_per_iter must be in (0, 1]");
  }
  if (cfg.max_layer_fraction_per_iter <= 0.0f || cfg.max_layer_fraction_per_iter > 1.0f) {
    throw std::invalid_argument(
        "PruneStrategy: max_layer_fraction_per_iter must be in (0, 1]");
  }
  const float threshold = effective_threshold(cfg, num_classes);

  // Gather candidates, honouring the per-layer floor by never offering a
  // unit's top (min_filters_per_layer) filters for removal.
  std::vector<Candidate> candidates;
  int64_t total_filters = 0;
  for (const ScoredUnit& u : units) {
    const int64_t f = static_cast<int64_t>(u.scores.size());
    total_filters += f;
    const auto layer_cap = static_cast<int64_t>(
        static_cast<double>(f) * cfg.max_layer_fraction_per_iter);
    const int64_t removable = std::min(f - cfg.min_filters_per_layer, layer_cap);
    if (removable <= 0) continue;
    // Rank filters within the unit by score ascending.
    std::vector<int64_t> order(static_cast<size_t>(f));
    for (int64_t i = 0; i < f; ++i) order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&u](int64_t a, int64_t b) {
      return u.scores[static_cast<size_t>(a)] < u.scores[static_cast<size_t>(b)];
    });
    for (int64_t k = 0; k < removable; ++k) {
      const int64_t filter = order[static_cast<size_t>(k)];
      candidates.push_back({u.unit_index, filter, u.scores[static_cast<size_t>(filter)]});
    }
  }

  // Threshold gate (kThreshold and kBoth).
  if (cfg.mode != StrategyMode::kPercentage) {
    std::erase_if(candidates, [threshold](const Candidate& c) { return c.score >= threshold; });
  }

  // Global percentage cap (kPercentage and kBoth): lowest scores first.
  if (cfg.mode != StrategyMode::kThreshold) {
    const auto cap = static_cast<int64_t>(
        static_cast<double>(total_filters) * cfg.max_fraction_per_iter);
    if (static_cast<int64_t>(candidates.size()) > cap) {
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
      candidates.resize(static_cast<size_t>(std::max<int64_t>(cap, 0)));
    }
  }

  // Group by unit.
  std::vector<UnitSelection> out;
  for (const ScoredUnit& u : units) {
    UnitSelection sel;
    sel.unit_index = u.unit_index;
    for (const Candidate& c : candidates) {
      if (c.unit_index == u.unit_index) sel.filters.push_back(c.filter);
    }
    if (!sel.filters.empty()) {
      std::sort(sel.filters.begin(), sel.filters.end());
      out.push_back(std::move(sel));
    }
  }
  return out;
}

std::vector<UnitSelection> select_filters(const ImportanceResult& scores,
                                          const PruneStrategyConfig& cfg) {
  std::vector<ScoredUnit> units;
  units.reserve(scores.units.size());
  for (const UnitScores& u : scores.units) {
    units.push_back({u.unit_index, u.total});
  }
  return select_scored(units, cfg, scores.num_classes);
}

}  // namespace capr::core
