// The paper's modified training cost (Section III-A, Eq. 1-2):
//
//     L = L_CE + lambda1 * sum_l ||W_l||_1
//              + lambda2 * sum_l ||K_l K_l^T - I||
//
// L1 drives unimportant filters toward exact zeros; the orthogonality
// term pushes surviving filters toward diverse, many-class features.
// Together they polarise the importance-score distribution (paper Fig. 8).
//
// K is the conv weight in operator form. Two forms are provided:
//  - kFilterMatrix (default): K = W reshaped to [Cout, Cin*Kh*Kw]. This is
//    the standard kernel-orthogonality surrogate, O(Cout^2 * CinK^2).
//  - kToeplitz: the exact doubly-blocked-Toeplitz operator of the paper's
//    Fig. 2, built for a given input geometry. Exact but O((Cout*OH*OW)^2)
//    — exposed mainly for validation on small shapes.
// The penalty is the squared Frobenius norm (differentiable everywhere,
// gradient 4*(KK^T - I)*K).
#pragma once

#include "nn/conv2d.h"
#include "nn/model.h"
#include "nn/trainer.h"

namespace capr::core {

enum class OrthForm { kFilterMatrix, kToeplitz };

struct ModifiedLossConfig {
  float lambda1 = 1e-4f;  // paper value
  float lambda2 = 1e-2f;  // paper value
  OrthForm orth_form = OrthForm::kFilterMatrix;
  /// Apply L1 to linear layers too (the paper sums over all layers).
  bool l1_on_linear = true;
  /// Input spatial size used when orth_form == kToeplitz.
  int64_t toeplitz_h = 8;
  int64_t toeplitz_w = 8;
};

/// Regularizer implementing Eq. 1's two penalty terms. Plug into
/// nn::train(); passing lambda1 = lambda2 = 0 reproduces plain CE
/// training (the "no regularization" ablation of Table III).
class ModifiedLoss final : public nn::Regularizer {
 public:
  explicit ModifiedLoss(ModifiedLossConfig cfg = {}) : cfg_(cfg) {}

  /// Adds d(penalty)/dW to every conv/linear weight grad; returns the
  /// penalty value (lambda-weighted).
  float apply(nn::Model& model) override;

  const ModifiedLossConfig& config() const { return cfg_; }

 private:
  ModifiedLossConfig cfg_;
};

/// Penalty ||KK^T - I||_F^2 for one conv's filter matrix, and its
/// gradient accumulated into `grad` (same shape as the conv weight),
/// scaled by `scale`. Returns the unscaled penalty.
float orth_penalty_filter_matrix(const nn::Conv2d& conv, Tensor* grad, float scale);

/// Builds the doubly-blocked-Toeplitz operator of the paper's Fig. 2:
/// rows enumerate (filter, output position), columns enumerate flattened
/// input elements; multiplying it with a flattened input reproduces the
/// convolution. Dense representation; use only on small geometries.
Tensor toeplitz_matrix(const nn::Conv2d& conv, int64_t in_h, int64_t in_w);

/// Penalty ||TT^T - I||_F^2 using the Toeplitz form. When `grad` is
/// non-null, the EXACT gradient is accumulated into it scaled by
/// `scale`: dP/dT = 4 (TT^T - I) T chained through the Toeplitz
/// structure (each weight element appears at every (filter, output
/// position) slot it occupies in T, so its gradient sums those slots).
/// `grad` must have the conv weight shape. Returns the unscaled penalty.
float orth_penalty_toeplitz(const nn::Conv2d& conv, int64_t in_h, int64_t in_w,
                            Tensor* grad = nullptr, float scale = 1.0f);

}  // namespace capr::core
