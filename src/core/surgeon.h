// Structural filter removal.
//
// Removing output filter c of a prunable conv requires coordinated edits:
//   - drop row c of the conv weight (and bias),
//   - drop channel c of the following BatchNorm,
//   - drop input channel c of every consumer conv, or the feature block
//     [c*spatial, (c+1)*spatial) of every consumer linear.
// The PrunableUnit metadata attached by the model builders encodes these
// couplings; the surgeon just executes them and keeps the model's
// invariants (a forward pass stays shape-legal after every operation).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "nn/model.h"

namespace capr::core {

/// Checked-mode hook: certifies a plan BEFORE any mutation, throwing to
/// reject it. Installed by analysis::enable_checked_mode() (the static
/// analyzer lives above core in the layering, so core only knows the
/// hook). The strategy pointer is non-null when the caller knows the
/// strategy semantics the plan must additionally respect (per-iteration
/// caps, floor); apply_selection itself passes null (structural checks
/// only).
using PlanValidator = std::function<void(
    nn::Model&, const std::vector<UnitSelection>&, const PruneStrategyConfig*)>;

/// Installs (or, with an empty function, clears) the global validator.
void set_plan_validator(PlanValidator validator);

/// The installed validator; empty when checked mode is off.
const PlanValidator& plan_validator();

/// Removes the selected filters from one unit. Throws on invalid indices
/// or if the removal would empty the layer. This is the raw primitive —
/// it does NOT consult the plan validator (checkpoint replay and
/// rollback re-apply already-certified history through it).
void remove_filters(nn::Model& model, size_t unit_index, const std::vector<int64_t>& filters);

/// Applies a whole selection (all units). Returns number of filters
/// removed. In checked mode the whole plan is certified before the
/// first mutation, so a rejected plan leaves the model untouched.
int64_t apply_selection(nn::Model& model, const std::vector<UnitSelection>& selection);

/// Total number of filters across all prunable units.
int64_t total_prunable_filters(const nn::Model& model);

/// Loads a (possibly pruned) checkpoint into a freshly built model:
/// shrinks every prunable unit until its filter count matches the conv
/// weights in `dict` (the replay idiom of examples/resnet_pruning.cpp),
/// then load_state_dict's the whole map. Throws std::runtime_error when
/// the checkpoint names layers the architecture lacks or carries more
/// filters than the architecture has. Shared by capr-analyze and the
/// serving runtime's InferenceSession::from_checkpoint.
void load_pruned_checkpoint(nn::Model& model, const std::map<std::string, Tensor>& dict);

/// Replayable pruning history.
///
/// Surgery renumbers filters: after removing filter 2 of a 6-filter
/// layer, the old filter 3 becomes index 2. PruneHistory tracks, per
/// unit, which ORIGINAL indices are still present, so that
///  - selections expressed in *current* indices can be recorded
///    (`apply`), and
///  - the cumulative removal can be replayed onto a FRESH unpruned model
///    (`removed_original`), which is how ClassAwarePruner rolls back an
///    unrecoverable iteration and how pruned checkpoints are reloaded
///    (see examples/resnet_pruning.cpp).
class PruneHistory {
 public:
  explicit PruneHistory(const nn::Model& model);

  /// Records a selection (current-index space) as removed.
  /// Throws std::out_of_range if an index exceeds the live filter count.
  void apply(const std::vector<UnitSelection>& selection);

  /// Removed original indices per unit (complement of the kept sets).
  std::vector<std::vector<int64_t>> removed_original() const;

  /// Kept original indices of one unit (sorted ascending).
  const std::vector<int64_t>& kept(size_t unit) const { return kept_.at(unit); }

  /// Snapshot/restore for transactional use.
  std::vector<std::vector<int64_t>> snapshot() const { return kept_; }
  void restore(std::vector<std::vector<int64_t>> snap) { kept_ = std::move(snap); }

 private:
  std::vector<std::vector<int64_t>> kept_;
  std::vector<int64_t> original_counts_;
};

}  // namespace capr::core
