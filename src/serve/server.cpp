#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "tensor/parallel.h"

namespace capr::serve {

namespace {

int64_t us_between(InferenceServer::Clock::time_point from,
                   InferenceServer::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
}

InferResult terminal_result(RequestStatus status, int64_t latency_us) {
  InferResult res;
  res.status = status;
  res.latency_us = latency_us;
  return res;
}

std::future<InferResult> ready_future(RequestStatus status) {
  std::promise<InferResult> p;
  p.set_value(terminal_result(status, 0));
  return p.get_future();
}

}  // namespace

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimeout:
      return "timeout";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kShutdown:
      return "shutdown";
    case RequestStatus::kError:
      return "error";
  }
  return "unknown";
}

InferenceServer::InferenceServer(std::shared_ptr<const InferenceSession> session,
                                 ServerConfig cfg)
    : session_(std::move(session)), cfg_(cfg), queue_(cfg.queue_capacity) {
  if (!session_) throw std::invalid_argument("InferenceServer: null session");
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  int workers = cfg_.workers > 0 ? cfg_.workers : num_threads();
  if (workers < 1) workers = 1;
  cfg_.workers = workers;
  // Hold join_mu_ while spawning: a worker never touches workers_, so
  // this cannot deadlock, and the guarded field is only ever accessed
  // under its mutex.
  MutexLock lock(join_mu_);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::validate_sample(const Tensor& sample) const {
  const Shape& want = session_->input_shape();
  if (sample.shape() != want) {
    throw std::invalid_argument("InferenceServer: sample shape " +
                                capr::to_string(sample.shape()) +
                                " does not match session input " + capr::to_string(want));
  }
}

InferenceServer::Request InferenceServer::make_request(Tensor sample,
                                                       Clock::time_point deadline) {
  Request req;
  req.sample = std::move(sample);
  req.enqueued = Clock::now();
  req.deadline = deadline;
  return req;
}

std::future<InferResult> InferenceServer::submit(Tensor sample) {
  Clock::time_point deadline = Clock::time_point::max();
  if (cfg_.default_timeout_us > 0) {
    deadline = Clock::now() + std::chrono::microseconds(cfg_.default_timeout_us);
  }
  return submit(std::move(sample), deadline);
}

std::future<InferResult> InferenceServer::submit(Tensor sample, Clock::time_point deadline) {
  validate_sample(sample);
  if (stopping_.load(std::memory_order_acquire)) {
    return ready_future(RequestStatus::kShutdown);
  }
  Request req = make_request(std::move(sample), deadline);
  std::future<InferResult> fut = req.promise.get_future();
  if (!queue_.push(std::move(req))) {
    // Closed while we were waiting for space; req still owns the promise.
    return ready_future(RequestStatus::kShutdown);
  }
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

std::optional<std::future<InferResult>> InferenceServer::try_submit(Tensor sample) {
  validate_sample(sample);
  if (stopping_.load(std::memory_order_acquire)) {
    return ready_future(RequestStatus::kShutdown);
  }
  Clock::time_point deadline = Clock::time_point::max();
  if (cfg_.default_timeout_us > 0) {
    deadline = Clock::now() + std::chrono::microseconds(cfg_.default_timeout_us);
  }
  Request req = make_request(std::move(sample), deadline);
  std::future<InferResult> fut = req.promise.get_future();
  if (!queue_.try_push(std::move(req))) {
    if (queue_.closed()) return ready_future(RequestStatus::kShutdown);
    n_rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

void InferenceServer::shutdown() {
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  // Workers drain the queue and exit on their own once it is closed;
  // join_mu_ makes concurrent shutdown() calls (destructor + explicit)
  // serialise instead of racing the joins and the clear.
  MutexLock lock(join_mu_);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.submitted = n_submitted_.load(std::memory_order_relaxed);
  s.rejected = n_rejected_.load(std::memory_order_relaxed);
  s.completed = n_completed_.load(std::memory_order_relaxed);
  s.timed_out = n_timed_out_.load(std::memory_order_relaxed);
  s.errored = n_errored_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.batched_samples = n_batched_samples_.load(std::memory_order_relaxed);
  return s;
}

void InferenceServer::worker_loop() {
  // Parallelism lives ACROSS requests here: force every tensor op this
  // worker runs to execute inline so N workers never oversubscribe the
  // thread pool (and results stay on the deterministic serial path).
  SerialRegionGuard serial;
  nn::InferScratch scratch;
  // Pre-size every plan slot, arena buffer and GEMM scratch for the
  // largest batch this worker will ever stack: afterwards the compiled
  // steady state performs zero float-buffer allocation per batch
  // (tensor/alloc_stats.h; pinned by tests/serve_alloc_test.cpp).
  session_->warm(scratch, static_cast<int64_t>(cfg_.max_batch));
  Tensor stacked;  // persistent; reset (capacity-reusing) per batch
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    std::optional<Request> first = queue_.pop();
    if (!first) return;  // closed and fully drained
    batch.push_back(std::move(*first));
    if (cfg_.max_batch > 1 && batch.size() < cfg_.max_batch) {
      queue_.drain_into(batch, cfg_.max_batch);
      if (batch.size() < cfg_.max_batch && cfg_.max_delay_us > 0) {
        queue_.drain_until(batch, cfg_.max_batch,
                           Clock::now() + std::chrono::microseconds(cfg_.max_delay_us));
      }
    }
    process_batch(batch, scratch, stacked);
  }
}

void InferenceServer::process_batch(std::vector<Request>& batch, nn::InferScratch& scratch,
                                    Tensor& stacked) {
  const Clock::time_point picked = Clock::now();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (Request& r : batch) {
    if (r.deadline < picked) {
      // Count BEFORE resolving the future: a client that has observed its
      // result must also see it reflected in stats().
      n_timed_out_.fetch_add(1, std::memory_order_relaxed);
      r.promise.set_value(
          terminal_result(RequestStatus::kTimeout, us_between(r.enqueued, picked)));
    } else {
      live.push_back(&r);
    }
  }
  if (live.empty()) return;

  const Shape& in = session_->input_shape();
  const int64_t n = static_cast<int64_t>(live.size());
  const int64_t per_sample = in[0] * in[1] * in[2];
  stacked.reset({n, in[0], in[1], in[2]});
  for (int64_t i = 0; i < n; ++i) {
    const Tensor& s = live[static_cast<size_t>(i)]->sample;
    std::copy(s.data(), s.data() + per_sample, stacked.data() + i * per_sample);
  }

  const Tensor* logits = nullptr;
  try {
    logits = &session_->run_ref(stacked, scratch);
  } catch (const std::exception& e) {
    const Clock::time_point failed = Clock::now();
    n_errored_.fetch_add(static_cast<uint64_t>(live.size()), std::memory_order_relaxed);
    for (Request* r : live) {
      InferResult res;
      res.status = RequestStatus::kError;
      res.error = e.what();
      res.latency_us = us_between(r->enqueued, failed);
      r->promise.set_value(std::move(res));
    }
    return;
  }

  const int64_t classes = logits->numel() / n;
  const Clock::time_point done = Clock::now();
  n_completed_.fetch_add(static_cast<uint64_t>(live.size()), std::memory_order_relaxed);
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  n_batched_samples_.fetch_add(static_cast<uint64_t>(live.size()), std::memory_order_relaxed);
  for (int64_t i = 0; i < n; ++i) {
    Request* r = live[static_cast<size_t>(i)];
    InferResult res;
    res.status = RequestStatus::kOk;
    res.output = Tensor({classes});
    std::copy(logits->data() + i * classes, logits->data() + (i + 1) * classes,
              res.output.data());
    res.latency_us = us_between(r->enqueued, done);
    r->promise.set_value(std::move(res));
  }
}

}  // namespace capr::serve
