#include "serve/server.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "tensor/parallel.h"

namespace capr::serve {

namespace {

int64_t us_between(InferenceServer::Clock::time_point from,
                   InferenceServer::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
}

InferResult terminal_result(RequestStatus status, int64_t latency_us) {
  InferResult res;
  res.status = status;
  res.latency_us = latency_us;
  return res;
}

std::future<InferResult> ready_future(RequestStatus status) {
  std::promise<InferResult> p;
  p.set_value(terminal_result(status, 0));
  return p.get_future();
}

}  // namespace

const char* to_string(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimeout:
      return "timeout";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kShutdown:
      return "shutdown";
    case RequestStatus::kUnknownModel:
      return "unknown-model";
    case RequestStatus::kError:
      return "error";
  }
  return "unknown";
}

InferenceServer::InferenceServer(std::shared_ptr<ModelRegistry> registry, ServerConfig cfg)
    : registry_(std::move(registry)), cfg_(std::move(cfg)), queue_(cfg_.queue_capacity) {
  if (!registry_) throw std::invalid_argument("InferenceServer: null registry");
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  queue_.set_starvation_limit(cfg_.starvation_limit);
  for (const auto& [tenant, quota] : cfg_.tenant_quotas) queue_.set_quota(tenant, quota);
  int workers = cfg_.workers > 0 ? cfg_.workers : num_threads();
  if (workers < 1) workers = 1;
  cfg_.workers = workers;
  // Hold join_mu_ while spawning: a worker never touches workers_, so
  // this cannot deadlock, and the guarded field is only ever accessed
  // under its mutex.
  MutexLock lock(join_mu_);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

namespace {

std::shared_ptr<ModelRegistry> single_model_registry(
    std::shared_ptr<const InferenceSession> session, const std::string& id) {
  if (!session) throw std::invalid_argument("InferenceServer: null session");
  auto registry = std::make_shared<ModelRegistry>();
  // Workers warm their own scratch on first contact; skip the publish
  // warm so single-session construction stays cheap.
  registry->publish(id, std::move(session), /*warm_batch=*/0);
  return registry;
}

}  // namespace

// NOTE: cfg is passed by value (not moved) into the delegated call —
// argument evaluation order is unspecified and the registry arg reads
// cfg.default_model.
InferenceServer::InferenceServer(std::shared_ptr<const InferenceSession> session,
                                 ServerConfig cfg)
    : InferenceServer(single_model_registry(std::move(session), cfg.default_model), cfg) {}

InferenceServer::~InferenceServer() { shutdown(); }

InferenceServer::Clock::time_point InferenceServer::effective_deadline(
    const SubmitOptions& opts) const {
  if (opts.deadline) return *opts.deadline;
  if (cfg_.default_timeout_us > 0) {
    return Clock::now() + std::chrono::microseconds(cfg_.default_timeout_us);
  }
  return Clock::time_point::max();
}

std::future<InferResult> InferenceServer::submit_impl(Tensor sample,
                                                      const SubmitOptions& opts,
                                                      bool blocking, bool* queue_full) {
  if (stopping_.load(std::memory_order_acquire)) {
    return ready_future(RequestStatus::kShutdown);
  }
  // Route ONCE, here: the request pins this session snapshot until its
  // future resolves, so a concurrent hot-swap drains in-flight work on
  // the old session instead of dropping or re-routing it.
  const std::string& model = opts.model.empty() ? cfg_.default_model : opts.model;
  std::shared_ptr<const InferenceSession> session = registry_->find(model);
  if (!session) {
    n_unknown_model_.fetch_add(1, std::memory_order_relaxed);
    return ready_future(RequestStatus::kUnknownModel);
  }
  const Shape& want = session->input_shape();
  if (sample.shape() != want) {
    throw std::invalid_argument("InferenceServer: sample shape " +
                                capr::to_string(sample.shape()) + " does not match model '" +
                                model + "' input " + capr::to_string(want));
  }
  Request req;
  req.sample = std::move(sample);
  req.session = std::move(session);
  req.enqueued = Clock::now();
  req.deadline = effective_deadline(opts);
  std::future<InferResult> fut = req.promise.get_future();
  const Ticket ticket{opts.tenant, opts.priority};
  const PushStatus pushed = blocking ? queue_.push(std::move(req), ticket)
                                     : queue_.try_push(std::move(req), ticket);
  switch (pushed) {
    case PushStatus::kOk:
      n_submitted_.fetch_add(1, std::memory_order_relaxed);
      return fut;
    case PushStatus::kClosed:
      // Closed while we were waiting for space; req still owns the promise.
      return ready_future(RequestStatus::kShutdown);
    case PushStatus::kOverQuota:
      // Quota sheds are immediate even on the blocking path — a banned
      // or saturated tenant must never deadlock behind its own backlog.
      n_rejected_.fetch_add(1, std::memory_order_relaxed);
      return ready_future(RequestStatus::kRejected);
    case PushStatus::kFull:
      break;
  }
  // kFull only reaches here on the non-blocking path: signal "not
  // accepted, retry or shed".
  n_rejected_.fetch_add(1, std::memory_order_relaxed);
  *queue_full = true;
  return {};
}

std::future<InferResult> InferenceServer::submit(Tensor sample, const SubmitOptions& opts) {
  return submit_impl(std::move(sample), opts, /*blocking=*/true, nullptr);
}

std::future<InferResult> InferenceServer::submit(Tensor sample) {
  return submit(std::move(sample), SubmitOptions{});
}

std::future<InferResult> InferenceServer::submit(Tensor sample, Clock::time_point deadline) {
  SubmitOptions opts;
  opts.deadline = deadline;
  return submit(std::move(sample), opts);
}

std::optional<std::future<InferResult>> InferenceServer::try_submit(
    Tensor sample, const SubmitOptions& opts) {
  bool queue_full = false;
  std::future<InferResult> fut =
      submit_impl(std::move(sample), opts, /*blocking=*/false, &queue_full);
  if (queue_full) return std::nullopt;  // not accepted: retry or shed
  return fut;
}

std::optional<std::future<InferResult>> InferenceServer::try_submit(Tensor sample) {
  return try_submit(std::move(sample), SubmitOptions{});
}

void InferenceServer::shutdown() {
  stopping_.store(true, std::memory_order_release);
  queue_.close();
  // Workers drain the queue and exit on their own once it is closed;
  // join_mu_ makes concurrent shutdown() calls (destructor + explicit)
  // serialise instead of racing the joins and the clear.
  MutexLock lock(join_mu_);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  s.submitted = n_submitted_.load(std::memory_order_relaxed);
  s.rejected = n_rejected_.load(std::memory_order_relaxed);
  s.completed = n_completed_.load(std::memory_order_relaxed);
  s.timed_out = n_timed_out_.load(std::memory_order_relaxed);
  s.errored = n_errored_.load(std::memory_order_relaxed);
  s.unknown_model = n_unknown_model_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.batched_samples = n_batched_samples_.load(std::memory_order_relaxed);
  return s;
}

void InferenceServer::worker_loop() {
  // Parallelism lives ACROSS requests here: force every tensor op this
  // worker runs to execute inline so N workers never oversubscribe the
  // thread pool (and results stay on the deterministic serial path).
  SerialRegionGuard serial;
  nn::InferScratch scratch;
  // Sessions this worker's scratch has been pre-sized for. Warming is
  // an optimisation (run_ref sizes on demand), so a stale entry after a
  // pointer reuse costs at most some first-batch allocations.
  std::unordered_set<const InferenceSession*> warmed;
  Tensor stacked;  // persistent; reset (capacity-reusing) per batch
  std::vector<Request> batch;
  std::vector<Request*> group;
  for (;;) {
    batch.clear();
    std::optional<Request> first = queue_.pop();
    if (!first) return;  // closed and fully drained
    batch.push_back(std::move(*first));
    if (cfg_.max_batch > 1 && batch.size() < cfg_.max_batch) {
      queue_.drain_into(batch, cfg_.max_batch);
      if (batch.size() < cfg_.max_batch && cfg_.max_delay_us > 0) {
        queue_.drain_until(batch, cfg_.max_batch,
                           Clock::now() + std::chrono::microseconds(cfg_.max_delay_us));
      }
    }
    // A coalesced batch may span models (or hot-swap generations):
    // partition by session, preserving arrival order within each group.
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!batch[i].session) continue;  // already claimed by a group
      const InferenceSession* session = batch[i].session.get();
      if (warmed.insert(session).second) {
        if (warmed.size() > 64) warmed.clear();  // pointer-reuse hygiene
        session->warm(scratch, static_cast<int64_t>(cfg_.max_batch));
      }
      group.clear();
      group.push_back(&batch[i]);
      for (size_t j = i + 1; j < batch.size(); ++j) {
        if (batch[j].session.get() == session) group.push_back(&batch[j]);
      }
      process_group(group, scratch, stacked);
      // Release each request's drain token as soon as its promise is
      // set (and mark it claimed for the partition scan).
      for (Request* r : group) r->session.reset();
    }
  }
}

void InferenceServer::process_group(std::vector<Request*>& group, nn::InferScratch& scratch,
                                    Tensor& stacked) {
  const Clock::time_point picked = Clock::now();
  const InferenceSession& session = *group.front()->session;
  std::vector<Request*> live;
  live.reserve(group.size());
  for (Request* r : group) {
    if (r->deadline < picked) {
      // Count BEFORE resolving the future: a client that has observed its
      // result must also see it reflected in stats().
      n_timed_out_.fetch_add(1, std::memory_order_relaxed);
      r->promise.set_value(
          terminal_result(RequestStatus::kTimeout, us_between(r->enqueued, picked)));
    } else {
      live.push_back(r);
    }
  }
  if (live.empty()) return;

  const Shape& in = session.input_shape();
  const int64_t n = static_cast<int64_t>(live.size());
  const int64_t per_sample = in[0] * in[1] * in[2];
  stacked.reset({n, in[0], in[1], in[2]});
  for (int64_t i = 0; i < n; ++i) {
    const Tensor& s = live[static_cast<size_t>(i)]->sample;
    std::copy(s.data(), s.data() + per_sample, stacked.data() + i * per_sample);
  }

  const Tensor* logits = nullptr;
  try {
    logits = &session.run_ref(stacked, scratch);
  } catch (const std::exception& e) {
    const Clock::time_point failed = Clock::now();
    n_errored_.fetch_add(static_cast<uint64_t>(live.size()), std::memory_order_relaxed);
    for (Request* r : live) {
      InferResult res;
      res.status = RequestStatus::kError;
      res.error = e.what();
      res.latency_us = us_between(r->enqueued, failed);
      r->promise.set_value(std::move(res));
    }
    return;
  }

  const int64_t classes = logits->numel() / n;
  const Clock::time_point done = Clock::now();
  n_completed_.fetch_add(static_cast<uint64_t>(live.size()), std::memory_order_relaxed);
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  n_batched_samples_.fetch_add(static_cast<uint64_t>(live.size()), std::memory_order_relaxed);
  for (int64_t i = 0; i < n; ++i) {
    Request* r = live[static_cast<size_t>(i)];
    InferResult res;
    res.status = RequestStatus::kOk;
    res.output = Tensor({classes});
    std::copy(logits->data() + i * classes, logits->data() + (i + 1) * classes,
              res.output.data());
    res.latency_us = us_between(r->enqueued, done);
    r->promise.set_value(std::move(res));
  }
}

}  // namespace capr::serve
