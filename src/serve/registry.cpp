#include "serve/registry.h"

#include <stdexcept>
#include <utility>

#include "analysis/analyzer.h"
#include "core/surgeon.h"
#include "tensor/serialize.h"

namespace capr::serve {

std::shared_ptr<const InferenceSession> ModelRegistry::find(const std::string& id) const {
  MutexLock lock(mu_);
  const auto it = variants_.find(id);
  return it == variants_.end() ? nullptr : it->second.session;
}

std::shared_ptr<const InferenceSession> ModelRegistry::publish(
    const std::string& id, std::shared_ptr<const InferenceSession> session,
    int64_t warm_batch) {
  if (!session) throw std::invalid_argument("ModelRegistry::publish: null session");
  // Compatibility gate against the variant currently live under this id:
  // a hot-swap must not change the response contract mid-stream.
  {
    MutexLock lock(mu_);
    const auto it = variants_.find(id);
    if (it != variants_.end()) {
      const InferenceSession& old = *it->second.session;
      if (old.input_shape() != session->input_shape() ||
          old.num_classes() != session->num_classes()) {
        throw std::invalid_argument(
            "ModelRegistry::publish: variant '" + id + "' would change contract: " +
            capr::to_string(old.input_shape()) + "->" +
            capr::to_string(session->input_shape()) + " classes " +
            std::to_string(old.num_classes()) + "->" +
            std::to_string(session->num_classes()));
      }
    }
  }
  // Warm OUTSIDE the lock (it runs a full zero batch through the plan):
  // the live variant keeps serving while the replacement heats up, which
  // is the whole point of zero-downtime publish.
  if (warm_batch > 0) {
    nn::InferScratch scratch;
    session->warm(scratch, warm_batch);
  }
  MutexLock lock(mu_);
  Variant& slot = variants_[id];
  // Two racing publishes to one id both pass the gate (both compatible);
  // last store wins, and each returns the session it actually displaced.
  std::shared_ptr<const InferenceSession> old = std::move(slot.session);
  slot.session = std::move(session);
  ++slot.version;
  ++publishes_;
  return old;
}

std::shared_ptr<const InferenceSession> ModelRegistry::publish_checkpoint(
    const std::string& id, const std::string& arch, const models::BuildConfig& cfg,
    const std::string& path, SessionOptions opts, int64_t warm_batch) {
  nn::Model model = models::make_model(arch, cfg);
  core::load_pruned_checkpoint(model, load_tensor_map(path));
  // Static certification before anything goes live: the analyzer re-runs
  // shape inference and unit-metadata checks and throws AnalysisError
  // with coded diagnostics on an uncertified checkpoint.
  analysis::require_ok(analysis::analyze_model(model));
  auto session = std::make_shared<const InferenceSession>(
      InferenceSession(std::move(model), opts));
  return publish(id, std::move(session), warm_batch);
}

bool ModelRegistry::remove(const std::string& id) {
  MutexLock lock(mu_);
  return variants_.erase(id) > 0;
}

std::vector<std::string> ModelRegistry::ids() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(variants_.size());
  for (const auto& [id, variant] : variants_) out.push_back(id);
  return out;
}

size_t ModelRegistry::size() const {
  MutexLock lock(mu_);
  return variants_.size();
}

uint64_t ModelRegistry::version(const std::string& id) const {
  MutexLock lock(mu_);
  const auto it = variants_.find(id);
  return it == variants_.end() ? 0 : it->second.version;
}

uint64_t ModelRegistry::publishes() const {
  MutexLock lock(mu_);
  return publishes_;
}

}  // namespace capr::serve
