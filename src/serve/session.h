// Compiled, immutable inference session.
//
// An InferenceSession freezes a trained (possibly pruned) Model into a
// shared read-only artifact: after construction nothing inside mutates,
// so ONE session serves arbitrarily many threads concurrently — each
// caller brings its own InferScratch workspace. Outputs are
// bitwise-identical to Model::forward(x, false) by construction (the
// inference path reuses the training path's compute kernels; see
// nn/layer.h).
#pragma once

#include <string>

#include "models/builders.h"
#include "nn/model.h"

namespace capr::serve {

class InferenceSession {
 public:
  /// Takes ownership of a fully initialised model. The model must not be
  /// mutated afterwards (the session is the sole owner).
  explicit InferenceSession(nn::Model model);

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;
  InferenceSession(InferenceSession&&) = default;
  InferenceSession& operator=(InferenceSession&&) = default;

  /// Builds `arch` with `cfg`, then loads the checkpoint at `path` via
  /// core::load_pruned_checkpoint — pruned checkpoints with fewer filters
  /// than the fresh architecture replay cleanly. Throws on I/O errors,
  /// unknown arch, or checkpoint/architecture mismatch.
  static InferenceSession from_checkpoint(const std::string& arch,
                                          const models::BuildConfig& cfg,
                                          const std::string& path);

  /// Runs one NCHW batch through the network. Thread-safe: any number of
  /// threads may call run() on the same session as long as each passes
  /// its own scratch. Bitwise-identical to Model::forward(batch, false).
  Tensor run(const Tensor& batch, nn::InferScratch& scratch) const;

  const std::string& arch() const { return model_.arch; }
  const Shape& input_shape() const { return model_.input_shape; }
  int64_t num_classes() const { return model_.num_classes; }

 private:
  nn::Model model_;
};

}  // namespace capr::serve
