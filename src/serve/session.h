// Compiled, immutable inference session.
//
// An InferenceSession freezes a trained (possibly pruned) Model into a
// shared read-only artifact: after construction nothing inside mutates,
// so ONE session serves arbitrarily many threads concurrently — each
// caller brings its own InferScratch workspace.
//
// By default the session also compiles the model's ModuleGraph into an
// ExecutionPlan (src/compile): epilogue fusion plus weight pre-packing,
// both exact transformations, so kCompiled outputs stay bitwise-identical
// to Model::forward(x, false). kCompiledFolded additionally folds
// BatchNorms into their producer convs — faster, but eps-accurate rather
// than bitwise (the fold rounds re-derived weights). kInterpreted keeps
// the layer-by-layer path. Nodes the compiler cannot lower natively
// (layers with active interventions) fall back per-node to
// forward_inference inside the plan — never the whole model.
#pragma once

#include <memory>
#include <string>

#include "compile/compiler.h"
#include "models/builders.h"
#include "nn/model.h"
#include "util/thread_annotations.h"

namespace capr::serve {

struct SessionOptions {
  enum class Mode {
    kInterpreted,     // layer-by-layer forward_inference
    kCompiled,        // exact passes only: bitwise vs interpreted
    kCompiledFolded,  // + BN folding: eps-accurate, fastest
  };
  Mode mode = Mode::kCompiled;
};

class InferenceSession {
 public:
  /// Takes ownership of a fully initialised model. The model must not be
  /// mutated afterwards (the session is the sole owner). Compiles the
  /// model per `opts` after the graph admission check; plans without
  /// per-node fallbacks are shared through the global PlanCache.
  explicit InferenceSession(nn::Model model, SessionOptions opts = {});

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;
  InferenceSession(InferenceSession&&) = default;
  InferenceSession& operator=(InferenceSession&&) = default;

  /// Builds `arch` with `cfg`, then loads the checkpoint at `path` via
  /// core::load_pruned_checkpoint — pruned checkpoints with fewer filters
  /// than the fresh architecture replay cleanly. Throws on I/O errors,
  /// unknown arch, or checkpoint/architecture mismatch.
  static InferenceSession from_checkpoint(const std::string& arch,
                                          const models::BuildConfig& cfg,
                                          const std::string& path,
                                          SessionOptions opts = {});

  /// Runs one NCHW batch through the network. Thread-safe: any number of
  /// threads may call run() on the same session as long as each passes
  /// its own scratch. Bitwise-identical to Model::forward(batch, false)
  /// except under Mode::kCompiledFolded (see above).
  Tensor run(const Tensor& batch, nn::InferScratch& scratch) const;

  /// Allocation-free variant: the returned reference points into
  /// `scratch` and stays valid until its next run. After warm() the
  /// compiled steady state allocates no float buffers at all.
  const Tensor& run_ref(const Tensor& batch, nn::InferScratch& scratch) const;

  /// Pre-sizes `scratch` for batches up to `max_batch` (no-op on the
  /// interpreted path, which allocates per call by design). Thread-safe:
  /// every worker of a pool may warm concurrently — they share one
  /// zero-batch template (guarded by warm_->mu) instead of each
  /// allocating its own.
  void warm(nn::InferScratch& scratch, int64_t max_batch) const;

  const std::string& arch() const { return model_.arch; }
  const Shape& input_shape() const { return model_.input_shape; }
  int64_t num_classes() const { return model_.num_classes; }

  SessionOptions::Mode mode() const { return mode_; }
  /// The compiled plan, or null when Mode::kInterpreted.
  const compile::ExecutionPlan* plan() const { return plan_.get(); }

 private:
  /// Shared zero-batch template for warm(). The session is otherwise
  /// immutable; this is the one mutable corner, so it carries its own
  /// mutex and the guarded field is annotated for the thread-safety
  /// lane. Held behind unique_ptr so the session stays movable.
  struct WarmShared {
    Mutex mu;
    std::shared_ptr<const Tensor> zero CAPR_GUARDED_BY(mu);  // largest batch so far
  };

  nn::Model model_;
  SessionOptions::Mode mode_ = SessionOptions::Mode::kInterpreted;
  std::shared_ptr<const compile::ExecutionPlan> plan_;
  std::unique_ptr<WarmShared> warm_ = std::make_unique<WarmShared>();
};

}  // namespace capr::serve
