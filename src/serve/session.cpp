#include "serve/session.h"

#include <stdexcept>
#include <utility>

#include "core/surgeon.h"
#include "tensor/serialize.h"

namespace capr::serve {

InferenceSession::InferenceSession(nn::Model model) : model_(std::move(model)) {
  if (!model_.net) throw std::invalid_argument("InferenceSession: model has no network");
}

InferenceSession InferenceSession::from_checkpoint(const std::string& arch,
                                                   const models::BuildConfig& cfg,
                                                   const std::string& path) {
  nn::Model model = models::make_model(arch, cfg);
  core::load_pruned_checkpoint(model, load_tensor_map(path));
  return InferenceSession(std::move(model));
}

Tensor InferenceSession::run(const Tensor& batch, nn::InferScratch& scratch) const {
  if (batch.rank() != 4) {
    throw std::invalid_argument("InferenceSession::run: expected NCHW batch, got rank " +
                                std::to_string(batch.rank()));
  }
  return model_.forward_inference(batch, scratch);
}

}  // namespace capr::serve
