#include "serve/session.h"

#include <stdexcept>
#include <utility>

#include "core/surgeon.h"
#include "graph/graph.h"
#include "tensor/serialize.h"

namespace capr::serve {

InferenceSession::InferenceSession(nn::Model model, SessionOptions opts)
    : model_(std::move(model)), mode_(opts.mode) {
  if (!model_.net) throw std::invalid_argument("InferenceSession: model has no network");
  // Admission check: a session only ever serves a model whose graph is
  // well-formed. Checkpoint replay (from_checkpoint -> remove_filters)
  // resolves prunes through the same ModuleGraph, so anything that
  // survives to this point is certified end to end.
  const graph::ModuleGraph g = graph::ModuleGraph::build(model_);
  if (!g.ok()) {
    throw std::invalid_argument("InferenceSession: model graph rejected: " +
                                g.error()->format());
  }
  if (mode_ != SessionOptions::Mode::kInterpreted) {
    compile::CompileOptions copts;
    copts.fold_batchnorm = mode_ == SessionOptions::Mode::kCompiledFolded;
    compile::CompileResult result =
        compile::compile_cached(g, copts, compile::global_plan_cache());
    // The admission check above guarantees a compilable graph; a node the
    // passes cannot lower natively is already a per-node kInterpreted
    // step inside the plan, so a null plan here would be a compiler bug.
    if (!result.plan) {
      std::string msg = "InferenceSession: compilation failed";
      for (const compile::CompileError& e : result.errors) msg += "; " + e.format();
      throw std::logic_error(msg);
    }
    plan_ = std::move(result.plan);
  }
}

InferenceSession InferenceSession::from_checkpoint(const std::string& arch,
                                                   const models::BuildConfig& cfg,
                                                   const std::string& path,
                                                   SessionOptions opts) {
  nn::Model model = models::make_model(arch, cfg);
  core::load_pruned_checkpoint(model, load_tensor_map(path));
  return InferenceSession(std::move(model), opts);
}

Tensor InferenceSession::run(const Tensor& batch, nn::InferScratch& scratch) const {
  if (batch.rank() != 4) {
    throw std::invalid_argument("InferenceSession::run: expected NCHW batch, got rank " +
                                std::to_string(batch.rank()));
  }
  if (plan_) return plan_->run(batch, scratch);
  return model_.forward_inference(batch, scratch);
}

const Tensor& InferenceSession::run_ref(const Tensor& batch, nn::InferScratch& scratch) const {
  if (batch.rank() != 4) {
    throw std::invalid_argument("InferenceSession::run_ref: expected NCHW batch, got rank " +
                                std::to_string(batch.rank()));
  }
  if (plan_) return plan_->run_ref(batch, scratch);
  scratch.result = model_.forward_inference(batch, scratch);
  return scratch.result;
}

void InferenceSession::warm(nn::InferScratch& scratch, int64_t max_batch) const {
  if (!plan_) return;
  if (max_batch < 1) max_batch = 1;
  // Build (or reuse) the zero-batch template under warm_->mu, then run
  // it outside the lock: a pool of N workers warming the same session
  // shares one allocation, and a template sized for a larger batch also
  // covers every smaller one.
  std::shared_ptr<const Tensor> zero;
  {
    MutexLock lock(warm_->mu);
    if (!warm_->zero || warm_->zero->dim(0) < max_batch) {
      Shape shape;
      shape.reserve(input_shape().size() + 1);
      shape.push_back(max_batch);
      for (int64_t e : input_shape()) shape.push_back(e);
      warm_->zero = std::make_shared<const Tensor>(std::move(shape));
    }
    zero = warm_->zero;
  }
  (void)plan_->run_ref(*zero, scratch);
}

}  // namespace capr::serve
