#include "serve/session.h"

#include <stdexcept>
#include <utility>

#include "core/surgeon.h"
#include "graph/graph.h"
#include "tensor/serialize.h"

namespace capr::serve {

InferenceSession::InferenceSession(nn::Model model) : model_(std::move(model)) {
  if (!model_.net) throw std::invalid_argument("InferenceSession: model has no network");
  // Admission check: a session only ever serves a model whose graph is
  // well-formed. Checkpoint replay (from_checkpoint -> remove_filters)
  // resolves prunes through the same ModuleGraph, so anything that
  // survives to this point is certified end to end.
  const graph::ModuleGraph g = graph::ModuleGraph::build(model_);
  if (!g.ok()) {
    throw std::invalid_argument("InferenceSession: model graph rejected: " +
                                g.error()->format());
  }
}

InferenceSession InferenceSession::from_checkpoint(const std::string& arch,
                                                   const models::BuildConfig& cfg,
                                                   const std::string& path) {
  nn::Model model = models::make_model(arch, cfg);
  core::load_pruned_checkpoint(model, load_tensor_map(path));
  return InferenceSession(std::move(model));
}

Tensor InferenceSession::run(const Tensor& batch, nn::InferScratch& scratch) const {
  if (batch.rank() != 4) {
    throw std::invalid_argument("InferenceSession::run: expected NCHW batch, got rank " +
                                std::to_string(batch.rank()));
  }
  return model_.forward_inference(batch, scratch);
}

}  // namespace capr::serve
