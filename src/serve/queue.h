// Bounded multi-tenant MPSC request queue for the serving runtime.
//
// Many client threads push; one worker (or a small pool, each popping
// under the same mutex) drains. The bound is the backpressure mechanism:
// try_push fails fast when the queue is full so callers can reject the
// request instead of letting latency grow without limit.
//
// Every item carries a Ticket {tenant, priority}. The plain bool push
// API uses the default ticket (tenant 0, priority 0), which degenerates
// to the original strict-FIFO queue. With tickets:
//
//   - **Priorities.** pop() serves the highest priority first, FIFO
//     within a priority level. To bound starvation, the globally oldest
//     item may be passed over at most `starvation_limit` times; after
//     that it is served next regardless of priority (aging by pop count
//     is deterministic where aging by wall clock is not, so tests can
//     pin the exact bound).
//   - **Per-tenant quotas.** set_quota(tenant, n) caps how many of a
//     tenant's items may be queued at once. Pushing over quota SHEDS
//     (kOverQuota, immediately, even on the blocking push) instead of
//     waiting: a throttled tenant must never deadlock behind its own
//     backlog, and a zero quota is an outright ban. Tenants without a
//     quota only compete for total capacity.
//
// close() wakes every waiter and makes further pushes fail; pops keep
// succeeding until the queue is drained, which is what graceful shutdown
// needs (finish accepted work, accept nothing new).
//
// Locking discipline is a compile-time contract (util/thread_annotations.h):
// all mutable state is CAPR_GUARDED_BY(mu_), every wait loop re-checks
// its predicate with the lock held, and the thread-safety CI lane rejects
// any unlocked access at build time.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace capr::serve {

/// Scheduling metadata for one queued item. The default ticket keeps the
/// legacy FIFO behaviour exactly.
struct Ticket {
  int tenant = 0;
  int priority = 0;  // higher runs first
};

/// Result of a ticketed push. The bool API maps kOk to true and the
/// three failures to false.
enum class PushStatus {
  kOk,
  kFull,       // queue at capacity (try_push only; push() waits instead)
  kClosed,     // queue closed — nothing is accepted anymore
  kOverQuota,  // tenant at (or banned by) its quota — shed immediately
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Caps `tenant` at `max_queued` items queued at once (0 bans it).
  /// Call before traffic starts; quotas are not re-checked on queued
  /// items.
  void set_quota(int tenant, size_t max_queued) CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    quotas_[tenant] = max_queued;
  }

  /// The oldest queued item is served after being passed over at most
  /// this many times by higher-priority pops (default 64). 0 restores
  /// unbounded priority (a busy high level can starve low forever).
  void set_starvation_limit(uint64_t limit) CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    starvation_limit_ = limit;
  }

  /// Non-blocking push. `item` is moved from ONLY on kOk, so the caller
  /// keeps it (and anything it owns, like a promise) on failure.
  PushStatus try_push(T&& item, Ticket ticket) CAPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) return PushStatus::kClosed;
      if (over_quota(ticket.tenant)) return PushStatus::kOverQuota;
      if (size_ >= capacity_) return PushStatus::kFull;
      enqueue(std::move(item), ticket);
    }
    not_empty_.notify_one();
    return PushStatus::kOk;
  }

  /// Blocking push; waits for total capacity but NEVER waits on a
  /// tenant quota (kOverQuota sheds immediately — see file comment).
  /// Returns kClosed when the queue closes before or while waiting.
  PushStatus push(T&& item, Ticket ticket) CAPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (over_quota(ticket.tenant)) return PushStatus::kOverQuota;
      while (!closed_ && size_ >= capacity_) not_full_.wait(lock);
      if (closed_) return PushStatus::kClosed;
      if (over_quota(ticket.tenant)) return PushStatus::kOverQuota;
      enqueue(std::move(item), ticket);
    }
    not_empty_.notify_one();
    return PushStatus::kOk;
  }

  /// Legacy bool API: default ticket, true on kOk.
  bool try_push(T&& item) CAPR_EXCLUDES(mu_) {
    return try_push(std::move(item), Ticket{}) == PushStatus::kOk;
  }
  bool push(T&& item) CAPR_EXCLUDES(mu_) {
    return push(std::move(item), Ticket{}) == PushStatus::kOk;
  }

  /// Blocking pop. Returns nullopt only when the queue is closed AND
  /// drained — accepted items are always delivered.
  std::optional<T> pop() CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && size_ == 0) not_empty_.wait(lock);
    if (size_ == 0) return std::nullopt;
    T item = take_next();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pops up to `max - out.size()` additional items without blocking,
  /// appending to `out` in scheduling order. The micro-batcher calls
  /// this right after a blocking pop() to coalesce whatever has already
  /// queued up.
  void drain_into(std::vector<T>& out, size_t max) CAPR_EXCLUDES(mu_) {
    bool took = false;
    {
      MutexLock lock(mu_);
      while (out.size() < max && size_ > 0) {
        out.push_back(take_next());
        took = true;
      }
    }
    if (took) not_full_.notify_all();
  }

  /// Like drain_into but first waits (up to `deadline`) for at least one
  /// more item — the adaptive part of micro-batching: a worker holding a
  /// partial batch lingers briefly for stragglers instead of launching an
  /// underfull batch immediately.
  template <typename Clock, typename Duration>
  void drain_until(std::vector<T>& out, size_t max,
                   const std::chrono::time_point<Clock, Duration>& deadline)
      CAPR_EXCLUDES(mu_) {
    bool took = false;
    {
      MutexLock lock(mu_);
      while (out.size() < max) {
        if (size_ == 0) {
          if (closed_) break;
          if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) break;
          continue;
        }
        out.push_back(take_next());
        took = true;
      }
    }
    if (took) not_full_.notify_all();
  }

  /// Makes every future push fail and wakes all waiters. Items already
  /// queued remain poppable.
  void close() CAPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return size_;
  }

  size_t queued_for(int tenant) const CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    const auto it = tenant_counts_.find(tenant);
    return it == tenant_counts_.end() ? 0 : it->second;
  }

  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    T item;
    int tenant = 0;
    uint64_t seq = 0;     // global arrival order
    uint64_t passed = 0;  // times a higher-priority pop skipped this item
  };

  bool over_quota(int tenant) const CAPR_REQUIRES(mu_) {
    const auto it = quotas_.find(tenant);
    if (it == quotas_.end()) return false;
    const auto count = tenant_counts_.find(tenant);
    return (count == tenant_counts_.end() ? 0 : count->second) >= it->second;
  }

  void enqueue(T&& item, Ticket ticket) CAPR_REQUIRES(mu_) {
    Entry e;
    e.item = std::move(item);
    e.tenant = ticket.tenant;
    e.seq = next_seq_++;
    levels_[ticket.priority].push_back(std::move(e));
    ++tenant_counts_[ticket.tenant];
    ++size_;
  }

  /// Selects the next item: front of the highest-priority level, unless
  /// the globally oldest item has already been passed over
  /// starvation_limit_ times — then the oldest wins. Callers hold mu_
  /// and have checked size_ > 0.
  T take_next() CAPR_REQUIRES(mu_) {
    auto preferred = levels_.begin();  // highest priority (descending map)
    auto oldest = preferred;
    for (auto it = levels_.begin(); it != levels_.end(); ++it) {
      if (it->second.front().seq < oldest->second.front().seq) oldest = it;
    }
    auto chosen = preferred;
    if (oldest != preferred) {
      if (starvation_limit_ > 0 && oldest->second.front().passed >= starvation_limit_) {
        chosen = oldest;
      } else {
        ++oldest->second.front().passed;
      }
    }
    Entry e = std::move(chosen->second.front());
    chosen->second.pop_front();
    if (chosen->second.empty()) levels_.erase(chosen);
    auto count = tenant_counts_.find(e.tenant);
    if (count != tenant_counts_.end() && --count->second == 0) tenant_counts_.erase(count);
    --size_;
    return std::move(e.item);
  }

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  /// Priority level -> FIFO of entries, highest priority first.
  std::map<int, std::deque<Entry>, std::greater<int>> levels_ CAPR_GUARDED_BY(mu_);
  std::unordered_map<int, size_t> tenant_counts_ CAPR_GUARDED_BY(mu_);
  std::unordered_map<int, size_t> quotas_ CAPR_GUARDED_BY(mu_);
  size_t size_ CAPR_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ CAPR_GUARDED_BY(mu_) = 0;
  uint64_t starvation_limit_ CAPR_GUARDED_BY(mu_) = 64;
  bool closed_ CAPR_GUARDED_BY(mu_) = false;
};

}  // namespace capr::serve
