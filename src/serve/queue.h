// Bounded MPSC request queue for the serving runtime.
//
// Many client threads push; one worker (or a small pool, each popping
// under the same mutex) drains. The bound is the backpressure mechanism:
// try_push fails fast when the queue is full so callers can reject the
// request instead of letting latency grow without limit.
//
// close() wakes every waiter and makes further pushes fail; pops keep
// succeeding until the queue is drained, which is what graceful shutdown
// needs (finish accepted work, accept nothing new).
//
// Locking discipline is a compile-time contract (util/thread_annotations.h):
// items_ and closed_ are CAPR_GUARDED_BY(mu_), every wait loop re-checks
// its predicate with the lock held, and the thread-safety CI lane rejects
// any unlocked access at build time.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace capr::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push. Returns false when the queue is full or closed;
  /// `item` is moved from ONLY on success, so the caller keeps it (and
  /// anything it owns, like a promise) on failure.
  bool try_push(T&& item) CAPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push; waits for space. Returns false when the queue is
  /// closed (before or while waiting); `item` is moved from only on
  /// success.
  bool push(T&& item) CAPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      while (!closed_ && items_.size() >= capacity_) not_full_.wait(lock);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop. Returns nullopt only when the queue is closed AND
  /// drained — accepted items are always delivered.
  std::optional<T> pop() CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Pops up to `max - out.size()` additional items without blocking,
  /// appending to `out`. The micro-batcher calls this right after a
  /// blocking pop() to coalesce whatever has already queued up.
  void drain_into(std::vector<T>& out, size_t max) CAPR_EXCLUDES(mu_) {
    bool took = false;
    {
      MutexLock lock(mu_);
      while (out.size() < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        took = true;
      }
    }
    if (took) not_full_.notify_all();
  }

  /// Like drain_into but first waits (up to `deadline`) for at least one
  /// more item — the adaptive part of micro-batching: a worker holding a
  /// partial batch lingers briefly for stragglers instead of launching an
  /// underfull batch immediately.
  template <typename Clock, typename Duration>
  void drain_until(std::vector<T>& out, size_t max,
                   const std::chrono::time_point<Clock, Duration>& deadline)
      CAPR_EXCLUDES(mu_) {
    bool took = false;
    {
      MutexLock lock(mu_);
      while (out.size() < max) {
        if (items_.empty()) {
          if (closed_) break;
          if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) break;
          continue;
        }
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        took = true;
      }
    }
    if (took) not_full_.notify_all();
  }

  /// Makes every future push fail and wakes all waiters. Items already
  /// queued remain poppable.
  void close() CAPR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const CAPR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ CAPR_GUARDED_BY(mu_);
  bool closed_ CAPR_GUARDED_BY(mu_) = false;
};

}  // namespace capr::serve
