// Multi-tenant model fleet: named immutable sessions with atomic,
// zero-downtime hot-swap.
//
// A ModelRegistry maps model ids ("resnet20", "resnet20-pruned-v3", ...)
// to shared immutable InferenceSessions. Routing is a snapshot read:
// find() hands back a shared_ptr copy under the registry mutex, so a
// request resolved before a publish keeps serving on the OLD session
// until its future resolves, while requests resolved after see the new
// one — the swap itself is a pointer store, never a drain barrier.
// Because sessions are immutable and refcounted, the old session is
// destroyed exactly when the last in-flight request lets go of it
// (serve_fleet_test pins the drain with a weak_ptr).
//
// publish() is the continuous-deployment entry point. Before the swap
// becomes visible it:
//   1. certifies — the InferenceSession constructor already ran the
//      ModuleGraph admission check and compiled through the global
//      PlanCache; publish_checkpoint() additionally replays the
//      checkpoint and runs the static analyzer (analysis::analyze_model)
//      so an uncertified checkpoint is rejected with coded diagnostics
//      and the live variant keeps serving untouched;
//   2. checks swap compatibility — a replacement for a live id must keep
//      the input shape and class count, so in-flight clients never see a
//      response contract change mid-stream;
//   3. warms — runs a zero batch through the compiled plan so the first
//      real request after the swap pays no first-touch cost.
// Only then is the pointer swapped in.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/session.h"
#include "util/thread_annotations.h"

namespace capr::serve {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Routing lookup: the session serving `id` right now, or null. The
  /// returned shared_ptr is the caller's drain token — hold it for the
  /// lifetime of the request and the hot-swap can never free the
  /// session underneath it.
  std::shared_ptr<const InferenceSession> find(const std::string& id) const
      CAPR_EXCLUDES(mu_);

  /// Atomically (re)binds `id` to `session` and returns the previous
  /// session (null on first publish). Throws std::invalid_argument when
  /// `session` is null or when a live variant would change input shape
  /// or class count. `warm_batch` > 0 runs a zero batch of that size
  /// through the plan before the swap becomes visible; 0 skips warming.
  std::shared_ptr<const InferenceSession> publish(
      const std::string& id, std::shared_ptr<const InferenceSession> session,
      int64_t warm_batch = 8) CAPR_EXCLUDES(mu_);

  /// Full prune→certify→serve publish path: rebuilds `arch`, replays the
  /// checkpoint at `path`, certifies it with the static analyzer
  /// (analysis::require_ok(analyze_model(...))), wraps it in a session
  /// (ModuleGraph admission + compile) and publishes. Any failure —
  /// unreadable file, replay mismatch, analyzer or admission rejection,
  /// incompatible swap — throws WITHOUT touching the live variant.
  std::shared_ptr<const InferenceSession> publish_checkpoint(
      const std::string& id, const std::string& arch, const models::BuildConfig& cfg,
      const std::string& path, SessionOptions opts = {}, int64_t warm_batch = 8)
      CAPR_EXCLUDES(mu_);

  /// Unbinds `id`; in-flight requests keep their snapshot. Returns
  /// false when the id was not bound.
  bool remove(const std::string& id) CAPR_EXCLUDES(mu_);

  std::vector<std::string> ids() const CAPR_EXCLUDES(mu_);
  size_t size() const CAPR_EXCLUDES(mu_);

  /// Monotonic per-id publish count (1 after the first publish); 0 when
  /// the id is not bound.
  uint64_t version(const std::string& id) const CAPR_EXCLUDES(mu_);
  /// Total successful publishes across all ids.
  uint64_t publishes() const CAPR_EXCLUDES(mu_);

 private:
  struct Variant {
    std::shared_ptr<const InferenceSession> session;
    uint64_t version = 0;
  };

  mutable Mutex mu_;
  std::map<std::string, Variant> variants_ CAPR_GUARDED_BY(mu_);
  uint64_t publishes_ CAPR_GUARDED_BY(mu_) = 0;
};

}  // namespace capr::serve
