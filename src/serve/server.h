// Concurrent fleet inference server: worker pool + adaptive
// micro-batching over a registry of named model variants.
//
// Clients submit single samples — optionally routed by model id and
// carrying a tenant/priority ticket — and get a std::future for the
// result. Workers pull from a bounded MPSC queue; each pop coalesces
// whatever else is already queued (up to max_batch) and then lingers up
// to max_delay_us for stragglers before running the batch — large
// batches amortise per-call overhead under load, while a lone request
// never waits longer than the linger window. A coalesced batch may mix
// models; workers partition it by session and run each group separately.
//
// Routing + hot-swap: submit() resolves the model id against the
// ModelRegistry ONCE, at submit time, and the request carries its
// session snapshot to the worker. A concurrent publish() therefore
// never touches in-flight work: old requests drain on the old immutable
// session (freed by refcount when the last one resolves), new requests
// route to the new session, and no request is ever dropped or served a
// half-swapped model.
//
// Because the tiled GEMM accumulates every output element in a fixed
// k-ascending order with zero-padded partial tiles, a sample's logits do
// not depend on which other samples share its micro-batch: serving
// results are bitwise-identical to a batch-1 Model::forward(x, false)
// regardless of batching, worker count, or arrival order.
//
// Backpressure: the queue is bounded; try_submit fails fast when it is
// full, and a tenant over its quota is shed with kRejected even on the
// blocking submit (never a deadlock). Deadlines: a request carries an
// optional absolute deadline and is rejected with kTimeout if a worker
// picks it up too late. Shutdown closes the queue, drains accepted
// work, then joins the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/queue.h"
#include "serve/registry.h"
#include "serve/session.h"
#include "util/thread_annotations.h"

namespace capr::serve {

enum class RequestStatus {
  kOk,            // output holds the logits
  kTimeout,       // deadline expired before a worker ran the sample
  kRejected,      // shed: queue full (backpressure) or tenant over quota
  kShutdown,      // submitted after shutdown began
  kUnknownModel,  // no variant bound to the requested model id
  kError,         // inference threw; see error
};

const char* to_string(RequestStatus status);

struct InferResult {
  RequestStatus status = RequestStatus::kError;
  Tensor output;            // [num_classes] logits when status == kOk
  std::string error;        // diagnostic when status == kError
  int64_t latency_us = 0;   // submit -> completion (all statuses)
};

struct ServerConfig {
  /// Worker threads; 0 means use the global num_threads() setting.
  int workers = 0;
  /// Bound of the request queue — the backpressure limit.
  size_t queue_capacity = 64;
  /// Largest micro-batch a worker will coalesce. 1 disables batching.
  size_t max_batch = 8;
  /// How long a worker holding a partial batch lingers for stragglers.
  int64_t max_delay_us = 200;
  /// Deadline applied by submit() when the caller gives none. 0 = none.
  int64_t default_timeout_us = 0;
  /// Model id a SubmitOptions with an empty model routes to.
  std::string default_model = "default";
  /// Oldest-request aging bound forwarded to the queue (pops a starved
  /// low-priority request after this many higher-priority overtakes).
  uint64_t starvation_limit = 64;
  /// Per-tenant queued-request quotas installed at construction
  /// (tenant -> max queued; 0 bans the tenant). Over-quota submits shed
  /// with kRejected.
  std::vector<std::pair<int, size_t>> tenant_quotas;
};

/// Per-request routing and scheduling choices; the default routes to
/// ServerConfig::default_model with tenant 0, priority 0, no deadline.
struct SubmitOptions {
  std::string model;  // empty = default_model
  int tenant = 0;
  int priority = 0;  // higher runs first (starvation-bounded)
  /// Absolute deadline; unset applies default_timeout_us.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  uint64_t submitted = 0;   // accepted into the queue
  uint64_t rejected = 0;    // shed: queue full or tenant over quota
  uint64_t completed = 0;   // finished with kOk
  uint64_t timed_out = 0;   // rejected at pop time (deadline expired)
  uint64_t errored = 0;     // inference threw
  uint64_t unknown_model = 0;  // routed to an unbound model id
  uint64_t batches = 0;     // micro-batches executed
  uint64_t batched_samples = 0;  // samples across those batches
};

class InferenceServer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Fleet server: routes requests across the registry's variants. The
  /// registry is shared and stays publishable while the server runs —
  /// that is the hot-swap path. Workers start immediately.
  InferenceServer(std::shared_ptr<ModelRegistry> registry, ServerConfig cfg);

  /// Single-model convenience: wraps `session` in a private registry
  /// under cfg.default_model. The session is shared: several servers
  /// (or direct callers) may hold it at once.
  InferenceServer(std::shared_ptr<const InferenceSession> session, ServerConfig cfg);

  /// Calls shutdown().
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Blocking submit of one CHW sample (shape must equal the routed
  /// session's input_shape). Waits for queue space, but sheds instantly
  /// with kRejected when the tenant is over quota and resolves
  /// kUnknownModel when the model id is unbound. The future resolves
  /// with kShutdown if the server stops first. Applies
  /// default_timeout_us unless opts carries a deadline.
  std::future<InferResult> submit(Tensor sample, const SubmitOptions& opts);

  /// Blocking submit with default routing (default model, tenant 0).
  std::future<InferResult> submit(Tensor sample);

  /// Blocking submit with an explicit absolute deadline. A deadline
  /// already in the past is accepted and rejected with kTimeout by the
  /// worker — tests use this for deterministic timeout coverage.
  std::future<InferResult> submit(Tensor sample, Clock::time_point deadline);

  /// Non-blocking submit: nullopt when the queue is full (backpressure)
  /// — the sample was NOT accepted and the caller should retry or shed
  /// load. Over-quota and unknown-model submissions return a ready
  /// future (kRejected / kUnknownModel). After shutdown it returns a
  /// future resolving to kShutdown.
  std::optional<std::future<InferResult>> try_submit(Tensor sample,
                                                     const SubmitOptions& opts);
  std::optional<std::future<InferResult>> try_submit(Tensor sample);

  /// Closes the queue (new submits get kShutdown), drains accepted
  /// requests, joins workers. Idempotent and safe to call from several
  /// threads at once (join_mu_ serialises the join).
  void shutdown() CAPR_EXCLUDES(join_mu_);

  ServerStats stats() const;
  const ServerConfig& config() const { return cfg_; }
  /// The fleet behind this server; publish here to hot-swap variants.
  const std::shared_ptr<ModelRegistry>& registry() const { return registry_; }

 private:
  struct Request {
    Tensor sample;
    /// Session snapshot resolved at submit time: the hot-swap drain
    /// token (see file comment).
    std::shared_ptr<const InferenceSession> session;
    std::promise<InferResult> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() when none
  };

  /// Shared submit path. On the non-blocking path a full queue sets
  /// *queue_full and returns an invalid future (try_submit maps it to
  /// nullopt); every other outcome is a real future.
  std::future<InferResult> submit_impl(Tensor sample, const SubmitOptions& opts,
                                       bool blocking, bool* queue_full);
  Clock::time_point effective_deadline(const SubmitOptions& opts) const;
  void worker_loop();
  void process_group(std::vector<Request*>& group, nn::InferScratch& scratch,
                     Tensor& stacked);

  std::shared_ptr<ModelRegistry> registry_;
  ServerConfig cfg_;
  BoundedQueue<Request> queue_;
  /// Serialises shutdown(): the destructor, an explicit shutdown() call
  /// and a concurrent one from another thread must not race the joins.
  Mutex join_mu_;
  std::vector<std::thread> workers_ CAPR_GUARDED_BY(join_mu_);
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> n_submitted_{0};
  std::atomic<uint64_t> n_rejected_{0};
  std::atomic<uint64_t> n_completed_{0};
  std::atomic<uint64_t> n_timed_out_{0};
  std::atomic<uint64_t> n_errored_{0};
  std::atomic<uint64_t> n_unknown_model_{0};
  std::atomic<uint64_t> n_batches_{0};
  std::atomic<uint64_t> n_batched_samples_{0};
};

}  // namespace capr::serve
