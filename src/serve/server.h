// Concurrent inference server: worker pool + adaptive micro-batching.
//
// Clients submit single samples and get a std::future for the result.
// Workers pull from a bounded MPSC queue; each pop coalesces whatever
// else is already queued (up to max_batch) and then lingers up to
// max_delay_us for stragglers before running the batch — large batches
// amortise per-call overhead under load, while a lone request never
// waits longer than the linger window.
//
// Because the tiled GEMM accumulates every output element in a fixed
// k-ascending order with zero-padded partial tiles, a sample's logits do
// not depend on which other samples share its micro-batch: serving
// results are bitwise-identical to a batch-1 Model::forward(x, false)
// regardless of batching, worker count, or arrival order.
//
// Backpressure: the queue is bounded; try_submit fails fast when it is
// full. Deadlines: a request carries an optional absolute deadline and is
// rejected with kTimeout if a worker picks it up too late. Shutdown
// closes the queue, drains accepted work, then joins the workers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.h"
#include "serve/session.h"
#include "util/thread_annotations.h"

namespace capr::serve {

enum class RequestStatus {
  kOk,        // output holds the logits
  kTimeout,   // deadline expired before a worker ran the sample
  kRejected,  // bounded queue was full (backpressure)
  kShutdown,  // submitted after shutdown began
  kError,     // inference threw; see error
};

const char* to_string(RequestStatus status);

struct InferResult {
  RequestStatus status = RequestStatus::kError;
  Tensor output;            // [num_classes] logits when status == kOk
  std::string error;        // diagnostic when status == kError
  int64_t latency_us = 0;   // submit -> completion (all statuses)
};

struct ServerConfig {
  /// Worker threads; 0 means use the global num_threads() setting.
  int workers = 0;
  /// Bound of the request queue — the backpressure limit.
  size_t queue_capacity = 64;
  /// Largest micro-batch a worker will coalesce. 1 disables batching.
  size_t max_batch = 8;
  /// How long a worker holding a partial batch lingers for stragglers.
  int64_t max_delay_us = 200;
  /// Deadline applied by submit() when the caller gives none. 0 = none.
  int64_t default_timeout_us = 0;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  uint64_t submitted = 0;   // accepted into the queue
  uint64_t rejected = 0;    // try_submit refused (queue full)
  uint64_t completed = 0;   // finished with kOk
  uint64_t timed_out = 0;   // rejected at pop time (deadline expired)
  uint64_t errored = 0;     // inference threw
  uint64_t batches = 0;     // micro-batches executed
  uint64_t batched_samples = 0;  // samples across those batches
};

class InferenceServer {
 public:
  using Clock = std::chrono::steady_clock;

  /// The session is shared: several servers (or direct callers) may hold
  /// it at once. Workers start immediately.
  InferenceServer(std::shared_ptr<const InferenceSession> session, ServerConfig cfg);

  /// Calls shutdown().
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Blocking submit of one CHW sample (shape must equal the session's
  /// input_shape). Waits for queue space. The future resolves with
  /// kShutdown if the server stops first. Applies default_timeout_us.
  std::future<InferResult> submit(Tensor sample);

  /// Blocking submit with an explicit absolute deadline. A deadline
  /// already in the past is accepted and rejected with kTimeout by the
  /// worker — tests use this for deterministic timeout coverage.
  std::future<InferResult> submit(Tensor sample, Clock::time_point deadline);

  /// Non-blocking submit: nullopt when the queue is full (backpressure)
  /// — the sample was NOT accepted and the caller should retry or shed
  /// load. After shutdown it returns a future resolving to kShutdown.
  std::optional<std::future<InferResult>> try_submit(Tensor sample);

  /// Closes the queue (new submits get kShutdown), drains accepted
  /// requests, joins workers. Idempotent and safe to call from several
  /// threads at once (join_mu_ serialises the join).
  void shutdown() CAPR_EXCLUDES(join_mu_);

  ServerStats stats() const;
  const ServerConfig& config() const { return cfg_; }

 private:
  struct Request {
    Tensor sample;
    std::promise<InferResult> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // Clock::time_point::max() when none
  };

  Request make_request(Tensor sample, Clock::time_point deadline);
  void validate_sample(const Tensor& sample) const;
  void worker_loop();
  void process_batch(std::vector<Request>& batch, nn::InferScratch& scratch, Tensor& stacked);

  std::shared_ptr<const InferenceSession> session_;
  ServerConfig cfg_;
  BoundedQueue<Request> queue_;
  /// Serialises shutdown(): the destructor, an explicit shutdown() call
  /// and a concurrent one from another thread must not race the joins.
  Mutex join_mu_;
  std::vector<std::thread> workers_ CAPR_GUARDED_BY(join_mu_);
  std::atomic<bool> stopping_{false};

  std::atomic<uint64_t> n_submitted_{0};
  std::atomic<uint64_t> n_rejected_{0};
  std::atomic<uint64_t> n_completed_{0};
  std::atomic<uint64_t> n_timed_out_{0};
  std::atomic<uint64_t> n_errored_{0};
  std::atomic<uint64_t> n_batches_{0};
  std::atomic<uint64_t> n_batched_samples_{0};
};

}  // namespace capr::serve
