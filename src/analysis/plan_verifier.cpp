#include "analysis/plan_verifier.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "graph/graph.h"

namespace capr::analysis {
namespace {

std::string unit_label(const nn::PrunableUnit& u) {
  return u.name.empty() ? std::string("<anonymous>") : "'" + u.name + "'";
}

/// Producer classification straight from the ModuleGraph's coupling
/// groups, independent of the (possibly wrong) hand annotations:
/// `constrained` holds convs whose output channels are pinned by a
/// residual add (conv2/projection of every BasicBlock plus any conv
/// feeding an identity shortcut); `legal` holds certified prunable
/// producers. When the graph itself is ill-formed only the groups
/// recorded before the first bad edge are classified (and, if `report`
/// is given, a diagnostic explains why derivation stopped).
struct ProducerSets {
  std::set<const nn::Conv2d*> constrained;
  std::set<const nn::Conv2d*> legal;
};

ProducerSets classify_producers(const nn::Model& model, Report* report) {
  ProducerSets sets;
  if (model.net == nullptr) return sets;
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  if (!g.ok() && report != nullptr) {
    Diagnostic d;
    d.code = DiagCode::kUnknownLayer;
    d.node = g.error()->node;
    d.message = "dependency derivation failed: " + g.error()->format();
    report->add(std::move(d));
  }
  for (const graph::CouplingGroup& grp : g.groups()) {
    if (grp.producer == graph::kNoNode) continue;
    const auto* conv = static_cast<const nn::Conv2d*>(g.node(grp.producer).layer);
    if (grp.residual_constrained) {
      sets.constrained.insert(conv);
    } else if (!grp.consumers.empty()) {
      sets.legal.insert(conv);
    }
  }
  if (!g.ok()) sets.legal.clear();  // cannot certify producers on a broken graph
  return sets;
}

void check_unit_against_graph(const nn::PrunableUnit& u, int64_t index,
                              const std::set<const nn::Conv2d*>& constrained,
                              const std::set<const nn::Conv2d*>& legal, Report& report) {
  const auto add = [&](DiagCode code, const std::string& msg) {
    Diagnostic d;
    d.code = code;
    d.unit = index;
    d.message = msg;
    report.add(std::move(d));
  };
  if (u.conv == nullptr) {
    add(DiagCode::kCouplingBroken, "unit " + unit_label(u) + " has no producer conv");
    return;
  }
  if (constrained.count(u.conv) != 0) {
    add(DiagCode::kResidualCoupled,
        "producer of unit " + unit_label(u) +
            " feeds a residual add (shortcut-coupled); pruning it would break the add");
  } else if (!legal.empty() && legal.count(u.conv) == 0) {
    add(DiagCode::kCouplingBroken,
        "producer of unit " + unit_label(u) +
            " is not a certified prunable producer of this graph");
  }
  if (u.bn != nullptr && u.bn->channels() != u.conv->out_channels()) {
    add(DiagCode::kCouplingBroken,
        "BatchNorm of unit " + unit_label(u) + " tracks " + std::to_string(u.bn->channels()) +
            " channels, producer has " + std::to_string(u.conv->out_channels()));
  }
  if (u.consumers.empty()) {
    add(DiagCode::kCouplingBroken,
        "unit " + unit_label(u) + " has no consumers; removal would strand its channels");
  }
  for (const nn::ConsumerRef& c : u.consumers) {
    if (c.conv != nullptr) {
      if (c.conv->in_channels() != u.conv->out_channels()) {
        add(DiagCode::kCouplingBroken,
            "consumer conv of unit " + unit_label(u) + " expects " +
                std::to_string(c.conv->in_channels()) + " input channels, producer yields " +
                std::to_string(u.conv->out_channels()));
      }
    } else if (c.linear != nullptr) {
      if (c.spatial <= 0 ||
          c.linear->in_features() != u.conv->out_channels() * c.spatial) {
        add(DiagCode::kCouplingBroken,
            "consumer linear of unit " + unit_label(u) + " expects " +
                std::to_string(c.linear->in_features()) + " input features, producer yields " +
                std::to_string(u.conv->out_channels()) + " channels x spatial " +
                std::to_string(c.spatial));
      }
    } else {
      add(DiagCode::kCouplingBroken,
          "unit " + unit_label(u) + " has a consumer with neither conv nor linear set");
    }
  }
}

}  // namespace

Report verify_units(const nn::Model& model) {
  Report report;
  const ProducerSets sets = classify_producers(model, &report);
  for (size_t u = 0; u < model.units.size(); ++u) {
    check_unit_against_graph(model.units[u], static_cast<int64_t>(u), sets.constrained,
                             sets.legal, report);
  }
  return report;
}

Report verify_plan(const nn::Model& model, const std::vector<core::UnitSelection>& plan,
                   const VerifyOptions& opts) {
  Report report;
  const auto add = [&](DiagCode code, int64_t unit, const std::string& msg) {
    Diagnostic d;
    d.code = code;
    d.unit = unit;
    d.message = msg;
    report.add(std::move(d));
  };

  // Aggregate the plan per unit so duplicated entries and duplicated
  // indices across entries are caught together.
  std::map<size_t, std::vector<int64_t>> by_unit;
  for (const core::UnitSelection& sel : plan) {
    if (sel.unit_index >= model.units.size()) {
      add(DiagCode::kUnitOutOfRange, static_cast<int64_t>(sel.unit_index),
          "selection names unit " + std::to_string(sel.unit_index) + "; model has " +
              std::to_string(model.units.size()) + " prunable units");
      continue;
    }
    auto& agg = by_unit[sel.unit_index];
    agg.insert(agg.end(), sel.filters.begin(), sel.filters.end());
  }

  const std::set<const nn::Conv2d*> constrained =
      classify_producers(model, nullptr).constrained;

  int64_t total_filters = 0;
  for (const nn::PrunableUnit& u : model.units) total_filters += u.conv->out_channels();

  int64_t total_selected = 0;
  for (const auto& [unit_index, filters] : by_unit) {
    const nn::PrunableUnit& u = model.units[unit_index];
    const int64_t live = u.conv->out_channels();
    const auto uid = static_cast<int64_t>(unit_index);

    if (constrained.count(u.conv) != 0) {
      add(DiagCode::kResidualCoupled, uid,
          "plan prunes unit " + unit_label(u) +
              " whose producer feeds a residual add (shortcut-coupled)");
    }

    std::set<int64_t> distinct;
    for (int64_t f : filters) {
      if (f < 0 || f >= live) {
        add(DiagCode::kIndexOutOfRange, uid,
            "filter index " + std::to_string(f) + " out of range (" + std::to_string(live) +
                " live filters in unit " + unit_label(u) + ")");
        continue;
      }
      if (!distinct.insert(f).second) {
        add(DiagCode::kDuplicateIndex, uid,
            "filter index " + std::to_string(f) + " selected more than once in unit " +
                unit_label(u));
      }
    }
    const auto removed = static_cast<int64_t>(distinct.size());
    total_selected += removed;

    if (removed >= live) {
      add(DiagCode::kEmptiedUnit, uid,
          "plan removes all " + std::to_string(live) + " filters of unit " + unit_label(u));
    } else if (opts.strategy != nullptr && live - removed < opts.strategy->min_filters_per_layer) {
      add(DiagCode::kBelowFloor, uid,
          "plan leaves unit " + unit_label(u) + " with " + std::to_string(live - removed) +
              " filters; floor is " + std::to_string(opts.strategy->min_filters_per_layer));
    }
    if (opts.strategy != nullptr) {
      const auto layer_cap = static_cast<int64_t>(
          static_cast<double>(live) * opts.strategy->max_layer_fraction_per_iter);
      if (removed > layer_cap) {
        std::ostringstream os;
        os << "plan removes " << removed << " of " << live << " filters of unit "
           << unit_label(u) << "; per-layer cap is " << layer_cap << " ("
           << opts.strategy->max_layer_fraction_per_iter * 100 << "% per iteration)";
        add(DiagCode::kLayerOverCap, uid, os.str());
      }
      if (opts.scores != nullptr && opts.strategy->mode != core::StrategyMode::kPercentage) {
        const float threshold =
            core::effective_threshold(*opts.strategy, opts.scores->num_classes);
        for (const core::UnitScores& us : opts.scores->units) {
          if (us.unit_index != unit_index) continue;
          for (int64_t f : distinct) {
            if (f < static_cast<int64_t>(us.total.size()) &&
                us.total[static_cast<size_t>(f)] >= threshold) {
              std::ostringstream os;
              os << "filter " << f << " of unit " << unit_label(u) << " has score "
                 << us.total[static_cast<size_t>(f)] << " >= threshold " << threshold
                 << "; threshold semantics forbid removing it";
              add(DiagCode::kThresholdViolated, uid, os.str());
            }
          }
        }
      }
    }
  }

  if (opts.strategy != nullptr && opts.strategy->mode != core::StrategyMode::kThreshold) {
    const auto cap = static_cast<int64_t>(static_cast<double>(total_filters) *
                                          opts.strategy->max_fraction_per_iter);
    if (total_selected > cap) {
      std::ostringstream os;
      os << "plan removes " << total_selected << " of " << total_filters
         << " filters network-wide; per-iteration cap is " << cap << " ("
         << opts.strategy->max_fraction_per_iter * 100 << "%)";
      add(DiagCode::kOverCap, -1, os.str());
    }
  }

  return report;
}

}  // namespace capr::analysis
