#include "analysis/analyzer.h"

namespace capr::analysis {

Report analyze_model(const nn::Model& model) {
  ShapeTrace trace = infer_shapes(model);
  Report report = trace.report;
  // Unit metadata only means something on a well-formed graph; a broken
  // graph already fails above and derivation would just re-throw.
  if (report.ok()) report.merge(verify_units(model));
  return report;
}

Report analyze_plan(const nn::Model& model, const std::vector<core::UnitSelection>& plan,
                    const VerifyOptions& opts) {
  Report report = analyze_model(model);
  report.merge(verify_plan(model, plan, opts));
  return report;
}

void require_ok(const Report& report) {
  if (!report.ok()) throw AnalysisError(report);
}

}  // namespace capr::analysis
