// Diagnostic vocabulary of the static analyzer.
//
// Every rejection carries a stable machine-readable code (tests and CI
// match on codes, not message text), a human-readable message that names
// the offending layer/unit the way a compiler names a source line, and
// enough location detail to act on. A Report collects diagnostics from
// one analysis pass; passes append rather than throw so a single run can
// surface every problem in a model/plan pair at once.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace capr::analysis {

/// Stable diagnostic codes. One code per illegal-model / illegal-plan
/// class; never reuse or renumber — tooling and tests key on them.
enum class DiagCode {
  // Graph-level (shape inference).
  kShapeMismatch,    // E-SHAPE: an edge's produced shape violates the consumer
  kUnknownLayer,     // E-UNKNOWN-LAYER: a layer kind the analyzer cannot certify
  kResidualShape,    // E-RESIDUAL-SHAPE: residual add with unequal branch shapes
  // Unit/metadata-level.
  kCouplingBroken,   // E-COUPLING: PrunableUnit metadata inconsistent with graph
  kResidualCoupled,  // E-RESIDUAL: plan touches a residual-constrained producer
  // Plan-level.
  kUnitOutOfRange,   // E-UNIT-RANGE: selection names a unit the model lacks
  kIndexOutOfRange,  // E-INDEX-RANGE: filter index >= live filter count (or < 0)
  kDuplicateIndex,   // E-DUP-INDEX: same filter selected twice in one unit
  kEmptiedUnit,      // E-EMPTY-UNIT: plan would remove every filter of a unit
  kBelowFloor,       // E-FLOOR: plan leaves a unit under min_filters_per_layer
  kOverCap,          // E-OVER-CAP: plan exceeds the global per-iteration cap
  kLayerOverCap,     // E-LAYER-CAP: plan exceeds the per-layer fraction cap
  kThresholdViolated,  // E-THRESHOLD: selected filter scores >= the threshold
};

/// Short stable tag, e.g. "E-SHAPE".
std::string to_string(DiagCode code);

enum class Severity { kError, kWarning, kNote };

struct Diagnostic {
  DiagCode code = DiagCode::kShapeMismatch;
  Severity severity = Severity::kError;
  /// Flattened layer path ("7", "12.conv2") for graph diagnostics; empty
  /// for plan diagnostics.
  std::string layer;
  /// Stable graph::ModuleGraph node id for graph diagnostics; -1 when
  /// not node-scoped. Unlike `layer` (display path) this survives
  /// renames and is what tooling should key on.
  int64_t node = -1;
  /// Unit index for plan diagnostics; -1 when not unit-scoped.
  int64_t unit = -1;
  std::string message;

  /// "[E-SHAPE] node 4, layer 7: ..." / "[E-EMPTY-UNIT] unit 3: ..." form.
  std::string format() const;
};

/// Result of one analysis pass.
class Report {
 public:
  void add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void merge(const Report& other);

  bool ok() const;  // true iff no kError diagnostics
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// True if any diagnostic carries `code`.
  bool has(DiagCode code) const;

  /// All diagnostics, one per line; "" when empty.
  std::string to_string() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Thrown by checked mode when an analysis pass rejects a model or plan.
/// Derives from std::logic_error per the repo's error conventions: a
/// rejected plan is a sequencing/logic bug in the caller, not bad I/O.
class AnalysisError : public std::logic_error {
 public:
  explicit AnalysisError(const Report& report)
      : std::logic_error("static analysis rejected the operation:\n" + report.to_string()),
        report_(report) {}

  const Report& report() const { return report_; }

 private:
  Report report_;
};

}  // namespace capr::analysis
