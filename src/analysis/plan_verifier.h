// Static certification of prune plans.
//
// Given a model and a set of UnitSelections (the exact input
// core::apply_selection consumes), proves BEFORE any mutation that the
// surgeon's coordinated edits stay legal:
//
//   - every selection names an existing unit and live filter indices,
//     with no duplicates (E-UNIT-RANGE / E-INDEX-RANGE / E-DUP-INDEX);
//   - no unit is emptied, and with a strategy config, no unit drops
//     below the per-layer floor (E-EMPTY-UNIT / E-FLOOR);
//   - residual-constrained producers — conv2/projection of a BasicBlock
//     and any conv feeding an identity shortcut — are untouched
//     (E-RESIDUAL), re-derived from the graph itself, never trusted from
//     the hand annotations;
//   - unit metadata is consistent with the graph, so the coordinated
//     edit (conv row + BN channel + consumer column) provably preserves
//     forward shape legality (E-COUPLING);
//   - with a strategy config, the per-iteration global 10% cap and
//     per-layer fraction cap hold (E-OVER-CAP / E-LAYER-CAP), and with
//     importance scores, every selected filter is actually below the
//     score threshold (E-THRESHOLD).
//
// The shape-legality argument: the surgeon's edit is closed over the
// couplings recorded in the unit (tests/surgery_property_test.cpp
// enforces the runtime half). If the current graph is shape-legal
// (shape_inference), each touched unit's couplings are consistent, and
// no layer is emptied, then removing k filters shrinks producer and
// consumers by the same k channels and the forward stays legal.
#pragma once

#include <vector>

#include "analysis/diagnostics.h"
#include "core/importance.h"
#include "core/strategy.h"
#include "nn/model.h"

namespace capr::analysis {

struct VerifyOptions {
  /// Enables cap/floor checks against the strategy's semantics. Not
  /// owned; may be null (structural checks only).
  const core::PruneStrategyConfig* strategy = nullptr;
  /// Enables the score-threshold check (requires `strategy`). Not owned.
  const core::ImportanceResult* scores = nullptr;
};

/// Certifies the model's PrunableUnit metadata against the ModuleGraph:
/// coupling consistency and residual legality of every unit.
Report verify_units(const nn::Model& model);

/// Certifies one plan. Structural checks always run; strategy/score
/// checks run when the options provide the context.
Report verify_plan(const nn::Model& model, const std::vector<core::UnitSelection>& plan,
                   const VerifyOptions& opts = {});

}  // namespace capr::analysis
