// Facade of the static analysis subsystem.
//
//   analyze_model: symbolic shape inference over the whole graph plus
//     certification of the PrunableUnit metadata against a fresh
//     dependency derivation. No forward pass is executed.
//   analyze_plan:  analyze_model plus certification of a concrete
//     UnitSelection plan (see plan_verifier.h for the check catalogue).
//
// Both return a Report of coded diagnostics; callers that want hard
// failure wrap the report in AnalysisError (checked mode does).
#pragma once

#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/plan_verifier.h"
#include "analysis/shape_inference.h"

namespace capr::analysis {

/// Certifies graph shape legality and unit-metadata consistency.
Report analyze_model(const nn::Model& model);

/// Certifies model and plan together. Strategy/score context in `opts`
/// enables the cap and threshold checks.
Report analyze_plan(const nn::Model& model, const std::vector<core::UnitSelection>& plan,
                    const VerifyOptions& opts = {});

/// Throws AnalysisError when `report` has errors; no-op otherwise.
void require_ok(const Report& report);

}  // namespace capr::analysis
