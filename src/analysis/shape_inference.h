// Symbolic shape inference over a model's ModuleGraph.
//
// Certifies shape legality WITHOUT executing a forward pass: the
// graph::ModuleGraph builder propagates the activation shape (excluding
// batch) edge by edge, and this facade reports the first ill-formed edge
// with a source-like diagnostic:
//
//   [E-SHAPE] layer 7 (conv2d 'features.7'): expects C_in=64, producer yields 32
//
// Layers are addressed by their stable graph node id and flattened path;
// nested structure is spelled with dotted suffixes ("12.conv2" is the
// second conv of the basic block at position 12). The trace of every
// certified node is returned alongside the verdict so tools
// (capr-analyze) can print the full propagation table.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "nn/model.h"

namespace capr::analysis {

/// One certified node of the graph walk.
struct ShapeStep {
  std::string layer;  // flattened path, e.g. "7" or "12.conv2"
  std::string kind;   // node kind tag ("conv2d", "add", ...)
  std::string name;   // builder-assigned name ("" if anonymous)
  Shape in;
  Shape out;
  int64_t node = -1;  // stable graph node id
};

struct ShapeTrace {
  std::vector<ShapeStep> steps;
  Report report;
  /// Final output shape; meaningful only when report.ok().
  Shape output;
};

/// Infers shapes through `net` for an input of shape `input` ([C, H, W]
/// or any rank — consumers validate rank themselves). Stops at the first
/// ill-formed edge; the trace holds every node proven legal before it.
ShapeTrace infer_shapes(const nn::Sequential& net, const Shape& input);

/// Convenience: full-model certification (net + declared input shape).
ShapeTrace infer_shapes(const nn::Model& model);

}  // namespace capr::analysis
