// Symbolic shape inference over a Sequential layer graph.
//
// Walks the graph WITHOUT executing a forward pass, propagating the
// activation shape (excluding batch) edge by edge, and reports the first
// ill-formed edge with a source-like diagnostic:
//
//   [E-SHAPE] layer 7 (conv2d 'features.7'): expects C_in=64, producer yields 32
//
// Layers are addressed by their flattened position in the graph; nested
// structure is spelled with dotted suffixes ("12.conv2" is the second
// conv of the basic block at position 12). The trace of every legal edge
// is returned alongside the verdict so tools (capr-analyze) can print the
// full propagation table.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "nn/model.h"

namespace capr::analysis {

/// One certified edge of the walk.
struct ShapeStep {
  std::string layer;  // flattened position, e.g. "7" or "12.conv2"
  std::string kind;   // layer.kind()
  std::string name;   // builder-assigned name ("" if anonymous)
  Shape in;
  Shape out;
};

struct ShapeTrace {
  std::vector<ShapeStep> steps;
  Report report;
  /// Final output shape; meaningful only when report.ok().
  Shape output;
};

/// Infers shapes through `net` for an input of shape `input` ([C, H, W]
/// or any rank — consumers validate rank themselves). Stops at the first
/// ill-formed edge; the trace holds every edge proven legal before it.
ShapeTrace infer_shapes(nn::Sequential& net, const Shape& input);

/// Convenience: full-model certification (net + declared input shape).
ShapeTrace infer_shapes(nn::Model& model);

}  // namespace capr::analysis
