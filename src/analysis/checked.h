// Checked mode: fail fast on analyzer rejection.
//
// Enabling checked mode installs the static analyzer behind the hooks
// the lower layers expose:
//
//   - core::apply_selection certifies every plan structurally before
//     the first mutation (core::set_plan_validator);
//   - core::ClassAwarePruner::step certifies with full strategy context
//     (per-iteration caps, floor) through the same hook;
//   - nn::train / nn::evaluate certify the model graph before spending
//     any compute (nn::set_model_validator).
//
// A rejection throws AnalysisError (a std::logic_error) carrying the
// full diagnostic report; the model is left untouched. Checked mode is
// process-global and OFF by default — enable it at program start, or
// scope it with CheckedModeGuard in tests.
#pragma once

namespace capr::analysis {

void enable_checked_mode();
void disable_checked_mode();
bool checked_mode_enabled();

/// RAII scope for tests: enables on construction, disables on exit.
class CheckedModeGuard {
 public:
  CheckedModeGuard() { enable_checked_mode(); }
  ~CheckedModeGuard() { disable_checked_mode(); }
  CheckedModeGuard(const CheckedModeGuard&) = delete;
  CheckedModeGuard& operator=(const CheckedModeGuard&) = delete;
};

}  // namespace capr::analysis
