#include "analysis/checked.h"

#include "analysis/analyzer.h"
#include "core/surgeon.h"
#include "nn/trainer.h"

namespace capr::analysis {
namespace {

bool g_enabled = false;

}  // namespace

void enable_checked_mode() {
  core::set_plan_validator([](nn::Model& model, const std::vector<core::UnitSelection>& plan,
                              const core::PruneStrategyConfig* strategy) {
    VerifyOptions opts;
    opts.strategy = strategy;
    require_ok(analyze_plan(model, plan, opts));
  });
  nn::set_model_validator([](nn::Model& model) { require_ok(analyze_model(model)); });
  g_enabled = true;
}

void disable_checked_mode() {
  core::set_plan_validator({});
  nn::set_model_validator({});
  g_enabled = false;
}

bool checked_mode_enabled() { return g_enabled; }

}  // namespace capr::analysis
