#include "analysis/diagnostics.h"

#include <sstream>

namespace capr::analysis {

std::string to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kShapeMismatch: return "E-SHAPE";
    case DiagCode::kUnknownLayer: return "E-UNKNOWN-LAYER";
    case DiagCode::kResidualShape: return "E-RESIDUAL-SHAPE";
    case DiagCode::kCouplingBroken: return "E-COUPLING";
    case DiagCode::kResidualCoupled: return "E-RESIDUAL";
    case DiagCode::kUnitOutOfRange: return "E-UNIT-RANGE";
    case DiagCode::kIndexOutOfRange: return "E-INDEX-RANGE";
    case DiagCode::kDuplicateIndex: return "E-DUP-INDEX";
    case DiagCode::kEmptiedUnit: return "E-EMPTY-UNIT";
    case DiagCode::kBelowFloor: return "E-FLOOR";
    case DiagCode::kOverCap: return "E-OVER-CAP";
    case DiagCode::kLayerOverCap: return "E-LAYER-CAP";
    case DiagCode::kThresholdViolated: return "E-THRESHOLD";
  }
  return "E-UNKNOWN";
}

std::string Diagnostic::format() const {
  std::ostringstream os;
  os << '[' << analysis::to_string(code) << "] ";
  switch (severity) {
    case Severity::kError: break;  // errors are the default voice
    case Severity::kWarning: os << "warning: "; break;
    case Severity::kNote: os << "note: "; break;
  }
  if (node >= 0) os << "node " << node << ", ";
  if (!layer.empty()) os << "layer " << layer << ": ";
  if (unit >= 0) os << "unit " << unit << ": ";
  os << message;
  return os.str();
}

void Report::merge(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

bool Report::ok() const {
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) return false;
  }
  return true;
}

bool Report::has(DiagCode code) const {
  for (const Diagnostic& d : diags_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Report::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.format();
    out += '\n';
  }
  return out;
}

}  // namespace capr::analysis
