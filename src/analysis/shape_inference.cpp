#include "analysis/shape_inference.h"

#include "graph/graph.h"

namespace capr::analysis {
namespace {

DiagCode map_code(graph::GraphError::Code code) {
  switch (code) {
    case graph::GraphError::Code::kShapeMismatch: return DiagCode::kShapeMismatch;
    case graph::GraphError::Code::kUnknownLayer: return DiagCode::kUnknownLayer;
    case graph::GraphError::Code::kResidualShape: return DiagCode::kResidualShape;
  }
  return DiagCode::kShapeMismatch;
}

std::string describe(const std::string& path, const std::string& kind,
                     const std::string& name) {
  std::string out = path + " (" + kind;
  if (!name.empty()) out += " '" + name + "'";
  out += ")";
  return out;
}

}  // namespace

ShapeTrace infer_shapes(const nn::Sequential& net, const Shape& input) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(net, input);
  ShapeTrace trace;
  trace.steps.reserve(g.nodes().size());
  for (const graph::Node& n : g.nodes()) {
    trace.steps.push_back(
        ShapeStep{n.path, graph::to_string(n.kind), n.name, n.in_shape, n.out_shape, n.id});
  }
  if (g.ok()) {
    trace.output = g.output_shape();
  } else {
    const graph::GraphError& e = *g.error();
    Diagnostic d;
    d.code = map_code(e.code);
    d.layer = describe(e.path, e.kind, e.name);
    d.node = e.node;
    d.message = e.message;
    trace.report.add(std::move(d));
  }
  return trace;
}

ShapeTrace infer_shapes(const nn::Model& model) {
  if (model.net == nullptr) {
    ShapeTrace trace;
    Diagnostic d;
    d.code = DiagCode::kShapeMismatch;
    d.message = "model has no layer graph (net == nullptr)";
    trace.report.add(std::move(d));
    return trace;
  }
  return infer_shapes(*model.net, model.input_shape);
}

}  // namespace capr::analysis
