#include "analysis/shape_inference.h"

#include <sstream>

#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace capr::analysis {
namespace {

std::string describe(const std::string& kind, const std::string& name) {
  std::string out = "(" + kind;
  if (!name.empty()) out += " '" + name + "'";
  out += ")";
  return out;
}

/// Propagates shapes layer by layer; stops at the first error so the
/// reported edge is exactly the first ill-formed one.
struct Walker {
  ShapeTrace trace;
  int64_t position = 0;  // flattened top-level position
  bool stopped = false;

  void fail(const std::string& path, nn::Layer& layer, DiagCode code,
            const std::string& msg) {
    Diagnostic d;
    d.code = code;
    d.layer = path + " " + describe(layer.kind(), layer.name());
    d.message = msg;
    trace.report.add(std::move(d));
    stopped = true;
  }

  void record(const std::string& path, nn::Layer& layer, const Shape& in, Shape out) {
    trace.steps.push_back(ShapeStep{path, layer.kind(), layer.name(), in, std::move(out)});
  }

  Shape conv_out(const std::string& path, nn::Conv2d& conv, const Shape& in) {
    if (in.size() != 3) {
      fail(path, conv, DiagCode::kShapeMismatch,
           "expects rank-3 [C,H,W] input, producer yields " + capr::to_string(in));
      return {};
    }
    if (in[0] != conv.in_channels()) {
      fail(path, conv, DiagCode::kShapeMismatch,
           "expects C_in=" + std::to_string(conv.in_channels()) + ", producer yields " +
               std::to_string(in[0]));
      return {};
    }
    const int64_t oh = (in[1] + 2 * conv.padding() - conv.kernel()) / conv.stride() + 1;
    const int64_t ow = (in[2] + 2 * conv.padding() - conv.kernel()) / conv.stride() + 1;
    if (oh <= 0 || ow <= 0) {
      std::ostringstream os;
      os << "kernel " << conv.kernel() << " stride " << conv.stride() << " padding "
         << conv.padding() << " does not fit input " << capr::to_string(in);
      fail(path, conv, DiagCode::kShapeMismatch, os.str());
      return {};
    }
    return {conv.out_channels(), oh, ow};
  }

  /// One primitive (non-composite) layer; returns the output shape.
  Shape step(const std::string& path, nn::Layer& layer, const Shape& in) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      Shape out = conv_out(path, *conv, in);
      if (!stopped) record(path, layer, in, out);
      return out;
    }
    if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&layer)) {
      if (in.size() != 3 || in[0] != bn->channels()) {
        fail(path, layer, DiagCode::kShapeMismatch,
             "expects " + std::to_string(bn->channels()) + " channels, producer yields " +
                 capr::to_string(in));
        return {};
      }
      record(path, layer, in, in);
      return in;
    }
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      if (in.size() == 3) {
        fail(path, layer, DiagCode::kShapeMismatch,
             "applied to spatial output " + capr::to_string(in) + " without Flatten");
        return {};
      }
      if (in.size() != 1 || in[0] != lin->in_features()) {
        fail(path, layer, DiagCode::kShapeMismatch,
             "expects in_features=" + std::to_string(lin->in_features()) +
                 ", producer yields " + capr::to_string(in));
        return {};
      }
      Shape out{lin->out_features()};
      record(path, layer, in, out);
      return out;
    }
    if (dynamic_cast<nn::ReLU*>(&layer) != nullptr ||
        dynamic_cast<nn::LeakyReLU*>(&layer) != nullptr ||
        dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      record(path, layer, in, in);
      return in;
    }
    if (dynamic_cast<nn::Flatten*>(&layer) != nullptr) {
      Shape out{numel_of(in)};
      record(path, layer, in, out);
      return out;
    }
    if (dynamic_cast<nn::MaxPool2d*>(&layer) != nullptr ||
        dynamic_cast<nn::AvgPool2d*>(&layer) != nullptr ||
        dynamic_cast<nn::GlobalAvgPool*>(&layer) != nullptr) {
      // Pool geometry lives behind output_shape; its exceptions become
      // diagnostics (the message already names window/input).
      try {
        Shape out = layer.output_shape(in);
        record(path, layer, in, out);
        return out;
      } catch (const std::exception& e) {
        fail(path, layer, DiagCode::kShapeMismatch, e.what());
        return {};
      }
    }
    fail(path, layer, DiagCode::kUnknownLayer,
         "layer kind '" + layer.kind() + "' is not certified by the analyzer");
    return {};
  }

  Shape block(const std::string& path, nn::BasicBlock& blk, const Shape& in) {
    Shape main = step(path + ".conv1", blk.conv1(), in);
    if (stopped) return {};
    main = step(path + ".bn1", blk.bn1(), main);
    if (stopped) return {};
    main = step(path + ".conv2", blk.conv2(), main);
    if (stopped) return {};
    main = step(path + ".bn2", blk.bn2(), main);
    if (stopped) return {};

    Shape shortcut = in;
    if (blk.has_projection()) {
      shortcut = step(path + ".proj", *blk.proj_conv(), in);
      if (stopped) return {};
      shortcut = step(path + ".proj_bn", *blk.proj_bn(), shortcut);
      if (stopped) return {};
    }
    if (main != shortcut) {
      fail(path, blk, DiagCode::kResidualShape,
           "residual add: main path yields " + capr::to_string(main) + ", shortcut yields " +
               capr::to_string(shortcut));
      return {};
    }
    record(path, blk, in, main);
    return main;
  }

  Shape walk(nn::Sequential& seq, Shape in) {
    for (size_t i = 0; i < seq.size() && !stopped; ++i) {
      nn::Layer& child = seq.child(i);
      if (auto* nested = dynamic_cast<nn::Sequential*>(&child)) {
        in = walk(*nested, std::move(in));
        continue;
      }
      const std::string path = std::to_string(position++);
      if (auto* blk = dynamic_cast<nn::BasicBlock*>(&child)) {
        in = block(path, *blk, in);
      } else {
        in = step(path, child, in);
      }
    }
    return in;
  }
};

}  // namespace

ShapeTrace infer_shapes(nn::Sequential& net, const Shape& input) {
  Walker w;
  Shape out = w.walk(net, input);
  if (!w.stopped) w.trace.output = std::move(out);
  return std::move(w.trace);
}

ShapeTrace infer_shapes(nn::Model& model) {
  if (model.net == nullptr) {
    ShapeTrace trace;
    Diagnostic d;
    d.code = DiagCode::kShapeMismatch;
    d.message = "model has no layer graph (net == nullptr)";
    trace.report.add(std::move(d));
    return trace;
  }
  return infer_shapes(*model.net, model.input_shape);
}

}  // namespace capr::analysis
