#include "data/dataset.h"

#include <algorithm>
#include <stdexcept>

namespace capr::data {

Dataset::Dataset(Tensor images, std::vector<int64_t> labels, int64_t num_classes)
    : images_(std::move(images)), labels_(std::move(labels)), num_classes_(num_classes) {
  if (images_.rank() != 4) {
    throw std::invalid_argument("Dataset: images must be [N, C, H, W], got " +
                                to_string(images_.shape()));
  }
  if (static_cast<int64_t>(labels_.size()) != images_.dim(0)) {
    throw std::invalid_argument("Dataset: label count does not match image count");
  }
  if (num_classes_ <= 0) throw std::invalid_argument("Dataset: num_classes must be positive");
  for (int64_t lbl : labels_) {
    if (lbl < 0 || lbl >= num_classes_) {
      throw std::out_of_range("Dataset: label " + std::to_string(lbl) + " out of range");
    }
  }
}

Shape Dataset::image_shape() const {
  return {images_.dim(1), images_.dim(2), images_.dim(3)};
}

Batch Dataset::gather(const std::vector<int64_t>& indices) const {
  const int64_t c = images_.dim(1), h = images_.dim(2), w = images_.dim(3);
  const int64_t stride = c * h * w;
  Batch b;
  b.images = Tensor({static_cast<int64_t>(indices.size()), c, h, w});
  b.labels.reserve(indices.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    const int64_t i = indices[k];
    if (i < 0 || i >= size()) throw std::out_of_range("Dataset::gather: index out of range");
    std::copy(images_.data() + i * stride, images_.data() + (i + 1) * stride,
              b.images.data() + static_cast<int64_t>(k) * stride);
    b.labels.push_back(labels_[static_cast<size_t>(i)]);
  }
  return b;
}

Batch Dataset::slice(int64_t first, int64_t count) const {
  if (first < 0 || count < 0 || first + count > size()) {
    throw std::out_of_range("Dataset::slice out of range");
  }
  std::vector<int64_t> idx(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) idx[static_cast<size_t>(i)] = first + i;
  return gather(idx);
}

std::vector<int64_t> Dataset::indices_of_class(int64_t cls) const {
  std::vector<int64_t> out;
  for (int64_t i = 0; i < size(); ++i) {
    if (labels_[static_cast<size_t>(i)] == cls) out.push_back(i);
  }
  return out;
}

Batch Dataset::sample_class(int64_t cls, int64_t m, Rng& rng) const {
  if (m <= 0) throw std::invalid_argument("Dataset::sample_class: m must be positive");
  std::vector<int64_t> pool = indices_of_class(cls);
  if (pool.empty()) {
    throw std::invalid_argument("Dataset: no examples of class " + std::to_string(cls));
  }
  rng.shuffle(pool);
  if (static_cast<int64_t>(pool.size()) > m) pool.resize(static_cast<size_t>(m));
  return gather(pool);
}

DataLoader::DataLoader(const Dataset& dataset, Options opts, Rng rng)
    : dataset_(dataset), opts_(opts), rng_(rng) {
  if (opts_.batch_size <= 0) throw std::invalid_argument("DataLoader: batch_size must be > 0");
  order_.resize(static_cast<size_t>(dataset_.size()));
  for (int64_t i = 0; i < dataset_.size(); ++i) order_[static_cast<size_t>(i)] = i;
  reset();
}

void DataLoader::reset() {
  cursor_ = 0;
  if (opts_.shuffle) rng_.shuffle(order_);
}

int64_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + opts_.batch_size - 1) / opts_.batch_size;
}

bool DataLoader::next(Batch& out) {
  if (cursor_ >= dataset_.size()) return false;
  const int64_t count = std::min(opts_.batch_size, dataset_.size() - cursor_);
  std::vector<int64_t> idx(order_.begin() + cursor_, order_.begin() + cursor_ + count);
  out = dataset_.gather(idx);
  cursor_ += count;
  if (opts_.augment) augment_batch(out);
  return true;
}

void DataLoader::augment_batch(Batch& b) {
  const int64_t n = b.images.dim(0), c = b.images.dim(1);
  const int64_t h = b.images.dim(2), w = b.images.dim(3);
  for (int64_t i = 0; i < n; ++i) {
    // Horizontal flip with probability 1/2.
    if (rng_.uniform() < 0.5f) {
      for (int64_t ch = 0; ch < c; ++ch) {
        float* plane = b.images.data() + (i * c + ch) * h * w;
        for (int64_t y = 0; y < h; ++y) {
          float* row = plane + y * w;
          std::reverse(row, row + w);
        }
      }
    }
    // Random shift in [-max_shift, max_shift] on both axes, zero fill.
    if (opts_.max_shift > 0) {
      const int64_t dy = rng_.uniform_int(2 * opts_.max_shift + 1) - opts_.max_shift;
      const int64_t dx = rng_.uniform_int(2 * opts_.max_shift + 1) - opts_.max_shift;
      if (dy == 0 && dx == 0) continue;
      for (int64_t ch = 0; ch < c; ++ch) {
        float* plane = b.images.data() + (i * c + ch) * h * w;
        std::vector<float> shifted(static_cast<size_t>(h * w), 0.0f);
        for (int64_t y = 0; y < h; ++y) {
          const int64_t sy = y - dy;
          if (sy < 0 || sy >= h) continue;
          for (int64_t x = 0; x < w; ++x) {
            const int64_t sx = x - dx;
            if (sx >= 0 && sx < w) shifted[static_cast<size_t>(y * w + x)] = plane[sy * w + sx];
          }
        }
        std::copy(shifted.begin(), shifted.end(), plane);
      }
    }
  }
}

Batch balanced_sample(const Dataset& set, int64_t per_class, uint64_t seed) {
  if (per_class <= 0) throw std::invalid_argument("balanced_sample: per_class must be > 0");
  Rng rng(seed);
  std::vector<int64_t> indices;
  for (int64_t cls = 0; cls < set.num_classes(); ++cls) {
    std::vector<int64_t> pool = set.indices_of_class(cls);
    rng.shuffle(pool);
    const int64_t take = std::min<int64_t>(per_class, static_cast<int64_t>(pool.size()));
    indices.insert(indices.end(), pool.begin(), pool.begin() + take);
  }
  if (indices.empty()) throw std::invalid_argument("balanced_sample: empty dataset");
  return set.gather(indices);
}

}  // namespace capr::data
