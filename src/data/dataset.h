// In-memory labelled image dataset and batch iteration.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace capr::data {

/// A batch: images [N, C, H, W] plus one label per row.
struct Batch {
  Tensor images;
  std::vector<int64_t> labels;
  int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Immutable in-memory dataset. Images are stored as one [N, C, H, W]
/// tensor; labels are class indices in [0, num_classes).
class Dataset {
 public:
  Dataset() = default;
  Dataset(Tensor images, std::vector<int64_t> labels, int64_t num_classes);

  int64_t size() const { return images_.empty() ? 0 : images_.dim(0); }
  int64_t num_classes() const { return num_classes_; }
  /// Image shape excluding batch: [C, H, W].
  Shape image_shape() const;

  const Tensor& images() const { return images_; }
  const std::vector<int64_t>& labels() const { return labels_; }
  int64_t label(int64_t i) const { return labels_.at(static_cast<size_t>(i)); }

  /// Copies the given rows into a batch.
  Batch gather(const std::vector<int64_t>& indices) const;

  /// Contiguous batch [first, first+count).
  Batch slice(int64_t first, int64_t count) const;

  /// Indices of all examples of one class.
  std::vector<int64_t> indices_of_class(int64_t cls) const;

  /// Up to `m` examples of class `cls`, sampled without replacement.
  /// This is the "M images of this class" selection of paper Eq. 6.
  Batch sample_class(int64_t cls, int64_t m, Rng& rng) const;

 private:
  Tensor images_;
  std::vector<int64_t> labels_;
  int64_t num_classes_ = 0;
};

/// Samples a scoring batch with a balanced number of images per class
/// (up to `per_class` of each, without replacement). Shared by the
/// baseline criteria and the strategy library's data-driven scorers.
/// Throws std::invalid_argument on per_class <= 0 or an empty dataset.
Batch balanced_sample(const Dataset& set, int64_t per_class, uint64_t seed);

/// Shuffling mini-batch iterator with optional train-time augmentation
/// (horizontal flip and random shift with zero padding).
class DataLoader {
 public:
  struct Options {
    int64_t batch_size = 32;
    bool shuffle = true;
    bool augment = false;
    int64_t max_shift = 2;  // pixels, when augment is on
  };

  DataLoader(const Dataset& dataset, Options opts, Rng rng);

  /// Resets the epoch (reshuffles when enabled).
  void reset();

  /// Fetches the next batch; returns false at epoch end.
  bool next(Batch& out);

  int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  Options opts_;
  Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;

  void augment_batch(Batch& b);
};

}  // namespace capr::data
