// Loader for the standard CIFAR-10/100 binary distributions.
//
// The reproduction runs on SyntheticCifar (no dataset files ship with
// this repository), but users with the real data can drop the canonical
// binaries in and run every experiment unchanged:
//   CIFAR-10:  data_batch_{1..5}.bin + test_batch.bin
//              (1 label byte + 3072 pixel bytes per record)
//   CIFAR-100: train.bin + test.bin
//              (1 coarse + 1 fine label byte + 3072 pixel bytes)
// Pixels are converted to float and normalised with the conventional
// per-channel CIFAR statistics.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"

namespace capr::data {

struct CifarBinaryConfig {
  /// Directory containing the .bin files.
  std::string directory;
  /// 10 or 100 (selects record layout and file names).
  int64_t num_classes = 10;
  /// Normalise with CIFAR per-channel mean/std (otherwise just /255).
  bool normalize = true;
};

/// Loads train and test splits. Throws std::runtime_error when files are
/// missing or malformed (sizes must be exact multiples of the record).
struct CifarBinary {
  Dataset train;
  Dataset test;
};
CifarBinary load_cifar_binary(const CifarBinaryConfig& cfg);

/// Parses one CIFAR binary file (exposed for tests). `record_bytes` is
/// 3073 for CIFAR-10, 3074 for CIFAR-100; the label used is the last
/// label byte (the fine label for CIFAR-100).
Dataset parse_cifar_file(const std::string& path, int64_t num_classes, int64_t record_bytes,
                         bool normalize);

}  // namespace capr::data
