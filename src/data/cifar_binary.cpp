#include "data/cifar_binary.h"

#include <fstream>
#include <stdexcept>

namespace capr::data {
namespace {

constexpr int64_t kImageBytes = 3 * 32 * 32;
// Conventional CIFAR normalisation statistics (per channel, RGB).
constexpr float kMean[3] = {0.4914f, 0.4822f, 0.4465f};
constexpr float kStd[3] = {0.2470f, 0.2435f, 0.2616f};

std::vector<uint8_t> read_all(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw std::runtime_error("CIFAR: cannot open " + path);
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  is.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!is) throw std::runtime_error("CIFAR: short read on " + path);
  return bytes;
}

/// Merges datasets with identical image shapes.
Dataset concat(const std::vector<Dataset>& parts, int64_t num_classes) {
  int64_t total = 0;
  for (const Dataset& p : parts) total += p.size();
  if (total == 0) throw std::runtime_error("CIFAR: no records found");
  const Shape img = parts.front().image_shape();
  Tensor images({total, img[0], img[1], img[2]});
  std::vector<int64_t> labels;
  labels.reserve(static_cast<size_t>(total));
  const int64_t stride = numel_of(img);
  int64_t row = 0;
  for (const Dataset& p : parts) {
    std::copy(p.images().data(), p.images().data() + p.size() * stride,
              images.data() + row * stride);
    labels.insert(labels.end(), p.labels().begin(), p.labels().end());
    row += p.size();
  }
  return Dataset(std::move(images), std::move(labels), num_classes);
}

}  // namespace

Dataset parse_cifar_file(const std::string& path, int64_t num_classes, int64_t record_bytes,
                         bool normalize) {
  if (record_bytes != kImageBytes + 1 && record_bytes != kImageBytes + 2) {
    throw std::invalid_argument("CIFAR: record size must be 3073 or 3074 bytes");
  }
  const std::vector<uint8_t> bytes = read_all(path);
  if (bytes.empty() || bytes.size() % static_cast<size_t>(record_bytes) != 0) {
    throw std::runtime_error("CIFAR: " + path + " size " + std::to_string(bytes.size()) +
                             " is not a multiple of the record size " +
                             std::to_string(record_bytes));
  }
  const auto n = static_cast<int64_t>(bytes.size() / static_cast<size_t>(record_bytes));
  const int64_t label_bytes = record_bytes - kImageBytes;

  Tensor images({n, 3, 32, 32});
  std::vector<int64_t> labels(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const uint8_t* rec = bytes.data() + i * record_bytes;
    // CIFAR-100 records carry [coarse, fine]; the fine label is last.
    const int64_t label = rec[label_bytes - 1];
    if (label >= num_classes) {
      throw std::runtime_error("CIFAR: label " + std::to_string(label) +
                               " out of range in " + path);
    }
    labels[static_cast<size_t>(i)] = label;
    const uint8_t* px = rec + label_bytes;
    float* dst = images.data() + i * kImageBytes;
    for (int64_t c = 0; c < 3; ++c) {
      for (int64_t k = 0; k < 1024; ++k) {
        float v = static_cast<float>(px[c * 1024 + k]) / 255.0f;
        if (normalize) v = (v - kMean[c]) / kStd[c];
        dst[c * 1024 + k] = v;
      }
    }
  }
  return Dataset(std::move(images), std::move(labels), num_classes);
}

CifarBinary load_cifar_binary(const CifarBinaryConfig& cfg) {
  if (cfg.num_classes != 10 && cfg.num_classes != 100) {
    throw std::invalid_argument("CIFAR: num_classes must be 10 or 100");
  }
  const std::string dir = cfg.directory.empty() ? "." : cfg.directory;
  CifarBinary out;
  if (cfg.num_classes == 10) {
    std::vector<Dataset> parts;
    for (int b = 1; b <= 5; ++b) {
      parts.push_back(parse_cifar_file(dir + "/data_batch_" + std::to_string(b) + ".bin", 10,
                                       kImageBytes + 1, cfg.normalize));
    }
    out.train = concat(parts, 10);
    out.test = parse_cifar_file(dir + "/test_batch.bin", 10, kImageBytes + 1, cfg.normalize);
  } else {
    out.train = parse_cifar_file(dir + "/train.bin", 100, kImageBytes + 2, cfg.normalize);
    out.test = parse_cifar_file(dir + "/test.bin", 100, kImageBytes + 2, cfg.normalize);
  }
  return out;
}

}  // namespace capr::data
