#include "data/synthetic.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace capr::data {
namespace {

/// Fixed per-class generator parameters, derived deterministically from
/// the class index via its own RNG stream.
struct ClassPrototype {
  float orientation;            // grating direction, radians
  float frequency;              // cycles across the image
  std::vector<float> phase;     // per channel
  std::vector<float> color;     // per channel mean offset
  float blob_x, blob_y;         // blob centre in [0.2, 0.8]
  float blob_sigma;             // relative width
  float blob_amp;
};

ClassPrototype make_prototype(int64_t cls, int64_t channels, uint64_t seed) {
  Rng rng(seed ^ (0xC1A55ull * static_cast<uint64_t>(cls + 1)));
  ClassPrototype p;
  p.orientation = rng.uniform(0.0f, std::numbers::pi_v<float>);
  p.frequency = rng.uniform(1.5f, 5.0f);
  p.phase.resize(static_cast<size_t>(channels));
  p.color.resize(static_cast<size_t>(channels));
  for (int64_t c = 0; c < channels; ++c) {
    p.phase[static_cast<size_t>(c)] = rng.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
    p.color[static_cast<size_t>(c)] = rng.uniform(-0.5f, 0.5f);
  }
  p.blob_x = rng.uniform(0.2f, 0.8f);
  p.blob_y = rng.uniform(0.2f, 0.8f);
  p.blob_sigma = rng.uniform(0.10f, 0.25f);
  p.blob_amp = rng.uniform(0.6f, 1.2f);
  return p;
}

void render_sample(const ClassPrototype& p, const SyntheticCifarConfig& cfg, Rng& rng,
                   float* out) {
  const int64_t s = cfg.image_size, ch = cfg.channels;
  const float j = cfg.jitter;
  const float orient = p.orientation + j * rng.normal(0.0f, 0.15f);
  const float freq = p.frequency * (1.0f + j * rng.normal(0.0f, 0.10f));
  const float bx = p.blob_x + j * rng.normal(0.0f, 0.06f);
  const float by = p.blob_y + j * rng.normal(0.0f, 0.06f);
  const float amp = 1.0f + j * rng.normal(0.0f, 0.20f);
  const float cosn = std::cos(orient), sinn = std::sin(orient);
  const float two_pi = 2.0f * std::numbers::pi_v<float>;
  for (int64_t c = 0; c < ch; ++c) {
    const float phase = p.phase[static_cast<size_t>(c)] + j * rng.normal(0.0f, 0.30f);
    float* plane = out + c * s * s;
    for (int64_t y = 0; y < s; ++y) {
      const float fy = static_cast<float>(y) / static_cast<float>(s);
      for (int64_t x = 0; x < s; ++x) {
        const float fx = static_cast<float>(x) / static_cast<float>(s);
        const float u = fx * cosn + fy * sinn;
        const float grating = amp * std::sin(two_pi * freq * u + phase);
        const float dx = fx - bx, dy = fy - by;
        const float blob =
            p.blob_amp * std::exp(-(dx * dx + dy * dy) / (2.0f * p.blob_sigma * p.blob_sigma));
        plane[y * s + x] = 0.5f * grating + blob + p.color[static_cast<size_t>(c)] +
                           cfg.noise_stddev * rng.normal();
      }
    }
  }
}

Dataset make_split(const std::vector<ClassPrototype>& protos, const SyntheticCifarConfig& cfg,
                   int64_t per_class, Rng& rng) {
  const int64_t n = cfg.num_classes * per_class;
  const int64_t s = cfg.image_size;
  Tensor images({n, cfg.channels, s, s});
  std::vector<int64_t> labels(static_cast<size_t>(n));
  int64_t row = 0;
  for (int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    for (int64_t k = 0; k < per_class; ++k, ++row) {
      render_sample(protos[static_cast<size_t>(cls)], cfg, rng,
                    images.data() + row * cfg.channels * s * s);
      labels[static_cast<size_t>(row)] = cls;
    }
  }
  return Dataset(std::move(images), std::move(labels), cfg.num_classes);
}

}  // namespace

SyntheticCifar make_synthetic_cifar(const SyntheticCifarConfig& cfg) {
  if (cfg.num_classes <= 1 || cfg.train_per_class <= 0 || cfg.test_per_class <= 0 ||
      cfg.channels <= 0 || cfg.image_size < 4) {
    throw std::invalid_argument("SyntheticCifarConfig: implausible configuration");
  }
  std::vector<ClassPrototype> protos;
  protos.reserve(static_cast<size_t>(cfg.num_classes));
  for (int64_t cls = 0; cls < cfg.num_classes; ++cls) {
    protos.push_back(make_prototype(cls, cfg.channels, cfg.seed));
  }
  Rng train_rng(cfg.seed * 0x9E37u + 1);
  Rng test_rng(cfg.seed * 0x9E37u + 2);
  SyntheticCifar out{make_split(protos, cfg, cfg.train_per_class, train_rng),
                     make_split(protos, cfg, cfg.test_per_class, test_rng)};
  return out;
}

SyntheticCifarConfig synth_cifar10_config() {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 10;
  return cfg;
}

SyntheticCifarConfig synth_cifar100_config() {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 100;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  return cfg;
}

}  // namespace capr::data
