// SyntheticCifar: the offline substitute for CIFAR-10/100.
//
// The paper's experiments need image-classification datasets whose classes
// excite *different filter subsets* — that property, not the pixel
// statistics of CIFAR, is what class-aware pruning exploits. Each class
// here is a deterministic procedural prototype:
//   - an oriented sinusoidal grating (class-specific orientation,
//     frequency and per-channel phase),
//   - a Gaussian blob at a class-specific position and scale,
//   - a class-specific mean colour.
// Per-sample jitter (phase, blob position, amplitude) plus additive
// Gaussian noise creates intra-class variation, so networks must learn
// real decision boundaries. All randomness is seeded: the same config
// always produces byte-identical datasets.
#pragma once

#include "data/dataset.h"

namespace capr::data {

struct SyntheticCifarConfig {
  int64_t num_classes = 10;
  int64_t train_per_class = 64;
  int64_t test_per_class = 16;
  int64_t channels = 3;
  int64_t image_size = 16;  // 32 reproduces CIFAR geometry at full scale
  float noise_stddev = 0.25f;
  float jitter = 0.35f;  // relative strength of per-sample parameter jitter
  uint64_t seed = 42;
};

/// Train and test splits drawn from the same class prototypes.
struct SyntheticCifar {
  Dataset train;
  Dataset test;
};

/// Generates the dataset described by `cfg`. Deterministic in `cfg`.
SyntheticCifar make_synthetic_cifar(const SyntheticCifarConfig& cfg);

/// Convenience presets mirroring the paper's datasets at reduced scale.
SyntheticCifarConfig synth_cifar10_config();
SyntheticCifarConfig synth_cifar100_config();

}  // namespace capr::data
