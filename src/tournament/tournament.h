// Pruning-strategy tournament: every method through the identical
// train -> prune -> certify -> compile -> serve pipeline, scored by what
// production cares about — accuracy vs MEASURED saturation QPS/p99 —
// instead of the paper Fig. 6's analytic FLOPs.
//
// Pipeline per entrant:
//   1. one shared base model is trained once (plain CE) and its weights
//      are cloned into every entrant, so methods differ only in how
//      they prune;
//   2. the entrant prunes through strategy::run_strategy (shared
//      selection engine, per-plan analyzer certification);
//   3. the final model is certified again (analysis::require_ok) and
//      frozen into a compiled InferenceSession (graph admission check +
//      BN-folded ExecutionPlan);
//   4. the session is driven by the bench_serve open-loop generator
//      over an offered-rate ladder; the saturation row (peak achieved
//      QPS) and its p50/p99 are the entrant's serving score.
//
// Results are emitted as deterministic JSON (schema capr-tournament-v1,
// perf_diff.py-compatible rows) and CSV, with the accuracy-vs-QPS
// Pareto frontier marked.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "flops/flops.h"
#include "models/builders.h"
#include "report/json.h"
#include "strategy/class_aware.h"
#include "strategy/competitors.h"
#include "strategy/runner.h"

namespace capr::tournament {

struct ServeMeasureConfig {
  int workers = 4;
  size_t max_batch = 8;
  size_t queue_capacity = 256;
  /// Offered-rate ladder (QPS); the saturation row is the peak achieved.
  std::vector<double> ladder = {1500, 3000, 6000, 12000};
  int window_ms = 400;
  /// Distinct test images cycled through as requests.
  int64_t sample_pool = 32;
};

struct TournamentConfig {
  std::string arch = "resnet20";
  /// Entrant names (see default_roster()); empty runs the full roster.
  std::vector<std::string> strategies;
  models::BuildConfig build{};
  data::SyntheticCifarConfig dataset{};
  /// Base training every entrant starts from (plain cross-entropy).
  nn::TrainConfig base_train{};
  /// The shared prune/fine-tune loop config (limits, budget, stop rule).
  strategy::StrategyRunConfig prune{};
  ServeMeasureConfig serve{};
  /// Skip the serve stage (QPS/p99 report as 0). Used by unit tests;
  /// the Pareto frontier then degenerates to best-accuracy.
  bool measure_serving = true;
  /// Per-strategy construction knobs.
  strategy::ClassAwareStrategyConfig class_aware{};
  strategy::ProvableStrategyConfig provable{};
  strategy::UnstructuredEquivalentConfig unstructured{};
  int64_t criterion_images_per_class = 4;
};

struct EntrantResult {
  std::string strategy;
  float original_accuracy = 0.0f;
  float final_accuracy = 0.0f;
  flops::PruningReport report;
  int iterations_run = 0;
  int64_t filters_removed = 0;
  std::string stop_reason;
  /// Final model passed analysis::require_ok + session admission.
  bool certified = false;
  double saturation_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// On the accuracy-vs-QPS Pareto frontier.
  bool pareto = false;
};

struct TournamentResult {
  std::string arch;
  std::vector<EntrantResult> entrants;
};

/// The seven stock entrants: "class-aware", "magnitude", "activation",
/// "regularized", "unstructured-equiv", "dependency-aware", "provable".
std::vector<std::string> default_roster();

/// Builds one entrant by roster name. Throws std::invalid_argument on
/// unknown names.
std::unique_ptr<strategy::PruneStrategy> make_strategy(const std::string& name,
                                                       const TournamentConfig& cfg);

/// Runs the tournament. Progress lines go to `log` when non-null.
/// Entrants appear in the order requested (roster order by default).
TournamentResult run_tournament(const TournamentConfig& cfg, std::ostream* log = nullptr);

/// Marks the accuracy-vs-saturation-QPS Pareto frontier in place: an
/// entrant is dominated when another is >= on both axes and > on one.
void mark_pareto(std::vector<EntrantResult>& entrants);

/// Schema capr-tournament-v1; rows named "tournament/<arch>/<strategy>"
/// with a "qps" metric so tools/perf_diff.py diffs frontiers like any
/// other bench file.
report::JsonValue to_json(const TournamentResult& result);

/// One CSV row per entrant, stable column order.
std::string to_csv(const TournamentResult& result);

}  // namespace capr::tournament
