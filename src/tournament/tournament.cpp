#include "tournament/tournament.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/analyzer.h"
#include "baselines/activation.h"
#include "baselines/magnitude.h"
#include "baselines/regularized.h"
#include "baselines/strategy_adapter.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"

namespace capr::tournament {
namespace {

struct OpenRow {
  double achieved_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// One open-loop rung: paced arrivals at `rate_qps` for `window`, shed
/// on a full queue via try_submit, drain, report achieved QPS and
/// completion latency percentiles (the bench_serve generator, compacted).
OpenRow run_open_loop(serve::InferenceServer& server, const std::vector<Tensor>& samples,
                      double rate_qps, std::chrono::milliseconds window) {
  using Clock = std::chrono::steady_clock;
  OpenRow row;
  const auto interval =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(1.0 / rate_qps));
  std::vector<std::future<serve::InferResult>> futs;
  futs.reserve(static_cast<size_t>(rate_qps * std::chrono::duration<double>(window).count()) +
               16);
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point end = t0 + window;
  int64_t arrivals = 0;
  for (Clock::time_point due = t0; due < end; due += interval) {
    std::this_thread::sleep_until(due);  // no-op once the schedule is behind
    auto fut = server.try_submit(samples[static_cast<size_t>(arrivals) % samples.size()]);
    ++arrivals;
    if (fut.has_value()) futs.push_back(std::move(*fut));
  }
  std::vector<int64_t> latencies;
  latencies.reserve(futs.size());
  for (auto& fut : futs) {
    serve::InferResult res = fut.get();
    if (res.status == serve::RequestStatus::kOk) latencies.push_back(res.latency_us);
  }
  const double drained_s = std::chrono::duration<double>(Clock::now() - t0).count();
  row.achieved_qps =
      drained_s > 0 ? static_cast<double>(latencies.size()) / drained_s : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      return static_cast<double>(
          latencies[static_cast<size_t>(p * static_cast<double>(latencies.size() - 1))]);
    };
    row.p50_us = pct(0.50);
    row.p99_us = pct(0.99);
  }
  return row;
}

/// Runs the offered-rate ladder and returns the saturation row (peak
/// achieved QPS) with its latency percentiles.
OpenRow measure_saturation(const std::shared_ptr<const serve::InferenceSession>& session,
                           const ServeMeasureConfig& cfg, const data::Dataset& test) {
  std::vector<Tensor> samples;
  const int64_t pool = std::min<int64_t>(cfg.sample_pool, test.size());
  samples.reserve(static_cast<size_t>(pool));
  for (int64_t i = 0; i < pool; ++i) {
    const data::Batch b = test.gather({i});
    samples.push_back(b.images.reshape(test.image_shape()));
  }
  OpenRow best;
  for (double rate : cfg.ladder) {
    serve::ServerConfig scfg;
    scfg.workers = cfg.workers;
    scfg.max_batch = cfg.max_batch;
    scfg.queue_capacity = cfg.queue_capacity;
    serve::InferenceServer server(session, scfg);
    const OpenRow row =
        run_open_loop(server, samples, rate, std::chrono::milliseconds(cfg.window_ms));
    if (row.achieved_qps > best.achieved_qps) best = row;
  }
  return best;
}

}  // namespace

std::vector<std::string> default_roster() {
  return {"class-aware",        "magnitude",        "activation", "regularized",
          "unstructured-equiv", "dependency-aware", "provable"};
}

std::unique_ptr<strategy::PruneStrategy> make_strategy(const std::string& name,
                                                       const TournamentConfig& cfg) {
  if (name == "class-aware") {
    return std::make_unique<strategy::ClassAwareStrategy>(cfg.class_aware);
  }
  if (name == "magnitude") {
    return std::make_unique<baselines::CriterionStrategy>(
        std::make_unique<baselines::L1Criterion>());
  }
  if (name == "activation") {
    return std::make_unique<baselines::CriterionStrategy>(
        std::make_unique<baselines::TaylorFOCriterion>(cfg.criterion_images_per_class));
  }
  if (name == "regularized") {
    return std::make_unique<baselines::CriterionStrategy>(
        std::make_unique<baselines::SSSCriterion>());
  }
  if (name == "unstructured-equiv") {
    return std::make_unique<strategy::UnstructuredEquivalentStrategy>(cfg.unstructured);
  }
  if (name == "dependency-aware") {
    return std::make_unique<strategy::DependencyAwareStrategy>();
  }
  if (name == "provable") {
    return std::make_unique<strategy::ProvableStrategy>(cfg.provable);
  }
  throw std::invalid_argument("unknown strategy: " + name);
}

TournamentResult run_tournament(const TournamentConfig& cfg, std::ostream* log) {
  const GemmKernelScope scope(GemmKernel::kTiled);
  const std::vector<std::string> roster =
      cfg.strategies.empty() ? default_roster() : cfg.strategies;
  for (const std::string& name : roster) (void)make_strategy(name, cfg);  // validate upfront

  const data::SyntheticCifar data = data::make_synthetic_cifar(cfg.dataset);
  if (log) {
    *log << "tournament: arch=" << cfg.arch << " entrants=" << roster.size() << "\n";
  }
  nn::Model base = models::make_model(cfg.arch, cfg.build);
  nn::train(base, data.train, cfg.base_train);
  const auto base_weights = base.state_dict();
  if (log) {
    *log << "base trained: accuracy=" << nn::evaluate(base, data.test) << "\n";
  }

  TournamentResult result;
  result.arch = cfg.arch;
  for (const std::string& name : roster) {
    std::unique_ptr<strategy::PruneStrategy> strat = make_strategy(name, cfg);
    nn::Model model = models::make_model(cfg.arch, cfg.build);
    model.load_state_dict(base_weights);
    const strategy::StrategyRunResult run =
        strategy::run_strategy(model, *strat, data.train, data.test, cfg.prune);

    EntrantResult e;
    e.strategy = name;
    e.original_accuracy = run.original_accuracy;
    e.final_accuracy = run.final_accuracy;
    e.report = run.report;
    e.iterations_run = run.iterations_run;
    e.filters_removed = run.filters_removed;
    e.stop_reason = run.stop_reason;

    // Certify + compile + serve. A method whose final model fails
    // certification or admission LOSES (certified=false, off the
    // frontier) instead of crashing the tournament.
    try {
      analysis::require_ok(analysis::analyze_model(model));
      serve::SessionOptions sopts;
      sopts.mode = serve::SessionOptions::Mode::kCompiledFolded;
      auto session =
          std::make_shared<const serve::InferenceSession>(std::move(model), sopts);
      e.certified = true;
      if (cfg.measure_serving) {
        const OpenRow sat = measure_saturation(session, cfg.serve, data.test);
        e.saturation_qps = sat.achieved_qps;
        e.p50_us = sat.p50_us;
        e.p99_us = sat.p99_us;
      }
    } catch (const std::exception& ex) {
      e.certified = false;
      if (log) *log << name << ": certification failed: " << ex.what() << "\n";
    }
    if (log) {
      *log << name << ": accuracy=" << e.final_accuracy
           << " pruned=" << e.report.pruning_ratio() << " qps=" << e.saturation_qps
           << " p99_us=" << e.p99_us << " (" << e.stop_reason << ")\n";
    }
    result.entrants.push_back(std::move(e));
  }
  mark_pareto(result.entrants);
  return result;
}

void mark_pareto(std::vector<EntrantResult>& entrants) {
  for (EntrantResult& e : entrants) {
    e.pareto = e.certified;
    if (!e.certified) continue;
    for (const EntrantResult& other : entrants) {
      if (&other == &e || !other.certified) continue;
      const bool geq = other.final_accuracy >= e.final_accuracy &&
                       other.saturation_qps >= e.saturation_qps;
      const bool gt = other.final_accuracy > e.final_accuracy ||
                      other.saturation_qps > e.saturation_qps;
      if (geq && gt) {
        e.pareto = false;
        break;
      }
    }
  }
}

report::JsonValue to_json(const TournamentResult& result) {
  using report::JsonValue;
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue::string("capr-tournament-v1"));
  doc.set("arch", JsonValue::string(result.arch));
  JsonValue rows = JsonValue::array();
  for (const EntrantResult& e : result.entrants) {
    JsonValue row = JsonValue::object();
    row.set("name", JsonValue::string("tournament/" + result.arch + "/" + e.strategy));
    row.set("strategy", JsonValue::string(e.strategy));
    row.set("qps", JsonValue::number(e.saturation_qps));
    row.set("p50_us", JsonValue::number(e.p50_us));
    row.set("p99_us", JsonValue::number(e.p99_us));
    row.set("accuracy", JsonValue::number(static_cast<double>(e.final_accuracy)));
    row.set("original_accuracy",
            JsonValue::number(static_cast<double>(e.original_accuracy)));
    row.set("params_before", JsonValue::number(e.report.params_before));
    row.set("params_after", JsonValue::number(e.report.params_after));
    row.set("flops_before", JsonValue::number(e.report.flops_before));
    row.set("flops_after", JsonValue::number(e.report.flops_after));
    row.set("pruning_ratio", JsonValue::number(e.report.pruning_ratio()));
    row.set("flops_reduction", JsonValue::number(e.report.flops_reduction()));
    row.set("iterations", JsonValue::number(static_cast<int64_t>(e.iterations_run)));
    row.set("filters_removed", JsonValue::number(e.filters_removed));
    row.set("stop_reason", JsonValue::string(e.stop_reason));
    row.set("certified", JsonValue::boolean(e.certified));
    row.set("pareto", JsonValue::boolean(e.pareto));
    rows.push_back(std::move(row));
  }
  doc.set("results", std::move(rows));
  return doc;
}

std::string to_csv(const TournamentResult& result) {
  std::ostringstream out;
  out << "strategy,accuracy,original_accuracy,qps,p50_us,p99_us,pruning_ratio,"
         "flops_reduction,iterations,filters_removed,certified,pareto,stop_reason\n";
  for (const EntrantResult& e : result.entrants) {
    out << e.strategy << ',' << e.final_accuracy << ',' << e.original_accuracy << ','
        << e.saturation_qps << ',' << e.p50_us << ',' << e.p99_us << ','
        << e.report.pruning_ratio() << ',' << e.report.flops_reduction() << ','
        << e.iterations_run << ',' << e.filters_removed << ','
        << (e.certified ? "true" : "false") << ',' << (e.pareto ? "true" : "false") << ",\""
        << e.stop_reason << "\"\n";
  }
  return out.str();
}

}  // namespace capr::tournament
