// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis,
// shuffling, augmentation) flows through Rng so experiments are exactly
// reproducible from a single seed. The generator is xoshiro256**, seeded
// via SplitMix64 — fast, high quality, and trivially portable.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace capr {

/// xoshiro256** pseudo-random generator with distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  float uniform();

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t uniform_int(int64_t n);

  /// Standard normal via Box-Muller.
  float normal();

  /// Normal with given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Fills `t` with N(mean, stddev) samples.
  void fill_normal(Tensor& t, float mean, float stddev);

  /// Fills `t` with U[lo, hi) samples.
  void fill_uniform(Tensor& t, float lo, float hi);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& v);

  /// A child generator with an independent stream; used to give each
  /// subsystem (init, data, augmentation) its own deterministic stream.
  Rng split();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace capr
