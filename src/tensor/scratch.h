// Reusable per-worker scratch buffers for the hot kernels.
//
// The im2col/GEMM lowering needs large temporaries (column matrices,
// packed panels, per-thread gradient accumulators). Allocating them per
// call dominated small-batch conv cost; a ScratchArena owns one set of
// monotonically growing buffers per worker slot so steady-state forward/
// backward passes perform no allocation at all.
//
// Thread-safety contract: prepare(workers) must be called before a
// parallel region; afterwards each worker may only touch its own tid's
// buffers. Buffers are never shrunk and never freed until the arena dies,
// so pointers returned by floats() stay valid for the whole parallel
// region (but are invalidated by the next same-slot request with a larger
// count).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace capr {

/// Scratch space of one tiled-GEMM invocation (packed panels plus a
/// transpose buffer for the strong-zero fallback). Reusable across calls;
/// buffers grow monotonically. See gemm_tiled.h.
struct GemmScratch {
  std::vector<float> apack;
  std::vector<float> bpack;
  std::vector<float> tpose;
};

/// Per-worker scratch buffers, reused across calls (see file comment).
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  ScratchArena(ScratchArena&&) = default;
  ScratchArena& operator=(ScratchArena&&) = default;

  /// Ensures slots for worker ids [0, workers) exist. Must be called from
  /// the owning thread BEFORE the parallel region that uses them.
  void prepare(int workers);

  /// Uninitialised buffer of at least `count` floats for (tid, slot).
  /// tid must be below the last prepare() count; slots are small dense
  /// indices (0, 1, 2, ...) chosen by the caller.
  float* floats(int tid, int slot, int64_t count);

  /// Tiled-GEMM scratch owned by worker `tid`.
  GemmScratch& gemm(int tid);

 private:
  struct Worker {
    std::vector<std::vector<float>> slots;
    GemmScratch gemm;
  };
  // unique_ptr keeps Worker objects stable if prepare() grows the vector
  // between parallel regions.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace capr
