// Reusable per-worker scratch buffers for the hot kernels.
//
// The im2col/GEMM lowering needs large temporaries (column matrices,
// packed panels, per-thread gradient accumulators). Allocating them per
// call dominated small-batch conv cost; a ScratchArena owns one set of
// monotonically growing buffers per worker slot so steady-state forward/
// backward passes perform no allocation at all.
//
// Thread-safety contract: prepare(workers) must be called before a
// parallel region; afterwards each worker may only touch its own tid's
// buffers. Buffers are never shrunk and never freed until the arena dies,
// so pointers returned by floats() stay valid for the whole parallel
// region (but are invalidated by the next same-slot request with a larger
// count).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace capr {

/// Scratch space of one tiled-GEMM invocation (packed panels plus a
/// transpose buffer for the strong-zero fallback). Reusable across calls;
/// buffers grow monotonically. See gemm_tiled.h.
struct GemmScratch {
  std::vector<float> apack;
  std::vector<float> bpack;
  std::vector<float> tpose;
  // Per-worker A-pack buffers for the parallel strategies (one per
  // worker slot, grown on first use and reused across calls so a warmed
  // steady state performs no allocation even when the resolved tuning
  // config threads the GEMM).
  std::vector<std::vector<float>> wapack;
};

/// Aggregate view over every live ScratchArena in the process, taken
/// from the mutex-guarded registry (scratch.cpp). Lets capacity planning
/// for a worker fleet ask "how much scratch is resident right now?"
/// without threading a handle to every arena.
struct ArenaStats {
  int64_t arenas = 0;           // live (constructed, not yet destroyed)
  int64_t resident_floats = 0;  // sum of slot-buffer floats across them
};

/// Snapshot of the process-wide arena registry. Thread-safe.
ArenaStats arena_stats();

/// Per-worker scratch buffers, reused across calls (see file comment).
/// Every arena registers itself in a process-wide registry on
/// construction and leaves it on destruction; arena_stats() aggregates
/// the registry under its mutex.
class ScratchArena {
 public:
  ScratchArena();
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;
  /// Moves transfer the buffers and the resident count; the moved-from
  /// arena stays registered (it is still a live object) but empty.
  ScratchArena(ScratchArena&& other) noexcept;
  ScratchArena& operator=(ScratchArena&& other) noexcept;

  /// Ensures slots for worker ids [0, workers) exist. Must be called from
  /// the owning thread BEFORE the parallel region that uses them.
  void prepare(int workers);

  /// Uninitialised buffer of at least `count` floats for (tid, slot).
  /// tid must be below the last prepare() count; slots are small dense
  /// indices (0, 1, 2, ...) chosen by the caller.
  float* floats(int tid, int slot, int64_t count);

  /// Tiled-GEMM scratch owned by worker `tid`.
  GemmScratch& gemm(int tid);

  /// Floats currently held by this arena's slot buffers (grow-only, so
  /// this is also the high-water mark). Readable from any thread.
  int64_t resident_floats() const { return resident_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    std::vector<std::vector<float>> slots;
    GemmScratch gemm;
  };
  // unique_ptr keeps Worker objects stable if prepare() grows the vector
  // between parallel regions.
  std::vector<std::unique_ptr<Worker>> workers_;
  // Atomic so arena_stats() may read while a parallel region grows
  // buffers; the registry mutex guards membership, not this counter.
  std::atomic<int64_t> resident_{0};
};

}  // namespace capr
