// Minimal binary (de)serialization for tensors and named tensor maps.
// Format: little-endian; magic "CAPR", version, then entries of
// (name, rank, extents, raw float payload). Used for model checkpoints.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "tensor/tensor.h"

namespace capr {

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

/// Writes a checkpoint of named tensors. Throws std::runtime_error on I/O error.
void save_tensor_map(const std::string& path, const std::map<std::string, Tensor>& tensors);

/// Reads a checkpoint written by save_tensor_map.
std::map<std::string, Tensor> load_tensor_map(const std::string& path);

}  // namespace capr
