#include "tensor/ops.h"

#include <cmath>
#include <stdexcept>

namespace capr {
namespace {

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " + to_string(a.shape()) +
                                " vs " + to_string(b.shape()));
  }
}

void require_rank2(const Tensor& m, const char* op) {
  if (m.rank() != 2) {
    throw std::invalid_argument(std::string(op) + ": expected rank-2 tensor, got " +
                                to_string(m.shape()));
  }
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_inplace");
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void axpy_inplace(Tensor& a, float alpha, const Tensor& b) {
  require_same_shape(a, b, "axpy_inplace");
  for (int64_t i = 0; i < a.numel(); ++i) a[i] += alpha * b[i];
}

void scale_inplace(Tensor& a, float s) {
  for (int64_t i = 0; i < a.numel(); ++i) a[i] *= s;
}

Tensor relu(const Tensor& a) {
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  return out;
}

Tensor relu_backward(const Tensor& grad, const Tensor& pre) {
  require_same_shape(grad, pre, "relu_backward");
  Tensor out(grad.shape());
  for (int64_t i = 0; i < grad.numel(); ++i) out[i] = pre[i] > 0.0f ? grad[i] : 0.0f;
  return out;
}

Tensor abs(const Tensor& a) {
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = std::fabs(a[i]);
  return out;
}

Tensor sign(const Tensor& a) {
  Tensor out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
  return out;
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("max of empty tensor");
  float m = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = a[i] > m ? a[i] : m;
  return m;
}

float min_value(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("min of empty tensor");
  float m = a[0];
  for (int64_t i = 1; i < a.numel(); ++i) m = a[i] < m ? a[i] : m;
  return m;
}

int64_t argmax(const Tensor& a) {
  if (a.numel() == 0) throw std::invalid_argument("argmax of empty tensor");
  int64_t best = 0;
  for (int64_t i = 1; i < a.numel(); ++i) {
    if (a[i] > a[best]) best = i;
  }
  return best;
}

float l1_norm(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += std::fabs(a[i]);
  return static_cast<float>(acc);
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(std::sqrt(acc));
}

int64_t count_near_zero(const Tensor& a, float tol) {
  int64_t n = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(a[i]) <= tol) ++n;
  }
  return n;
}

Tensor add_rowwise(const Tensor& m, const Tensor& v) {
  require_rank2(m, "add_rowwise");
  if (v.rank() != 1 || v.dim(0) != m.dim(1)) {
    throw std::invalid_argument("add_rowwise: vector shape " + to_string(v.shape()) +
                                " does not match matrix " + to_string(m.shape()));
  }
  Tensor out(m.shape());
  const int64_t rows = m.dim(0), cols = m.dim(1);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) out[r * cols + c] = m[r * cols + c] + v[c];
  }
  return out;
}

Tensor col_sum(const Tensor& m) {
  require_rank2(m, "col_sum");
  const int64_t rows = m.dim(0), cols = m.dim(1);
  Tensor out({cols});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) out[c] += m[r * cols + c];
  }
  return out;
}

Tensor transpose(const Tensor& m) {
  require_rank2(m, "transpose");
  const int64_t rows = m.dim(0), cols = m.dim(1);
  Tensor out({cols, rows});
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) out[c * rows + r] = m[r * cols + c];
  }
  return out;
}

}  // namespace capr
