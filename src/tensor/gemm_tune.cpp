#include "tensor/gemm_tune.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "util/thread_annotations.h"

namespace capr {
namespace {

// The historical threading threshold (gemm_tiled.cpp): below this many
// FLOPs the fixed dispatch never threaded. default_gemm_config keeps it
// so an absent table reproduces the untuned behaviour exactly.
constexpr int64_t kParallelFlops = int64_t(1) << 23;

// Size-tier cuts on 2*M*K*N. 64^3 lands in kTiny's neighbour kSmall's
// boundary region by design: tiny < 2^21 (~0.5 MFLOP matrices), small
// < 2^25 (the threading threshold sits inside this band), medium < 2^29.
constexpr int64_t kTierTinyFlops = int64_t(1) << 21;
constexpr int64_t kTierSmallFlops = int64_t(1) << 25;
constexpr int64_t kTierMediumFlops = int64_t(1) << 29;

}  // namespace

// ---------------------------------------------------------------------------
// Enum names
// ---------------------------------------------------------------------------

const char* to_string(GemmParallel s) {
  switch (s) {
    case GemmParallel::kNoParallel: return "no-parallel";
    case GemmParallel::kSplitM: return "split-m";
    case GemmParallel::kSplitN: return "split-n";
  }
  return "no-parallel";
}

bool parse_gemm_parallel(const std::string& s, GemmParallel* out) {
  if (s == "no-parallel") {
    *out = GemmParallel::kNoParallel;
  } else if (s == "split-m") {
    *out = GemmParallel::kSplitM;
  } else if (s == "split-n") {
    *out = GemmParallel::kSplitN;
  } else {
    return false;
  }
  return true;
}

const char* to_string(GemmVariant v) {
  switch (v) {
    case GemmVariant::kNN: return "nn";
    case GemmVariant::kNT: return "nt";
    case GemmVariant::kTN: return "tn";
  }
  return "nn";
}

bool parse_gemm_variant(const std::string& s, GemmVariant* out) {
  if (s == "nn") {
    *out = GemmVariant::kNN;
  } else if (s == "nt") {
    *out = GemmVariant::kNT;
  } else if (s == "tn") {
    *out = GemmVariant::kTN;
  } else {
    return false;
  }
  return true;
}

const char* to_string(GemmShapeGeom g) {
  switch (g) {
    case GemmShapeGeom::kShortWide: return "short-wide";
    case GemmShapeGeom::kTallSkinny: return "tall-skinny";
    case GemmShapeGeom::kDeep: return "deep";
    case GemmShapeGeom::kCubic: return "cubic";
  }
  return "cubic";
}

const char* to_string(GemmShapeTier t) {
  switch (t) {
    case GemmShapeTier::kTiny: return "tiny";
    case GemmShapeTier::kSmall: return "small";
    case GemmShapeTier::kMedium: return "medium";
    case GemmShapeTier::kLarge: return "large";
  }
  return "tiny";
}

namespace {

bool parse_geom(const std::string& s, GemmShapeGeom* out) {
  if (s == "short-wide") {
    *out = GemmShapeGeom::kShortWide;
  } else if (s == "tall-skinny") {
    *out = GemmShapeGeom::kTallSkinny;
  } else if (s == "deep") {
    *out = GemmShapeGeom::kDeep;
  } else if (s == "cubic") {
    *out = GemmShapeGeom::kCubic;
  } else {
    return false;
  }
  return true;
}

bool parse_tier(const std::string& s, GemmShapeTier* out) {
  if (s == "tiny") {
    *out = GemmShapeTier::kTiny;
  } else if (s == "small") {
    *out = GemmShapeTier::kSmall;
  } else if (s == "medium") {
    *out = GemmShapeTier::kMedium;
  } else if (s == "large") {
    *out = GemmShapeTier::kLarge;
  } else {
    return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Configs
// ---------------------------------------------------------------------------

const std::vector<int64_t>& legal_gemm_mr() {
  // Must match the instantiated micro_kernel_mr<> variants in
  // gemm_tiled.cpp; extend both together.
  static const std::vector<int64_t> kLegal = {4, 6, 8};
  return kLegal;
}

bool gemm_config_valid(const GemmTuneConfig& cfg, std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (cfg.mc < kGemmTuneMinMc || cfg.mc > kGemmTuneMaxMc) {
    return fail("mc " + std::to_string(cfg.mc) + " outside [" + std::to_string(kGemmTuneMinMc) +
                ", " + std::to_string(kGemmTuneMaxMc) + "]");
  }
  if (cfg.kc < kGemmTuneMinKc || cfg.kc > kGemmTuneMaxKc) {
    return fail("kc " + std::to_string(cfg.kc) + " outside [" + std::to_string(kGemmTuneMinKc) +
                ", " + std::to_string(kGemmTuneMaxKc) + "]");
  }
  bool mr_ok = false;
  for (int64_t mr : legal_gemm_mr()) mr_ok = mr_ok || mr == cfg.mr;
  if (!mr_ok) {
    return fail("mr " + std::to_string(cfg.mr) + " has no compiled micro-kernel variant");
  }
  return true;
}

GemmTuneConfig default_gemm_config(GemmVariant /*v*/, int64_t M, int64_t K, int64_t N) {
  GemmTuneConfig cfg;  // MC=72, KC=256, MR=6
  cfg.strategy =
      2 * M * K * N >= kParallelFlops ? GemmParallel::kSplitM : GemmParallel::kNoParallel;
  return cfg;
}

// ---------------------------------------------------------------------------
// Shape classes
// ---------------------------------------------------------------------------

int GemmShapeClass::index() const {
  return (static_cast<int>(variant) * kGemmGeomCount + static_cast<int>(geom)) * kGemmTierCount +
         static_cast<int>(tier);
}

std::string GemmShapeClass::key() const {
  std::string out = to_string(variant);
  out += '/';
  out += to_string(geom);
  out += '/';
  out += to_string(tier);
  return out;
}

GemmShapeClass classify_gemm(GemmVariant v, int64_t M, int64_t K, int64_t N) {
  GemmShapeClass cls;
  cls.variant = v;
  if (N >= 4 * M) {
    cls.geom = GemmShapeGeom::kShortWide;
  } else if (M >= 4 * N) {
    cls.geom = GemmShapeGeom::kTallSkinny;
  } else if (K >= 2 * std::max(M, N)) {
    cls.geom = GemmShapeGeom::kDeep;
  } else {
    cls.geom = GemmShapeGeom::kCubic;
  }
  const int64_t flops = 2 * M * K * N;
  if (flops < kTierTinyFlops) {
    cls.tier = GemmShapeTier::kTiny;
  } else if (flops < kTierSmallFlops) {
    cls.tier = GemmShapeTier::kSmall;
  } else if (flops < kTierMediumFlops) {
    cls.tier = GemmShapeTier::kMedium;
  } else {
    cls.tier = GemmShapeTier::kLarge;
  }
  return cls;
}

bool parse_gemm_shape_class(const std::string& key, GemmShapeClass* out) {
  const size_t s1 = key.find('/');
  if (s1 == std::string::npos) return false;
  const size_t s2 = key.find('/', s1 + 1);
  if (s2 == std::string::npos || key.find('/', s2 + 1) != std::string::npos) return false;
  GemmShapeClass cls;
  if (!parse_gemm_variant(key.substr(0, s1), &cls.variant)) return false;
  if (!parse_geom(key.substr(s1 + 1, s2 - s1 - 1), &cls.geom)) return false;
  if (!parse_tier(key.substr(s2 + 1), &cls.tier)) return false;
  *out = cls;
  return true;
}

// ---------------------------------------------------------------------------
// Tuning table
// ---------------------------------------------------------------------------

void GemmTuningTable::set(const GemmShapeClass& cls, const GemmTuneEntry& e) {
  entries[static_cast<size_t>(cls.index())] = e;
  entries[static_cast<size_t>(cls.index())].present = true;
}

const GemmTuneEntry* GemmTuningTable::find(const GemmShapeClass& cls) const {
  const GemmTuneEntry& e = entries[static_cast<size_t>(cls.index())];
  return e.present ? &e : nullptr;
}

int GemmTuningTable::present_count() const {
  int n = 0;
  for (const GemmTuneEntry& e : entries) n += e.present ? 1 : 0;
  return n;
}

std::string host_fingerprint() {
  std::string model = "unknown-cpu";
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t b = colon + 1;
        while (b < line.size() && std::isspace(static_cast<unsigned char>(line[b])) != 0) ++b;
        if (b < line.size()) model = line.substr(b);
      }
      break;
    }
  }
  return model + " x" + std::to_string(std::thread::hardware_concurrency());
}

const char* to_string(TuneCode c) {
  switch (c) {
    case TuneCode::kOk: return "OK";
    case TuneCode::kIo: return "E-TUNE-IO";
    case TuneCode::kParse: return "E-TUNE-PARSE";
    case TuneCode::kSchema: return "E-TUNE-SCHEMA";
    case TuneCode::kClass: return "E-TUNE-CLASS";
    case TuneCode::kRange: return "E-TUNE-RANGE";
    case TuneCode::kMicro: return "E-TUNE-MICRO";
    case TuneCode::kStrategy: return "E-TUNE-STRATEGY";
    case TuneCode::kHost: return "E-TUNE-HOST";
  }
  return "OK";
}

std::string TuneStatus::format() const {
  if (ok()) return "OK";
  return std::string(to_string(code)) + ": " + message;
}

// ---------------------------------------------------------------------------
// Mini JSON reader
//
// report::JsonValue is deliberately write-only ("results flow out of the
// library, not in") and the tensor layer cannot depend on report anyway.
// Tuning tables are the one place JSON flows *into* the library, so a
// self-contained recursive-descent reader lives here. It accepts exactly
// the JSON subset to_json emits (objects, arrays, strings with standard
// escapes, numbers, booleans, null) and rejects everything else.
// ---------------------------------------------------------------------------

namespace {

struct JVal {
  enum class Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::vector<std::pair<std::string, JVal>> obj;

  const JVal* get(const std::string& key) const {
    for (const auto& kv : obj) {
      if (kv.first == key) return &kv.second;
    }
    return nullptr;
  }
};

struct JParser {
  const char* p;
  const char* end;
  std::string error;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return fail("dangling escape");
      const char e = *p++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Tables are ASCII in practice; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JVal* out, int depth) {
    if (depth > 32) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    const char c = *p;
    if (c == '{') {
      ++p;
      out->kind = JVal::Kind::kObj;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':'");
        ++p;
        JVal v;
        if (!parse_value(&v, depth + 1)) return false;
        out->obj.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++p;
      out->kind = JVal::Kind::kArr;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        JVal v;
        if (!parse_value(&v, depth + 1)) return false;
        out->arr.push_back(std::move(v));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JVal::Kind::kStr;
      return parse_string(&out->str);
    }
    if (c == 't') {
      if (end - p < 4 || std::string(p, 4) != "true") return fail("bad literal");
      p += 4;
      out->kind = JVal::Kind::kBool;
      out->b = true;
      return true;
    }
    if (c == 'f') {
      if (end - p < 5 || std::string(p, 5) != "false") return fail("bad literal");
      p += 5;
      out->kind = JVal::Kind::kBool;
      out->b = false;
      return true;
    }
    if (c == 'n') {
      if (end - p < 4 || std::string(p, 4) != "null") return fail("bad literal");
      p += 4;
      out->kind = JVal::Kind::kNull;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      double num = 0.0;
      const auto res = std::from_chars(p, end, num);
      if (res.ec != std::errc()) return fail("bad number");
      p = res.ptr;
      out->kind = JVal::Kind::kNum;
      out->num = num;
      return true;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
};

bool parse_json(const std::string& text, JVal* out, std::string* error) {
  JParser parser{text.data(), text.data() + text.size(), {}};
  if (!parser.parse_value(out, 0)) {
    *error = parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    *error = "trailing content after document";
    return false;
  }
  return true;
}

/// Reads an integral field; false (with message) when absent, not a
/// number, or not integral.
bool read_int(const JVal& obj, const std::string& key, int64_t* out, std::string* err) {
  const JVal* v = obj.get(key);
  if (v == nullptr || v->kind != JVal::Kind::kNum) {
    *err = "entry missing numeric field \"" + key + "\"";
    return false;
  }
  const int64_t i = static_cast<int64_t>(v->num);
  if (static_cast<double>(i) != v->num) {
    *err = "field \"" + key + "\" must be integral";
    return false;
  }
  *out = i;
  return true;
}

bool read_string(const JVal& obj, const std::string& key, std::string* out, std::string* err) {
  const JVal* v = obj.get(key);
  if (v == nullptr || v->kind != JVal::Kind::kStr) {
    *err = "missing string field \"" + key + "\"";
    return false;
  }
  *out = v->str;
  return true;
}

/// Shortest round-tripping representation (std::to_chars) so that
/// parse(to_json(t)) re-serialises byte-identically.
std::string format_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

TuneStatus parse_gemm_tuning(const std::string& json_text, GemmTuningTable* out) {
  JVal root;
  std::string perr;
  if (!parse_json(json_text, &root, &perr)) {
    return {TuneCode::kParse, perr};
  }
  if (root.kind != JVal::Kind::kObj) {
    return {TuneCode::kParse, "document root must be an object"};
  }
  const JVal* schema = root.get("schema");
  if (schema == nullptr || schema->kind != JVal::Kind::kStr) {
    return {TuneCode::kSchema, "missing \"schema\" field"};
  }
  if (schema->str != kGemmTuneSchema) {
    return {TuneCode::kSchema,
            "unsupported schema \"" + schema->str + "\" (want " + kGemmTuneSchema + ")"};
  }
  GemmTuningTable table;
  std::string ferr;
  if (!read_string(root, "host", &table.host, &ferr)) {
    return {TuneCode::kParse, ferr};
  }
  const JVal* entries = root.get("entries");
  if (entries == nullptr || entries->kind != JVal::Kind::kArr) {
    return {TuneCode::kParse, "missing \"entries\" array"};
  }
  for (const JVal& e : entries->arr) {
    if (e.kind != JVal::Kind::kObj) {
      return {TuneCode::kParse, "entry must be an object"};
    }
    std::string class_key;
    if (!read_string(e, "class", &class_key, &ferr)) {
      return {TuneCode::kParse, ferr};
    }
    GemmShapeClass cls;
    if (!parse_gemm_shape_class(class_key, &cls)) {
      return {TuneCode::kClass, "unknown shape class \"" + class_key + "\""};
    }
    if (table.entries[static_cast<size_t>(cls.index())].present) {
      return {TuneCode::kClass, "duplicate shape class \"" + class_key + "\""};
    }
    GemmTuneEntry entry;
    if (!read_int(e, "mc", &entry.cfg.mc, &ferr) || !read_int(e, "kc", &entry.cfg.kc, &ferr) ||
        !read_int(e, "mr", &entry.cfg.mr, &ferr)) {
      return {TuneCode::kParse, class_key + ": " + ferr};
    }
    std::string strategy;
    if (!read_string(e, "strategy", &strategy, &ferr)) {
      return {TuneCode::kParse, class_key + ": " + ferr};
    }
    if (!parse_gemm_parallel(strategy, &entry.cfg.strategy)) {
      return {TuneCode::kStrategy, class_key + ": unknown strategy \"" + strategy + "\""};
    }
    if (entry.cfg.mc < kGemmTuneMinMc || entry.cfg.mc > kGemmTuneMaxMc) {
      return {TuneCode::kRange, class_key + ": mc " + std::to_string(entry.cfg.mc) + " outside [" +
                                    std::to_string(kGemmTuneMinMc) + ", " +
                                    std::to_string(kGemmTuneMaxMc) + "]"};
    }
    if (entry.cfg.kc < kGemmTuneMinKc || entry.cfg.kc > kGemmTuneMaxKc) {
      return {TuneCode::kRange, class_key + ": kc " + std::to_string(entry.cfg.kc) + " outside [" +
                                    std::to_string(kGemmTuneMinKc) + ", " +
                                    std::to_string(kGemmTuneMaxKc) + "]"};
    }
    std::string why;
    if (!gemm_config_valid(entry.cfg, &why)) {
      // mc/kc were range-checked above, so the remaining failure is mr.
      return {TuneCode::kMicro, class_key + ": " + why};
    }
    // Provenance fields are optional (older tools may omit them).
    int64_t tmp = 0;
    if (read_int(e, "rep_m", &tmp, &ferr)) entry.rep_m = tmp;
    if (read_int(e, "rep_k", &tmp, &ferr)) entry.rep_k = tmp;
    if (read_int(e, "rep_n", &tmp, &ferr)) entry.rep_n = tmp;
    const JVal* g = e.get("gflops");
    if (g != nullptr && g->kind == JVal::Kind::kNum) entry.gflops = g->num;
    const JVal* bg = e.get("baseline_gflops");
    if (bg != nullptr && bg->kind == JVal::Kind::kNum) entry.baseline_gflops = bg->num;
    table.set(cls, entry);
  }
  *out = std::move(table);
  return {};
}

TuneStatus load_gemm_tuning(const std::string& path, GemmTuningTable* out, bool check_host) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {TuneCode::kIo, "cannot open " + path};
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    return {TuneCode::kIo, "read error on " + path};
  }
  TuneStatus st = parse_gemm_tuning(text.str(), out);
  if (!st.ok()) {
    st.message = path + ": " + st.message;
    return st;
  }
  if (check_host && out->host != host_fingerprint()) {
    return {TuneCode::kHost, path + ": table tuned on \"" + out->host + "\", this host is \"" +
                                 host_fingerprint() + "\""};
  }
  return {};
}

std::string to_json(const GemmTuningTable& table) {
  std::string out;
  out += "{\n  \"schema\": \"";
  out += kGemmTuneSchema;
  out += "\",\n  \"host\": ";
  append_json_string(&out, table.host);
  out += ",\n  \"entries\": [";
  bool first = true;
  for (int idx = 0; idx < kGemmShapeClassCount; ++idx) {
    const GemmTuneEntry& e = table.entries[static_cast<size_t>(idx)];
    if (!e.present) continue;
    // Recover the class from its dense index (inverse of index()).
    GemmShapeClass cls;
    cls.variant = static_cast<GemmVariant>(idx / (kGemmGeomCount * kGemmTierCount));
    cls.geom = static_cast<GemmShapeGeom>(idx / kGemmTierCount % kGemmGeomCount);
    cls.tier = static_cast<GemmShapeTier>(idx % kGemmTierCount);
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"class\": \"" + cls.key() + "\"";
    out += ", \"mc\": " + std::to_string(e.cfg.mc);
    out += ", \"kc\": " + std::to_string(e.cfg.kc);
    out += ", \"mr\": " + std::to_string(e.cfg.mr);
    out += ", \"strategy\": \"" + std::string(to_string(e.cfg.strategy)) + "\"";
    out += ", \"rep_m\": " + std::to_string(e.rep_m);
    out += ", \"rep_k\": " + std::to_string(e.rep_k);
    out += ", \"rep_n\": " + std::to_string(e.rep_n);
    out += ", \"gflops\": " + format_double(e.gflops);
    out += ", \"baseline_gflops\": " + format_double(e.baseline_gflops);
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Installed table
// ---------------------------------------------------------------------------

namespace {

Mutex g_tuning_mu;
// The installed table and whether $CAPR_GEMM_TUNING has been resolved.
// shared_ptr so hot-path readers hold the table alive without a lock
// held across the GEMM itself.
std::shared_ptr<const GemmTuningTable> g_tuning CAPR_GUARDED_BY(g_tuning_mu);
bool g_env_resolved CAPR_GUARDED_BY(g_tuning_mu) = false;

void resolve_env_locked() CAPR_REQUIRES(g_tuning_mu) {
  if (g_env_resolved) return;
  g_env_resolved = true;
  const char* path = std::getenv("CAPR_GEMM_TUNING");
  if (path == nullptr || *path == '\0' || std::string(path) == "off") return;
  auto table = std::make_shared<GemmTuningTable>();
  const TuneStatus st = load_gemm_tuning(path, table.get());
  if (!st.ok()) {
    std::fprintf(stderr, "capr: CAPR_GEMM_TUNING ignored: %s\n", st.format().c_str());
    return;
  }
  g_tuning = std::move(table);
}

}  // namespace

std::shared_ptr<const GemmTuningTable> gemm_tuning() {
  MutexLock lock(g_tuning_mu);
  resolve_env_locked();
  return g_tuning;
}

void set_gemm_tuning(std::shared_ptr<const GemmTuningTable> table) {
  MutexLock lock(g_tuning_mu);
  g_env_resolved = true;  // an explicit install overrides the env var
  g_tuning = std::move(table);
}

GemmTuningScope::GemmTuningScope(std::shared_ptr<const GemmTuningTable> table)
    : saved_(gemm_tuning()) {
  set_gemm_tuning(std::move(table));
}

GemmTuningScope::~GemmTuningScope() { set_gemm_tuning(std::move(saved_)); }

std::shared_ptr<const GemmTuningTable> single_entry_table(GemmVariant v, int64_t M, int64_t K,
                                                          int64_t N, const GemmTuneConfig& cfg) {
  auto table = std::make_shared<GemmTuningTable>();
  table->host = host_fingerprint();
  GemmTuneEntry e;
  e.cfg = cfg;
  e.rep_m = M;
  e.rep_k = K;
  e.rep_n = N;
  table->set(classify_gemm(v, M, K, N), e);
  return table;
}

GemmTuneConfig resolve_gemm_config(GemmVariant v, int64_t M, int64_t K, int64_t N) {
  const std::shared_ptr<const GemmTuningTable> table = gemm_tuning();
  if (table != nullptr) {
    const GemmTuneEntry* e = table->find(classify_gemm(v, M, K, N));
    if (e != nullptr) return e->cfg;
  }
  return default_gemm_config(v, M, K, N);
}

}  // namespace capr
