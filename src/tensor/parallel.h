// Minimal data-parallel helper.
//
// The heavy layers (conv forward/backward) are embarrassingly parallel
// over the batch; parallel_for splits an index range across std::threads.
// The worker count defaults to the hardware concurrency and can be pinned
// (set_num_threads(1) gives fully deterministic serial execution — the
// library's numerical results are identical either way because each index
// writes disjoint outputs; reductions use per-thread scratch).
#pragma once

#include <cstdint>
#include <functional>

namespace capr {

/// Sets the global worker count. n <= 0 resets to hardware concurrency.
void set_num_threads(int n);

/// Current worker count (>= 1).
int num_threads();

/// Invokes fn(thread_index, i) for every i in [begin, end), partitioned
/// into contiguous chunks across workers. fn must only touch state that
/// is disjoint per i or per thread_index. Runs inline when the range is
/// small or only one worker is configured.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int, int64_t)>& fn);

}  // namespace capr
