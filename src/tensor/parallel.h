// Minimal data-parallel helper.
//
// The heavy layers (conv forward/backward) are embarrassingly parallel
// over the batch; parallel_for splits an index range across std::threads.
// The worker count defaults to the hardware concurrency and can be pinned
// (set_num_threads(1) gives fully deterministic serial execution — the
// library's numerical results are identical either way because each index
// writes disjoint outputs; reductions use per-thread scratch).
#pragma once

#include <cstdint>
#include <functional>

namespace capr {

/// Sets the global worker count. n <= 0 resets to hardware concurrency.
void set_num_threads(int n);

/// Current worker count (>= 1).
int num_threads();

/// Invokes fn(thread_index, i) for every i in [begin, end), partitioned
/// into contiguous chunks across workers. fn must only touch state that
/// is disjoint per i or per thread_index. Runs inline when the range is
/// small, only one worker is configured, or the caller is itself inside
/// a parallel_for worker (nested regions never oversubscribe; the nested
/// call sees thread_index 0 for every i).
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int, int64_t)>& fn);

/// True while the calling thread is executing inside a parallel_for
/// chunk (including the caller-thread chunk). Lets nested hot paths —
/// e.g. the tiled GEMM inside conv2d's batch loop — choose their serial
/// variant instead of spawning threads from threads.
bool in_parallel_region();

/// Forces every parallel_for reached from the calling thread to run
/// inline while alive (same mechanism as the nested-region guard, so it
/// also covers the tiled GEMM's internal threading). Serving workers
/// hold one each: with N workers each running its own requests, the
/// parallelism is across requests, and letting every worker also fan
/// out over the batch would oversubscribe the machine. Results are
/// unchanged — serial execution is the determinism baseline.
class SerialRegionGuard {
 public:
  SerialRegionGuard();
  ~SerialRegionGuard();
  SerialRegionGuard(const SerialRegionGuard&) = delete;
  SerialRegionGuard& operator=(const SerialRegionGuard&) = delete;

 private:
  bool saved_;
};

}  // namespace capr
