#include "tensor/gemm_tiled.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/gemm_tune.h"
#include "tensor/parallel.h"

namespace capr {
namespace {

// Panel width of the packed-B layout; fixed (it is baked into
// im2col_packed and every committed PackedB), so the micro-kernel's NR
// is not tunable. The micro-kernel height IS: micro_kernel_t<kMR> is
// instantiated for every legal_gemm_mr() value and the resolved tuning
// config picks one at dispatch time.
constexpr int64_t NR = 16;

static_assert(NR == kPanelWidth, "packed-B layout width must match the micro-kernel NR");

std::atomic<GemmKernel> g_kernel_override{GemmKernel::kReference};
std::atomic<bool> g_kernel_overridden{false};

GemmKernel kernel_from_env() {
  const char* v = std::getenv("CAPR_GEMM_KERNEL");
  if (v == nullptr || *v == '\0') return GemmKernel::kTiled;
  const std::string s(v);
  if (s == "reference" || s == "ref") return GemmKernel::kReference;
  return GemmKernel::kTiled;
}

/// Packs b into NR-wide column panels: panel p holds columns
/// [p*NR, p*NR+NR) for every k, k-major, short panels zero-padded.
/// Element (k, j) of the logical [K, N] operand lives at b[k*rs + j*cs].
/// Returns false if any packed value is non-finite (strong-zero fallback).
bool pack_b(const float* b, int64_t rs, int64_t cs, int64_t K, int64_t N, float* out) {
  bool finite = true;
  for (int64_t p = 0; p * NR < N; ++p) {
    const int64_t j0 = p * NR;
    const int64_t w = std::min(NR, N - j0);
    float* panel = out + p * K * NR;
    for (int64_t k = 0; k < K; ++k) {
      const float* src = b + k * rs + j0 * cs;
      float* dst = panel + k * NR;
      for (int64_t j = 0; j < w; ++j) {
        const float v = src[j * cs];
        finite = finite && std::isfinite(v);
        dst[j] = v;
      }
      for (int64_t j = w; j < NR; ++j) dst[j] = 0.0f;
    }
  }
  return finite;
}

/// Packs rows [i0, i0+mc) x columns [k0, k0+kc) of the logical [M, K]
/// operand (element (i, k) at a[i*rs + k*cs]) into mr-tall strips,
/// k-major, short strips zero-padded.
void pack_a(const float* a, int64_t rs, int64_t cs, int64_t i0, int64_t mc, int64_t k0,
            int64_t kc, int64_t mr, float* out) {
  for (int64_t s = 0; s * mr < mc; ++s) {
    const int64_t r0 = i0 + s * mr;
    const int64_t rows = std::min(mr, i0 + mc - r0);
    float* strip = out + s * mr * kc;
    for (int64_t k = 0; k < kc; ++k) {
      const float* src = a + r0 * rs + (k0 + k) * cs;
      float* dst = strip + k * mr;
      int64_t i = 0;
      for (; i < rows; ++i) dst[i] = src[i * rs];
      for (; i < mr; ++i) dst[i] = 0.0f;
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)
// One full C tile row as a generic vector: the compiler lowers ops on it
// to the widest SIMD the target has (one zmm, two ymm, four xmm) and the
// accumulators stay in registers. Autovectorisation of the scalar form
// is not trusted here: GCC picks the 4-wide i-axis for it, an 8x loss.
using vnr = float __attribute__((vector_size(64)));
static_assert(NR * sizeof(float) == 64, "vnr must span one packed panel row");

/// kMR x NR register tile: c[0:mr, 0:nr] (+)= ap * bp over kc. ap is a
/// kMR-tall strip (k-major), bp an NR-wide panel slice (k-major).
///
/// C is PRE-LOADED into the accumulators (zeros when `overwrite`, i.e.
/// the first k-block of a non-accumulating call) and the k-loop then
/// extends each element's chain in strictly ascending k. Because the
/// chain continues across k-blocks instead of summing each block from
/// zero and adding it to C afterwards, every C element sees one global
/// k-ascending addition sequence — making the result bitwise INVARIANT
/// to mc/kc/mr, the parallelization strategy, and the worker count.
/// That invariance is the eligibility foundation of the autotuner: any
/// legal tuning config produces identical bits, only different speed.
///
/// Edge tiles stage C through a zero-padded tile so the same vector
/// loop runs; pad lanes are never written back (they can hold garbage
/// when A carries non-finite values — B is scanned, A is not).
template <int64_t kMR>
void micro_kernel_t(const float* __restrict ap, const float* __restrict bp, int64_t kc,
                    float* __restrict c, int64_t ldc, int64_t mr, int64_t nr, bool overwrite) {
  vnr acc[kMR];
  if (mr == kMR && nr == NR) {
    if (overwrite) {
      for (int64_t i = 0; i < kMR; ++i) acc[i] = vnr{};
    } else {
      for (int64_t i = 0; i < kMR; ++i) __builtin_memcpy(&acc[i], c + i * ldc, sizeof(vnr));
    }
    for (int64_t k = 0; k < kc; ++k) {
      vnr bv;
      __builtin_memcpy(&bv, bp + k * NR, sizeof(bv));
      const float* __restrict ak = ap + k * kMR;
      for (int64_t i = 0; i < kMR; ++i) acc[i] += ak[i] * bv;
    }
    for (int64_t i = 0; i < kMR; ++i) __builtin_memcpy(c + i * ldc, &acc[i], sizeof(vnr));
  } else {
    float tile[kMR][NR] = {};
    if (!overwrite) {
      for (int64_t i = 0; i < mr; ++i) {
        const float* crow = c + i * ldc;
        for (int64_t j = 0; j < nr; ++j) tile[i][j] = crow[j];
      }
    }
    __builtin_memcpy(acc, tile, sizeof(tile));
    for (int64_t k = 0; k < kc; ++k) {
      vnr bv;
      __builtin_memcpy(&bv, bp + k * NR, sizeof(bv));
      const float* __restrict ak = ap + k * kMR;
      for (int64_t i = 0; i < kMR; ++i) acc[i] += ak[i] * bv;
    }
    __builtin_memcpy(tile, acc, sizeof(tile));
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] = tile[i][j];
    }
  }
}
#else
/// Portable scalar fallback of the tile above; same C pre-load and the
/// same per-element k-ascending accumulation order.
template <int64_t kMR>
void micro_kernel_t(const float* __restrict ap, const float* __restrict bp, int64_t kc,
                    float* __restrict c, int64_t ldc, int64_t mr, int64_t nr, bool overwrite) {
  float acc[kMR][NR] = {};
  if (!overwrite) {
    for (int64_t i = 0; i < mr; ++i) {
      const float* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) acc[i][j] = crow[j];
    }
  }
  for (int64_t k = 0; k < kc; ++k) {
    const float* __restrict bk = bp + k * NR;
    const float* __restrict ak = ap + k * kMR;
    for (int64_t i = 0; i < kMR; ++i) {
      const float av = ak[i];
      for (int64_t j = 0; j < NR; ++j) acc[i][j] += av * bk[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] = acc[i][j];
  }
}
#endif

using MicroFn = void (*)(const float* __restrict, const float* __restrict, int64_t,
                         float* __restrict, int64_t, int64_t, int64_t, bool);

/// Dispatches to the compiled micro-kernel for an mr from
/// legal_gemm_mr(); resolve/pack_a_full guarantee legality upstream.
MicroFn micro_for(int64_t mr) {
  switch (mr) {
    case 4: return micro_kernel_t<4>;
    case 8: return micro_kernel_t<8>;
    default: return micro_kernel_t<6>;
  }
}

/// Strides locating element (i, k) of A and (k, j) of B inside the
/// caller's buffers; lets one driver serve the NN / NT / TN variants.
struct Operands {
  int64_t a_rs, a_cs;
  int64_t b_rs, b_cs;
};

/// Fused write-back for one C tile: bias adds then activation, plain
/// float ops in row-major element order — the exact sequence the
/// interpreted per-layer passes perform, so fusion is bitwise exact.
void apply_epilogue_tile(float* c, int64_t ldc, int64_t mr, int64_t nr, int64_t i0, int64_t j0,
                         const GemmEpilogue& ep) {
  for (int64_t i = 0; i < mr; ++i) {
    float* row = c + i * ldc;
    const float br = ep.bias_row != nullptr ? ep.bias_row[i0 + i] : 0.0f;
    for (int64_t j = 0; j < nr; ++j) {
      float v = row[j];
      if (ep.bias_row != nullptr) v += br;
      if (ep.bias_col != nullptr) v += ep.bias_col[j0 + j];
      if (ep.act == 1) {
        v = v > 0.0f ? v : 0.0f;
      } else if (ep.act == 2) {
        v = v > 0.0f ? v : ep.alpha * v;
      }
      row[j] = v;
    }
  }
}

bool has_epilogue(const GemmEpilogue& ep) {
  return ep.bias_row != nullptr || ep.bias_col != nullptr || ep.act != 0;
}

/// One row block: all k-blocks, in order, against panels [p0, p1). The
/// per-element accumulation order (k ascending, C pre-loaded) is
/// identical no matter which worker runs the block or how cfg slices
/// it. The optional epilogue fires per tile after the final k-block.
void run_mblock(const float* a, float* c, int64_t M, int64_t K, int64_t N, bool accumulate,
                const Operands& op, const float* bpack, int64_t mb, int64_t p0, int64_t p1,
                const GemmEpilogue& ep, const GemmTuneConfig& cfg, MicroFn micro,
                std::vector<float>& apack) {
  const int64_t i0 = mb * cfg.mc;
  const int64_t mc = std::min(cfg.mc, M - i0);
  const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
  apack.resize(static_cast<size_t>(strips * cfg.mr * std::min(K, cfg.kc)));
  for (int64_t k0 = 0; k0 < K; k0 += cfg.kc) {
    const int64_t kc = std::min(cfg.kc, K - k0);
    pack_a(a, op.a_rs, op.a_cs, i0, mc, k0, kc, cfg.mr, apack.data());
    const bool overwrite = k0 == 0 && !accumulate;
    const bool last = k0 + kc == K;
    for (int64_t p = p0; p < p1; ++p) {
      const int64_t j0 = p * NR;
      const int64_t nr = std::min(NR, N - j0);
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * cfg.mr;
        const int64_t mr = std::min(cfg.mr, i0 + mc - i);
        micro(apack.data() + s * cfg.mr * kc, bp, kc, c + i * N + j0, N, mr, nr, overwrite);
        if (last && has_epilogue(ep)) apply_epilogue_tile(c + i * N + j0, N, mr, nr, i, j0, ep);
      }
    }
  }
}

/// Offset of cache block (mb, kb) inside a whole-A pack laid out in
/// (mb, kb) order: preceding m-blocks are full height (strips_full
/// strips spanning all of K), preceding k-blocks full depth.
size_t ablock_offset(int64_t mb, int64_t kb, int64_t M, int64_t K, const GemmTuneConfig& cfg) {
  const int64_t strips_full = (cfg.mc + cfg.mr - 1) / cfg.mr;
  size_t off = static_cast<size_t>(mb) * static_cast<size_t>(strips_full * cfg.mr * K);
  const int64_t mc = std::min(cfg.mc, M - mb * cfg.mc);
  const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
  off += static_cast<size_t>(kb) * static_cast<size_t>(strips * cfg.mr * cfg.kc);
  return off;
}

/// Packs every (m-block, k-block) strip of A at once — the split-N
/// strategy packs A serially, then workers share it read-only while
/// owning disjoint panel ranges of C.
void pack_a_all(const float* a, const Operands& op, int64_t M, int64_t K,
                const GemmTuneConfig& cfg, std::vector<float>& out) {
  out.resize(static_cast<size_t>(gemm_apack_all_floats(M, K, cfg)));
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  const int64_t kblocks = (K + cfg.kc - 1) / cfg.kc;
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * cfg.mc;
    const int64_t mc = std::min(cfg.mc, M - i0);
    for (int64_t kb = 0; kb < kblocks; ++kb) {
      const int64_t k0 = kb * cfg.kc;
      const int64_t kc = std::min(cfg.kc, K - k0);
      pack_a(a, op.a_rs, op.a_cs, i0, mc, k0, kc, cfg.mr,
             out.data() + ablock_offset(mb, kb, M, K, cfg));
    }
  }
}

/// One panel of C across every m-block and k-block, reading the shared
/// whole-A pack. Each element's k-chain lives entirely in this call, so
/// split-N output is bitwise identical to the serial order.
void run_panel(const float* apack_all, const float* bpack, float* c, int64_t M, int64_t K,
               int64_t N, bool accumulate, const GemmEpilogue& ep, const GemmTuneConfig& cfg,
               MicroFn micro, int64_t p) {
  const int64_t j0 = p * NR;
  const int64_t nr = std::min(NR, N - j0);
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * cfg.mc;
    const int64_t mc = std::min(cfg.mc, M - i0);
    const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
    for (int64_t k0 = 0, kb = 0; k0 < K; k0 += cfg.kc, ++kb) {
      const int64_t kc = std::min(cfg.kc, K - k0);
      const float* ablock = apack_all + ablock_offset(mb, kb, M, K, cfg);
      const bool overwrite = k0 == 0 && !accumulate;
      const bool last = k0 + kc == K;
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * cfg.mr;
        const int64_t mr = std::min(cfg.mr, i0 + mc - i);
        micro(ablock + s * cfg.mr * kc, bp, kc, c + i * N + j0, N, mr, nr, overwrite);
        if (last && has_epilogue(ep)) apply_epilogue_tile(c + i * N + j0, N, mr, nr, i, j0, ep);
      }
    }
  }
}

/// Downgrades a resolved strategy to what this call can actually use:
/// serial when the shape has nothing to split or threading is
/// unavailable here. Purely shape/thread-count dependent, so dispatch
/// stays deterministic.
GemmParallel executable_strategy(GemmParallel strat, int64_t mblocks, int64_t panels) {
  if (num_threads() <= 1 || in_parallel_region()) return GemmParallel::kNoParallel;
  if (strat == GemmParallel::kSplitM && mblocks <= 1) return GemmParallel::kNoParallel;
  if (strat == GemmParallel::kSplitN && panels <= 1) return GemmParallel::kNoParallel;
  return strat;
}

/// Shared driver for the per-call kernels. `fallback` re-runs the whole
/// product on the strong-zero reference path; taken when B contains
/// non-finite values.
template <typename Fallback>
void tiled_driver(GemmVariant variant, const float* a, const float* b, float* c, int64_t M,
                  int64_t K, int64_t N, bool accumulate, GemmScratch* scratch,
                  const Operands& op, const Fallback& fallback) {
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    if (!accumulate) std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
    return;
  }
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  const int64_t panels = (N + NR - 1) / NR;
  s.bpack.resize(static_cast<size_t>(panels * K * NR));
  if (!pack_b(b, op.b_rs, op.b_cs, K, N, s.bpack.data())) {
    fallback();
    return;
  }
  const GemmTuneConfig cfg = resolve_gemm_config(variant, M, K, N);
  const MicroFn micro = micro_for(cfg.mr);
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  const GemmEpilogue ep;  // per-call kernels have no fused epilogue
  switch (executable_strategy(cfg.strategy, mblocks, panels)) {
    case GemmParallel::kNoParallel:
      for (int64_t mb = 0; mb < mblocks; ++mb) {
        run_mblock(a, c, M, K, N, accumulate, op, s.bpack.data(), mb, 0, panels, ep, cfg, micro,
                   s.apack);
      }
      return;
    case GemmParallel::kSplitM: {
      // Row blocks across workers. bpack is written above, strictly
      // before the threads spawn (happens-before via thread creation),
      // and is read-only inside the region; each block writes a
      // disjoint C row range.
      const auto workers = static_cast<size_t>(std::min<int64_t>(mblocks, num_threads()));
      if (s.wapack.size() < workers) s.wapack.resize(workers);
      parallel_for(0, mblocks, [&](int tid, int64_t mb) {
        run_mblock(a, c, M, K, N, accumulate, op, s.bpack.data(), mb, 0, panels, ep, cfg, micro,
                   s.wapack[static_cast<size_t>(tid)]);
      });
      return;
    }
    case GemmParallel::kSplitN:
      // Panel ranges across workers: A is packed whole (serially, into
      // the shared apack) and read-only in the region; each panel
      // writes a disjoint C column range.
      pack_a_all(a, op, M, K, cfg, s.apack);
      parallel_for(0, panels, [&](int, int64_t p) {
        run_panel(s.apack.data(), s.bpack.data(), c, M, K, N, accumulate, ep, cfg, micro, p);
      });
      return;
  }
}

/// run_mblock with A pre-packed (layout and config from the PackedA):
/// same block order, same micro-kernel calls, no pack_a.
void run_mblock_packed(const PackedA& A, const float* bpack, float* c, int64_t N,
                       const GemmEpilogue& ep, MicroFn micro, int64_t mb) {
  const GemmTuneConfig& cfg = A.cfg;
  const int64_t M = A.rows;
  const int64_t K = A.depth;
  const int64_t i0 = mb * cfg.mc;
  const int64_t mc = std::min(cfg.mc, M - i0);
  const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
  const int64_t panels = (N + NR - 1) / NR;
  for (int64_t kb = 0; kb < A.kblocks; ++kb) {
    const int64_t k0 = kb * cfg.kc;
    const int64_t kc = std::min(cfg.kc, K - k0);
    const float* apack =
        A.strips.data() + A.block_offset[static_cast<size_t>(mb * A.kblocks + kb)];
    const bool overwrite = k0 == 0;
    const bool last = k0 + kc == K;
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t j0 = p * NR;
      const int64_t nr = std::min(NR, N - j0);
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * cfg.mr;
        const int64_t mr = std::min(cfg.mr, i0 + mc - i);
        micro(apack + s * cfg.mr * kc, bp, kc, c + i * N + j0, N, mr, nr, overwrite);
        if (last && has_epilogue(ep)) apply_epilogue_tile(c + i * N + j0, N, mr, nr, i, j0, ep);
      }
    }
  }
}

/// One C panel over a pre-packed A — the split-N inner loop of the
/// compiled conv path.
void run_panel_packed(const PackedA& A, const float* bpack, float* c, int64_t N,
                      const GemmEpilogue& ep, MicroFn micro, int64_t p) {
  const GemmTuneConfig& cfg = A.cfg;
  const int64_t M = A.rows;
  const int64_t K = A.depth;
  const int64_t j0 = p * NR;
  const int64_t nr = std::min(NR, N - j0);
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * cfg.mc;
    const int64_t mc = std::min(cfg.mc, M - i0);
    const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
    for (int64_t kb = 0; kb < A.kblocks; ++kb) {
      const int64_t k0 = kb * cfg.kc;
      const int64_t kc = std::min(cfg.kc, K - k0);
      const float* apack =
          A.strips.data() + A.block_offset[static_cast<size_t>(mb * A.kblocks + kb)];
      const bool overwrite = k0 == 0;
      const bool last = k0 + kc == K;
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * cfg.mr;
        const int64_t mr = std::min(cfg.mr, i0 + mc - i);
        micro(apack + s * cfg.mr * kc, bp, kc, c + i * N + j0, N, mr, nr, overwrite);
        if (last && has_epilogue(ep)) apply_epilogue_tile(c + i * N + j0, N, mr, nr, i, j0, ep);
      }
    }
  }
}

}  // namespace

int64_t gemm_apack_floats(int64_t M, int64_t K, const GemmTuneConfig& cfg) {
  const int64_t mc = std::min(cfg.mc, M);
  const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
  return strips * cfg.mr * std::min(K, cfg.kc);
}

int64_t gemm_apack_all_floats(int64_t M, int64_t K, const GemmTuneConfig& cfg) {
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  int64_t strips_total = 0;
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t mc = std::min(cfg.mc, M - mb * cfg.mc);
    strips_total += (mc + cfg.mr - 1) / cfg.mr;
  }
  return strips_total * cfg.mr * K;
}

void reserve_gemm_scratch(GemmScratch& s, GemmVariant v, int64_t M, int64_t K, int64_t N) {
  if (M <= 0 || K <= 0 || N <= 0) return;
  const GemmTuneConfig cfg = resolve_gemm_config(v, M, K, N);
  const auto grow = [](std::vector<float>& buf, int64_t n) {
    if (static_cast<int64_t>(buf.size()) < n) buf.resize(static_cast<size_t>(n));
  };
  grow(s.bpack, packed_b_floats(K, N));
  // Size for the serial/split-M block pack unconditionally (the runtime
  // strategy downgrades to serial inside parallel regions), then add the
  // parallel strategy's extra demand on top.
  grow(s.apack, gemm_apack_floats(M, K, cfg));
  if (cfg.strategy == GemmParallel::kSplitN) {
    grow(s.apack, gemm_apack_all_floats(M, K, cfg));
  } else if (cfg.strategy == GemmParallel::kSplitM) {
    const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
    const size_t workers =
        static_cast<size_t>(std::min<int64_t>(mblocks, num_threads()));
    if (s.wapack.size() < workers) s.wapack.resize(workers);
    for (size_t w = 0; w < workers; ++w) grow(s.wapack[w], gemm_apack_floats(M, K, cfg));
  }
}

PackedA pack_a_full(const float* a, int64_t M, int64_t K, const GemmTuneConfig& cfg_in) {
  PackedA out;
  out.cfg = cfg_in;
  if (!gemm_config_valid(out.cfg)) out.cfg = GemmTuneConfig{};
  const GemmTuneConfig& cfg = out.cfg;
  out.rows = M;
  out.depth = K;
  out.kblocks = (K + cfg.kc - 1) / cfg.kc;
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  out.block_offset.reserve(static_cast<size_t>(mblocks * out.kblocks));
  size_t total = 0;
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * cfg.mc;
    const int64_t mc = std::min(cfg.mc, M - i0);
    const int64_t strips = (mc + cfg.mr - 1) / cfg.mr;
    for (int64_t kb = 0; kb < out.kblocks; ++kb) {
      const int64_t kc = std::min(cfg.kc, K - kb * cfg.kc);
      out.block_offset.push_back(total);
      total += static_cast<size_t>(strips * cfg.mr * kc);
    }
  }
  out.strips.resize(total);
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * cfg.mc;
    const int64_t mc = std::min(cfg.mc, M - i0);
    for (int64_t kb = 0; kb < out.kblocks; ++kb) {
      const int64_t k0 = kb * cfg.kc;
      const int64_t kc = std::min(cfg.kc, K - k0);
      pack_a(a, K, 1, i0, mc, k0, kc, cfg.mr,
             out.strips.data() + out.block_offset[static_cast<size_t>(mb * out.kblocks + kb)]);
    }
  }
  return out;
}

PackedB pack_b_nt(const float* w, int64_t N, int64_t K) {
  PackedB out;
  out.depth = K;
  out.cols = N;
  out.panels.resize(static_cast<size_t>(packed_b_floats(K, N)));
  // Logical B = w^T for row-major w[N, K]: element (k, j) at w[j*K + k].
  out.finite = pack_b(w, 1, K, K, N, out.panels.data());
  return out;
}

void gemm_tiled_packed(const PackedA& a, const float* bpanels, float* c, int64_t N,
                       const GemmEpilogue& ep) {
  const int64_t M = a.rows;
  const int64_t K = a.depth;
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
    if (has_epilogue(ep)) apply_epilogue_tile(c, N, M, N, 0, 0, ep);
    return;
  }
  const MicroFn micro = micro_for(a.cfg.mr);
  const int64_t mblocks = (M + a.cfg.mc - 1) / a.cfg.mc;
  const int64_t panels = (N + NR - 1) / NR;
  switch (executable_strategy(a.cfg.strategy, mblocks, panels)) {
    case GemmParallel::kNoParallel:
      for (int64_t mb = 0; mb < mblocks; ++mb) {
        run_mblock_packed(a, bpanels, c, N, ep, micro, mb);
      }
      return;
    case GemmParallel::kSplitM:
      parallel_for(0, mblocks,
                   [&](int, int64_t mb) { run_mblock_packed(a, bpanels, c, N, ep, micro, mb); });
      return;
    case GemmParallel::kSplitN:
      parallel_for(0, panels,
                   [&](int, int64_t p) { run_panel_packed(a, bpanels, c, N, ep, micro, p); });
      return;
  }
}

void gemm_tiled_packed_nt(const float* a, const PackedB& b, float* c, int64_t M,
                          const GemmEpilogue& ep, GemmScratch* scratch) {
  const int64_t K = b.depth;
  const int64_t N = b.cols;
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
    if (has_epilogue(ep)) apply_epilogue_tile(c, N, M, N, 0, 0, ep);
    return;
  }
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  // The logical product is a[M, K] * w^T — an NT-variant shape. A is
  // packed per call (row-major operand strides {K, 1}).
  const GemmTuneConfig cfg = resolve_gemm_config(GemmVariant::kNT, M, K, N);
  const MicroFn micro = micro_for(cfg.mr);
  const Operands op{K, 1, 0, 0};
  const int64_t mblocks = (M + cfg.mc - 1) / cfg.mc;
  const int64_t panels = (N + NR - 1) / NR;
  switch (executable_strategy(cfg.strategy, mblocks, panels)) {
    case GemmParallel::kNoParallel:
      for (int64_t mb = 0; mb < mblocks; ++mb) {
        run_mblock(a, c, M, K, N, /*accumulate=*/false, op, b.panels.data(), mb, 0, panels, ep,
                   cfg, micro, s.apack);
      }
      return;
    case GemmParallel::kSplitM: {
      const auto workers = static_cast<size_t>(std::min<int64_t>(mblocks, num_threads()));
      if (s.wapack.size() < workers) s.wapack.resize(workers);
      parallel_for(0, mblocks, [&](int tid, int64_t mb) {
        run_mblock(a, c, M, K, N, /*accumulate=*/false, op, b.panels.data(), mb, 0, panels, ep,
                   cfg, micro, s.wapack[static_cast<size_t>(tid)]);
      });
      return;
    }
    case GemmParallel::kSplitN:
      pack_a_all(a, op, M, K, cfg, s.apack);
      parallel_for(0, panels, [&](int, int64_t p) {
        run_panel(s.apack.data(), b.panels.data(), c, M, K, N, /*accumulate=*/false, ep, cfg,
                  micro, p);
      });
      return;
  }
}

GemmKernel gemm_kernel() {
  if (g_kernel_overridden.load(std::memory_order_acquire)) {
    return g_kernel_override.load(std::memory_order_relaxed);
  }
  static const GemmKernel from_env = kernel_from_env();
  return from_env;
}

void set_gemm_kernel(GemmKernel k) {
  g_kernel_override.store(k, std::memory_order_relaxed);
  g_kernel_overridden.store(true, std::memory_order_release);
}

const char* to_string(GemmKernel k) {
  return k == GemmKernel::kTiled ? "tiled" : "reference";
}

void gemm_tiled(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                bool accumulate, GemmScratch* scratch) {
  tiled_driver(GemmVariant::kNN, a, b, c, M, K, N, accumulate, scratch, Operands{K, 1, N, 1},
               [&] { gemm(a, b, c, M, K, N, accumulate); });
}

void gemm_tiled_nt(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate, GemmScratch* scratch) {
  // Logical B = bT where b is [N, K]: element (k, j) sits at b[j*K + k].
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  tiled_driver(GemmVariant::kNT, a, b, c, M, K, N, accumulate, &s, Operands{K, 1, 1, K}, [&] {
    s.tpose.resize(static_cast<size_t>(K * N));
    for (int64_t j = 0; j < N; ++j) {
      const float* brow = b + j * K;
      for (int64_t k = 0; k < K; ++k) s.tpose[static_cast<size_t>(k * N + j)] = brow[k];
    }
    gemm(a, s.tpose.data(), c, M, K, N, accumulate);
  });
}

void gemm_tiled_tn(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate, GemmScratch* scratch) {
  // Logical A = aT where a is [K, M]: element (i, k) sits at a[k*M + i].
  tiled_driver(GemmVariant::kTN, a, b, c, M, K, N, accumulate, scratch, Operands{1, M, N, 1},
               [&] { gemm_tn_ref(a, b, c, M, K, N, accumulate); });
}

void gemm_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
               bool accumulate, GemmScratch* scratch) {
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled(a, b, c, M, K, N, accumulate, scratch);
  } else {
    gemm(a, b, c, M, K, N, accumulate);
  }
}

void gemm_nt_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate, GemmScratch* scratch) {
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled_nt(a, b, c, M, K, N, accumulate, scratch);
    return;
  }
  // Reference lowering: explicit transpose + strong-zero gemm (the
  // historical conv2d backward dW path).
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  s.tpose.resize(static_cast<size_t>(K * N));
  for (int64_t j = 0; j < N; ++j) {
    const float* brow = b + j * K;
    for (int64_t k = 0; k < K; ++k) s.tpose[static_cast<size_t>(k * N + j)] = brow[k];
  }
  gemm(a, s.tpose.data(), c, M, K, N, accumulate);
}

void gemm_tn_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate, GemmScratch* scratch) {
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled_tn(a, b, c, M, K, N, accumulate, scratch);
  } else {
    gemm_tn_ref(a, b, c, M, K, N, accumulate);
  }
}

}  // namespace capr
