#include "tensor/gemm_tiled.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace capr {
namespace {

// Micro-tile: MR broadcast A values against NR-wide B streams, MR*NR
// accumulators held in registers. 6x16 fits 12 8-wide (or 6 16-wide)
// vector registers of accumulators with room for A broadcasts.
constexpr int64_t MR = 6;
constexpr int64_t NR = 16;
// Cache blocks: the packed A block (MC x KC floats, ~72 KiB) stays L2
// resident while the k-slice of packed B streams through it.
constexpr int64_t MC = 72;
constexpr int64_t KC = 256;
// Below this many FLOPs (2*M*K*N) threading overhead beats the speedup;
// the cut depends only on the shape, so dispatch stays deterministic.
constexpr int64_t kParallelFlops = int64_t(1) << 23;

static_assert(NR == kPanelWidth, "packed-B layout width must match the micro-kernel NR");

std::atomic<GemmKernel> g_kernel_override{GemmKernel::kReference};
std::atomic<bool> g_kernel_overridden{false};

GemmKernel kernel_from_env() {
  const char* v = std::getenv("CAPR_GEMM_KERNEL");
  if (v == nullptr || *v == '\0') return GemmKernel::kTiled;
  const std::string s(v);
  if (s == "reference" || s == "ref") return GemmKernel::kReference;
  return GemmKernel::kTiled;
}

/// Packs b into NR-wide column panels: panel p holds columns
/// [p*NR, p*NR+NR) for every k, k-major, short panels zero-padded.
/// Element (k, j) of the logical [K, N] operand lives at b[k*rs + j*cs].
/// Returns false if any packed value is non-finite (strong-zero fallback).
bool pack_b(const float* b, int64_t rs, int64_t cs, int64_t K, int64_t N, float* out) {
  bool finite = true;
  for (int64_t p = 0; p * NR < N; ++p) {
    const int64_t j0 = p * NR;
    const int64_t w = std::min(NR, N - j0);
    float* panel = out + p * K * NR;
    for (int64_t k = 0; k < K; ++k) {
      const float* src = b + k * rs + j0 * cs;
      float* dst = panel + k * NR;
      for (int64_t j = 0; j < w; ++j) {
        const float v = src[j * cs];
        finite = finite && std::isfinite(v);
        dst[j] = v;
      }
      for (int64_t j = w; j < NR; ++j) dst[j] = 0.0f;
    }
  }
  return finite;
}

/// Packs rows [i0, i0+mc) x columns [k0, k0+kc) of the logical [M, K]
/// operand (element (i, k) at a[i*rs + k*cs]) into MR-tall strips,
/// k-major, short strips zero-padded.
void pack_a(const float* a, int64_t rs, int64_t cs, int64_t i0, int64_t mc, int64_t k0,
            int64_t kc, float* out) {
  for (int64_t s = 0; s * MR < mc; ++s) {
    const int64_t r0 = i0 + s * MR;
    const int64_t rows = std::min(MR, i0 + mc - r0);
    float* strip = out + s * MR * kc;
    for (int64_t k = 0; k < kc; ++k) {
      const float* src = a + r0 * rs + (k0 + k) * cs;
      float* dst = strip + k * MR;
      int64_t i = 0;
      for (; i < rows; ++i) dst[i] = src[i * rs];
      for (; i < MR; ++i) dst[i] = 0.0f;
    }
  }
}

#if defined(__GNUC__) || defined(__clang__)
// One full C tile row as a generic vector: the compiler lowers ops on it
// to the widest SIMD the target has (one zmm, two ymm, four xmm) and the
// accumulators stay in registers. Autovectorisation of the scalar form
// is not trusted here: GCC picks the 4-wide i-axis for it, an 8x loss.
using vnr = float __attribute__((vector_size(64)));
static_assert(NR * sizeof(float) == 64, "vnr must span one packed panel row");

/// MR x NR register tile: c[0:mr, 0:nr] (+)= ap * bp over kc. ap is an
/// MR-tall strip (k-major), bp an NR-wide panel slice (k-major). When
/// `overwrite`, the tile is stored; otherwise added (C uninitialised
/// reads never happen: overwrite is set exactly on the first k-block of
/// a non-accumulating call). Per C element the additions run strictly
/// k-ascending — vectorising across j keeps each element's own order.
void micro_kernel(const float* __restrict ap, const float* __restrict bp, int64_t kc,
                  float* __restrict c, int64_t ldc, int64_t mr, int64_t nr, bool overwrite) {
  vnr acc[MR] = {};
  for (int64_t k = 0; k < kc; ++k) {
    vnr bv;
    __builtin_memcpy(&bv, bp + k * NR, sizeof(bv));
    const float* __restrict ak = ap + k * MR;
    for (int64_t i = 0; i < MR; ++i) acc[i] += ak[i] * bv;
  }
  if (mr == MR && nr == NR) {
    for (int64_t i = 0; i < MR; ++i) {
      float* crow = c + i * ldc;
      if (!overwrite) {
        vnr cv;
        __builtin_memcpy(&cv, crow, sizeof(cv));
        acc[i] += cv;
      }
      __builtin_memcpy(crow, &acc[i], sizeof(acc[i]));
    }
  } else {
    float tile[MR][NR];
    __builtin_memcpy(tile, acc, sizeof(tile));
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      if (overwrite) {
        for (int64_t j = 0; j < nr; ++j) crow[j] = tile[i][j];
      } else {
        for (int64_t j = 0; j < nr; ++j) crow[j] += tile[i][j];
      }
    }
  }
}
#else
/// Portable scalar fallback of the tile above; same accumulation order.
void micro_kernel(const float* __restrict ap, const float* __restrict bp, int64_t kc,
                  float* __restrict c, int64_t ldc, int64_t mr, int64_t nr, bool overwrite) {
  float acc[MR][NR] = {};
  for (int64_t k = 0; k < kc; ++k) {
    const float* __restrict bk = bp + k * NR;
    const float* __restrict ak = ap + k * MR;
    for (int64_t i = 0; i < MR; ++i) {
      const float av = ak[i];
      for (int64_t j = 0; j < NR; ++j) acc[i][j] += av * bk[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    if (overwrite) {
      for (int64_t j = 0; j < nr; ++j) crow[j] = acc[i][j];
    } else {
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}
#endif

/// Strides locating element (i, k) of A and (k, j) of B inside the
/// caller's buffers; lets one driver serve the NN / NT / TN variants.
struct Operands {
  int64_t a_rs, a_cs;
  int64_t b_rs, b_cs;
};

/// One row block: all k-blocks, in order, against every B panel. The
/// per-element accumulation order (k ascending) is identical no matter
/// which worker runs the block.
void run_mblock(const float* a, float* c, int64_t M, int64_t K, int64_t N, bool accumulate,
                const Operands& op, const float* bpack, int64_t mb, std::vector<float>& apack) {
  const int64_t i0 = mb * MC;
  const int64_t mc = std::min(MC, M - i0);
  const int64_t strips = (mc + MR - 1) / MR;
  apack.resize(static_cast<size_t>(strips * MR * std::min(K, KC)));
  const int64_t panels = (N + NR - 1) / NR;
  for (int64_t k0 = 0; k0 < K; k0 += KC) {
    const int64_t kc = std::min(KC, K - k0);
    pack_a(a, op.a_rs, op.a_cs, i0, mc, k0, kc, apack.data());
    const bool overwrite = k0 == 0 && !accumulate;
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t j0 = p * NR;
      const int64_t nr = std::min(NR, N - j0);
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * MR;
        micro_kernel(apack.data() + s * MR * kc, bp, kc, c + i * N + j0, N,
                     std::min(MR, i0 + mc - i), nr, overwrite);
      }
    }
  }
}

/// Shared driver. `fallback` re-runs the whole product on the strong-zero
/// reference path; taken when B contains non-finite values.
template <typename Fallback>
void tiled_driver(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate, GemmScratch* scratch, const Operands& op,
                  const Fallback& fallback) {
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    if (!accumulate) std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
    return;
  }
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  const int64_t panels = (N + NR - 1) / NR;
  s.bpack.resize(static_cast<size_t>(panels * K * NR));
  if (!pack_b(b, op.b_rs, op.b_cs, K, N, s.bpack.data())) {
    fallback();
    return;
  }
  const int64_t mblocks = (M + MC - 1) / MC;
  const bool parallel = 2 * M * K * N >= kParallelFlops && mblocks > 1 && num_threads() > 1 &&
                        !in_parallel_region();
  if (!parallel) {
    for (int64_t mb = 0; mb < mblocks; ++mb) {
      run_mblock(a, c, M, K, N, accumulate, op, s.bpack.data(), mb, s.apack);
    }
    return;
  }
  // Row blocks across workers. bpack is written above, strictly before
  // the threads spawn (happens-before via thread creation), and is
  // read-only inside the region; each block writes a disjoint C range.
  const int workers = static_cast<int>(std::min<int64_t>(mblocks, num_threads()));
  std::vector<std::vector<float>> apacks(static_cast<size_t>(workers));
  parallel_for(0, mblocks, [&](int tid, int64_t mb) {
    run_mblock(a, c, M, K, N, accumulate, op, s.bpack.data(), mb,
               apacks[static_cast<size_t>(tid)]);
  });
}

/// Fused write-back for one C tile: bias adds then activation, plain
/// float ops in row-major element order — the exact sequence the
/// interpreted per-layer passes perform, so fusion is bitwise exact.
void apply_epilogue_tile(float* c, int64_t ldc, int64_t mr, int64_t nr, int64_t i0, int64_t j0,
                         const GemmEpilogue& ep) {
  for (int64_t i = 0; i < mr; ++i) {
    float* row = c + i * ldc;
    const float br = ep.bias_row != nullptr ? ep.bias_row[i0 + i] : 0.0f;
    for (int64_t j = 0; j < nr; ++j) {
      float v = row[j];
      if (ep.bias_row != nullptr) v += br;
      if (ep.bias_col != nullptr) v += ep.bias_col[j0 + j];
      if (ep.act == 1) {
        v = v > 0.0f ? v : 0.0f;
      } else if (ep.act == 2) {
        v = v > 0.0f ? v : ep.alpha * v;
      }
      row[j] = v;
    }
  }
}

bool has_epilogue(const GemmEpilogue& ep) {
  return ep.bias_row != nullptr || ep.bias_col != nullptr || ep.act != 0;
}

/// run_mblock with A pre-packed: same block order, same micro-kernel
/// calls, no pack_a — plus the fused epilogue on the final k-block.
void run_mblock_packed(const PackedA& A, const float* bpack, float* c, int64_t N,
                       const GemmEpilogue& ep, int64_t mb) {
  const int64_t M = A.rows;
  const int64_t K = A.depth;
  const int64_t i0 = mb * MC;
  const int64_t mc = std::min(MC, M - i0);
  const int64_t strips = (mc + MR - 1) / MR;
  const int64_t panels = (N + NR - 1) / NR;
  for (int64_t kb = 0; kb < A.kblocks; ++kb) {
    const int64_t k0 = kb * KC;
    const int64_t kc = std::min(KC, K - k0);
    const float* apack = A.strips.data() + A.block_offset[static_cast<size_t>(mb * A.kblocks + kb)];
    const bool overwrite = k0 == 0;
    const bool last = k0 + kc == K;
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t j0 = p * NR;
      const int64_t nr = std::min(NR, N - j0);
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * MR;
        const int64_t mr = std::min(MR, i0 + mc - i);
        micro_kernel(apack + s * MR * kc, bp, kc, c + i * N + j0, N, mr, nr, overwrite);
        if (last && has_epilogue(ep)) apply_epilogue_tile(c + i * N + j0, N, mr, nr, i, j0, ep);
      }
    }
  }
}

/// run_mblock against a pre-packed B with per-call A packing and the
/// fused epilogue; used by the compiled linear step.
void run_mblock_bpacked(const float* a, float* c, int64_t M, int64_t K, int64_t N,
                        const float* bpack, const GemmEpilogue& ep, int64_t mb,
                        std::vector<float>& apack) {
  const int64_t i0 = mb * MC;
  const int64_t mc = std::min(MC, M - i0);
  const int64_t strips = (mc + MR - 1) / MR;
  apack.resize(static_cast<size_t>(strips * MR * std::min(K, KC)));
  const int64_t panels = (N + NR - 1) / NR;
  for (int64_t k0 = 0; k0 < K; k0 += KC) {
    const int64_t kc = std::min(KC, K - k0);
    pack_a(a, K, 1, i0, mc, k0, kc, apack.data());
    const bool overwrite = k0 == 0;
    const bool last = k0 + kc == K;
    for (int64_t p = 0; p < panels; ++p) {
      const int64_t j0 = p * NR;
      const int64_t nr = std::min(NR, N - j0);
      const float* bp = bpack + p * K * NR + k0 * NR;
      for (int64_t s = 0; s < strips; ++s) {
        const int64_t i = i0 + s * MR;
        const int64_t mr = std::min(MR, i0 + mc - i);
        micro_kernel(apack.data() + s * MR * kc, bp, kc, c + i * N + j0, N, mr, nr, overwrite);
        if (last && has_epilogue(ep)) apply_epilogue_tile(c + i * N + j0, N, mr, nr, i, j0, ep);
      }
    }
  }
}

}  // namespace

PackedA pack_a_full(const float* a, int64_t M, int64_t K) {
  PackedA out;
  out.rows = M;
  out.depth = K;
  out.kblocks = (K + KC - 1) / KC;
  const int64_t mblocks = (M + MC - 1) / MC;
  out.block_offset.reserve(static_cast<size_t>(mblocks * out.kblocks));
  size_t total = 0;
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * MC;
    const int64_t mc = std::min(MC, M - i0);
    const int64_t strips = (mc + MR - 1) / MR;
    for (int64_t kb = 0; kb < out.kblocks; ++kb) {
      const int64_t kc = std::min(KC, K - kb * KC);
      out.block_offset.push_back(total);
      total += static_cast<size_t>(strips * MR * kc);
    }
  }
  out.strips.resize(total);
  for (int64_t mb = 0; mb < mblocks; ++mb) {
    const int64_t i0 = mb * MC;
    const int64_t mc = std::min(MC, M - i0);
    for (int64_t kb = 0; kb < out.kblocks; ++kb) {
      const int64_t k0 = kb * KC;
      const int64_t kc = std::min(KC, K - k0);
      pack_a(a, K, 1, i0, mc, k0, kc,
             out.strips.data() + out.block_offset[static_cast<size_t>(mb * out.kblocks + kb)]);
    }
  }
  return out;
}

PackedB pack_b_nt(const float* w, int64_t N, int64_t K) {
  PackedB out;
  out.depth = K;
  out.cols = N;
  out.panels.resize(static_cast<size_t>(packed_b_floats(K, N)));
  // Logical B = w^T for row-major w[N, K]: element (k, j) at w[j*K + k].
  out.finite = pack_b(w, 1, K, K, N, out.panels.data());
  return out;
}

void gemm_tiled_packed(const PackedA& a, const float* bpanels, float* c, int64_t N,
                       const GemmEpilogue& ep) {
  const int64_t M = a.rows;
  const int64_t K = a.depth;
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
    if (has_epilogue(ep)) apply_epilogue_tile(c, N, M, N, 0, 0, ep);
    return;
  }
  const int64_t mblocks = (M + MC - 1) / MC;
  const bool parallel = 2 * M * K * N >= kParallelFlops && mblocks > 1 && num_threads() > 1 &&
                        !in_parallel_region();
  if (!parallel) {
    for (int64_t mb = 0; mb < mblocks; ++mb) run_mblock_packed(a, bpanels, c, N, ep, mb);
    return;
  }
  parallel_for(0, mblocks,
               [&](int, int64_t mb) { run_mblock_packed(a, bpanels, c, N, ep, mb); });
}

void gemm_tiled_packed_nt(const float* a, const PackedB& b, float* c, int64_t M,
                          const GemmEpilogue& ep, GemmScratch* scratch) {
  const int64_t K = b.depth;
  const int64_t N = b.cols;
  if (M <= 0 || N <= 0) return;
  if (K <= 0) {
    std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
    if (has_epilogue(ep)) apply_epilogue_tile(c, N, M, N, 0, 0, ep);
    return;
  }
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  const int64_t mblocks = (M + MC - 1) / MC;
  const bool parallel = 2 * M * K * N >= kParallelFlops && mblocks > 1 && num_threads() > 1 &&
                        !in_parallel_region();
  if (!parallel) {
    for (int64_t mb = 0; mb < mblocks; ++mb) {
      run_mblock_bpacked(a, c, M, K, N, b.panels.data(), ep, mb, s.apack);
    }
    return;
  }
  const int workers = static_cast<int>(std::min<int64_t>(mblocks, num_threads()));
  std::vector<std::vector<float>> apacks(static_cast<size_t>(workers));
  parallel_for(0, mblocks, [&](int tid, int64_t mb) {
    run_mblock_bpacked(a, c, M, K, N, b.panels.data(), ep, mb,
                       apacks[static_cast<size_t>(tid)]);
  });
}

GemmKernel gemm_kernel() {
  if (g_kernel_overridden.load(std::memory_order_acquire)) {
    return g_kernel_override.load(std::memory_order_relaxed);
  }
  static const GemmKernel from_env = kernel_from_env();
  return from_env;
}

void set_gemm_kernel(GemmKernel k) {
  g_kernel_override.store(k, std::memory_order_relaxed);
  g_kernel_overridden.store(true, std::memory_order_release);
}

const char* to_string(GemmKernel k) {
  return k == GemmKernel::kTiled ? "tiled" : "reference";
}

void gemm_tiled(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                bool accumulate, GemmScratch* scratch) {
  tiled_driver(a, b, c, M, K, N, accumulate, scratch, Operands{K, 1, N, 1},
               [&] { gemm(a, b, c, M, K, N, accumulate); });
}

void gemm_tiled_nt(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate, GemmScratch* scratch) {
  // Logical B = bT where b is [N, K]: element (k, j) sits at b[j*K + k].
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  tiled_driver(a, b, c, M, K, N, accumulate, &s, Operands{K, 1, 1, K}, [&] {
    s.tpose.resize(static_cast<size_t>(K * N));
    for (int64_t j = 0; j < N; ++j) {
      const float* brow = b + j * K;
      for (int64_t k = 0; k < K; ++k) s.tpose[static_cast<size_t>(k * N + j)] = brow[k];
    }
    gemm(a, s.tpose.data(), c, M, K, N, accumulate);
  });
}

void gemm_tiled_tn(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate, GemmScratch* scratch) {
  // Logical A = aT where a is [K, M]: element (i, k) sits at a[k*M + i].
  tiled_driver(a, b, c, M, K, N, accumulate, scratch, Operands{1, M, N, 1},
               [&] { gemm_tn_ref(a, b, c, M, K, N, accumulate); });
}

void gemm_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
               bool accumulate, GemmScratch* scratch) {
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled(a, b, c, M, K, N, accumulate, scratch);
  } else {
    gemm(a, b, c, M, K, N, accumulate);
  }
}

void gemm_nt_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate, GemmScratch* scratch) {
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled_nt(a, b, c, M, K, N, accumulate, scratch);
    return;
  }
  // Reference lowering: explicit transpose + strong-zero gemm (the
  // historical conv2d backward dW path).
  GemmScratch local;
  GemmScratch& s = scratch != nullptr ? *scratch : local;
  s.tpose.resize(static_cast<size_t>(K * N));
  for (int64_t j = 0; j < N; ++j) {
    const float* brow = b + j * K;
    for (int64_t k = 0; k < K; ++k) s.tpose[static_cast<size_t>(k * N + j)] = brow[k];
  }
  gemm(a, s.tpose.data(), c, M, K, N, accumulate);
}

void gemm_tn_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate, GemmScratch* scratch) {
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled_tn(a, b, c, M, K, N, accumulate, scratch);
  } else {
    gemm_tn_ref(a, b, c, M, K, N, accumulate);
  }
}

}  // namespace capr
