#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace capr {
namespace {

constexpr uint32_t kMagic = 0x52504143;  // "CAPR" little-endian
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<uint64_t>(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<uint64_t>(is);
  if (n > (1u << 20)) throw std::runtime_error("checkpoint: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (!is) throw std::runtime_error("checkpoint: truncated string");
  return s;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<uint32_t>(os, static_cast<uint32_t>(t.rank()));
  for (int64_t d = 0; d < t.rank(); ++d) write_pod<int64_t>(os, t.dim(d));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel()) * static_cast<std::streamsize>(sizeof(float)));
}

Tensor read_tensor(std::istream& is) {
  const auto rank = read_pod<uint32_t>(is);
  if (rank > 8) throw std::runtime_error("checkpoint: implausible tensor rank");
  // Rank 0 encodes the default (empty) tensor, not a scalar.
  if (rank == 0) return Tensor();
  // Validate extents BEFORE allocating: a corrupt or hostile header must
  // fail with a diagnostic, not an overflowed numel or a giant bad_alloc.
  constexpr int64_t kMaxElements = int64_t{1} << 32;
  Shape shape(rank);
  int64_t numel = 1;
  for (auto& e : shape) {
    e = read_pod<int64_t>(is);
    if (e <= 0) throw std::runtime_error("checkpoint: non-positive tensor extent");
    if (e > kMaxElements / numel) {
      throw std::runtime_error("checkpoint: implausible tensor size");
    }
    numel *= e;
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel()) * static_cast<std::streamsize>(sizeof(float)));
  if (!is) throw std::runtime_error("checkpoint: truncated tensor payload");
  return t;
}

void save_tensor_map(const std::string& path, const std::map<std::string, Tensor>& tensors) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  write_pod<uint32_t>(os, kMagic);
  write_pod<uint32_t>(os, kVersion);
  write_pod<uint64_t>(os, tensors.size());
  for (const auto& [name, t] : tensors) {
    write_string(os, name);
    write_tensor(os, t);
  }
  if (!os) throw std::runtime_error("write failure on " + path);
}

std::map<std::string, Tensor> load_tensor_map(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open " + path + " for reading");
  if (read_pod<uint32_t>(is) != kMagic) throw std::runtime_error(path + ": not a CAPR checkpoint");
  if (read_pod<uint32_t>(is) != kVersion) throw std::runtime_error(path + ": unsupported version");
  const auto count = read_pod<uint64_t>(is);
  std::map<std::string, Tensor> out;
  for (uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(is);
    out.emplace(std::move(name), read_tensor(is));
  }
  return out;
}

}  // namespace capr
