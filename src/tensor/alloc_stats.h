// Float-buffer allocation accounting for the zero-allocation contract.
//
// The serving hot path (compiled ExecutionPlan + per-worker scratch)
// promises that steady-state inference performs no float-buffer
// allocation: every Tensor construction, every Tensor::reset that must
// grow capacity, and every ScratchArena buffer growth bumps a global
// counter, and the regression tests assert the counter stands still
// across repeated calls. The counter is a single relaxed atomic
// increment on allocation events only — the no-growth fast paths never
// touch it — so instrumenting release builds costs nothing measurable.
#pragma once

#include <cstdint>

namespace capr {

/// Monotonic count of float-buffer allocation events since process start.
uint64_t float_alloc_count();

/// Records one allocation event. Internal hook for Tensor/ScratchArena;
/// custom buffer owners that join the zero-allocation contract may call
/// it when they grow.
void note_float_alloc();

}  // namespace capr
