#include "tensor/scratch.h"

#include <atomic>
#include <stdexcept>
#include <string>

#include "tensor/alloc_stats.h"

namespace capr {

namespace {
std::atomic<uint64_t> g_float_allocs{0};
}  // namespace

uint64_t float_alloc_count() { return g_float_allocs.load(std::memory_order_relaxed); }

void note_float_alloc() { g_float_allocs.fetch_add(1, std::memory_order_relaxed); }

void ScratchArena::prepare(int workers) {
  if (workers < 1) workers = 1;
  while (workers_.size() < static_cast<size_t>(workers)) {
    workers_.push_back(std::make_unique<Worker>());
    note_float_alloc();  // fresh worker slot: its buffers start empty
  }
}

float* ScratchArena::floats(int tid, int slot, int64_t count) {
  if (tid < 0 || static_cast<size_t>(tid) >= workers_.size()) {
    throw std::logic_error("ScratchArena: tid " + std::to_string(tid) +
                           " outside the prepared worker count " +
                           std::to_string(workers_.size()));
  }
  Worker& w = *workers_[static_cast<size_t>(tid)];
  if (static_cast<size_t>(slot) >= w.slots.size()) {
    w.slots.resize(static_cast<size_t>(slot) + 1);
  }
  std::vector<float>& buf = w.slots[static_cast<size_t>(slot)];
  if (buf.size() < static_cast<size_t>(count)) {
    if (static_cast<size_t>(count) > buf.capacity()) note_float_alloc();
    buf.resize(static_cast<size_t>(count));
  }
  return buf.data();
}

GemmScratch& ScratchArena::gemm(int tid) {
  if (tid < 0 || static_cast<size_t>(tid) >= workers_.size()) {
    throw std::logic_error("ScratchArena: tid " + std::to_string(tid) +
                           " outside the prepared worker count " +
                           std::to_string(workers_.size()));
  }
  return workers_[static_cast<size_t>(tid)]->gemm;
}

}  // namespace capr
