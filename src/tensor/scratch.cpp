#include "tensor/scratch.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "tensor/alloc_stats.h"
#include "util/thread_annotations.h"

namespace capr {

namespace {
std::atomic<uint64_t> g_float_allocs{0};

/// Process-wide set of live arenas. Membership is guarded by mu (the
/// thread-safety lane checks every access); each arena's resident count
/// is its own atomic, read without the lock. Leaked on purpose: arenas
/// with static storage duration may be destroyed after any registry
/// with static storage duration, so the registry must never die.
struct ArenaRegistry {
  Mutex mu;
  std::unordered_set<const ScratchArena*> arenas CAPR_GUARDED_BY(mu);
};

ArenaRegistry& arena_registry() {
  static ArenaRegistry* reg = new ArenaRegistry;
  return *reg;
}

}  // namespace

uint64_t float_alloc_count() { return g_float_allocs.load(std::memory_order_relaxed); }

void note_float_alloc() { g_float_allocs.fetch_add(1, std::memory_order_relaxed); }

ArenaStats arena_stats() {
  ArenaRegistry& reg = arena_registry();
  ArenaStats out;
  MutexLock lock(reg.mu);
  out.arenas = static_cast<int64_t>(reg.arenas.size());
  for (const ScratchArena* a : reg.arenas) out.resident_floats += a->resident_floats();
  return out;
}

ScratchArena::ScratchArena() {
  ArenaRegistry& reg = arena_registry();
  MutexLock lock(reg.mu);
  reg.arenas.insert(this);
}

ScratchArena::~ScratchArena() {
  ArenaRegistry& reg = arena_registry();
  MutexLock lock(reg.mu);
  reg.arenas.erase(this);
}

ScratchArena::ScratchArena(ScratchArena&& other) noexcept
    : workers_(std::move(other.workers_)),
      resident_(other.resident_.exchange(0, std::memory_order_relaxed)) {
  other.workers_.clear();
  ArenaRegistry& reg = arena_registry();
  MutexLock lock(reg.mu);
  reg.arenas.insert(this);
}

ScratchArena& ScratchArena::operator=(ScratchArena&& other) noexcept {
  if (this != &other) {
    workers_ = std::move(other.workers_);
    other.workers_.clear();
    resident_.store(other.resident_.exchange(0, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  return *this;
}

void ScratchArena::prepare(int workers) {
  if (workers < 1) workers = 1;
  while (workers_.size() < static_cast<size_t>(workers)) {
    workers_.push_back(std::make_unique<Worker>());
    note_float_alloc();  // fresh worker slot: its buffers start empty
  }
}

float* ScratchArena::floats(int tid, int slot, int64_t count) {
  if (tid < 0 || static_cast<size_t>(tid) >= workers_.size()) {
    throw std::logic_error("ScratchArena: tid " + std::to_string(tid) +
                           " outside the prepared worker count " +
                           std::to_string(workers_.size()));
  }
  Worker& w = *workers_[static_cast<size_t>(tid)];
  if (static_cast<size_t>(slot) >= w.slots.size()) {
    w.slots.resize(static_cast<size_t>(slot) + 1);
  }
  std::vector<float>& buf = w.slots[static_cast<size_t>(slot)];
  if (buf.size() < static_cast<size_t>(count)) {
    if (static_cast<size_t>(count) > buf.capacity()) note_float_alloc();
    resident_.fetch_add(count - static_cast<int64_t>(buf.size()), std::memory_order_relaxed);
    buf.resize(static_cast<size_t>(count));
  }
  return buf.data();
}

GemmScratch& ScratchArena::gemm(int tid) {
  if (tid < 0 || static_cast<size_t>(tid) >= workers_.size()) {
    throw std::logic_error("ScratchArena: tid " + std::to_string(tid) +
                           " outside the prepared worker count " +
                           std::to_string(workers_.size()));
  }
  return workers_[static_cast<size_t>(tid)]->gemm;
}

}  // namespace capr
