// Single-precision matrix multiplication kernels.
//
// These are the hot loops of the whole library (conv layers lower to GEMM
// via im2col). The implementation is a cache-blocked triple loop in ikj
// order, which the compiler vectorises; good enough for the scaled-down
// experiment sizes this reproduction targets.
#pragma once

#include "tensor/tensor.h"

namespace capr {

/// C = A(MxK) * B(KxN). Shapes validated; C allocated by callee.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(KxM)^T * B(KxN).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Raw kernel: c[M,N] += a[M,K] * b[K,N] over contiguous row-major buffers.
/// `accumulate=false` zeroes c first.
void gemm(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
          bool accumulate = false);

}  // namespace capr
