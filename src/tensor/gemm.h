// Single-precision matrix multiplication: reference kernels and the
// dispatching matmul wrappers.
//
// These are the hot loops of the whole library (conv layers lower to GEMM
// via im2col). Two kernels exist:
//  - the REFERENCE kernel here: a cache-blocked triple loop in ikj order
//    with the strong-zero semantics below. It is the semantic authority
//    and the masked-model path.
//  - the TILED kernel (gemm_tiled.h): packed panels, register tiling and
//    parallel_for threading; the default fast path.
// matmul / matmul_nt / matmul_tn route through the active kernel
// (set_gemm_kernel / $CAPR_GEMM_KERNEL, default tiled).
//
// Semantics of zeros (intentional, pinned by tests/gemm_test.cpp):
// `gemm` and `gemm_tn_ref` skip rank-1 updates whose left-operand element
// is exactly 0.0f, so zeros in A are STRONG zeros — a 0 in A annihilates
// NaN/Inf in the corresponding B row instead of producing NaN via IEEE
// 0*Inf. This is deliberate: pruning and masking create exact-zero
// weights, and a masked weight must fully silence its input no matter
// what flows through it. Nonzero entries propagate NaN/Inf normally.
// The tiled kernel preserves this observable contract by falling back to
// the reference path whenever its B operand contains non-finite values,
// so the wrappers keep strong-zero behaviour under either kernel.
// Exception: `matmul_nt` under the REFERENCE kernel keeps its historical
// dot-product form (double accumulators, plain IEEE propagation).
#pragma once

#include "tensor/tensor.h"

namespace capr {

/// C = A(MxK) * B(KxN). Shapes validated; C allocated by callee.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(KxM)^T * B(KxN).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Raw reference kernel: c[M,N] += a[M,K] * b[K,N] over contiguous
/// row-major buffers. `accumulate=false` zeroes c first. Strong zeros.
void gemm(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
          bool accumulate = false);

/// Raw reference kernel: c[M,N] += a[K,M]^T * b[K,N] (rank-1 form,
/// strong zeros on A^T). `accumulate=false` zeroes c first.
void gemm_tn_ref(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                 bool accumulate = false);

/// Raw reference NT kernel: c[M,N] = a[M,K] * b[N,K]^T, every element a
/// double-accumulated row dot (plain IEEE propagation, no strong zeros
/// — matmul_nt's historical semantics). One shared out-of-line body so
/// matmul_nt and the compiled linear step produce bitwise-identical
/// results regardless of per-TU optimisation (FP contraction).
void gemm_nt_ref_rows(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N);

}  // namespace capr
