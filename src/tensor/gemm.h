// Single-precision matrix multiplication kernels.
//
// These are the hot loops of the whole library (conv layers lower to GEMM
// via im2col). The implementation is a cache-blocked triple loop in ikj
// order, which the compiler vectorises; good enough for the scaled-down
// experiment sizes this reproduction targets.
//
// Semantics of zeros (intentional, pinned by tests/gemm_test.cpp):
// `gemm` and `matmul_tn` skip rank-1 updates whose left-operand element
// is exactly 0.0f, so zeros in A are STRONG zeros — a 0 in A annihilates
// NaN/Inf in the corresponding B row instead of producing NaN via IEEE
// 0*Inf. This is deliberate: pruning and masking create exact-zero
// weights, and a masked weight must fully silence its input no matter
// what flows through it. Nonzero entries propagate NaN/Inf normally.
// `matmul_nt` takes the dot-product (not rank-1) form, has no skip, and
// therefore follows plain IEEE propagation.
#pragma once

#include "tensor/tensor.h"

namespace capr {

/// C = A(MxK) * B(KxN). Shapes validated; C allocated by callee.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// C = A(KxM)^T * B(KxN).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Raw kernel: c[M,N] += a[M,K] * b[K,N] over contiguous row-major buffers.
/// `accumulate=false` zeroes c first.
void gemm(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
          bool accumulate = false);

}  // namespace capr
