// Per-shape GEMM tuning: shape classes, tuning configs, and the
// committed tuning-table format consulted by the tiled-kernel dispatch.
//
// The tiled GEMM (gemm_tiled.h) historically ran one fixed blocking
// (MC=72, KC=256, MR=6x16) and one parallelization strategy everywhere.
// BENCH_kernels.json shows that leaves large wins on the table: thread
// scaling is ~3.4x at 256^3 yet ~1.0x at 64^3 and at the skinny im2col
// shapes pruned models produce. This header defines the pieces that fix
// that without giving up determinism:
//
//   * GemmTuneConfig — cache blocking (mc, kc), micro-kernel height
//     (mr; the panel width NR is fixed by the packed-B layout), and a
//     parallelization strategy mirroring tt-metal's explicit per-op
//     ConvOpParallelizationStrategy: no-parallel / split-M / split-N.
//   * a shape classifier bucketing (variant, M, K, N) into a small set
//     of stable classes (geometry x size tier) so tables stay tiny and
//     the hot-path lookup is O(1).
//   * GemmTuningTable — one optional config per shape class, with a
//     host fingerprint; serialised as deterministic JSON
//     (schema capr-gemm-tune-v1, committed at tuning/default.json) and
//     parsed with hard validation under stable E-TUNE-* error codes.
//   * process-global installation (set_gemm_tuning / GemmTuningScope /
//     $CAPR_GEMM_TUNING) and resolve_gemm_config(), the per-call
//     resolution the tiled kernels use.
//
// Determinism contract: the tiled kernel accumulates every C element in
// strictly k-ascending order, continuing the chain across k-blocks
// (gemm_tiled.cpp pre-loads C into the accumulators). That makes the
// result bitwise INVARIANT to mc, kc, mr, the strategy, and the worker
// count — so any table, on any host, changes only speed, never bits.
// The autotuner (src/tune) still proves the 1-vs-N bitwise check for a
// config before it becomes eligible for a table entry.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace capr {

// ---------------------------------------------------------------------------
// Configs
// ---------------------------------------------------------------------------

/// How the tiled kernel distributes one GEMM over workers. Mirrors
/// tt-metal's ConvOpParallelizationStrategy: an explicit enum resolved
/// per shape class, not a global heuristic.
enum class GemmParallel {
  kNoParallel,  // serial: small problems where threading overhead loses
  kSplitM,      // row blocks of C across workers (the historical default)
  kSplitN,      // column-panel ranges across workers (skinny-M shapes)
};

const char* to_string(GemmParallel s);
bool parse_gemm_parallel(const std::string& s, GemmParallel* out);

/// Transpose variant of the call site; part of the shape-class key
/// because packing cost differs per operand layout.
enum class GemmVariant { kNN, kNT, kTN };

const char* to_string(GemmVariant v);
bool parse_gemm_variant(const std::string& s, GemmVariant* out);

/// One resolved kernel configuration. The packed-B panel width (NR) is
/// fixed at kPanelWidth by the compiled-plan layouts; mr is the only
/// legal micro-kernel degree of freedom (see legal_gemm_mr()).
struct GemmTuneConfig {
  int64_t mc = 72;
  int64_t kc = 256;
  int64_t mr = 6;
  GemmParallel strategy = GemmParallel::kSplitM;

  bool operator==(const GemmTuneConfig& o) const {
    return mc == o.mc && kc == o.kc && mr == o.mr && strategy == o.strategy;
  }
  bool operator!=(const GemmTuneConfig& o) const { return !(*this == o); }
};

/// Micro-kernel heights with a compiled register-tile variant. Anything
/// else is E-TUNE-MICRO in a table.
const std::vector<int64_t>& legal_gemm_mr();

/// Bounds for cache blocking; outside is E-TUNE-RANGE in a table.
inline constexpr int64_t kGemmTuneMinMc = 1;
inline constexpr int64_t kGemmTuneMaxMc = 4096;
inline constexpr int64_t kGemmTuneMinKc = 8;
inline constexpr int64_t kGemmTuneMaxKc = 8192;

/// Validates mc/kc ranges and the mr legality. On failure returns false
/// and (optionally) a human reason.
bool gemm_config_valid(const GemmTuneConfig& cfg, std::string* why = nullptr);

/// The untuned behaviour: MC=72/KC=256/MR=6, split-M for problems past
/// the historical 2*M*K*N >= 2^23 threading threshold, serial below it.
GemmTuneConfig default_gemm_config(GemmVariant v, int64_t M, int64_t K, int64_t N);

// ---------------------------------------------------------------------------
// Shape classes
// ---------------------------------------------------------------------------

/// Output-geometry bucket. Precedence (short-wide, tall-skinny, deep,
/// cubic) is part of the stable contract: reordering would silently
/// re-key committed tables.
enum class GemmShapeGeom {
  kShortWide,   // N >= 4*M: few output rows, wide panels (late im2col)
  kTallSkinny,  // M >= 4*N: many output rows, few panels
  kDeep,        // K >= 2*max(M, N): reduction-dominated
  kCubic,       // everything else
};

/// Size tier by total FLOPs (2*M*K*N).
enum class GemmShapeTier { kTiny, kSmall, kMedium, kLarge };

const char* to_string(GemmShapeGeom g);
const char* to_string(GemmShapeTier t);

inline constexpr int kGemmVariantCount = 3;
inline constexpr int kGemmGeomCount = 4;
inline constexpr int kGemmTierCount = 4;
inline constexpr int kGemmShapeClassCount =
    kGemmVariantCount * kGemmGeomCount * kGemmTierCount;

/// A stable shape-class id: (variant, geometry, tier). index() is the
/// dense table slot; key() the human/JSON form, e.g. "nn/short-wide/small".
struct GemmShapeClass {
  GemmVariant variant = GemmVariant::kNN;
  GemmShapeGeom geom = GemmShapeGeom::kCubic;
  GemmShapeTier tier = GemmShapeTier::kTiny;

  int index() const;
  std::string key() const;

  bool operator==(const GemmShapeClass& o) const {
    return variant == o.variant && geom == o.geom && tier == o.tier;
  }
};

/// O(1), allocation-free classification; the hot-path half of lookup.
GemmShapeClass classify_gemm(GemmVariant v, int64_t M, int64_t K, int64_t N);

/// Parses a key produced by GemmShapeClass::key(). False on unknown parts.
bool parse_gemm_shape_class(const std::string& key, GemmShapeClass* out);

// ---------------------------------------------------------------------------
// Tuning table
// ---------------------------------------------------------------------------

inline constexpr const char* kGemmTuneSchema = "capr-gemm-tune-v1";

/// Identifies the machine a table was measured on. Tables from another
/// host load with E-TUNE-HOST; callers decide whether to fall back
/// (dispatch does) or merely warn (capr-tune --verify does).
std::string host_fingerprint();

/// One shape class's tuned entry plus the measurement provenance the
/// autotuner recorded (rep_* and gflops are informative, not load-bearing;
/// capr-tune --verify re-measures them to report drift).
struct GemmTuneEntry {
  bool present = false;
  GemmTuneConfig cfg;
  int64_t rep_m = 0, rep_k = 0, rep_n = 0;  // shape the search measured
  double gflops = 0.0;                      // tuned throughput at tune time
  double baseline_gflops = 0.0;             // default-config throughput then
};

/// A fixed-size, O(1)-lookup table: one optional entry per shape class.
struct GemmTuningTable {
  std::string host;  // fingerprint recorded at generation time
  std::array<GemmTuneEntry, kGemmShapeClassCount> entries{};

  void set(const GemmShapeClass& cls, const GemmTuneEntry& e);
  const GemmTuneEntry* find(const GemmShapeClass& cls) const;
  int present_count() const;
};

/// Stable machine-readable failure codes for table loading. kOk is the
/// success sentinel; everything else maps to an E-TUNE-* string.
enum class TuneCode {
  kOk,
  kIo,        // E-TUNE-IO: file missing or unreadable
  kParse,     // E-TUNE-PARSE: malformed JSON
  kSchema,    // E-TUNE-SCHEMA: missing/unknown schema version
  kClass,     // E-TUNE-CLASS: unknown or duplicate shape-class key
  kRange,     // E-TUNE-RANGE: mc/kc outside the legal bounds
  kMicro,     // E-TUNE-MICRO: mr without a compiled micro-kernel variant
  kStrategy,  // E-TUNE-STRATEGY: unknown parallelization strategy
  kHost,      // E-TUNE-HOST: table measured on a different machine
};

const char* to_string(TuneCode c);  // "E-TUNE-IO", ... ("OK" for kOk)

struct TuneStatus {
  TuneCode code = TuneCode::kOk;
  std::string message;

  bool ok() const { return code == TuneCode::kOk; }
  std::string format() const;  // "E-TUNE-RANGE: mc 9000 outside [1, 4096]"
};

/// Parses and hard-validates a capr-gemm-tune-v1 document. On success
/// fills `out` (including its recorded host string). Never throws.
TuneStatus parse_gemm_tuning(const std::string& json_text, GemmTuningTable* out);

/// Reads `path` and parses it. With check_host, a table whose recorded
/// host differs from host_fingerprint() yields E-TUNE-HOST — the table
/// is still fully parsed into `out` so callers can inspect or force it.
TuneStatus load_gemm_tuning(const std::string& path, GemmTuningTable* out,
                            bool check_host = true);

/// Deterministic serialisation: entries ascending by class index, fixed
/// key order, integral numbers without decimal points. Byte-stable for
/// a given table, so regenerated files diff cleanly.
std::string to_json(const GemmTuningTable& table);

// ---------------------------------------------------------------------------
// Installation + hot-path resolution
// ---------------------------------------------------------------------------

/// The installed table (possibly null). First call resolves
/// $CAPR_GEMM_TUNING: unset/empty/"off" installs nothing; otherwise the
/// file is loaded (host-checked) and a failure warns once on stderr and
/// installs nothing. Thread-safe.
std::shared_ptr<const GemmTuningTable> gemm_tuning();

/// Installs (or clears, with nullptr) the process-wide table.
void set_gemm_tuning(std::shared_ptr<const GemmTuningTable> table);

/// Pins a table for one scope; restores the previous one. Test helper,
/// and how the autotuner measures candidate configs through the real
/// dispatch path.
class GemmTuningScope {
 public:
  explicit GemmTuningScope(std::shared_ptr<const GemmTuningTable> table);
  ~GemmTuningScope();
  GemmTuningScope(const GemmTuningScope&) = delete;
  GemmTuningScope& operator=(const GemmTuningScope&) = delete;

 private:
  std::shared_ptr<const GemmTuningTable> saved_;
};

/// Builds a table holding `cfg` for the class of (v, M, K, N) — the
/// one-entry scope the search engine and tests pin candidates with.
std::shared_ptr<const GemmTuningTable> single_entry_table(GemmVariant v, int64_t M,
                                                          int64_t K, int64_t N,
                                                          const GemmTuneConfig& cfg);

/// Per-call resolution on the dispatch hot path: classify, look up the
/// installed table, fall back to default_gemm_config. Invalid table
/// entries can't exist (loading hard-validates), so the result is
/// always a legal config.
GemmTuneConfig resolve_gemm_config(GemmVariant v, int64_t M, int64_t K, int64_t N);

}  // namespace capr
