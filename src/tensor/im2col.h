// im2col / col2im lowering for convolutions.
//
// A convolution with weight [Cout, Cin, Kh, Kw] over input [Cin, H, W]
// becomes a GEMM of the [Cout, Cin*Kh*Kw] filter matrix with the
// [Cin*Kh*Kw, Hout*Wout] column matrix produced by im2col. col2im is the
// adjoint, used for the input gradient. This is also exactly the
// "reshaped weights" view of the paper's Fig. 2: each row of the column
// matrix enumerates one sliding-window position.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace capr {

/// Geometry of a 2-D convolution (square stride/padding per axis).
struct ConvGeom {
  int64_t in_channels = 0;
  int64_t in_h = 0;
  int64_t in_w = 0;
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t padding = 0;

  int64_t out_h() const { return (in_h + 2 * padding - kernel_h) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * padding - kernel_w) / stride + 1; }
  /// Rows of the column matrix: one per (channel, kernel offset).
  int64_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  /// Columns of the column matrix: one per output spatial position.
  int64_t col_cols() const { return out_h() * out_w(); }

  /// Throws std::invalid_argument on non-positive extents or an empty output.
  void validate() const;
};

/// Lowers one image [Cin, H, W] to the column matrix [Cin*Kh*Kw, Hout*Wout].
/// `im` must be contiguous CHW; `col` must have col_rows()*col_cols() floats.
void im2col(const float* im, const ConvGeom& g, float* col);

/// Lowers one image straight into the tiled GEMM's packed-B panel layout
/// (kPanelWidth-wide column panels, k-major, tail panel zero-padded):
/// writing pack_b(im2col(im)) in one pass, skipping the intermediate
/// column matrix entirely. `panels` must have
/// packed_b_floats(col_rows(), col_cols()) floats. Returns false if any
/// column value is non-finite — the exact predicate pack_b evaluates,
/// so compiled and per-call paths take the strong-zero reference
/// fallback under identical conditions.
bool im2col_packed(const float* im, const ConvGeom& g, float* panels);

/// Adjoint of im2col: accumulates the column matrix back into [Cin, H, W].
/// `im` must be zeroed by the caller if fresh accumulation is wanted.
void col2im(const float* col, const ConvGeom& g, float* im);

/// Tensor wrappers used by tests (single image).
Tensor im2col(const Tensor& image, const ConvGeom& g);
Tensor col2im(const Tensor& col, const ConvGeom& g);

}  // namespace capr
