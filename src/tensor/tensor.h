// Dense row-major float32 tensor used throughout the library.
//
// Design notes:
//  - Contiguous storage only. Views/strides are intentionally not supported;
//    layout-changing ops (im2col, flatten) copy. This keeps every kernel
//    trivially correct and is fast enough for the paper-scale experiments.
//  - Value semantics: copying a Tensor copies its buffer; moves are cheap.
//  - Shapes use int64_t extents. Rank is small (<= 4 in practice: NCHW).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace capr {

/// Shape of a tensor: a list of non-negative extents.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by a shape (product of extents).
int64_t numel_of(const Shape& shape);

/// Human-readable "[2, 3, 4]" form, for error messages and logs.
std::string to_string(const Shape& shape);

/// Dense row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor: rank 0, zero elements.
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor of the given shape taking ownership of `data`.
  /// Throws std::invalid_argument if sizes disagree.
  Tensor(Shape shape, std::vector<float> data);

  /// Convenience: 1-D tensor from an initializer list.
  static Tensor from(std::initializer_list<float> values);

  /// Tensor of the given shape with elements from an initializer list.
  static Tensor from(Shape shape, std::initializer_list<float> values);

  const Shape& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  /// Extent of dimension `d` (supports negative indices, Python style).
  int64_t dim(int64_t d) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Bounds-checked multi-dimensional access (rank must match).
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Flat offset of a multi-dimensional index; bounds-checked.
  int64_t offset_of(std::initializer_list<int64_t> idx) const;

  /// Returns a tensor with the same data and a new shape.
  /// One extent may be -1 (inferred). Throws if element counts disagree.
  Tensor reshape(Shape new_shape) const;

  /// Re-shapes this tensor in place WITHOUT preserving contents and
  /// without shrinking capacity: repeated resets at steady state reuse
  /// the existing buffer and perform no allocation. Elements are
  /// unspecified after a reset that grows the tensor (new slots are
  /// value-initialised by vector growth, surviving ones keep stale
  /// data) — callers overwrite everything. The compiled execution
  /// plan's slot tensors live on this.
  void reset(Shape shape);

  /// In-place fill.
  void fill(float value);

  /// True iff shapes are equal and all elements are within `atol`.
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// Prints shape and (for small tensors) elements; for debugging and tests.
std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace capr
