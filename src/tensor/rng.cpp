#include "tensor/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace capr {
namespace {

uint64_t splitmix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1) with full float32 mantissa coverage.
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t n) {
  if (n <= 0) throw std::invalid_argument("uniform_int requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = uniform();
  while (u1 <= 1e-12f) u1 = uniform();
  const float u2 = uniform();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = 2.0f * std::numbers::pi_v<float> * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = normal(mean, stddev);
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = uniform(lo, hi);
}

void Rng::shuffle(std::vector<int64_t>& v) {
  for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
    const int64_t j = uniform_int(i + 1);
    std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
  }
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace capr
