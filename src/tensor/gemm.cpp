#include "tensor/gemm.h"

#include <cstring>
#include <stdexcept>

#include "tensor/gemm_tiled.h"

namespace capr {
namespace {

void require_rank2(const Tensor& m, const char* who) {
  if (m.rank() != 2) {
    throw std::invalid_argument(std::string(who) + ": expected rank-2 tensor, got " +
                                to_string(m.shape()));
  }
}

}  // namespace

void gemm(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
          bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
  // Block over K to keep the B panel in cache; ikj inner order gives
  // unit-stride access on both B and C, which vectorises cleanly.
  constexpr int64_t KB = 128;
  for (int64_t k0 = 0; k0 < K; k0 += KB) {
    const int64_t k1 = k0 + KB < K ? k0 + KB : K;
    for (int64_t i = 0; i < M; ++i) {
      const float* arow = a + i * K;
      float* crow = c + i * N;
      for (int64_t k = k0; k < k1; ++k) {
        const float aik = arow[k];
        // Strong zero: a pruned/masked (exactly zero) A element must
        // contribute nothing, even against NaN/Inf in B (see gemm.h).
        if (aik == 0.0f) continue;
        const float* brow = b + k * N;
        for (int64_t j = 0; j < N; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void gemm_tn_ref(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                 bool accumulate) {
  if (!accumulate) std::memset(c, 0, static_cast<size_t>(M * N) * sizeof(float));
  // C[i,j] += A[k,i] * B[k,j]: rank-1 update per k keeps unit stride.
  for (int64_t k = 0; k < K; ++k) {
    const float* arow = a + k * M;
    const float* brow = b + k * N;
    for (int64_t i = 0; i < M; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c + i * N;
      for (int64_t j = 0; j < N; ++j) crow[j] += aki * brow[j];
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul lhs");
  require_rank2(b, "matmul rhs");
  const int64_t M = a.dim(0), K = a.dim(1);
  if (b.dim(0) != K) {
    throw std::invalid_argument("matmul: inner extents disagree, " + to_string(a.shape()) +
                                " x " + to_string(b.shape()));
  }
  const int64_t N = b.dim(1);
  Tensor c({M, N});
  gemm_auto(a.data(), b.data(), c.data(), M, K, N);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt lhs");
  require_rank2(b, "matmul_nt rhs");
  const int64_t M = a.dim(0), K = a.dim(1);
  if (b.dim(1) != K) {
    throw std::invalid_argument("matmul_nt: inner extents disagree, " + to_string(a.shape()) +
                                " x " + to_string(b.shape()) + "^T");
  }
  const int64_t N = b.dim(0);
  Tensor c({M, N});
  if (gemm_kernel() == GemmKernel::kTiled) {
    gemm_tiled_nt(a.data(), b.data(), c.data(), M, K, N);
    return c;
  }
  gemm_nt_ref_rows(a.data(), b.data(), c.data(), M, K, N);
  return c;
}

void gemm_nt_ref_rows(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N) {
  // Reference form: C[i,j] = sum_k A[i,k] * B[j,k], a dot of two rows;
  // contiguous on both, accumulated in double (plain IEEE propagation).
  for (int64_t i = 0; i < M; ++i) {
    const float* arow = a + i * K;
    float* crow = c + i * N;
    for (int64_t j = 0; j < N; ++j) {
      const float* brow = b + j * K;
      double acc = 0.0;
      for (int64_t k = 0; k < K; ++k) acc += static_cast<double>(arow[k]) * brow[k];
      crow[j] = static_cast<float>(acc);
    }
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_tn lhs");
  require_rank2(b, "matmul_tn rhs");
  const int64_t K = a.dim(0), M = a.dim(1);
  if (b.dim(0) != K) {
    throw std::invalid_argument("matmul_tn: inner extents disagree, " + to_string(a.shape()) +
                                "^T x " + to_string(b.shape()));
  }
  const int64_t N = b.dim(1);
  Tensor c({M, N});
  gemm_tn_auto(a.data(), b.data(), c.data(), M, K, N);
  return c;
}

}  // namespace capr
