#include "tensor/im2col.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "tensor/gemm_tiled.h"

namespace capr {

void ConvGeom::validate() const {
  if (in_channels <= 0 || in_h <= 0 || in_w <= 0 || kernel_h <= 0 || kernel_w <= 0 ||
      stride <= 0 || padding < 0) {
    throw std::invalid_argument("ConvGeom: non-positive extent");
  }
  if (out_h() <= 0 || out_w() <= 0) {
    throw std::invalid_argument("ConvGeom: kernel " + std::to_string(kernel_h) + "x" +
                                std::to_string(kernel_w) + " does not fit input " +
                                std::to_string(in_h) + "x" + std::to_string(in_w) +
                                " with padding " + std::to_string(padding));
  }
}

void im2col(const float* im, const ConvGeom& g, float* col) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t plane = g.in_h * g.in_w;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* chan = im + c * plane;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = col + row * (oh * ow);
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + kh - g.padding;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(out + y * ow, 0, static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          const float* irow = chan + iy * g.in_w;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kw - g.padding;
            out[y * ow + x] = (ix >= 0 && ix < g.in_w) ? irow[ix] : 0.0f;
          }
        }
      }
    }
  }
}

bool im2col_packed(const float* im, const ConvGeom& g, float* panels) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t cols = oh * ow;
  const int64_t K = g.col_rows();
  const int64_t plane = g.in_h * g.in_w;
  bool finite = true;
  // Zero the tail panel's padding columns once; the loops below only
  // touch real column positions.
  const int64_t tail = cols % kPanelWidth;
  if (tail != 0) {
    float* last = panels + (cols / kPanelWidth) * K * kPanelWidth;
    for (int64_t k = 0; k < K; ++k) {
      for (int64_t j = tail; j < kPanelWidth; ++j) last[k * kPanelWidth + j] = 0.0f;
    }
  }
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* chan = im + c * plane;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + kh - g.padding;
          const float* irow = (iy >= 0 && iy < g.in_h) ? chan + iy * g.in_w : nullptr;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t col = y * ow + x;
            float v = 0.0f;
            if (irow != nullptr) {
              const int64_t ix = x * g.stride + kw - g.padding;
              if (ix >= 0 && ix < g.in_w) v = irow[ix];
            }
            finite = finite && std::isfinite(v);
            panels[(col / kPanelWidth) * K * kPanelWidth + row * kPanelWidth +
                   col % kPanelWidth] = v;
          }
        }
      }
    }
  }
  return finite;
}

void col2im(const float* col, const ConvGeom& g, float* im) {
  const int64_t oh = g.out_h(), ow = g.out_w();
  const int64_t plane = g.in_h * g.in_w;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    float* chan = im + c * plane;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = col + row * (oh * ow);
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t iy = y * g.stride + kh - g.padding;
          if (iy < 0 || iy >= g.in_h) continue;
          float* irow = chan + iy * g.in_w;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t ix = x * g.stride + kw - g.padding;
            if (ix >= 0 && ix < g.in_w) irow[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

Tensor im2col(const Tensor& image, const ConvGeom& g) {
  g.validate();
  const Shape want{g.in_channels, g.in_h, g.in_w};
  if (image.shape() != want) {
    throw std::invalid_argument("im2col: image shape " + to_string(image.shape()) +
                                " does not match geometry " + to_string(want));
  }
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(image.data(), g, col.data());
  return col;
}

Tensor col2im(const Tensor& col, const ConvGeom& g) {
  g.validate();
  const Shape want{g.col_rows(), g.col_cols()};
  if (col.shape() != want) {
    throw std::invalid_argument("col2im: column shape " + to_string(col.shape()) +
                                " does not match geometry " + to_string(want));
  }
  Tensor im({g.in_channels, g.in_h, g.in_w});
  col2im(col.data(), g, im.data());
  return im;
}

}  // namespace capr
