// High-performance tiled GEMM path and the runtime kernel switch.
//
// The reference kernel in gemm.h is a cache-blocked triple loop; it is
// the semantic authority (strong zeros, see gemm.h) but leaves most of
// the machine idle. This file adds the fast path used by default:
//
//   * B is packed into NR-wide column panels (contiguous, unit-stride
//     streams for the micro-kernel) and A into MR-tall row strips;
//   * an MR x NR (6x16) register-tiled micro-kernel accumulates C in
//     registers, with scalar remainder edges for partial tiles;
//   * row blocks of C are distributed over workers with parallel_for.
//
// Determinism: every C element is accumulated in a fixed k-order that
// does not depend on the worker count or chunk boundaries, so results
// are BITWISE identical for any set_num_threads() value (pinned by
// tests/determinism_test.cpp).
//
// Strong-zero contract: the micro-kernel is plain IEEE arithmetic (no
// zero-skip), which would let NaN/Inf in B leak past pruned/masked
// exact-zero weights in A. The packing pass therefore scans B; if any
// element is non-finite the whole call falls back to the strong-zero
// reference kernel. Finite inputs (all benchmarks, all training) take
// the fast path; masked models with poisoned activations keep the
// reference semantics pinned by tests/gemm_test.cpp.
#pragma once

#include <cstdint>

#include "tensor/scratch.h"

namespace capr {

/// Which kernel matmul/matmul_nt/matmul_tn/conv2d route through.
enum class GemmKernel {
  kReference,  // gemm.cpp triple loop: strong zeros, always available
  kTiled,      // packed + register-tiled + multithreaded (this file)
};

/// Active kernel. Initialised once from $CAPR_GEMM_KERNEL
/// ("tiled" | "reference"/"ref"; default tiled), then overridable.
GemmKernel gemm_kernel();
void set_gemm_kernel(GemmKernel k);
const char* to_string(GemmKernel k);

/// Pins the kernel for one scope; restores the previous one. Test helper.
struct GemmKernelScope {
  GemmKernel saved;
  explicit GemmKernelScope(GemmKernel k) : saved(gemm_kernel()) { set_gemm_kernel(k); }
  ~GemmKernelScope() { set_gemm_kernel(saved); }
  GemmKernelScope(const GemmKernelScope&) = delete;
  GemmKernelScope& operator=(const GemmKernelScope&) = delete;
};

/// Tiled kernels over contiguous row-major buffers. `scratch` (optional)
/// makes the packing buffers reusable across calls; pass one per thread.
/// All three preserve the strong-zero contract by routing calls whose B
/// operand contains non-finite values through the reference kernel.
///
/// c[M,N] (+)= a[M,K] * b[K,N]
void gemm_tiled(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                bool accumulate = false, GemmScratch* scratch = nullptr);
/// c[M,N] (+)= a[M,K] * b[N,K]^T
void gemm_tiled_nt(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate = false, GemmScratch* scratch = nullptr);
/// c[M,N] (+)= a[K,M]^T * b[K,N]
void gemm_tiled_tn(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate = false, GemmScratch* scratch = nullptr);

/// Dispatchers honouring gemm_kernel(). The reference paths keep the
/// historical semantics: gemm for NN, transpose-then-gemm for NT (the
/// pre-tiling conv2d backward lowering), gemm_tn_ref for TN.
void gemm_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
               bool accumulate = false, GemmScratch* scratch = nullptr);
void gemm_nt_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate = false, GemmScratch* scratch = nullptr);
void gemm_tn_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate = false, GemmScratch* scratch = nullptr);

}  // namespace capr
