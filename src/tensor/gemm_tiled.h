// High-performance tiled GEMM path and the runtime kernel switch.
//
// The reference kernel in gemm.h is a cache-blocked triple loop; it is
// the semantic authority (strong zeros, see gemm.h) but leaves most of
// the machine idle. This file adds the fast path used by default:
//
//   * B is packed into NR-wide column panels (contiguous, unit-stride
//     streams for the micro-kernel) and A into MR-tall row strips;
//   * an MR x NR (6x16) register-tiled micro-kernel accumulates C in
//     registers, with scalar remainder edges for partial tiles;
//   * row blocks of C are distributed over workers with parallel_for.
//
// Determinism: every C element is accumulated in a fixed k-order that
// does not depend on the worker count or chunk boundaries, so results
// are BITWISE identical for any set_num_threads() value (pinned by
// tests/determinism_test.cpp).
//
// Strong-zero contract: the micro-kernel is plain IEEE arithmetic (no
// zero-skip), which would let NaN/Inf in B leak past pruned/masked
// exact-zero weights in A. The packing pass therefore scans B; if any
// element is non-finite the whole call falls back to the strong-zero
// reference kernel. Finite inputs (all benchmarks, all training) take
// the fast path; masked models with poisoned activations keep the
// reference semantics pinned by tests/gemm_test.cpp.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "tensor/gemm_tune.h"
#include "tensor/scratch.h"

namespace capr {

/// Which kernel matmul/matmul_nt/matmul_tn/conv2d route through.
enum class GemmKernel {
  kReference,  // gemm.cpp triple loop: strong zeros, always available
  kTiled,      // packed + register-tiled + multithreaded (this file)
};

/// Active kernel. Initialised once from $CAPR_GEMM_KERNEL
/// ("tiled" | "reference"/"ref"; default tiled), then overridable.
GemmKernel gemm_kernel();
void set_gemm_kernel(GemmKernel k);
const char* to_string(GemmKernel k);

/// Pins the kernel for one scope; restores the previous one. Test helper.
struct GemmKernelScope {
  GemmKernel saved;
  explicit GemmKernelScope(GemmKernel k) : saved(gemm_kernel()) { set_gemm_kernel(k); }
  ~GemmKernelScope() { set_gemm_kernel(saved); }
  GemmKernelScope(const GemmKernelScope&) = delete;
  GemmKernelScope& operator=(const GemmKernelScope&) = delete;
};

/// Tiled kernels over contiguous row-major buffers. `scratch` (optional)
/// makes the packing buffers reusable across calls; pass one per thread.
/// All three preserve the strong-zero contract by routing calls whose B
/// operand contains non-finite values through the reference kernel.
///
/// c[M,N] (+)= a[M,K] * b[K,N]
void gemm_tiled(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                bool accumulate = false, GemmScratch* scratch = nullptr);
/// c[M,N] (+)= a[M,K] * b[N,K]^T
void gemm_tiled_nt(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate = false, GemmScratch* scratch = nullptr);
/// c[M,N] (+)= a[K,M]^T * b[K,N]
void gemm_tiled_tn(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                   bool accumulate = false, GemmScratch* scratch = nullptr);

/// Dispatchers honouring gemm_kernel(). The reference paths keep the
/// historical semantics: gemm for NN, transpose-then-gemm for NT (the
/// pre-tiling conv2d backward lowering), gemm_tn_ref for TN.
void gemm_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
               bool accumulate = false, GemmScratch* scratch = nullptr);
void gemm_nt_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate = false, GemmScratch* scratch = nullptr);
void gemm_tn_auto(const float* a, const float* b, float* c, int64_t M, int64_t K, int64_t N,
                  bool accumulate = false, GemmScratch* scratch = nullptr);

// ---------------------------------------------------------------------------
// Ahead-of-time packed operands for compiled execution plans (src/compile).
//
// The per-call kernels above re-pack both operands on every invocation.
// A compiled plan knows its operand shapes and weight values at build
// time, so it packs once and replays: conv weights become a PackedA
// (every (row-block, k-block) strip precomputed), linear weights become
// a PackedB (NR-wide panels of the transposed operand), and the im2col
// matrix is written directly in panel layout (im2col_packed) so the B
// pack pass disappears from the hot loop entirely.
//
// Bitwise contract: the packed kernels feed the exact same micro-kernel
// with the exact same strip/panel contents and k-ascending block order
// as gemm_tiled/gemm_tiled_nt, so their outputs are bitwise identical
// to the per-call kernels (pinned by tests/compile_test.cpp). The
// optional epilogue applies per C tile immediately after the final
// k-block: plain float adds and compares in the same element order the
// interpreted bias/activation passes use, so fusing it is exact too.
// ---------------------------------------------------------------------------

/// Panel width of the packed-B layout (equals the micro-kernel NR).
/// Exposed so im2col can emit panels directly and plans can size them.
inline constexpr int64_t kPanelWidth = 16;

/// Returns the number of floats a packed-B buffer needs for a [K, N]
/// logical operand: ceil(N / kPanelWidth) panels of K*kPanelWidth each.
inline int64_t packed_b_floats(int64_t K, int64_t N) {
  return (N + kPanelWidth - 1) / kPanelWidth * K * kPanelWidth;
}

/// A fully pre-packed left operand: every (row-block, k-block) strip of
/// the logical row-major [rows, depth] matrix, in the exact layout
/// run_mblock packs per call. Immutable after pack_a_full. `cfg` records
/// the tuning config the strips were laid out for (mc/kc/mr govern the
/// layout; strategy is replayed at run time) so compiled plans carry
/// their packing provenance and the packed kernels never have to guess.
struct PackedA {
  int64_t rows = 0;   // logical M
  int64_t depth = 0;  // logical K
  int64_t kblocks = 0;
  GemmTuneConfig cfg;                // config the strips were packed for
  std::vector<float> strips;         // all blocks, back to back
  std::vector<size_t> block_offset;  // index (mblock * kblocks + kblock)
};

/// Packs a row-major a[M, K] into every cache-block strip at once, laid
/// out for `cfg` (invalid configs fall back to the defaults). Callers
/// that know the eventual N should pass resolve_gemm_config(...) so the
/// pack matches what dispatch would pick.
PackedA pack_a_full(const float* a, int64_t M, int64_t K,
                    const GemmTuneConfig& cfg = GemmTuneConfig{});

/// Scratch demand (in floats) of one A cache block packed for `cfg` —
/// the per-worker apack requirement of the serial and split-M drivers.
int64_t gemm_apack_floats(int64_t M, int64_t K, const GemmTuneConfig& cfg);

/// Scratch demand of the whole-A pack the split-N strategy builds before
/// fanning panels out across workers.
int64_t gemm_apack_all_floats(int64_t M, int64_t K, const GemmTuneConfig& cfg);

/// Pre-sizes `s` for the config resolve_gemm_config picks on (v, M, K, N):
/// packed-B panels plus the A-pack demand of the resolved strategy
/// (whole-A for split-N, per-worker buffers for split-M). A scratch warmed
/// this way performs no allocation when the call actually runs, whatever
/// tuning table is installed — ExecutionPlan::warm relies on it.
void reserve_gemm_scratch(GemmScratch& s, GemmVariant v, int64_t M, int64_t K, int64_t N);

/// A pre-packed right operand in NT form (logical B = w^T for a
/// row-major w[N, K]): NR-wide column panels, k-major. `finite` records
/// the strong-zero scan; callers must take the reference path when it
/// is false, mirroring the per-call kernels' fallback.
struct PackedB {
  int64_t depth = 0;  // logical K
  int64_t cols = 0;   // logical N
  bool finite = true;
  std::vector<float> panels;
};

/// Packs a row-major w[N, K] as the transposed right operand.
PackedB pack_b_nt(const float* w, int64_t N, int64_t K);

/// Optional fused write-back applied per C tile after the final k-block.
/// Exactly replicates the interpreted post-passes (bias add then
/// activation, plain float ops in row-major element order), so fused
/// and unfused results are bitwise identical.
struct GemmEpilogue {
  const float* bias_row = nullptr;  // bias_row[i] added across row i (conv bias)
  const float* bias_col = nullptr;  // bias_col[j] added down column j (linear bias)
  int act = 0;                      // 0 = none, 1 = ReLU, 2 = LeakyReLU
  float alpha = 0.0f;               // LeakyReLU negative slope
};

/// c[M, N] = A * B (+ epilogue). A is pre-packed; `bpanels` is a packed
/// B buffer (pack_b layout for A.depth x N, e.g. from im2col_packed).
/// The caller is responsible for the strong-zero fallback: only call
/// this when the panel values are known finite.
void gemm_tiled_packed(const PackedA& a, const float* bpanels, float* c, int64_t N,
                       const GemmEpilogue& ep = {});

/// c[M, N] = a[M, K] * B^T (+ epilogue) with B pre-packed by pack_b_nt.
/// A is packed per call into `scratch` (pass one per thread). Only call
/// when b.finite; otherwise take the reference NT path.
void gemm_tiled_packed_nt(const float* a, const PackedB& b, float* c, int64_t M,
                          const GemmEpilogue& ep = {}, GemmScratch* scratch = nullptr);

}  // namespace capr
