// Elementwise operations and reductions on tensors.
//
// Binary ops require exactly matching shapes (no broadcasting) except for
// the *_rowwise helpers, which broadcast a vector across the rows of a
// matrix — the only broadcast pattern the NN layers need.
#pragma once

#include "tensor/tensor.h"

namespace capr {

// ---- elementwise binary (shapes must match) -------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// a += b
void add_inplace(Tensor& a, const Tensor& b);
/// a += alpha * b  (axpy)
void axpy_inplace(Tensor& a, float alpha, const Tensor& b);
/// a *= s
void scale_inplace(Tensor& a, float s);

// ---- elementwise unary -----------------------------------------------------

Tensor relu(const Tensor& a);
/// Gradient mask of relu: out[i] = grad[i] if pre[i] > 0 else 0.
Tensor relu_backward(const Tensor& grad, const Tensor& pre);
Tensor abs(const Tensor& a);
/// Elementwise sign in {-1, 0, +1}.
Tensor sign(const Tensor& a);

// ---- reductions ------------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max_value(const Tensor& a);
float min_value(const Tensor& a);
/// Index of the maximum element (first occurrence). Requires numel > 0.
int64_t argmax(const Tensor& a);
/// Sum of absolute values (L1 norm).
float l1_norm(const Tensor& a);
/// Euclidean norm.
float l2_norm(const Tensor& a);
/// Number of elements with |x| <= tol.
int64_t count_near_zero(const Tensor& a, float tol);

// ---- matrix helpers (rank-2 tensors) ---------------------------------------

/// out[r, c] = m[r, c] + v[c]; v has extent m.dim(1).
Tensor add_rowwise(const Tensor& m, const Tensor& v);

/// Sum of each column: result extent is m.dim(1).
Tensor col_sum(const Tensor& m);

/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& m);

}  // namespace capr
