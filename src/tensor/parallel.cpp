#include "tensor/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace capr {
namespace {

std::atomic<int> g_num_threads{0};  // 0 = uninitialised -> hardware concurrency

thread_local bool t_in_worker = false;

/// Marks the current thread as a parallel_for worker for one scope.
struct WorkerScope {
  bool saved;
  WorkerScope() : saved(t_in_worker) { t_in_worker = true; }
  ~WorkerScope() { t_in_worker = saved; }
  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;
};

int resolve_default() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

void set_num_threads(int n) { g_num_threads.store(n <= 0 ? 0 : n); }

int num_threads() {
  const int n = g_num_threads.load();
  return n == 0 ? resolve_default() : n;
}

bool in_parallel_region() { return t_in_worker; }

SerialRegionGuard::SerialRegionGuard() : saved_(t_in_worker) { t_in_worker = true; }

SerialRegionGuard::~SerialRegionGuard() { t_in_worker = saved_; }

void parallel_for(int64_t begin, int64_t end, const std::function<void(int, int64_t)>& fn) {
  const int64_t count = end - begin;
  if (count <= 0) return;
  const int workers = static_cast<int>(
      std::min<int64_t>(count, static_cast<int64_t>(num_threads())));
  if (workers <= 1 || t_in_worker) {
    // Single worker, or already inside a worker: nested regions run
    // inline rather than spawning threads from threads.
    for (int64_t i = begin; i < end; ++i) fn(0, i);
    return;
  }
  // Contiguous chunks. A worker exception must never escape on a
  // std::thread (that calls std::terminate): each chunk captures its
  // exception, the first one wins, and it is rethrown on the caller's
  // thread after the join. Once a sweep has failed, the other workers
  // abort cooperatively between indices instead of finishing their
  // chunks against state the caller will unwind. The flag stays an
  // atomic (the per-index poll must stay lock-free); the exception_ptr
  // itself is mutex-guarded so every access is a checked contract.
  struct ErrorSlot {
    Mutex mu;
    std::exception_ptr eptr CAPR_GUARDED_BY(mu);
    std::atomic<bool> raised{false};  // lock-free "should I abort?" poll
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  ErrorSlot error;
  const auto run_chunk = [&](int tid) {
    const WorkerScope scope;
    const int64_t chunk = (count + workers - 1) / workers;
    const int64_t lo = begin + tid * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    try {
      for (int64_t i = lo; i < hi; ++i) {
        if (error.raised.load(std::memory_order_relaxed)) return;
        fn(tid, i);
      }
    } catch (...) {
      MutexLock lock(error.mu);
      if (!error.eptr) {
        error.eptr = std::current_exception();
        error.raised.store(true, std::memory_order_relaxed);
      }
    }
  };
  for (int tid = 1; tid < workers; ++tid) threads.emplace_back(run_chunk, tid);
  run_chunk(0);
  for (std::thread& t : threads) t.join();
  std::exception_ptr pending;
  {
    MutexLock lock(error.mu);
    pending = error.eptr;
  }
  if (pending) std::rethrow_exception(pending);
}

}  // namespace capr
