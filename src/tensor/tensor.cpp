#include "tensor/tensor.h"

#include <cmath>

#include "tensor/alloc_stats.h"
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace capr {

int64_t numel_of(const Shape& shape) {
  int64_t n = 1;
  for (int64_t e : shape) {
    if (e < 0) throw std::invalid_argument("negative extent in shape " + to_string(shape));
    n *= e;
  }
  return n;
}

std::string to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel_of(shape_)), 0.0f) {
  if (!data_.empty()) note_float_alloc();
}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel_of(shape_)), value) {
  if (!data_.empty()) note_float_alloc();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (numel_of(shape_) != static_cast<int64_t>(data_.size())) {
    throw std::invalid_argument("data size " + std::to_string(data_.size()) +
                                " does not match shape " + to_string(shape_));
  }
}

void Tensor::reset(Shape shape) {
  const int64_t n = numel_of(shape);
  if (static_cast<size_t>(n) > data_.capacity()) note_float_alloc();
  data_.resize(static_cast<size_t>(n));
  shape_ = std::move(shape);
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())}, std::vector<float>(values));
}

Tensor Tensor::from(Shape shape, std::initializer_list<float> values) {
  return Tensor(std::move(shape), std::vector<float>(values));
}

int64_t Tensor::dim(int64_t d) const {
  const int64_t r = rank();
  if (d < 0) d += r;
  if (d < 0 || d >= r) {
    throw std::out_of_range("dim " + std::to_string(d) + " out of range for rank " +
                            std::to_string(r));
  }
  return shape_[static_cast<size_t>(d)];
}

int64_t Tensor::offset_of(std::initializer_list<int64_t> idx) const {
  if (static_cast<int64_t>(idx.size()) != rank()) {
    throw std::invalid_argument("index rank " + std::to_string(idx.size()) +
                                " does not match tensor rank " + std::to_string(rank()));
  }
  int64_t off = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    if (i < 0 || i >= shape_[d]) {
      throw std::out_of_range("index " + std::to_string(i) + " out of range for dim " +
                              std::to_string(d) + " with extent " + std::to_string(shape_[d]));
    }
    off = off * shape_[d] + i;
    ++d;
  }
  return off;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(offset_of(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(offset_of(idx))];
}

Tensor Tensor::reshape(Shape new_shape) const {
  int64_t infer = -1;
  int64_t known = 1;
  for (size_t d = 0; d < new_shape.size(); ++d) {
    if (new_shape[d] == -1) {
      if (infer != -1) throw std::invalid_argument("at most one -1 extent allowed in reshape");
      infer = static_cast<int64_t>(d);
    } else {
      known *= new_shape[d];
    }
  }
  if (infer != -1) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("cannot infer extent: " + std::to_string(numel()) +
                                  " elements into shape " + to_string(new_shape));
    }
    new_shape[static_cast<size_t>(infer)] = numel() / known;
  }
  if (numel_of(new_shape) != numel()) {
    throw std::invalid_argument("reshape from " + to_string(shape_) + " to " +
                                to_string(new_shape) + " changes element count");
  }
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << to_string(t.shape());
  if (t.numel() <= 32) {
    os << " {";
    for (int64_t i = 0; i < t.numel(); ++i) {
      if (i) os << ", ";
      os << t[i];
    }
    os << '}';
  }
  return os;
}

}  // namespace capr
