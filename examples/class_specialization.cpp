// Class-subset specialization: shrink a 10-class network to the three
// classes an edge deployment actually needs.
//
//   $ ./build/examples/class_specialization
//
// This is the application the class-aware scores enable beyond the
// paper's compression experiments: the per-class score s(f, n) says
// which filters exist only to distinguish classes we are about to drop,
// so specialization is "re-total the scores over the kept classes and
// prune what falls below the subset threshold".
#include <iostream>

#include "core/modified_loss.h"
#include "core/specialize.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/trainer.h"

int main() {
  using namespace capr;

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  dcfg.image_size = 12;
  dcfg.noise_stddev = 0.3f;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);

  models::BuildConfig mcfg;
  mcfg.num_classes = 10;
  mcfg.input_size = 12;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_vgg16(mcfg);

  nn::TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 32;
  tcfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 5e-4f};
  core::ModifiedLoss reg;
  nn::train(model, dataset.train, tcfg, &reg);
  std::cout << "10-class accuracy: " << nn::evaluate(model, dataset.test) * 100 << "%, "
            << model.parameter_count() << " params\n";

  // Keep classes {1, 4, 7} only.
  core::SpecializeConfig cfg;
  cfg.importance.images_per_class = 6;
  cfg.importance.tau_mode = core::TauMode::kQuantile;
  cfg.max_fraction = 0.5f;
  cfg.finetune.epochs = 4;
  cfg.finetune.batch_size = 24;
  cfg.finetune.sgd.lr = 0.02f;
  const core::SpecializeResult res =
      core::specialize_to_classes(model, dataset.train, dataset.test, {1, 4, 7}, cfg);

  std::cout << "\nspecialized to classes {1, 4, 7}:\n";
  std::cout << "  3-class accuracy: " << res.subset_accuracy_before * 100 << "% -> "
            << res.subset_accuracy_after * 100 << "%\n";
  std::cout << "  filters removed : " << res.filters_removed << "\n";
  std::cout << "  params          : " << res.report.params_before << " -> "
            << res.report.params_after << " (" << res.report.pruning_ratio() * 100
            << "% pruned)\n";
  std::cout << "  FLOPs reduction : " << res.report.flops_reduction() * 100 << "%\n";
  return 0;
}
