// Quickstart: train a small CNN on synthetic data, prune it with the
// class-aware framework, and report the compression achieved.
//
//   $ ./build/examples/quickstart
//
// This walks the whole pipeline of the paper in miniature:
//   1. build a model and a labelled dataset,
//   2. train with the modified cost L = L_CE + l1*L1 + l2*L_orth,
//   3. run the iterative class-aware prune/fine-tune loop,
//   4. compare parameters / FLOPs / accuracy before and after.
#include <iostream>

#include "analysis/checked.h"
#include "core/pruner.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/summary.h"
#include "nn/trainer.h"

int main() {
  using namespace capr;

  // Checked mode: the static analyzer (src/analysis) certifies the model
  // graph and every prune plan BEFORE a mutation or a training epoch is
  // spent — a bad plan throws analysis::AnalysisError in microseconds
  // instead of corrupting the run.
  analysis::enable_checked_mode();

  // 1. A 4-class synthetic dataset and a two-conv CNN.
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.train_per_class = 32;
  dcfg.test_per_class = 16;
  dcfg.image_size = 12;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);

  models::BuildConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 12;
  mcfg.width_mult = 1.0f;
  nn::Model model = models::make_tiny_cnn(mcfg);
  std::cout << nn::summary(model) << "\n";

  // 2. Train with the paper's modified cost function (Eq. 1).
  nn::TrainConfig tcfg;
  tcfg.epochs = 10;
  tcfg.batch_size = 32;
  tcfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 5e-4f};
  core::ModifiedLoss reg;  // default lambda1 = 1e-4, lambda2 = 1e-2
  nn::train(model, dataset.train, tcfg, &reg);
  std::cout << "trained: test accuracy " << nn::evaluate(model, dataset.test) * 100 << "%\n";

  // 3. Class-aware pruning (Fig. 5 loop).
  core::ClassAwarePrunerConfig pcfg;
  pcfg.importance.images_per_class = 8;        // M in Eq. 6
  pcfg.importance.tau_mode = core::TauMode::kQuantile;  // float32-friendly Eq. 5
  pcfg.strategy.mode = core::StrategyMode::kBoth;       // threshold + percentage
  pcfg.strategy.max_fraction_per_iter = 0.2f;
  pcfg.finetune.epochs = 3;
  pcfg.finetune.batch_size = 32;
  pcfg.finetune.sgd.lr = 0.02f;
  pcfg.max_accuracy_drop = 0.05f;
  pcfg.max_iterations = 6;
  core::ClassAwarePruner pruner(pcfg);
  const core::PruneRunResult result = pruner.run(model, dataset.train, dataset.test);

  // 4. Report.
  std::cout << "\npruning finished (" << result.stop_reason << ") after "
            << result.iterations.size() << " iterations\n";
  std::cout << "accuracy : " << result.original_accuracy * 100 << "% -> "
            << result.final_accuracy * 100 << "%\n";
  std::cout << "params   : " << result.report.params_before << " -> "
            << result.report.params_after << "  (pruning ratio "
            << result.report.pruning_ratio() * 100 << "%)\n";
  std::cout << "FLOPs    : " << result.report.flops_before << " -> "
            << result.report.flops_after << "  (reduction "
            << result.report.flops_reduction() * 100 << "%)\n";
  return 0;
}
