// ResNet pruning with the residual-block constraint, plus checkpointing.
//
//   $ ./build/examples/resnet_pruning
//
// ResNets couple the output channels of every block to the shortcut, so
// (as in the paper) only the FIRST conv of each basic block is pruned;
// the builder encodes this in the PrunableUnit list and the surgeon keeps
// every residual add shape-legal. The pruned model is then saved to disk
// and its checkpoint reloaded for deployment-style inference.
#include <cstdio>
#include <iostream>

#include "core/pruner.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/trainer.h"
#include "tensor/serialize.h"

int main() {
  using namespace capr;

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  dcfg.image_size = 12;
  dcfg.noise_stddev = 0.3f;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);

  models::BuildConfig mcfg;
  mcfg.num_classes = 10;
  mcfg.input_size = 12;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_resnet20(mcfg);
  std::cout << model.arch << ": " << model.units.size()
            << " prunable convs (first conv of each basic block)\n";

  nn::TrainConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 32;
  tcfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 5e-4f};
  core::ModifiedLoss reg;
  nn::train(model, dataset.train, tcfg, &reg);

  core::ClassAwarePrunerConfig pcfg;
  pcfg.importance.images_per_class = 6;
  pcfg.importance.tau_mode = core::TauMode::kQuantile;
  pcfg.strategy.max_fraction_per_iter = 0.2f;
  pcfg.finetune.epochs = 2;
  pcfg.finetune.batch_size = 32;
  pcfg.finetune.sgd.lr = 0.02f;
  pcfg.max_accuracy_drop = 0.08f;
  pcfg.max_iterations = 5;
  core::ClassAwarePruner pruner(pcfg);
  const core::PruneRunResult result = pruner.run(model, dataset.train, dataset.test);

  std::cout << "\niteration trajectory:\n";
  for (const core::IterationRecord& it : result.iterations) {
    std::cout << "  iter " << it.iteration << ": removed " << it.filters_removed
              << " filters, " << it.filters_remaining << " remain, accuracy "
              << it.accuracy_after_finetune * 100 << "%, params " << it.params << "\n";
  }
  std::cout << "final: " << result.original_accuracy * 100 << "% -> "
            << result.final_accuracy * 100 << "% at pruning ratio "
            << result.report.pruning_ratio() * 100 << "%\n";

  // Checkpoint the pruned model and reload it into a matching skeleton.
  const std::string path = "resnet20_pruned.ckpt";
  save_tensor_map(path, model.state_dict());
  std::cout << "\nsaved pruned checkpoint to " << path << "\n";

  // A reload target must have the pruned shapes; replay the per-unit
  // channel counts onto a fresh model, then load.
  nn::Model fresh = models::make_resnet20(mcfg);
  for (size_t u = 0; u < fresh.units.size(); ++u) {
    const int64_t want = model.units[u].conv->out_channels();
    const int64_t have = fresh.units[u].conv->out_channels();
    if (want < have) {
      std::vector<int64_t> drop;
      for (int64_t f = want; f < have; ++f) drop.push_back(f);
      core::remove_filters(fresh, u, drop);
    }
  }
  fresh.load_state_dict(load_tensor_map(path));
  std::cout << "reloaded accuracy " << nn::evaluate(fresh, dataset.test) * 100 << "%\n";
  std::remove(path.c_str());
  return 0;
}
