// Running the paper's pipeline on REAL CIFAR data.
//
//   $ ./build/examples/cifar_real /path/to/cifar-10-batches-bin [epochs]
//
// Everything in this repository runs on the synthetic substitute by
// default because no dataset ships with it; this example is the bridge
// to the paper's actual setting. Point it at the extracted CIFAR-10
// binary distribution (data_batch_1..5.bin + test_batch.bin) and it
// trains VGG16 with the modified cost and runs the class-aware pruner.
// Without an argument it prints instructions and exits cleanly, so the
// binary is safe in automated runs.
#include <iostream>

#include "core/pruner.h"
#include "data/cifar_binary.h"
#include "models/builders.h"
#include "nn/trainer.h"

int main(int argc, char** argv) {
  using namespace capr;
  if (argc < 2) {
    std::cout
        << "usage: cifar_real <dir-with-cifar10-binaries> [epochs]\n\n"
           "Download and extract the CIFAR-10 binary version\n"
           "(cifar-10-binary.tar.gz), then pass the directory containing\n"
           "data_batch_1.bin ... test_batch.bin. Training full VGG16 on CPU\n"
           "is slow; start with few epochs to validate the pipeline.\n";
    return 0;
  }
  const std::string dir = argv[1];
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 2;

  std::cout << "loading CIFAR-10 from " << dir << " ..." << std::endl;
  data::CifarBinaryConfig dcfg;
  dcfg.directory = dir;
  dcfg.num_classes = 10;
  const data::CifarBinary cifar = data::load_cifar_binary(dcfg);
  std::cout << "train: " << cifar.train.size() << " images, test: " << cifar.test.size()
            << "\n";

  models::BuildConfig mcfg;
  mcfg.num_classes = 10;
  mcfg.input_size = 32;
  mcfg.width_mult = 1.0f;  // the paper's full-width VGG16
  nn::Model model = models::make_vgg16(mcfg);
  std::cout << "VGG16: " << model.parameter_count() << " parameters\n";

  // Paper Section IV hyperparameters.
  nn::TrainConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.batch_size = 256;
  tcfg.sgd = {.lr = 0.01f, .momentum = 0.9f, .weight_decay = 5e-4f};
  tcfg.augment = true;
  tcfg.on_epoch = [](int epoch, float loss) {
    std::cout << "epoch " << epoch << ": train loss " << loss << std::endl;
  };
  core::ModifiedLoss reg;  // lambda1 = 1e-4, lambda2 = 1e-2
  nn::train(model, cifar.train, tcfg, &reg);
  std::cout << "test accuracy " << nn::evaluate(model, cifar.test) * 100 << "%\n";

  core::ClassAwarePrunerConfig pcfg;  // paper defaults: M=10, thr 3, 10%/iter
  pcfg.importance.images_per_class = 10;
  pcfg.finetune.epochs = std::max(1, epochs / 2);
  pcfg.finetune.batch_size = 256;
  pcfg.finetune.sgd.lr = 0.001f;
  pcfg.max_iterations = 5;
  pcfg.on_iteration = [](const core::IterationRecord& it) {
    std::cout << "prune iter " << it.iteration << ": -" << it.filters_removed
              << " filters, acc " << it.accuracy_after_finetune * 100 << "%\n";
  };
  core::ClassAwarePruner pruner(pcfg);
  const core::PruneRunResult res = pruner.run(model, cifar.train, cifar.test);
  std::cout << "pruning ratio " << res.report.pruning_ratio() * 100 << "%, FLOPs -"
            << res.report.flops_reduction() * 100 << "%, accuracy "
            << res.final_accuracy * 100 << "%\n";
  return 0;
}
