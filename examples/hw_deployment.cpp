// Deployment sizing: pick a pruning level that meets a latency budget on
// a concrete accelerator.
//
//   $ ./build/examples/hw_deployment
//
// Combines the class-aware pruning pipeline with the systolic-array cost
// model: train, then iteratively prune while tracking simulated latency,
// and stop as soon as the model fits the budget — the workflow an edge
// deployment actually runs (the paper's motivating scenario).
#include <iostream>

#include "core/pruner.h"
#include "data/synthetic.h"
#include "hw/systolic.h"
#include "models/builders.h"
#include "nn/trainer.h"

int main() {
  using namespace capr;

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  dcfg.image_size = 12;
  dcfg.noise_stddev = 0.3f;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);

  models::BuildConfig mcfg;
  mcfg.num_classes = 10;
  mcfg.input_size = 12;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_vgg16(mcfg);

  nn::TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 32;
  tcfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 5e-4f};
  core::ModifiedLoss reg;
  nn::train(model, dataset.train, tcfg, &reg);

  hw::SystolicConfig array;
  array.rows = 8;
  array.cols = 8;
  const double budget_us = 0.6 * hw::simulate(model, array).latency_us(array);
  std::cout << "dense latency: " << hw::simulate(model, array).latency_us(array)
            << " us; budget: " << budget_us << " us\n";

  core::ClassAwarePrunerConfig pcfg;
  pcfg.importance.images_per_class = 6;
  pcfg.importance.tau_mode = core::TauMode::kQuantile;
  pcfg.strategy.max_fraction_per_iter = 0.15f;
  pcfg.finetune.epochs = 2;
  pcfg.finetune.batch_size = 32;
  pcfg.finetune.sgd.lr = 0.02f;
  pcfg.max_accuracy_drop = 0.08f;
  pcfg.max_iterations = 10;
  // Roll back any iteration whose accuracy cannot be recovered, so the
  // deployed model never violates the quality bar.
  pcfg.model_factory = [&mcfg] { return models::make_vgg16(mcfg); };
  pcfg.on_iteration = [](const core::IterationRecord& it) {
    std::cout << "iter " << it.iteration << ": acc " << it.accuracy_after_finetune * 100
              << "%, params " << it.params << "\n";
  };
  core::ClassAwarePruner pruner(pcfg);
  pruner.run(model, dataset.train, dataset.test);

  const hw::ModelSim final_sim = hw::simulate(model, array);
  std::cout << "\npruned latency: " << final_sim.latency_us(array) << " us ("
            << (final_sim.latency_us(array) <= budget_us ? "meets" : "misses")
            << " the budget), accuracy " << nn::evaluate(model, dataset.test) * 100
            << "%\n";
  std::cout << "energy/inference: " << final_sim.total_energy_nj / 1e3 << " uJ, DRAM "
            << final_sim.total_dram_bytes / 1024 << " KiB\n";
  return 0;
}
