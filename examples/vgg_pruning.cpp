// VGG16 pruning walkthrough with manual access to the intermediate
// artifacts: per-class importance scores, the selection produced by the
// strategy, and the per-iteration accuracy/size trajectory.
//
//   $ ./build/examples/vgg_pruning
//
// Where the quickstart drives the whole loop through ClassAwarePruner,
// this example performs one pruning iteration by hand — evaluate,
// inspect, select, operate, fine-tune — which is the granularity a user
// needs to build custom pruning schedules.
#include <algorithm>
#include <iostream>

#include "core/importance.h"
#include "core/modified_loss.h"
#include "core/strategy.h"
#include "core/surgeon.h"
#include "data/synthetic.h"
#include "flops/flops.h"
#include "models/builders.h"
#include "nn/trainer.h"

int main() {
  using namespace capr;

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  dcfg.image_size = 12;
  dcfg.noise_stddev = 0.3f;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);

  models::BuildConfig mcfg;
  mcfg.num_classes = 10;
  mcfg.input_size = 12;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_vgg16(mcfg);

  nn::TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 32;
  tcfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 5e-4f};
  core::ModifiedLoss reg;
  nn::train(model, dataset.train, tcfg, &reg);
  std::cout << "VGG16 trained, accuracy "
            << nn::evaluate(model, dataset.test) * 100 << "%\n\n";

  // --- step 1: evaluate class-aware importance (Eqs. 4-7) -------------
  core::ImportanceConfig icfg;
  icfg.images_per_class = 6;
  icfg.tau_mode = core::TauMode::kQuantile;
  core::ImportanceEvaluator evaluator(icfg);
  const core::ImportanceResult scores = evaluator.evaluate(model, dataset.train);

  std::cout << "per-layer importance summary (score range 0.." << scores.num_classes
            << "):\n";
  for (const core::UnitScores& u : scores.units) {
    const auto [lo, hi] = std::minmax_element(u.total.begin(), u.total.end());
    double mean = 0;
    for (float s : u.total) mean += s;
    mean /= static_cast<double>(u.total.size());
    std::cout << "  " << u.unit_name << ": " << u.total.size() << " filters, min " << *lo
              << ", mean " << mean << ", max " << *hi << "\n";
  }

  // --- step 2: select filters with the combined strategy --------------
  core::PruneStrategyConfig strat;
  strat.mode = core::StrategyMode::kBoth;  // score threshold + percentage cap
  strat.max_fraction_per_iter = 0.15f;
  const std::vector<core::UnitSelection> selection = core::select_filters(scores, strat);
  std::cout << "\nselection: " << core::selection_size(selection) << " filters from "
            << selection.size() << " layers (threshold "
            << core::effective_threshold(strat, scores.num_classes) << ")\n";

  // --- step 3: structural surgery -------------------------------------
  flops::ModelCost before = flops::count(model);
  core::apply_selection(model, selection);
  flops::ModelCost after = flops::count(model);
  const flops::PruningReport report = flops::compare(before, after);
  std::cout << "after surgery: params " << report.params_before << " -> "
            << report.params_after << ", FLOPs -" << report.flops_reduction() * 100 << "%\n";

  // --- step 4: fine-tune to recover accuracy ---------------------------
  nn::TrainConfig ft;
  ft.epochs = 3;
  ft.batch_size = 32;
  ft.sgd.lr = 0.02f;
  nn::train(model, dataset.train, ft, &reg);
  std::cout << "fine-tuned accuracy " << nn::evaluate(model, dataset.test) * 100 << "%\n";
  return 0;
}
