// Extending the framework with a custom pruning criterion.
//
//   $ ./build/examples/custom_criterion
//
// The baselines::Criterion interface is the extension point: implement
// score() (and optionally train_regularizer()) and any criterion runs
// through the same iterative BaselinePruner as the built-in methods.
// Here we add a deliberately bad RandomCriterion and race it against L1
// and the class-aware method — a useful sanity harness when developing
// new criteria, because any criterion worth keeping must beat random.
#include <iostream>

#include "baselines/baseline_pruner.h"
#include "baselines/magnitude.h"
#include "core/pruner.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/trainer.h"
#include "tensor/rng.h"

namespace {

using namespace capr;

/// Assigns every filter a random importance — the control condition.
class RandomCriterion final : public baselines::Criterion {
 public:
  explicit RandomCriterion(uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "Random"; }
  baselines::UnitFilterScores score(nn::Model& model, const data::Dataset&) override {
    baselines::UnitFilterScores out;
    for (const nn::PrunableUnit& u : model.units) {
      std::vector<float> s(static_cast<size_t>(u.conv->out_channels()));
      for (float& v : s) v = rng_.uniform();
      out.push_back(std::move(s));
    }
    return out;
  }

 private:
  Rng rng_;
};

}  // namespace

int main() {
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 6;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 12;
  dcfg.image_size = 12;
  dcfg.noise_stddev = 0.3f;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);

  models::BuildConfig mcfg;
  mcfg.num_classes = 6;
  mcfg.input_size = 12;
  mcfg.width_mult = 0.5f;

  const auto fresh_trained = [&] {
    nn::Model m = models::make_tiny_cnn(mcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.batch_size = 24;
    tcfg.sgd = {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 5e-4f};
    core::ModifiedLoss reg;
    nn::train(m, dataset.train, tcfg, &reg);
    return m;
  };

  baselines::BaselinePrunerConfig bcfg;
  bcfg.max_fraction_per_iter = 0.25f;
  bcfg.max_iterations = 3;
  bcfg.max_accuracy_drop = 0.10f;
  bcfg.finetune.epochs = 2;
  bcfg.finetune.batch_size = 24;
  bcfg.finetune.sgd.lr = 0.02f;

  std::cout << "criterion comparison (same pruning driver, same budget):\n";
  RandomCriterion random(7);
  baselines::L1Criterion l1;
  for (baselines::Criterion* crit :
       std::initializer_list<baselines::Criterion*>{&random, &l1}) {
    nn::Model m = fresh_trained();
    baselines::BaselinePruner pruner(bcfg);
    const auto res = pruner.run(m, *crit, dataset.train, dataset.test);
    std::cout << "  " << res.method << ": " << res.original_accuracy * 100 << "% -> "
              << res.final_accuracy * 100 << "% at ratio "
              << res.report.pruning_ratio() * 100 << "%\n";
  }

  // And the proposed class-aware method under a matched budget.
  nn::Model m = fresh_trained();
  core::ClassAwarePrunerConfig pcfg;
  pcfg.importance.images_per_class = 6;
  pcfg.importance.tau_mode = core::TauMode::kQuantile;
  pcfg.strategy.mode = core::StrategyMode::kPercentage;
  pcfg.strategy.max_fraction_per_iter = bcfg.max_fraction_per_iter;
  pcfg.finetune = bcfg.finetune;
  pcfg.max_accuracy_drop = bcfg.max_accuracy_drop;
  pcfg.max_iterations = bcfg.max_iterations;
  core::ClassAwarePruner pruner(pcfg);
  const auto res = pruner.run(m, dataset.train, dataset.test);
  std::cout << "  Class-Aware: " << res.original_accuracy * 100 << "% -> "
            << res.final_accuracy * 100 << "% at ratio "
            << res.report.pruning_ratio() * 100 << "%\n";
  return 0;
}
