// Reproduces paper Fig. 8: the importance-score distribution of filters
// for VGG16 on CIFAR-10 under different regularization strategies —
// no regularization, L1 only, L_orth only, and L1 + L_orth.
//
// The paper's claims:
//   * L1 produces more filters with score ~0 (sparsity),
//   * L_orth produces more high-score filters (diversity),
//   * the combination polarises the distribution at both ends,
//     giving the clearest important/unimportant separation.
#include <iostream>

#include "core/importance.h"
#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Figure 8",
                       "score distribution under different regularization (VGG16-C10)");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  struct RegPanel {
    const char* name;
    float lambda1, lambda2;
  };
  const RegPanel regs[] = {
      {"no regularization", 0.0f, 0.0f},
      {"L1 only", 1e-4f, 0.0f},
      {"L_orth only", 0.0f, 1e-2f},
      {"L1 + L_orth", 1e-4f, 1e-2f},
  };

  for (const RegPanel& reg : regs) {
    if (args.smoke && &reg != &regs[0]) break;  // smoke: first panel only
    std::cout << "training with " << reg.name << " ..." << std::endl;
    report::Workbench wb =
        report::prepare_workbench("vgg16", 10, scale, reg.lambda1, reg.lambda2);

    core::ClassAwarePrunerConfig pcfg = report::pruner_config(scale);
    core::ImportanceEvaluator eval(pcfg.importance);
    const core::ImportanceResult res = eval.evaluate(wb.model, wb.data.train);
    const std::vector<float> all = res.all_scores();

    int64_t lows = 0, highs = 0;
    for (float s : all) {
      if (s < 1.0f) ++lows;
      if (s > 9.0f) ++highs;
    }
    std::cout << "\n--- " << reg.name << " (test acc " << report::pct(wb.pretrained_accuracy)
              << ") ---\n"
              << report::histogram(all, 10, 10.0f)
              << "filters with score < 1: " << lows << ", score > 9: " << highs << " (of "
              << all.size() << ")\n\n";
  }
  std::cout << "Expected shape (paper): L1 grows the score~0 bucket, L_orth grows\n"
               "the score~10 bucket, and the combination yields the most polarised\n"
               "distribution.\n";
  return 0;
}
