// Background comparison (paper Section II-A): unstructured magnitude
// pruning vs the structured class-aware method.
//
// The paper argues unstructured pruning achieves high *sparsity* but no
// *dense-hardware* speedup: the weight matrices stay the same shape, so
// a systolic array still schedules every MAC. This bench makes that
// concrete: at matched (or higher) zeroed-weight fractions the
// unstructured model's dense FLOPs are unchanged, while the structured
// class-aware model's FLOPs fall with its pruning ratio.
#include <iostream>

#include "baselines/unstructured.h"
#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Background", "structured vs unstructured pruning (VGG16-C10)");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  report::Workbench wb = report::prepare_workbench("vgg16", 10, scale);
  const auto checkpoint = wb.model.state_dict();
  std::cout << "original accuracy " << report::pct(wb.pretrained_accuracy) << "\n";

  report::Table table({"Method", "Acc after", "Weights zeroed", "Dense FLOPs red."});

  // Unstructured magnitude pruning at several sparsities.
  const std::vector<float> sparsities =
      args.smoke ? std::vector<float>{0.5f} : std::vector<float>{0.5f, 0.8f, 0.9f};
  for (float sparsity : sparsities) {
    wb.model = wb.factory();
    wb.model.load_state_dict(checkpoint);
    baselines::UnstructuredConfig cfg;
    cfg.sparsity = sparsity;
    cfg.finetune.epochs = scale.finetune_epochs;
    cfg.finetune.batch_size = scale.batch_size;
    cfg.finetune.sgd.lr = 0.02f;
    baselines::UnstructuredPruner pruner(cfg);
    const auto res = pruner.run(wb.model, wb.data.train, wb.data.test);
    table.add_row({"unstructured " + report::pct(sparsity, 0),
                   report::pct(res.accuracy_after), report::pct(res.achieved_sparsity()),
                   "0.0% (dense shapes unchanged)"});
  }

  // Structured class-aware pruning for contrast.
  {
    wb.model = wb.factory();
    wb.model.load_state_dict(checkpoint);
    core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
    cfg.model_factory = wb.factory;
    core::ClassAwarePruner pruner(cfg);
    const auto res = pruner.run(wb.model, wb.data.train, wb.data.test);
    table.add_row({"class-aware (structured)", report::pct(res.final_accuracy),
                   report::pct(res.report.pruning_ratio()),
                   report::pct(res.report.flops_reduction())});
  }

  std::cout << "\n" << table.render()
            << "\nExpected shape (paper Sec. II-A): unstructured reaches high sparsity\n"
               "at good accuracy but leaves dense FLOPs untouched; structured pruning\n"
               "turns its (smaller) ratio into a real FLOPs reduction.\n";
  return 0;
}
