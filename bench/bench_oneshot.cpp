// Ablation: one-shot vs iterative pruning at a matched filter budget.
//
// The paper prunes iteratively with fine-tuning after every step
// (Sec. III-C/D) rather than removing the full budget at once. This
// bench makes the design choice measurable: remove the same TOTAL
// fraction of filters either in one shot (single selection + one long
// fine-tune) or across several iterations with re-scoring in between
// (the paper's loop). The iterative schedule should end at equal or
// better accuracy — re-scoring after each fine-tune lets the selection
// react to how the network reorganises.
#include <iostream>

#include "core/pruner.h"
#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Ablation", "one-shot vs iterative pruning (VGG16-C10)");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  report::Workbench wb = report::prepare_workbench("vgg16", 10, scale);
  const auto checkpoint = wb.model.state_dict();
  std::cout << "original accuracy " << report::pct(wb.pretrained_accuracy) << "\n";

  const float total_fraction = 0.4f;
  const int steps = 4;
  report::Table table({"Schedule", "Acc pruned", "Prun. ratio", "FLOPs red.", "Iters"});

  // Both schedules end with the same "landing" fine-tune so the final
  // evaluation is not biased toward whichever schedule trained last:
  // the comparison isolates WHEN filters are removed, not how much
  // training immediately precedes the measurement.
  const auto run = [&](const char* label, float per_iter, int iters, int ft_epochs) {
    wb.model = wb.factory();
    wb.model.load_state_dict(checkpoint);
    core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
    cfg.strategy.mode = core::StrategyMode::kPercentage;  // fixed budget per step
    cfg.strategy.max_fraction_per_iter = per_iter;
    cfg.strategy.max_layer_fraction_per_iter = 1.0f;  // budget fully drives removal
    cfg.max_iterations = iters;
    cfg.finetune.epochs = ft_epochs;
    cfg.max_accuracy_drop = 1.0f;  // observe raw accuracy, no early stop
    core::ClassAwarePruner pruner(cfg);
    core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);
    nn::TrainConfig landing = cfg.finetune;
    landing.epochs = scale.finetune_epochs * steps;
    nn::train(wb.model, wb.data.train, landing);
    res.final_accuracy = nn::evaluate(wb.model, wb.data.test);
    table.add_row({label, report::pct(res.final_accuracy),
                   report::pct(res.report.pruning_ratio()),
                   report::pct(res.report.flops_reduction()),
                   std::to_string(res.iterations.size())});
  };

  // One shot: the whole budget at once.
  std::cout << "running one-shot ..." << std::endl;
  run("one-shot", total_fraction, 1, scale.finetune_epochs);
  // Iterative: the same budget split across `steps`, re-scored each step.
  std::cout << "running iterative ..." << std::endl;
  run("iterative", total_fraction / static_cast<float>(steps), steps, scale.finetune_epochs);

  std::cout << "\n" << table.render()
            << "\nExpected shape: at a matched removal budget and fine-tuning budget,\n"
               "the iterative schedule matches or beats one-shot accuracy — the\n"
               "justification for the paper's prune/fine-tune loop.\n";
  return 0;
}
