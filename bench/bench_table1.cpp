// Reproduces paper Table I: accuracy before/after class-aware pruning,
// pruning ratio and FLOPs reduction for VGG16-C10, VGG19-C100,
// ResNet56-C10 and ResNet56-C100.
//
// Paper numbers are printed alongside the measured values. Absolute
// accuracies differ (synthetic data, reduced scale — see DESIGN.md); the
// claims that should hold are:
//   * small accuracy drop between the original and pruned model,
//   * large parameter pruning ratio with a large FLOPs reduction,
//   * VGG tolerates much higher pruning than the block-constrained
//     ResNet56, and 10-class tasks prune more than 100-class ones.
#include <algorithm>
#include <iostream>

#include "report/csv.h"
#include "report/experiment.h"
#include "report/table.h"

namespace {

struct PaperRow {
  const char* name;
  const char* arch;
  int64_t classes;
  double orig, pruned, ratio, flops;
};

constexpr PaperRow kPaperRows[] = {
    {"VGG16-C10", "vgg16", 10, 0.9390, 0.9299, 0.956, 0.771},
    {"VGG19-C100", "vgg19", 100, 0.7349, 0.7256, 0.854, 0.752},
    {"ResNet56-C10", "resnet56", 10, 0.9371, 0.9289, 0.779, 0.623},
    {"ResNet56-C100", "resnet56", 100, 0.7236, 0.7149, 0.500, 0.438},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Table I", "pruning results with the proposed method");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  report::Table table({"NN-Dataset", "Acc orig", "Acc pruned", "Prun. ratio", "FLOPs red.",
                       "paper(orig/pruned/ratio/flops)"});
  report::CsvWriter csv({"config", "acc_orig", "acc_pruned", "pruning_ratio",
                         "flops_reduction", "iterations", "stop_reason"});
  for (const PaperRow& row : kPaperRows) {
    if (args.smoke && &row != &kPaperRows[0]) break;  // smoke: first row only
    std::cout << "running " << row.name << " ..." << std::endl;
    report::Workbench wb = report::prepare_workbench(row.arch, row.classes, scale);
    core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
    cfg.model_factory = wb.factory;
    if (scale.name == "micro" && row.classes >= 100) {
      // 100-class scoring costs ~10x the 10-class passes on one core;
      // cap the loop so the whole table stays inside the time budget.
      cfg.max_iterations = std::min(cfg.max_iterations, 5);
      cfg.importance.images_per_class = 4;
    }
    cfg.on_iteration = [](const core::IterationRecord& it) {
      std::cout << "    iter " << it.iteration << ": -" << it.filters_removed
                << " filters, acc " << report::pct(it.accuracy_after_finetune) << std::endl;
    };
    core::ClassAwarePruner pruner(cfg);
    const core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);

    table.add_row({row.name, report::pct(res.original_accuracy),
                   report::pct(res.final_accuracy), report::pct(res.report.pruning_ratio()),
                   report::pct(res.report.flops_reduction()),
                   report::pct(row.orig) + " / " + report::pct(row.pruned) + " / " +
                       report::pct(row.ratio) + " / " + report::pct(row.flops)});
    csv.add_row({row.name, report::fixed(res.original_accuracy, 4),
                 report::fixed(res.final_accuracy, 4),
                 report::fixed(res.report.pruning_ratio(), 4),
                 report::fixed(res.report.flops_reduction(), 4),
                 std::to_string(res.iterations.size()), res.stop_reason});
    std::cout << "  " << row.name << ": acc " << report::pct(res.original_accuracy) << " -> "
              << report::pct(res.final_accuracy) << ", params "
              << report::human_count(res.report.params_before) << " -> "
              << report::human_count(res.report.params_after) << ", stop: " << res.stop_reason
              << "\n";
  }
  std::cout << "\n" << table.render() << std::endl;
  try {
    csv.write("table1_results.csv");
    std::cout << "CSV written to table1_results.csv\n";
  } catch (const std::exception& e) {
    std::cerr << "CSV write failed: " << e.what() << "\n";
  }
  return 0;
}
