// Reproduces paper Fig. 6: comparison of the proposed class-aware pruning
// against prior criteria — L1 [23], SSS [27], HRank [19], TPP [18],
// OrthConv [31], DepGraph full/no grouping [13] — plus the Taylor-FO and
// APoZ criteria that motivate them, on Top-1 accuracy, pruning ratio and
// FLOPs reduction.
//
// Every method starts from the same pre-trained checkpoint and runs
// through the same iterative prune/fine-tune driver with the same stop
// rule, so differences come from the selection criterion alone.
//
// The paper's claim: class-aware pruning reaches the highest accuracy at
// comparable (or better) pruning ratio / FLOPs reduction in most cases.
#include <algorithm>
#include <iostream>
#include <vector>
#include <memory>

#include "baselines/activation.h"
#include "baselines/baseline_pruner.h"
#include "baselines/magnitude.h"
#include "baselines/regularized.h"
#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Figure 6", "comparison with previous pruning methods");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  // Micro scale compares on VGG16-C10 only (time budget on one core);
  // small/full also run the ResNet56 panel.
  std::vector<const char*> archs{"vgg16", "resnet56"};
  if (scale.name == "smoke") {
    archs = {"vgg16"};
  } else if (scale.name == "micro") {
    archs = {"vgg16"};
    std::cout << "(micro scale: VGG16-C10 panel only; CAPR_SCALE=small adds ResNet56)\n\n";
  }
  for (const char* arch : archs) {
    std::cout << "=== " << arch << "-C10 ===\n";
    std::cout << "pre-training shared checkpoint ..." << std::endl;
    report::Workbench wb = report::prepare_workbench(arch, 10, scale);
    const auto checkpoint = wb.model.state_dict();
    std::cout << "  original accuracy " << report::pct(wb.pretrained_accuracy) << "\n";

    const auto rebuild = [&] {
      wb.model = wb.factory();
      wb.model.load_state_dict(checkpoint);
    };

    report::Table table({"Method", "Acc pruned", "Drop", "Prun. ratio", "FLOPs red."});

    // Proposed method.
    {
      std::cout << "running Class-Aware (proposed) ..." << std::endl;
      rebuild();
      core::ClassAwarePrunerConfig ccfg = report::pruner_config(scale);
      ccfg.model_factory = wb.factory;
      core::ClassAwarePruner pruner(ccfg);
      const core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);
      table.add_row({"Class-Aware (ours)", report::pct(res.final_accuracy),
                     report::pct(res.final_accuracy - res.original_accuracy),
                     report::pct(res.report.pruning_ratio()),
                     report::pct(res.report.flops_reduction())});
    }

    // Baselines through the shared driver.
    baselines::BaselinePrunerConfig bcfg;
    bcfg.max_fraction_per_iter = scale.max_fraction_per_iter;
    bcfg.max_iterations = scale.name == "micro" ? std::min(scale.max_iterations, 6)
                                                : scale.max_iterations;
    bcfg.max_layer_fraction_per_iter = scale.max_layer_fraction_per_iter;
    bcfg.max_accuracy_drop = scale.max_accuracy_drop;
    bcfg.finetune.epochs = scale.finetune_epochs;
    bcfg.finetune.batch_size = scale.batch_size;
    bcfg.finetune.sgd.lr = 0.02f;

    std::vector<std::unique_ptr<baselines::Criterion>> criteria;
    criteria.push_back(std::make_unique<baselines::L1Criterion>());
    criteria.push_back(std::make_unique<baselines::SSSCriterion>());
    criteria.push_back(std::make_unique<baselines::HRankCriterion>(
        scale.images_per_class_scoring));
    criteria.push_back(std::make_unique<baselines::TPPCriterion>(
        scale.images_per_class_scoring));
    criteria.push_back(std::make_unique<baselines::OrthConvCriterion>());
    criteria.push_back(std::make_unique<baselines::DepGraphCriterion>(true));
    criteria.push_back(std::make_unique<baselines::DepGraphCriterion>(false));
    criteria.push_back(std::make_unique<baselines::TaylorFOCriterion>(
        scale.images_per_class_scoring));
    criteria.push_back(std::make_unique<baselines::APoZCriterion>(
        scale.images_per_class_scoring));

    for (auto& crit : criteria) {
      std::cout << "running " << crit->name() << " ..." << std::endl;
      rebuild();
      baselines::BaselinePruner pruner(bcfg);
      const baselines::BaselineRunResult res =
          pruner.run(wb.model, *crit, wb.data.train, wb.data.test);
      table.add_row({res.method, report::pct(res.final_accuracy),
                     report::pct(res.final_accuracy - res.original_accuracy),
                     report::pct(res.report.pruning_ratio()),
                     report::pct(res.report.flops_reduction())});
    }
    std::cout << "\n" << table.render() << "\n";
  }
  std::cout << "Paper reference points (Fig. 6, VGG16-C10): ours 93.2% acc @ 94.8%\n"
               "ratio / 71.8% FLOPs; L1 93.3% @ 64%/34%; SSS 93.0% @ 74%/37%;\n"
               "HRank 92.3% @ 82.9%/53.5%; DepGraph ~93.5% @ ~80%/~55%.\n"
               "Expected shape: the class-aware row attains the best or near-best\n"
               "accuracy at the largest pruning ratio.\n";
  return 0;
}
