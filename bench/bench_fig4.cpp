// Reproduces paper Fig. 4: the distribution of filter importance scores
// in a single layer, before and after class-aware pruning.
//   VGG16-CIFAR10  : first convolutional layer
//   VGG19-CIFAR100 : third convolutional layer
//   ResNet56-C10/100: 40th convolutional layer (block 19's first conv)
//
// The paper's claim: before pruning many filters sit at low scores;
// after pruning the low-score mass is gone and the remaining filters
// score high (the distribution shifts right).
#include <iostream>
#include <vector>

#include "report/experiment.h"
#include "report/table.h"

namespace {

struct Panel {
  const char* title;
  const char* arch;
  int64_t classes;
  size_t unit_index;  // which prunable unit's scores to display
};

}  // namespace

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Figure 4",
                       "filter importance score distribution before/after pruning");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  const std::vector<Panel> all_panels = {
      {"VGG16-C10, conv layer 1", "vgg16", 10, 0},
      {"VGG19-C100, conv layer 3", "vgg19", 100, 2},
      // ResNet56 unit k is block k's first conv = conv layer 2k+2 in the
      // paper's flat numbering; unit 19 ~ the 40th conv layer.
      {"ResNet56-C10, conv layer 40", "resnet56", 10, 19},
      {"ResNet56-C100, conv layer 40", "resnet56", 100, 19},
  };
  // The micro scale runs the two primary panels to stay within a
  // single-core time budget; small/full run all four of the paper's.
  std::vector<Panel> panels = all_panels;
  if (scale.name == "smoke") {
    panels = {all_panels[0]};
  } else if (scale.name == "micro") {
    panels = {all_panels[0], all_panels[2]};
    std::cout << "(micro scale: running 2 of 4 panels; CAPR_SCALE=small runs all)\n\n";
  }

  for (const Panel& p : panels) {
    std::cout << "running " << p.title << " ..." << std::endl;
    report::Workbench wb = report::prepare_workbench(p.arch, p.classes, scale);
    core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
    cfg.model_factory = wb.factory;
    core::ClassAwarePruner pruner(cfg);
    const core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);

    const float max_score = static_cast<float>(p.classes);
    std::cout << "\n--- " << p.title << " ---\n";
    std::cout << "before pruning (" << res.scores_before.units[p.unit_index].total.size()
              << " filters):\n"
              << report::histogram(res.scores_before.units[p.unit_index].total, 10, max_score)
              << "after pruning (" << res.scores_after.units[p.unit_index].total.size()
              << " filters):\n"
              << report::histogram(res.scores_after.units[p.unit_index].total, 10, max_score)
              << "\n";
  }
  std::cout << "Expected shape (paper): low-score mass disappears and the\n"
               "distribution shifts right after pruning.\n";
  return 0;
}
