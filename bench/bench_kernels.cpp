// Kernel-level microbenchmarks (google-benchmark): the primitives that
// dominate experiment wall-clock, plus the cost gap between Taylor
// scoring (Eq. 4, one backward pass) and exact zero-out scoring (Eq. 3,
// one forward per activation) that motivates the paper's approximation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/importance.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/rng.h"

namespace {

using namespace capr;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n}), c({n, n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2Col(benchmark::State& state) {
  const int64_t size = state.range(0);
  ConvGeom g{16, size, size, 3, 3, 1, 1};
  Rng rng(2);
  Tensor image({16, size, size});
  rng.fill_normal(image, 0.0f, 1.0f);
  Tensor col({g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    im2col(image.data(), g, col.data());
    benchmark::DoNotOptimize(col.data());
  }
  state.SetItemsProcessed(state.iterations() * col.numel());
}
BENCHMARK(BM_Im2Col)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvForward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false);
  Rng rng(3);
  rng.fill_normal(conv.weight().value, 0.0f, 0.1f);
  Tensor x({8, channels, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(32)->Arg(64);

void BM_ConvBackward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3, 1, 1, false);
  Rng rng(4);
  rng.fill_normal(conv.weight().value, 0.0f, 0.1f);
  Tensor x({8, channels, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor g({8, channels, 16, 16});
  rng.fill_normal(g, 0.0f, 1.0f);
  conv.forward(x, true);
  for (auto _ : state) {
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_ConvBackward)->Arg(16)->Arg(32)->Arg(64);

struct ScoringSetup {
  nn::Model model;
  data::SyntheticCifar data;
  ScoringSetup() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.25f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 8;
    dcfg.test_per_class = 2;
    dcfg.image_size = 8;
    data = data::make_synthetic_cifar(dcfg);
  }
};

// The efficiency argument of Section III-B: Taylor needs one
// forward+backward per class batch; exact zero-out needs one forward per
// activation. Compare per-unit scoring cost on the same batch.
void BM_TaylorScoring(benchmark::State& state) {
  ScoringSetup s;
  Rng rng(5);
  const data::Batch batch = s.data.train.sample_class(0, 4, rng);
  core::ImportanceEvaluator eval;
  for (auto _ : state) {
    Tensor scores = eval.taylor_activation_scores(s.model, 0, batch);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_TaylorScoring);

void BM_ExactZeroOutScoring(benchmark::State& state) {
  ScoringSetup s;
  Rng rng(5);
  const data::Batch batch = s.data.train.sample_class(0, 4, rng);
  core::ImportanceEvaluator eval;
  for (auto _ : state) {
    Tensor scores = eval.exact_activation_scores(s.model, 0, batch);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_ExactZeroOutScoring);

void BM_FullImportanceEvaluation(benchmark::State& state) {
  ScoringSetup s;
  core::ImportanceEvaluator eval(core::ImportanceConfig{.images_per_class = 4});
  for (auto _ : state) {
    core::ImportanceResult res = eval.evaluate(s.model, s.data.train);
    benchmark::DoNotOptimize(res.units.data());
  }
}
BENCHMARK(BM_FullImportanceEvaluation);

}  // namespace

// Custom main instead of BENCHMARK_MAIN so CI can exercise the binary:
// --smoke maps to a filter of the smallest shapes plus a tiny min-time,
// proving every registered benchmark family actually runs. All other
// flags pass straight through to google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> bargv(argv, argv + argc);
  const auto is_smoke = [](const char* s) { return std::string(s) == "--smoke"; };
  const bool smoke = std::any_of(bargv.begin(), bargv.end(), is_smoke);
  bargv.erase(std::remove_if(bargv.begin(), bargv.end(), is_smoke), bargv.end());
  std::string filter = "--benchmark_filter=(BM_Gemm/32|BM_Im2Col/8|BM_ConvForward/16|"
                       "BM_ConvBackward/16|BM_TaylorScoring|BM_ExactZeroOutScoring|"
                       "BM_FullImportanceEvaluation)";
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) {
    bargv.push_back(filter.data());
    bargv.push_back(min_time.data());
  }
  int bargc = static_cast<int>(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
