// GEMM throughput: tiled vs reference kernel across shapes and thread
// counts. Emits BENCH_kernels.json (schema capr-kernel-bench-v1) for the
// CI perf-diff step; the committed copy at the repo root is the baseline.
//
//   bench_gemm                 full sweep, writes BENCH_kernels.json
//   bench_gemm --smoke         smallest shape only, tiny min-time (CI)
//   bench_gemm --out FILE      alternate output path
#include <cstdint>
#include <string>
#include <vector>

#include "kernel_bench.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace {

using namespace capr;
using benchx::BenchSpec;

struct Shape3 {
  int64_t m, k, n;
};

// Square sizes bracketing cache levels plus the dominant conv-lowered
// shapes (wide-N panel from im2col, tall-K from late VGG layers).
const Shape3 kShapes[] = {
    {64, 64, 64},   {128, 128, 128}, {256, 256, 256}, {384, 384, 384},
    {96, 576, 256}, {16, 144, 1024},
};

void run_gemm(benchmark::State& state, const BenchSpec spec) {
  set_num_threads(spec.threads);
  const GemmKernelScope scope(spec.kernel == "tiled" ? GemmKernel::kTiled
                                                     : GemmKernel::kReference);
  Rng rng(1234);
  Tensor a({spec.m, spec.k}), b({spec.k, spec.n}), c({spec.m, spec.n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  GemmScratch scratch;
  for (auto _ : state) {
    gemm_auto(a.data(), b.data(), c.data(), spec.m, spec.k, spec.n, /*accumulate=*/false,
              &scratch);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      spec.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  set_num_threads(0);  // restore default
}

std::vector<BenchSpec> register_all() {
  std::vector<BenchSpec> specs;
  for (const Shape3& s : kShapes) {
    for (const char* kernel : {"reference", "tiled"}) {
      // The reference kernel is serial; only the tiled path threads.
      const std::vector<int> thread_counts =
          std::string(kernel) == "tiled" ? std::vector<int>{1, 4} : std::vector<int>{1};
      for (int threads : thread_counts) {
        BenchSpec spec;
        spec.kernel = kernel;
        spec.threads = threads;
        spec.m = s.m;
        spec.k = s.k;
        spec.n = s.n;
        spec.flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                     static_cast<double>(s.n);
        spec.name = "gemm/" + spec.kernel + "/t" + std::to_string(threads) + "/" +
                    std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
                    std::to_string(s.n);
        benchmark::RegisterBenchmark(spec.name.c_str(), run_gemm, spec);
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::KernelBenchArgs args;
  const std::vector<BenchSpec> specs = register_all();
  if (!benchx::init_benchmark(argc, argv, "gemm/(reference|tiled)/t1/64x64x64", args)) {
    return 1;
  }
  benchx::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = args.out.empty() ? "BENCH_kernels.json" : args.out;
  return benchx::write_kernel_json(path, "bench_gemm", specs, reporter.rows) ? 0 : 1;
}
