// GEMM throughput: tiled vs reference kernel across shapes and thread
// counts, plus the tiled-tuned rows measuring the committed tuning table
// (tuning/default.json). Emits BENCH_kernels.json (schema
// capr-kernel-bench-v1) for the CI perf-diff step; the committed copy at
// the repo root is the baseline.
//
//   bench_gemm                 full sweep, writes BENCH_kernels.json
//   bench_gemm --smoke         smallest shape only, tiny min-time (CI)
//   bench_gemm --out FILE      alternate output path
//   bench_gemm --tuning FILE   tuning table (default tuning/default.json;
//                              tuned rows are skipped when it is absent)
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "kernel_bench.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/gemm_tune.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "tune/corpus.h"

namespace {

using namespace capr;
using benchx::BenchSpec;

// Table behind the tiled-tuned rows; untuned rows pin a null table so
// $CAPR_GEMM_TUNING can never skew the baseline columns.
std::shared_ptr<const GemmTuningTable> g_table;

struct Shape3 {
  int64_t m, k, n;
};

// Square sizes bracketing cache levels plus the dominant conv-lowered
// shapes (wide-N panel from im2col, tall-K from late VGG layers). The
// skinny im2col shapes pruned models produce are appended at startup
// from the tuner's corpus harvest (tune::pruned_im2col_shapes), so the
// committed baseline tracks exactly the shapes the tuning table targets.
const Shape3 kShapes[] = {
    {64, 64, 64},   {128, 128, 128}, {256, 256, 256}, {384, 384, 384},
    {96, 576, 256}, {16, 144, 1024},
};

void run_gemm(benchmark::State& state, const BenchSpec spec) {
  set_num_threads(spec.threads);
  const GemmKernelScope scope(spec.kernel == "reference" ? GemmKernel::kReference
                                                         : GemmKernel::kTiled);
  const GemmTuningScope tuning(spec.kernel == "tiled-tuned" ? g_table : nullptr);
  Rng rng(1234);
  Tensor a({spec.m, spec.k}), b({spec.k, spec.n}), c({spec.m, spec.n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  GemmScratch scratch;
  for (auto _ : state) {
    gemm_auto(a.data(), b.data(), c.data(), spec.m, spec.k, spec.n, /*accumulate=*/false,
              &scratch);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      spec.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  set_num_threads(0);  // restore default
}

std::vector<BenchSpec> register_all(bool tuned) {
  std::vector<Shape3> shapes(std::begin(kShapes), std::end(kShapes));
  for (const tune::CorpusShape& s : tune::pruned_im2col_shapes()) {
    shapes.push_back({s.m, s.k, s.n});
  }
  std::vector<BenchSpec> specs;
  for (const Shape3& s : shapes) {
    std::vector<std::string> kernels = {"reference", "tiled"};
    if (tuned) kernels.push_back("tiled-tuned");
    for (const std::string& kernel : kernels) {
      // The reference kernel is serial; only the tiled paths thread.
      const std::vector<int> thread_counts =
          kernel == "reference" ? std::vector<int>{1} : std::vector<int>{1, 4};
      for (int threads : thread_counts) {
        BenchSpec spec;
        spec.kernel = kernel;
        spec.threads = threads;
        spec.m = s.m;
        spec.k = s.k;
        spec.n = s.n;
        spec.flops = 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
                     static_cast<double>(s.n);
        spec.name = "gemm/" + spec.kernel + "/t" + std::to_string(threads) + "/" +
                    std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
                    std::to_string(s.n);
        benchmark::RegisterBenchmark(spec.name.c_str(), run_gemm, spec);
        specs.push_back(std::move(spec));
      }
    }
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::KernelBenchArgs args;
  args.tuning = "tuning/default.json";
  // Peek at --tuning before registration: it decides whether the
  // tiled-tuned rows exist at all.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--tuning") args.tuning = argv[i + 1];
  }
  {
    auto table = std::make_shared<GemmTuningTable>();
    const TuneStatus status = load_gemm_tuning(args.tuning, table.get());
    if (status.ok()) {
      g_table = std::move(table);
    } else {
      std::cerr << "bench_gemm: " << args.tuning << ": " << status.format()
                << " (skipping tiled-tuned rows)\n";
    }
  }
  const std::vector<BenchSpec> specs = register_all(g_table != nullptr);
  if (!benchx::init_benchmark(argc, argv,
                              "gemm/(reference|tiled|tiled-tuned)/t1/64x64x64", args)) {
    return 1;
  }
  benchx::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = args.out.empty() ? "BENCH_kernels.json" : args.out;
  return benchx::write_kernel_json(path, "bench_gemm", specs, reporter.rows) ? 0 : 1;
}
