// Conv2d forward/backward throughput under both GEMM kernels: the
// end-to-end effect of the tiled path plus the per-layer scratch arena
// (im2col buffers reused across calls). Emits BENCH_conv.json.
//
//   bench_conv                 full sweep, writes BENCH_conv.json
//   bench_conv --smoke         smallest layer only, tiny min-time (CI)
//   bench_conv --out FILE      alternate output path
#include <cstdint>
#include <string>
#include <vector>

#include "kernel_bench.h"
#include "nn/conv2d.h"
#include "tensor/gemm_tiled.h"
#include "tensor/im2col.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace {

using namespace capr;
using benchx::BenchSpec;

struct ConvCase {
  int64_t batch, channels, size;  // square Cin=Cout 3x3 stride-1 pad-1 layer
};

// VGG-style 3x3 body layers at the scales the experiments actually run.
const ConvCase kCases[] = {
    {4, 16, 16},
    {4, 32, 16},
    {8, 64, 8},
};

void run_conv(benchmark::State& state, const BenchSpec spec, const ConvCase cs,
              const bool backward) {
  set_num_threads(spec.threads);
  const GemmKernelScope scope(spec.kernel == "tiled" ? GemmKernel::kTiled
                                                     : GemmKernel::kReference);
  nn::Conv2d conv(cs.channels, cs.channels, 3, 1, 1, /*bias=*/false);
  Rng rng(99);
  rng.fill_normal(conv.weight().value, 0.0f, 0.1f);
  Tensor x({cs.batch, cs.channels, cs.size, cs.size});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor g(x.shape());
  rng.fill_normal(g, 0.0f, 1.0f);
  conv.forward(x, /*training=*/true);
  for (auto _ : state) {
    if (backward) {
      Tensor gx = conv.backward(g);
      benchmark::DoNotOptimize(gx.data());
    } else {
      Tensor y = conv.forward(x, /*training=*/false);
      benchmark::DoNotOptimize(y.data());
    }
  }
  state.counters["FLOPS"] = benchmark::Counter(
      spec.flops * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  set_num_threads(0);
}

std::vector<BenchSpec> register_all() {
  std::vector<BenchSpec> specs;
  for (const ConvCase& cs : kCases) {
    const int64_t krows = cs.channels * 9;
    const int64_t cols = cs.size * cs.size;  // stride 1, pad 1: same spatial size
    for (const bool backward : {false, true}) {
      for (const char* kernel : {"reference", "tiled"}) {
        const std::vector<int> thread_counts =
            std::string(kernel) == "tiled" ? std::vector<int>{1, 4} : std::vector<int>{1};
        for (int threads : thread_counts) {
          BenchSpec spec;
          spec.kernel = kernel;
          spec.threads = threads;
          spec.m = cs.channels;
          spec.k = krows;
          spec.n = cols;
          // Forward: one [Cout, krows] x [krows, cols] GEMM per image.
          // Backward: dW (NT) + dcol (NN), 2x the forward GEMM work.
          const double gemm_flops = 2.0 * static_cast<double>(cs.channels) *
                                    static_cast<double>(krows) * static_cast<double>(cols) *
                                    static_cast<double>(cs.batch);
          spec.flops = backward ? 2.0 * gemm_flops : gemm_flops;
          spec.name = std::string("conv/") + (backward ? "backward" : "forward") + "/" +
                      spec.kernel + "/t" + std::to_string(threads) + "/b" +
                      std::to_string(cs.batch) + "c" + std::to_string(cs.channels) + "s" +
                      std::to_string(cs.size);
          benchmark::RegisterBenchmark(spec.name.c_str(), run_conv, spec, cs, backward);
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  benchx::KernelBenchArgs args;
  const std::vector<BenchSpec> specs = register_all();
  if (!benchx::init_benchmark(argc, argv,
                              "conv/(forward|backward)/(reference|tiled)/t1/b4c16s16",
                              args)) {
    return 1;
  }
  benchx::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = args.out.empty() ? "BENCH_conv.json" : args.out;
  return benchx::write_kernel_json(path, "bench_conv", specs, reporter.rows) ? 0 : 1;
}
