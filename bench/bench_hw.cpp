// Hardware-level view of the pruning results: what Table I's FLOPs
// reductions mean on a TPU-like weight-stationary systolic array.
//
// The paper's efficiency argument targets dense hardware (Sec. II-A,
// ref [26]). This bench maps the dense and progressively filter-pruned
// VGG16/ResNet56 onto the systolic cost model and reports cycles,
// utilization, DRAM traffic and energy. No training is involved — the
// mapping depends only on layer shapes — so the sweep is exact and fast.
#include <iostream>
#include <vector>

#include "core/surgeon.h"
#include "hw/systolic.h"
#include "models/builders.h"
#include "report/experiment.h"
#include "report/table.h"

namespace {

using namespace capr;

/// Uniformly prunes `fraction` of every prunable unit's filters.
void prune_uniform(nn::Model& m, double fraction) {
  for (size_t u = 0; u < m.units.size(); ++u) {
    const int64_t f = m.units[u].conv->out_channels();
    const auto remove_n = static_cast<int64_t>(static_cast<double>(f) * fraction);
    if (remove_n <= 0 || f - remove_n < 2) continue;
    std::vector<int64_t> filters(static_cast<size_t>(remove_n));
    for (int64_t i = 0; i < remove_n; ++i) filters[static_cast<size_t>(i)] = f - 1 - i;
    core::remove_filters(m, u, filters);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Hardware", "pruned models on a systolic-array cost model");

  hw::SystolicConfig array;
  array.rows = 16;
  array.cols = 16;
  array.freq_ghz = 1.0;
  std::cout << "array: " << array.rows << "x" << array.cols << " PEs @ " << array.freq_ghz
            << " GHz, " << array.sram_bytes / 1024 << " KiB SRAM\n\n";

  const std::vector<const char*> archs =
      args.smoke ? std::vector<const char*>{"vgg16"}
                 : std::vector<const char*>{"vgg16", "resnet56"};
  const std::vector<double> fractions =
      args.smoke ? std::vector<double>{0.0, 0.5} : std::vector<double>{0.0, 0.25, 0.5, 0.75};
  for (const char* arch : archs) {
    std::cout << "=== " << arch << " (paper geometry: 32x32 input, full width) ===\n";
    report::Table table({"Pruned filters", "MACs", "Cycles", "Latency", "Mean util.",
                         "DRAM", "Energy"});
    double base_cycles = 0.0;
    for (double fraction : fractions) {
      models::BuildConfig cfg;
      cfg.num_classes = 10;
      cfg.input_size = 32;
      cfg.width_mult = 1.0f;
      nn::Model m = models::make_model(arch, cfg);
      prune_uniform(m, fraction);
      const hw::ModelSim sim = hw::simulate(m, array);
      if (fraction == 0.0) base_cycles = static_cast<double>(sim.total_cycles);
      table.add_row({report::pct(fraction, 0), report::human_count(sim.total_macs),
                     report::human_count(sim.total_cycles),
                     report::fixed(sim.latency_us(array), 1) + " us (" +
                         report::fixed(base_cycles / static_cast<double>(sim.total_cycles),
                                       2) +
                         "x)",
                     report::pct(sim.mean_utilization(array)),
                     report::human_count(sim.total_dram_bytes) + "B",
                     report::fixed(sim.total_energy_nj / 1e3, 1) + " uJ"});
    }
    std::cout << table.render() << "\n";
  }

  std::cout << "Expected shape: latency, DRAM traffic and energy all fall as filters\n"
               "are pruned — the structured-pruning speedup the paper claims, which\n"
               "unstructured sparsity cannot deliver on this hardware (cf.\n"
               "bench_unstructured). Utilization drops at high pruning because thin\n"
               "layers underfill the PE array — the systolic-array counterargument\n"
               "to over-pruning.\n";
  return 0;
}
