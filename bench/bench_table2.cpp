// Reproduces paper Table II: ResNet56-CIFAR10 under the three pruning
// strategies — percentage-only, threshold-only, and the combination.
//
// The paper's claim: the combined strategy reaches the best operating
// point (highest pruned accuracy together with the largest pruning ratio
// and FLOPs reduction). The measured run should show the combination
// dominating or matching the individual strategies.
#include <algorithm>
#include <iostream>

#include "report/experiment.h"
#include "report/table.h"

namespace {

struct PaperRow {
  const char* name;
  capr::core::StrategyMode mode;
  double pruned, drop, ratio, flops;
};

constexpr PaperRow kRows[] = {
    {"percentage", capr::core::StrategyMode::kPercentage, 0.9276, -0.0095, 0.737, 0.552},
    {"threshold", capr::core::StrategyMode::kThreshold, 0.9278, -0.0094, 0.722, 0.604},
    {"percentage+threshold", capr::core::StrategyMode::kBoth, 0.9289, -0.0082, 0.779, 0.623},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Table II", "ResNet56-C10 under different pruning strategies");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  // One pre-trained checkpoint shared by all three strategies, so the
  // comparison isolates the selection rule.
  std::cout << "pre-training ResNet56-C10 ..." << std::endl;
  report::Workbench wb = report::prepare_workbench("resnet56", 10, scale);
  const auto checkpoint = wb.model.state_dict();
  const float original = wb.pretrained_accuracy;
  std::cout << "  original accuracy " << report::pct(original) << "\n";

  report::Table table({"Strategy", "Acc pruned", "Drop", "Prun. ratio", "FLOPs red.",
                       "paper(pruned/drop/ratio/flops)"});
  for (const PaperRow& row : kRows) {
    if (args.smoke && &row != &kRows[0]) break;  // smoke: first strategy only
    std::cout << "running strategy: " << row.name << " ..." << std::endl;
    wb.model.load_state_dict(checkpoint);
    core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
    cfg.strategy.mode = row.mode;
    cfg.model_factory = wb.factory;
    if (scale.name == "micro") cfg.max_iterations = std::min(cfg.max_iterations, 6);
    cfg.on_iteration = [](const core::IterationRecord& it) {
      std::cout << "    iter " << it.iteration << ": -" << it.filters_removed
                << " filters, acc " << report::pct(it.accuracy_after_finetune) << std::endl;
    };
    core::ClassAwarePruner pruner(cfg);
    const core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);

    table.add_row({row.name, report::pct(res.final_accuracy),
                   report::pct(res.final_accuracy - res.original_accuracy),
                   report::pct(res.report.pruning_ratio()),
                   report::pct(res.report.flops_reduction()),
                   report::pct(row.pruned) + " / " + report::pct(row.drop) + " / " +
                       report::pct(row.ratio) + " / " + report::pct(row.flops)});

    // Restore shapes for the next strategy: rebuild from scratch.
    wb.model = wb.factory();
  }
  std::cout << "\n" << table.render() << std::endl;
  return 0;
}
