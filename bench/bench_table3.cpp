// Reproduces paper Table III: pruning performance under different cost
// functions — no regularization, L1 only, L_orth only, and L1 + L_orth —
// for VGG16-C10 and ResNet56-C10.
//
// The paper's claim: the combination achieves the smallest accuracy drop
// together with the largest pruning ratio; each individual term helps
// over no regularization.
#include <algorithm>
#include <iostream>
#include <vector>

#include "report/experiment.h"
#include "report/table.h"

namespace {

struct RegRow {
  const char* name;
  float lambda1, lambda2;
  double paper_vgg_pruned, paper_vgg_ratio;
  double paper_rn_pruned, paper_rn_ratio;
};

// Paper values: (pruned acc, pruning ratio) per net.
constexpr RegRow kRegs[] = {
    {"none", 0.0f, 0.0f, 0.9291, 0.736, 0.9274, 0.694},
    {"L1", 1e-4f, 0.0f, 0.9306, 0.918, 0.9277, 0.720},
    {"L_orth", 0.0f, 1e-2f, 0.9310, 0.745, 0.9273, 0.693},
    {"L1+L_orth", 1e-4f, 1e-2f, 0.9316, 0.948, 0.9289, 0.779},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Table III", "performance with different cost functions");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  // Micro runs the VGG16 half of the paper's table (single-core budget);
  // small/full also run ResNet56.
  std::vector<const char*> archs{"vgg16", "resnet56"};
  if (scale.name == "smoke") {
    archs = {"vgg16"};
  } else if (scale.name == "micro") {
    archs = {"vgg16"};
    std::cout << "(micro scale: VGG16-C10 rows only; CAPR_SCALE=small adds ResNet56)\n\n";
  }
  for (const char* arch : archs) {
    std::cout << "=== " << arch << "-C10 ===\n";
    report::Table table({"Reg.", "Acc orig", "Acc pruned", "Drop", "Prun. ratio",
                         "FLOPs red.", "paper(pruned/ratio)"});
    for (const RegRow& reg : kRegs) {
      if (args.smoke && &reg != &kRegs[0]) break;  // smoke: first row only
      std::cout << "training " << arch << " with reg = " << reg.name << " ..." << std::endl;
      report::Workbench wb =
          report::prepare_workbench(arch, 10, scale, reg.lambda1, reg.lambda2);
      core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
      cfg.loss.lambda1 = reg.lambda1;
      cfg.loss.lambda2 = reg.lambda2;
      cfg.model_factory = wb.factory;
      if (scale.name == "micro") cfg.max_iterations = std::min(cfg.max_iterations, 6);
      core::ClassAwarePruner pruner(cfg);
      const core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);

      const bool is_vgg = std::string(arch) == "vgg16";
      const double paper_pruned = is_vgg ? reg.paper_vgg_pruned : reg.paper_rn_pruned;
      const double paper_ratio = is_vgg ? reg.paper_vgg_ratio : reg.paper_rn_ratio;
      table.add_row({reg.name, report::pct(res.original_accuracy),
                     report::pct(res.final_accuracy),
                     report::pct(res.final_accuracy - res.original_accuracy),
                     report::pct(res.report.pruning_ratio()),
                     report::pct(res.report.flops_reduction()),
                     report::pct(paper_pruned) + " / " + report::pct(paper_ratio)});
    }
    std::cout << "\n" << table.render() << "\n";
  }
  return 0;
}
