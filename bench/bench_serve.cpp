// Serving-runtime load benchmark: queries/sec and tail latency of the
// InferenceServer across architecture x kernel x worker-count x
// micro-batch size, for dense and pruned models. Emits BENCH_serve.json
// (schema capr-serve-bench-v1).
//
// Each benchmark iteration submits a burst of requests to a running
// server and waits for every future; QPS is requests / wall time and the
// latency percentiles come from the per-request submit->completion
// timestamps the server records. The interesting comparison is
// max_batch=1 vs max_batch=8 at equal worker count: coalescing amortises
// per-call overhead (weight-matrix staging, im2col setup) so batched QPS
// should win even on one core.
//
//   bench_serve                full sweep, writes BENCH_serve.json
//   bench_serve --smoke        one tiny case, tiny min-time (CI)
//   bench_serve --out FILE     alternate output path
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kernel_bench.h"
#include "core/surgeon.h"
#include "models/builders.h"
#include "report/json.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace {

using namespace capr;

struct ServeSpec {
  std::string name;     // e.g. "serve/resnet20/pruned+compiled/tiled/w1/b8"
  std::string arch;     // builder name
  std::string variant;  // "dense" | "pruned" | "dense+compiled" | "pruned+compiled"
  std::string kernel;   // "reference" | "tiled"
  int workers = 1;
  size_t max_batch = 1;
};

struct ServeRow {
  std::string name;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double real_time_s = 0.0;
  int64_t iterations = 0;
};

constexpr int kBurst = 32;  // requests submitted per benchmark iteration

/// Builds the spec's model: random-initialised weights (throughput does
/// not depend on the values), with half of every prunable unit's filters
/// removed for the "pruned" variants. Plain "dense"/"pruned" rows pin
/// the interpreted session so they stay comparable across baselines; a
/// "+compiled" suffix serves the fully-optimised ExecutionPlan (BN fold
/// + epilogue fusion + weight pre-packing) — the compiled-vs-interpreted
/// delta at equal sparsity is the graph-compiler headline number.
std::shared_ptr<const serve::InferenceSession> make_session(const ServeSpec& spec) {
  models::BuildConfig cfg;
  cfg.init_seed = 7;
  nn::Model model = models::make_model(spec.arch, cfg);
  const std::string suffix = "+compiled";
  const bool compiled = spec.variant.size() > suffix.size() &&
                        spec.variant.compare(spec.variant.size() - suffix.size(),
                                             suffix.size(), suffix) == 0;
  const bool pruned = spec.variant.rfind("pruned", 0) == 0;
  if (pruned) {
    for (size_t u = 0; u < model.units.size(); ++u) {
      const int64_t have = model.units[u].conv->out_channels();
      std::vector<int64_t> drop;
      for (int64_t f = have / 2; f < have; ++f) drop.push_back(f);
      if (!drop.empty()) core::remove_filters(model, u, drop);
    }
  }
  serve::SessionOptions opts;
  opts.mode = compiled ? serve::SessionOptions::Mode::kCompiledFolded
                       : serve::SessionOptions::Mode::kInterpreted;
  return std::make_shared<const serve::InferenceSession>(std::move(model), opts);
}

void run_serve(benchmark::State& state, const ServeSpec spec) {
  const GemmKernelScope scope(spec.kernel == "tiled" ? GemmKernel::kTiled
                                                     : GemmKernel::kReference);
  std::shared_ptr<const serve::InferenceSession> session = make_session(spec);
  serve::ServerConfig cfg;
  cfg.workers = spec.workers;
  cfg.queue_capacity = kBurst * 2;
  cfg.max_batch = spec.max_batch;
  cfg.max_delay_us = 200;
  serve::InferenceServer server(session, cfg);

  const Shape& in = session->input_shape();
  Rng rng(42);
  std::vector<Tensor> samples;
  for (int i = 0; i < 8; ++i) {
    Tensor s({in[0], in[1], in[2]});
    rng.fill_normal(s, 0.0f, 1.0f);
    samples.push_back(std::move(s));
  }

  std::vector<int64_t> latencies;
  std::vector<std::future<serve::InferResult>> futs(kBurst);
  int64_t sample_idx = 0;
  for (auto _ : state) {
    for (int r = 0; r < kBurst; ++r) {
      futs[static_cast<size_t>(r)] =
          server.submit(samples[static_cast<size_t>(sample_idx++ % 8)]);
    }
    for (int r = 0; r < kBurst; ++r) {
      serve::InferResult res = futs[static_cast<size_t>(r)].get();
      if (res.status != serve::RequestStatus::kOk) {
        state.SkipWithError(("request failed: " + std::string(to_string(res.status)) +
                             (res.error.empty() ? "" : ": " + res.error))
                                .c_str());
        return;
      }
      latencies.push_back(res.latency_us);
    }
  }

  state.counters["QPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBurst, benchmark::Counter::kIsRate);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      size_t i = static_cast<size_t>(p * static_cast<double>(latencies.size() - 1));
      return static_cast<double>(latencies[i]);
    };
    state.counters["p50_us"] = benchmark::Counter(pct(0.50));
    state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  }
}

std::vector<ServeSpec> register_all() {
  std::vector<ServeSpec> specs;
  const auto add = [&](const char* arch, const char* variant, const char* kernel, int workers,
                       size_t max_batch) {
    ServeSpec spec;
    spec.arch = arch;
    spec.variant = variant;
    spec.kernel = kernel;
    spec.workers = workers;
    spec.max_batch = max_batch;
    spec.name = std::string("serve/") + arch + "/" + variant + "/" + kernel + "/w" +
                std::to_string(workers) + "/b" + std::to_string(max_batch);
    // Workers do the actual inference on their own threads, so wall
    // clock (not the submitting thread's CPU time) is the meaningful
    // denominator for the QPS rate counter.
    benchmark::RegisterBenchmark(spec.name.c_str(), run_serve, spec)->UseRealTime();
    specs.push_back(std::move(spec));
  };
  // Full grid on the resnet20 builder (the batched-vs-unbatched and
  // compiled-vs-interpreted QPS comparisons the acceptance gates read),
  // plus a vgg11 column.
  for (const char* variant : {"dense", "pruned", "dense+compiled", "pruned+compiled"}) {
    for (const char* kernel : {"reference", "tiled"}) {
      for (int workers : {1, 4}) {
        for (size_t max_batch : {size_t{1}, size_t{8}}) {
          add("resnet20", variant, kernel, workers, max_batch);
        }
      }
    }
  }
  for (const char* variant : {"dense", "pruned", "dense+compiled", "pruned+compiled"}) {
    for (size_t max_batch : {size_t{1}, size_t{8}}) {
      add("vgg11", variant, "tiled", 1, max_batch);
    }
  }
  return specs;
}

bool write_serve_json(const std::string& path, const std::vector<ServeSpec>& specs,
                      const std::vector<ServeRow>& rows) {
  report::JsonValue results = report::JsonValue::array();
  for (const ServeSpec& spec : specs) {
    for (const ServeRow& row : rows) {
      if (row.name != spec.name) continue;
      report::JsonValue r = report::JsonValue::object();
      r.set("name", report::JsonValue::string(spec.name));
      r.set("arch", report::JsonValue::string(spec.arch));
      r.set("variant", report::JsonValue::string(spec.variant));
      r.set("kernel", report::JsonValue::string(spec.kernel));
      r.set("workers", report::JsonValue::number(static_cast<int64_t>(spec.workers)));
      r.set("max_batch", report::JsonValue::number(static_cast<int64_t>(spec.max_batch)));
      r.set("qps", report::JsonValue::number(row.qps));
      r.set("p50_us", report::JsonValue::number(row.p50_us));
      r.set("p99_us", report::JsonValue::number(row.p99_us));
      r.set("real_time_s", report::JsonValue::number(row.real_time_s));
      r.set("iterations", report::JsonValue::number(row.iterations));
      results.push_back(std::move(r));
      break;
    }
  }
  report::JsonValue doc = report::JsonValue::object();
  doc.set("schema", report::JsonValue::string("capr-serve-bench-v1"));
  doc.set("binary", report::JsonValue::string("bench_serve"));
  doc.set("results", std::move(results));

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << doc.dump() << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}

/// Console output plus capture of the serve counters.
class ServeReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<ServeRow> rows;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      ServeRow row;
      row.name = run.benchmark_name();
      // UseRealTime() appends "/real_time" to the reported name.
      const std::string suffix = "/real_time";
      if (row.name.size() > suffix.size() &&
          row.name.compare(row.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        row.name.resize(row.name.size() - suffix.size());
      }
      row.real_time_s = run.GetAdjustedRealTime() * 1e-9;  // reported in ns
      row.iterations = run.iterations;
      const auto grab = [&](const char* key, double& dst) {
        const auto it = run.counters.find(key);
        if (it != run.counters.end()) dst = it->second.value;
      };
      grab("QPS", row.qps);
      grab("p50_us", row.p50_us);
      grab("p99_us", row.p99_us);
      rows.push_back(row);
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchx::KernelBenchArgs args;
  const std::vector<ServeSpec> specs = register_all();
  if (!benchx::init_benchmark(argc, argv, "serve/resnet20/dense/tiled/w1/b(1|8)", args)) {
    return 1;
  }
  ServeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = args.out.empty() ? "BENCH_serve.json" : args.out;
  return write_serve_json(path, specs, reporter.rows) ? 0 : 1;
}
