// Serving-runtime load benchmark: queries/sec and tail latency of the
// InferenceServer across architecture x kernel x worker-count x
// micro-batch size, for dense and pruned models. Emits BENCH_serve.json
// (schema capr-serve-bench-v2).
//
// Two measurement modes per variant:
//
//   - **Closed loop** (mode "closed", google-benchmark): each iteration
//     submits a burst of requests and waits for every future. QPS is
//     requests / wall time. Because the next burst only starts after the
//     previous one finishes, the client self-throttles to the server's
//     pace — good for comparing configurations, blind to queueing
//     collapse.
//   - **Open loop** (mode "open"): a generator submits at a FIXED
//     arrival rate on a paced clock, independent of completions —
//     arrivals don't slow down when the server falls behind, which is
//     how real traffic behaves. Sweeping the offered rate yields the
//     latency-under-load curve (p50/p99 per offered rate, sheds counted
//     against a bounded queue) and the per-variant saturation QPS (mode
//     "saturation": the highest achieved throughput across the ladder —
//     the honest capacity number the closed loop can't give).
//
// The interesting closed-loop comparison is max_batch=1 vs max_batch=8
// at equal worker count: coalescing amortises per-call overhead
// (weight-matrix staging, im2col setup) so batched QPS should win even
// on one core.
//
//   bench_serve                full sweep, writes BENCH_serve.json
//   bench_serve --smoke        one tiny case + tiny open-loop run (CI)
//   bench_serve --out FILE     alternate output path
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "kernel_bench.h"
#include "core/surgeon.h"
#include "models/builders.h"
#include "report/json.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"

namespace {

using namespace capr;

struct ServeSpec {
  std::string name;     // e.g. "serve/resnet20/pruned+compiled/tiled/w1/b8"
  std::string arch;     // builder name
  std::string variant;  // "dense" | "pruned" | "dense+compiled" | "pruned+compiled"
  std::string kernel;   // "reference" | "tiled"
  int workers = 1;
  size_t max_batch = 1;
};

struct ServeRow {
  std::string name;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double real_time_s = 0.0;
  int64_t iterations = 0;
};

constexpr int kBurst = 32;  // requests submitted per benchmark iteration

/// Builds the spec's model: random-initialised weights (throughput does
/// not depend on the values), with half of every prunable unit's filters
/// removed for the "pruned" variants. Plain "dense"/"pruned" rows pin
/// the interpreted session so they stay comparable across baselines; a
/// "+compiled" suffix serves the fully-optimised ExecutionPlan (BN fold
/// + epilogue fusion + weight pre-packing) — the compiled-vs-interpreted
/// delta at equal sparsity is the graph-compiler headline number.
std::shared_ptr<const serve::InferenceSession> make_session(const ServeSpec& spec) {
  models::BuildConfig cfg;
  cfg.init_seed = 7;
  nn::Model model = models::make_model(spec.arch, cfg);
  const std::string suffix = "+compiled";
  const bool compiled = spec.variant.size() > suffix.size() &&
                        spec.variant.compare(spec.variant.size() - suffix.size(),
                                             suffix.size(), suffix) == 0;
  const bool pruned = spec.variant.rfind("pruned", 0) == 0;
  if (pruned) {
    for (size_t u = 0; u < model.units.size(); ++u) {
      const int64_t have = model.units[u].conv->out_channels();
      std::vector<int64_t> drop;
      for (int64_t f = have / 2; f < have; ++f) drop.push_back(f);
      if (!drop.empty()) core::remove_filters(model, u, drop);
    }
  }
  serve::SessionOptions opts;
  opts.mode = compiled ? serve::SessionOptions::Mode::kCompiledFolded
                       : serve::SessionOptions::Mode::kInterpreted;
  return std::make_shared<const serve::InferenceSession>(std::move(model), opts);
}

void run_serve(benchmark::State& state, const ServeSpec spec) {
  const GemmKernelScope scope(spec.kernel == "tiled" ? GemmKernel::kTiled
                                                     : GemmKernel::kReference);
  std::shared_ptr<const serve::InferenceSession> session = make_session(spec);
  serve::ServerConfig cfg;
  cfg.workers = spec.workers;
  cfg.queue_capacity = kBurst * 2;
  cfg.max_batch = spec.max_batch;
  cfg.max_delay_us = 200;
  serve::InferenceServer server(session, cfg);

  const Shape& in = session->input_shape();
  Rng rng(42);
  std::vector<Tensor> samples;
  for (int i = 0; i < 8; ++i) {
    Tensor s({in[0], in[1], in[2]});
    rng.fill_normal(s, 0.0f, 1.0f);
    samples.push_back(std::move(s));
  }

  std::vector<int64_t> latencies;
  std::vector<std::future<serve::InferResult>> futs(kBurst);
  int64_t sample_idx = 0;
  for (auto _ : state) {
    for (int r = 0; r < kBurst; ++r) {
      futs[static_cast<size_t>(r)] =
          server.submit(samples[static_cast<size_t>(sample_idx++ % 8)]);
    }
    for (int r = 0; r < kBurst; ++r) {
      serve::InferResult res = futs[static_cast<size_t>(r)].get();
      if (res.status != serve::RequestStatus::kOk) {
        state.SkipWithError(("request failed: " + std::string(to_string(res.status)) +
                             (res.error.empty() ? "" : ": " + res.error))
                                .c_str());
        return;
      }
      latencies.push_back(res.latency_us);
    }
  }

  state.counters["QPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBurst, benchmark::Counter::kIsRate);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      size_t i = static_cast<size_t>(p * static_cast<double>(latencies.size() - 1));
      return static_cast<double>(latencies[i]);
    };
    state.counters["p50_us"] = benchmark::Counter(pct(0.50));
    state.counters["p99_us"] = benchmark::Counter(pct(0.99));
  }
}

// ---------------------------------------------------------------------------
// Open-loop generator: arrival-rate driven, not completion driven.

struct OpenSpec {
  std::string name;  // e.g. "open/resnet20/pruned+compiled/tiled/w4/b8/r3000"
  std::string arch;
  std::string variant;
  std::string kernel = "tiled";
  int workers = 4;
  size_t max_batch = 8;
  double offered_qps = 0.0;  // 0 marks the per-variant saturation row
};

struct OpenRow {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double shed_pct = 0.0;  // try_submit rejections / arrivals
  double window_s = 0.0;  // submission window (drain excluded)
  int64_t arrivals = 0;
  int64_t completed = 0;
};

/// Submits at a paced fixed rate for `window` (open loop: the schedule
/// never waits for completions; a late generator catches up instead of
/// thinning arrivals), sheds on a full queue via try_submit, then drains
/// every accepted future. Achieved QPS divides completions by the full
/// arrival-to-last-completion wall time so queued leftovers can't
/// inflate it.
OpenRow run_open_loop(serve::InferenceServer& server, const std::vector<Tensor>& samples,
                      double rate_qps, std::chrono::milliseconds window) {
  using Clock = std::chrono::steady_clock;
  OpenRow row;
  row.offered_qps = rate_qps;
  const auto interval =
      std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(1.0 / rate_qps));
  std::vector<std::future<serve::InferResult>> futs;
  futs.reserve(static_cast<size_t>(rate_qps * std::chrono::duration<double>(window).count()) +
               16);
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point end = t0 + window;
  int64_t shed = 0;
  for (Clock::time_point due = t0; due < end; due += interval) {
    std::this_thread::sleep_until(due);  // no-op once the schedule is behind
    auto fut = server.try_submit(samples[static_cast<size_t>(row.arrivals) % samples.size()]);
    ++row.arrivals;
    if (fut.has_value()) {
      futs.push_back(std::move(*fut));
    } else {
      ++shed;
    }
  }
  row.window_s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<int64_t> latencies;
  latencies.reserve(futs.size());
  for (auto& fut : futs) {
    serve::InferResult res = fut.get();
    if (res.status == serve::RequestStatus::kOk) latencies.push_back(res.latency_us);
  }
  const double drained_s = std::chrono::duration<double>(Clock::now() - t0).count();
  row.completed = static_cast<int64_t>(latencies.size());
  row.achieved_qps = drained_s > 0 ? static_cast<double>(row.completed) / drained_s : 0.0;
  row.shed_pct =
      row.arrivals > 0 ? 100.0 * static_cast<double>(shed) / static_cast<double>(row.arrivals)
                       : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      return static_cast<double>(
          latencies[static_cast<size_t>(p * static_cast<double>(latencies.size() - 1))]);
    };
    row.p50_us = pct(0.50);
    row.p99_us = pct(0.99);
  }
  return row;
}

/// Runs the offered-rate ladder for every open-loop variant and appends
/// (spec, row) pairs, including one synthetic "saturation" spec per
/// variant whose achieved_qps is the max across its ladder.
void run_open_loop_sweep(bool smoke, std::vector<OpenSpec>& specs, std::vector<OpenRow>& rows) {
  const std::vector<const char*> variants =
      smoke ? std::vector<const char*>{"dense"}
            : std::vector<const char*>{"dense", "pruned", "dense+compiled", "pruned+compiled"};
  const std::vector<double> ladder =
      smoke ? std::vector<double>{500} : std::vector<double>{1500, 3000, 6000, 12000};
  const auto window = smoke ? std::chrono::milliseconds(100) : std::chrono::milliseconds(400);

  for (const char* variant : variants) {
    OpenSpec base;
    base.arch = "resnet20";
    base.variant = variant;
    const GemmKernelScope scope(GemmKernel::kTiled);
    std::shared_ptr<const serve::InferenceSession> session = make_session(
        [&] {
          ServeSpec s;
          s.arch = base.arch;
          s.variant = base.variant;
          return s;
        }());
    serve::ServerConfig cfg;
    cfg.workers = base.workers;
    cfg.queue_capacity = 256;
    cfg.max_batch = base.max_batch;
    cfg.max_delay_us = 200;
    serve::InferenceServer server(session, cfg);

    const Shape& in = session->input_shape();
    Rng rng(42);
    std::vector<Tensor> samples;
    for (int i = 0; i < 8; ++i) {
      Tensor s({in[0], in[1], in[2]});
      rng.fill_normal(s, 0.0f, 1.0f);
      samples.push_back(std::move(s));
    }

    double saturation = 0.0;
    for (const double rate : ladder) {
      OpenSpec spec = base;
      spec.offered_qps = rate;
      spec.name = "open/" + spec.arch + "/" + spec.variant + "/" + spec.kernel + "/w" +
                  std::to_string(spec.workers) + "/b" + std::to_string(spec.max_batch) + "/r" +
                  std::to_string(static_cast<int64_t>(rate));
      OpenRow row = run_open_loop(server, samples, rate, window);
      std::cout << spec.name << ": offered " << row.offered_qps << " achieved "
                << row.achieved_qps << " QPS, p50 " << row.p50_us << " us, p99 " << row.p99_us
                << " us, shed " << row.shed_pct << "%\n";
      saturation = std::max(saturation, row.achieved_qps);
      specs.push_back(std::move(spec));
      rows.push_back(row);
    }
    OpenSpec sat = base;
    sat.name = "sat/" + sat.arch + "/" + sat.variant + "/" + sat.kernel + "/w" +
               std::to_string(sat.workers) + "/b" + std::to_string(sat.max_batch);
    OpenRow satrow;
    satrow.achieved_qps = saturation;
    std::cout << sat.name << ": saturation " << saturation << " QPS\n";
    specs.push_back(std::move(sat));
    rows.push_back(satrow);
    server.shutdown();
  }
}

std::vector<ServeSpec> register_all() {
  std::vector<ServeSpec> specs;
  const auto add = [&](const char* arch, const char* variant, const char* kernel, int workers,
                       size_t max_batch) {
    ServeSpec spec;
    spec.arch = arch;
    spec.variant = variant;
    spec.kernel = kernel;
    spec.workers = workers;
    spec.max_batch = max_batch;
    spec.name = std::string("serve/") + arch + "/" + variant + "/" + kernel + "/w" +
                std::to_string(workers) + "/b" + std::to_string(max_batch);
    // Workers do the actual inference on their own threads, so wall
    // clock (not the submitting thread's CPU time) is the meaningful
    // denominator for the QPS rate counter.
    benchmark::RegisterBenchmark(spec.name.c_str(), run_serve, spec)->UseRealTime();
    specs.push_back(std::move(spec));
  };
  // Full grid on the resnet20 builder (the batched-vs-unbatched and
  // compiled-vs-interpreted QPS comparisons the acceptance gates read),
  // plus a vgg11 column.
  for (const char* variant : {"dense", "pruned", "dense+compiled", "pruned+compiled"}) {
    for (const char* kernel : {"reference", "tiled"}) {
      for (int workers : {1, 4}) {
        for (size_t max_batch : {size_t{1}, size_t{8}}) {
          add("resnet20", variant, kernel, workers, max_batch);
        }
      }
    }
  }
  for (const char* variant : {"dense", "pruned", "dense+compiled", "pruned+compiled"}) {
    for (size_t max_batch : {size_t{1}, size_t{8}}) {
      add("vgg11", variant, "tiled", 1, max_batch);
    }
  }
  return specs;
}

bool write_serve_json(const std::string& path, const std::vector<ServeSpec>& specs,
                      const std::vector<ServeRow>& rows,
                      const std::vector<OpenSpec>& open_specs,
                      const std::vector<OpenRow>& open_rows) {
  report::JsonValue results = report::JsonValue::array();
  for (const ServeSpec& spec : specs) {
    for (const ServeRow& row : rows) {
      if (row.name != spec.name) continue;
      report::JsonValue r = report::JsonValue::object();
      r.set("name", report::JsonValue::string(spec.name));
      r.set("mode", report::JsonValue::string("closed"));
      r.set("arch", report::JsonValue::string(spec.arch));
      r.set("variant", report::JsonValue::string(spec.variant));
      r.set("kernel", report::JsonValue::string(spec.kernel));
      r.set("workers", report::JsonValue::number(static_cast<int64_t>(spec.workers)));
      r.set("max_batch", report::JsonValue::number(static_cast<int64_t>(spec.max_batch)));
      r.set("qps", report::JsonValue::number(row.qps));
      r.set("p50_us", report::JsonValue::number(row.p50_us));
      r.set("p99_us", report::JsonValue::number(row.p99_us));
      r.set("real_time_s", report::JsonValue::number(row.real_time_s));
      r.set("iterations", report::JsonValue::number(row.iterations));
      results.push_back(std::move(r));
      break;
    }
  }
  for (size_t i = 0; i < open_specs.size() && i < open_rows.size(); ++i) {
    const OpenSpec& spec = open_specs[i];
    const OpenRow& row = open_rows[i];
    const bool saturation = spec.offered_qps == 0.0;
    report::JsonValue r = report::JsonValue::object();
    r.set("name", report::JsonValue::string(spec.name));
    r.set("mode", report::JsonValue::string(saturation ? "saturation" : "open"));
    r.set("arch", report::JsonValue::string(spec.arch));
    r.set("variant", report::JsonValue::string(spec.variant));
    r.set("kernel", report::JsonValue::string(spec.kernel));
    r.set("workers", report::JsonValue::number(static_cast<int64_t>(spec.workers)));
    r.set("max_batch", report::JsonValue::number(static_cast<int64_t>(spec.max_batch)));
    // "qps" keys the perf-diff gate in every mode: achieved throughput
    // for rate rows, peak sustained throughput for saturation rows.
    r.set("qps", report::JsonValue::number(row.achieved_qps));
    if (!saturation) {
      r.set("offered_qps", report::JsonValue::number(row.offered_qps));
      r.set("p50_us", report::JsonValue::number(row.p50_us));
      r.set("p99_us", report::JsonValue::number(row.p99_us));
      r.set("shed_pct", report::JsonValue::number(row.shed_pct));
      r.set("window_s", report::JsonValue::number(row.window_s));
      r.set("arrivals", report::JsonValue::number(row.arrivals));
      r.set("completed", report::JsonValue::number(row.completed));
    }
    results.push_back(std::move(r));
  }
  report::JsonValue doc = report::JsonValue::object();
  doc.set("schema", report::JsonValue::string("capr-serve-bench-v2"));
  doc.set("binary", report::JsonValue::string("bench_serve"));
  doc.set("results", std::move(results));

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << doc.dump() << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}

/// Console output plus capture of the serve counters.
class ServeReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<ServeRow> rows;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      ServeRow row;
      row.name = run.benchmark_name();
      // UseRealTime() appends "/real_time" to the reported name.
      const std::string suffix = "/real_time";
      if (row.name.size() > suffix.size() &&
          row.name.compare(row.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
        row.name.resize(row.name.size() - suffix.size());
      }
      row.real_time_s = run.GetAdjustedRealTime() * 1e-9;  // reported in ns
      row.iterations = run.iterations;
      const auto grab = [&](const char* key, double& dst) {
        const auto it = run.counters.find(key);
        if (it != run.counters.end()) dst = it->second.value;
      };
      grab("QPS", row.qps);
      grab("p50_us", row.p50_us);
      grab("p99_us", row.p99_us);
      rows.push_back(row);
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchx::KernelBenchArgs args;
  const std::vector<ServeSpec> specs = register_all();
  if (!benchx::init_benchmark(argc, argv, "serve/resnet20/dense/tiled/w1/b(1|8)", args)) {
    return 1;
  }
  ServeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  std::vector<OpenSpec> open_specs;
  std::vector<OpenRow> open_rows;
  run_open_loop_sweep(args.smoke, open_specs, open_rows);
  const std::string path = args.out.empty() ? "BENCH_serve.json" : args.out;
  return write_serve_json(path, specs, reporter.rows, open_specs, open_rows) ? 0 : 1;
}
