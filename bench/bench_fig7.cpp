// Reproduces paper Fig. 7: the average importance score of the filters in
// every layer, before and after the proposed pruning.
//
// The paper's claim: after pruning, most layers show a considerable
// growth of the average score — the surviving filters are important for
// many classes.
#include <iostream>
#include <vector>

#include "report/experiment.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace capr;
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Figure 7", "average filter importance per layer, before vs after");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();

  struct Panel {
    const char* title;
    const char* arch;
    int64_t classes;
  };
  const std::vector<Panel> all_panels = {
      {"VGG16-C10", "vgg16", 10},
      {"VGG19-C100", "vgg19", 100},
      {"ResNet56-C10", "resnet56", 10},
      {"ResNet56-C100", "resnet56", 100},
  };
  // Micro scale runs the two primary panels (time budget); small/full
  // reproduce all four of the paper's.
  std::vector<Panel> panels = all_panels;
  if (scale.name == "smoke") {
    panels = {all_panels[0]};
  } else if (scale.name == "micro") {
    panels = {all_panels[0], all_panels[2]};
    std::cout << "(micro scale: running 2 of 4 panels; CAPR_SCALE=small runs all)\n\n";
  }

  for (const Panel& p : panels) {
    std::cout << "running " << p.title << " ..." << std::endl;
    report::Workbench wb = report::prepare_workbench(p.arch, p.classes, scale);
    core::ClassAwarePrunerConfig cfg = report::pruner_config(scale);
    cfg.model_factory = wb.factory;
    core::ClassAwarePruner pruner(cfg);
    const core::PruneRunResult res = pruner.run(wb.model, wb.data.train, wb.data.test);

    const std::vector<float> before = res.scores_before.mean_per_unit();
    const std::vector<float> after = res.scores_after.mean_per_unit();

    report::Table table({"Layer (prunable unit)", "mean score before", "mean score after",
                         "growth"});
    int64_t grew = 0;
    for (size_t u = 0; u < before.size(); ++u) {
      if (after[u] > before[u]) ++grew;
      table.add_row({res.scores_before.units[u].unit_name, report::fixed(before[u]),
                     report::fixed(after[u]),
                     report::fixed(after[u] - before[u], 2)});
    }
    std::cout << "\n--- " << p.title << " ---\n"
              << table.render() << "layers with score growth: " << grew << "/"
              << before.size() << "\n\n";
  }
  std::cout << "Expected shape (paper): a considerable growth of the average\n"
               "importance score in most layers after pruning.\n";
  return 0;
}
