// Shared glue for the kernel benchmark binaries (bench_gemm, bench_conv):
// a google-benchmark reporter that captures per-benchmark GFLOP/s while
// still printing the normal console table, and a JSON writer emitting the
// BENCH_kernels.json schema consumed by tools/perf_diff.py and the CI
// perf-regression step.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "report/json.h"

namespace capr::benchx {

/// Registration-time metadata for one benchmark; `name` must match the
/// registered benchmark name exactly (it keys the merge with timings).
struct BenchSpec {
  std::string name;    // e.g. "gemm/tiled/t1/256x256x256"
  std::string kernel;  // "reference" | "tiled"
  int threads = 1;
  int64_t m = 0, k = 0, n = 0;
  double flops = 0.0;  // per iteration
};

/// Captured timing for one benchmark run.
struct CaptureRow {
  std::string name;
  double gflops = 0.0;
  double real_time_s = 0.0;
  int64_t iterations = 0;
};

/// Console output plus capture. Benchmarks must set a rate counter named
/// "FLOPS" (finalised to FLOP/s by google-benchmark before reporting).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<CaptureRow> rows;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      CaptureRow row;
      row.name = run.benchmark_name();
      row.real_time_s = run.GetAdjustedRealTime() * 1e-9;  // reported in ns
      row.iterations = run.iterations;
      const auto it = run.counters.find("FLOPS");
      if (it != run.counters.end()) row.gflops = it->second.value / 1e9;
      rows.push_back(row);
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

/// Merges specs with captured rows and writes the result file. Specs
/// that never ran (filtered out, e.g. under --smoke) are omitted.
inline bool write_kernel_json(const std::string& path, const std::string& binary,
                              const std::vector<BenchSpec>& specs,
                              const std::vector<CaptureRow>& rows) {
  report::JsonValue results = report::JsonValue::array();
  for (const BenchSpec& spec : specs) {
    for (const CaptureRow& row : rows) {
      if (row.name != spec.name) continue;
      report::JsonValue r = report::JsonValue::object();
      r.set("name", report::JsonValue::string(spec.name));
      r.set("kernel", report::JsonValue::string(spec.kernel));
      r.set("threads", report::JsonValue::number(static_cast<int64_t>(spec.threads)));
      r.set("m", report::JsonValue::number(spec.m));
      r.set("k", report::JsonValue::number(spec.k));
      r.set("n", report::JsonValue::number(spec.n));
      r.set("gflops", report::JsonValue::number(row.gflops));
      r.set("real_time_s", report::JsonValue::number(row.real_time_s));
      r.set("iterations", report::JsonValue::number(row.iterations));
      results.push_back(std::move(r));
      break;
    }
  }
  report::JsonValue doc = report::JsonValue::object();
  doc.set("schema", report::JsonValue::string("capr-kernel-bench-v1"));
  doc.set("binary", report::JsonValue::string(binary));
  doc.set("results", std::move(results));

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return false;
  }
  out << doc.dump() << "\n";
  std::cout << "wrote " << path << "\n";
  return true;
}

/// Strips --smoke / --out FILE / --tuning FILE (shared bench flags) and
/// forwards the rest to benchmark::Initialize. Returns false on
/// unrecognised flags.
struct KernelBenchArgs {
  bool smoke = false;
  std::string out;
  std::string tuning;  // tuning table for the tiled-tuned rows
};

inline bool init_benchmark(int argc, char** argv, const std::string& smoke_filter,
                           KernelBenchArgs& args) {
  std::vector<char*> bargv;
  bargv.reserve(static_cast<size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--smoke") {
      args.smoke = true;
    } else if (flag == "--out" && i + 1 < argc) {
      args.out = argv[++i];
    } else if (flag == "--tuning" && i + 1 < argc) {
      args.tuning = argv[++i];
    } else {
      bargv.push_back(argv[i]);
    }
  }
  static std::string filter_flag, min_time_flag;  // outlive Initialize
  if (args.smoke) {
    filter_flag = "--benchmark_filter=" + smoke_filter;
    min_time_flag = "--benchmark_min_time=0.01";
    bargv.push_back(filter_flag.data());
    bargv.push_back(min_time_flag.data());
  }
  int bargc = static_cast<int>(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());
  return !benchmark::ReportUnrecognizedArguments(bargc, bargv.data());
}

}  // namespace capr::benchx
