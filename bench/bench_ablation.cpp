// Ablation benches for claims the paper states in passing, plus the
// design knobs DESIGN.md calls out:
//
//  (A) "We have verified that by evaluating more than 10 images the
//      importance scores of filters are almost the same with those with
//      10 images" (Section IV) — sweep M and report the score correlation
//      against the largest M.
//  (B) tau sensitivity (Eq. 5): how the below-threshold filter count
//      moves with the binarisation threshold.
//  (C) spatial aggregation (Eq. 7): max (paper) vs mean.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/importance.h"
#include "report/experiment.h"
#include "report/table.h"

namespace {

using namespace capr;

double correlation(const std::vector<float>& a, const std::vector<float>& b) {
  const size_t n = a.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / (std::sqrt(va) * std::sqrt(vb) + 1e-12);
}

}  // namespace

int main(int argc, char** argv) {
  const report::BenchArgs args = report::parse_bench_args(argc, argv);
  report::print_banner("Ablations", "M sweep (Sec. IV), tau sensitivity, max-vs-mean");
  const report::ExperimentScale scale =
      args.smoke ? report::smoke_scale() : report::scale_from_env();
  report::Workbench wb = report::prepare_workbench("vgg16", 10, scale);
  std::cout << "VGG16-C10 test accuracy: " << report::pct(wb.pretrained_accuracy) << "\n\n";

  // (A) M sweep: correlate total scores against the largest M.
  {
    const std::vector<int64_t> ms =
        args.smoke ? std::vector<int64_t>{1, 2} : std::vector<int64_t>{1, 2, 4, 6, 10, 16};
    std::vector<std::vector<float>> scores;
    for (int64_t m : ms) {
      core::ImportanceConfig icfg;
      icfg.images_per_class = m;
      icfg.tau_mode = scale.tau_mode;
      icfg.tau_quantile = scale.tau_quantile;
      icfg.tau = scale.tau;
      core::ImportanceEvaluator eval(icfg);
      scores.push_back(eval.evaluate(wb.model, wb.data.train).all_scores());
    }
    report::Table t({"M (images/class)", "corr. with M=16", "mean |score diff|"});
    for (size_t i = 0; i < ms.size(); ++i) {
      double diff = 0;
      for (size_t k = 0; k < scores[i].size(); ++k) {
        diff += std::fabs(scores[i][k] - scores.back()[k]);
      }
      diff /= static_cast<double>(scores[i].size());
      t.add_row({std::to_string(ms[i]), report::fixed(correlation(scores[i], scores.back()), 3),
                 report::fixed(diff, 3)});
    }
    std::cout << "(A) M sweep — paper claims scores saturate near M=10:\n" << t.render()
              << "\n";
  }

  // (B) tau sensitivity via the quantile knob.
  {
    report::Table t({"tau quantile", "filters below thr=3", "median score"});
    for (float q : {0.25f, 0.5f, 0.75f, 0.9f, 0.95f}) {
      core::ImportanceConfig icfg;
      icfg.images_per_class = scale.images_per_class_scoring;
      icfg.tau_mode = core::TauMode::kQuantile;
      icfg.tau_quantile = q;
      core::ImportanceEvaluator eval(icfg);
      std::vector<float> all = eval.evaluate(wb.model, wb.data.train).all_scores();
      const int64_t below =
          std::count_if(all.begin(), all.end(), [](float s) { return s < 3.0f; });
      std::nth_element(all.begin(), all.begin() + static_cast<int64_t>(all.size() / 2),
                       all.end());
      t.add_row({report::fixed(q, 2),
                 std::to_string(below) + "/" + std::to_string(all.size()),
                 report::fixed(all[all.size() / 2], 2)});
    }
    std::cout << "(B) tau sensitivity — prunable mass grows with tau:\n" << t.render() << "\n";
  }

  // (C) aggregation: max (Eq. 7) vs mean.
  {
    core::ImportanceConfig icfg;
    icfg.images_per_class = scale.images_per_class_scoring;
    icfg.tau_mode = scale.tau_mode;
    icfg.tau_quantile = scale.tau_quantile;
    icfg.aggregate = core::SpatialAggregate::kMax;
    core::ImportanceEvaluator max_eval(icfg);
    icfg.aggregate = core::SpatialAggregate::kMean;
    core::ImportanceEvaluator mean_eval(icfg);
    const auto smax = max_eval.evaluate(wb.model, wb.data.train).all_scores();
    const auto smean = mean_eval.evaluate(wb.model, wb.data.train).all_scores();
    double mmax = 0, mmean = 0;
    for (float s : smax) mmax += s;
    for (float s : smean) mmean += s;
    std::cout << "(C) aggregation (Eq. 7): mean-of-scores with max = "
              << report::fixed(mmax / static_cast<double>(smax.size()), 2)
              << ", with mean = "
              << report::fixed(mmean / static_cast<double>(smean.size()), 2)
              << ", rank correlation = " << report::fixed(correlation(smax, smean), 3)
              << "\n    (max is the paper's choice: it credits a filter for its single\n"
                 "     most class-consistent activation; mean dilutes localised features)\n";
  }
  return 0;
}
