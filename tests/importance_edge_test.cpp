// Edge cases of the class-aware importance evaluation (Eqs. 5-7):
// networks whose score-point activations are identically zero, datasets
// with a single class, and the paper's tau = 1e-50 binarization
// threshold at the float32 boundary.
#include "core/importance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "models/builders.h"
#include "test_util.h"

namespace capr::core {
namespace {

struct Fixture {
  nn::Model model;
  data::SyntheticCifar data;

  Fixture() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 3;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.25f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 3;
    dcfg.train_per_class = 8;
    dcfg.test_per_class = 2;
    dcfg.image_size = 8;
    data = make_synthetic_cifar(dcfg);
  }
};

// A one-class dataset, built directly: make_synthetic_cifar validates
// num_classes >= 2, and the evaluator must not depend on the generator.
data::Dataset single_class_dataset(int64_t n, uint64_t seed) {
  return data::Dataset(capr::testing::random_tensor({n, 3, 8, 8}, seed, 0.0f, 1.0f),
                       std::vector<int64_t>(static_cast<size_t>(n), 0), /*num_classes=*/1);
}

void silence_all_units(nn::Model& model) {
  for (nn::PrunableUnit& unit : model.units) {
    unit.conv->weight().value.fill(0.0f);
    if (unit.conv->has_bias()) unit.conv->bias().value.fill(0.0f);
    unit.bn->gamma().value.fill(0.0f);
    unit.bn->beta().value.fill(0.0f);
    unit.bn->running_mean().fill(0.0f);
  }
}

TEST(ImportanceEdgeTest, AllZeroActivationsScoreZeroWithoutNaNs) {
  Fixture f;
  silence_all_units(f.model);
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 4});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  ASSERT_FALSE(res.units.empty());
  for (const UnitScores& u : res.units) {
    for (float s : u.total) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_FLOAT_EQ(s, 0.0f);
    }
    for (const auto& cls : u.per_class) {
      for (float s : cls) {
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_FLOAT_EQ(s, 0.0f);
      }
    }
  }
}

TEST(ImportanceEdgeTest, AllZeroActivationsExactModeAlsoFinite) {
  // Exact mode (Eq. 3) computes |L - L(a<-0)|: zeroing an already-zero
  // activation must give exactly 0, not NaN from a degenerate loss delta.
  Fixture f;
  silence_all_units(f.model);
  ImportanceEvaluator eval(
      ImportanceConfig{.images_per_class = 2, .mode = ScoreMode::kExactZeroOut});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  for (const UnitScores& u : res.units) {
    for (float s : u.total) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_FLOAT_EQ(s, 0.0f);
    }
  }
}

TEST(ImportanceEdgeTest, SingleClassDatasetScoresStayInUnitRange) {
  // C = 1 collapses Eq. 6's class loop: per_class has one row and the
  // total equals it. The model keeps 3 logits, so cross-entropy
  // gradients (and hence Taylor scores) stay non-trivial.
  models::BuildConfig mcfg;
  mcfg.num_classes = 3;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_tiny_cnn(mcfg);
  const data::Dataset train = single_class_dataset(8, 77);
  ASSERT_EQ(train.num_classes(), 1);

  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 4});
  const ImportanceResult res = eval.evaluate(model, train);
  EXPECT_EQ(res.num_classes, 1);
  bool any_positive = false;
  for (const UnitScores& u : res.units) {
    ASSERT_EQ(u.per_class.size(), 1u);
    for (size_t i = 0; i < u.total.size(); ++i) {
      EXPECT_TRUE(std::isfinite(u.total[i]));
      EXPECT_GE(u.total[i], 0.0f);
      EXPECT_LE(u.total[i], 1.0f + 1e-6f);
      EXPECT_FLOAT_EQ(u.total[i], u.per_class[0][i]);
      any_positive = any_positive || u.total[i] > 0.0f;
    }
  }
  EXPECT_TRUE(any_positive) << "a random 3-logit model on real images should score > 0";
}

TEST(ImportanceEdgeTest, SingleClassSingleLogitModelHasZeroGradients) {
  // One class AND one logit: softmax is constantly 1, the cross-entropy
  // is exactly 0, and every Taylor score |a * dL/da| collapses to 0.
  // The evaluator must report that honestly instead of dividing by it.
  models::BuildConfig mcfg;
  mcfg.num_classes = 1;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_tiny_cnn(mcfg);
  const data::Dataset train = single_class_dataset(6, 78);
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 2});
  const ImportanceResult res = eval.evaluate(model, train);
  for (const UnitScores& u : res.units) {
    for (float s : u.total) {
      EXPECT_TRUE(std::isfinite(s));
      EXPECT_FLOAT_EQ(s, 0.0f);
    }
  }
}

TEST(ImportanceEdgeTest, PaperTauUnderflowsToZeroInFloat32) {
  // The paper's tau = 1e-50 (Eq. 5) is far below the smallest positive
  // float32 denormal (~1.4e-45): as a float literal it IS 0.0f. The
  // binarisation t > tau therefore means "strictly positive" — pin that
  // reading so nobody "fixes" the constant to a nonzero denormal later.
  EXPECT_EQ(static_cast<float>(1e-50), 0.0f);
}

TEST(ImportanceEdgeTest, TauAtFloatBoundaryEqualsStrictlyPositiveRule) {
  // tau = 1e-50f and tau = 0.0f must binarise identically (both compare
  // against exactly zero), for normal and for all-zero activations.
  Fixture f;
  // static_cast instead of a 1e-50f literal: gcc warns on the literal's
  // truncation, which is exactly the behaviour under test.
  ImportanceEvaluator underflow(
      ImportanceConfig{.images_per_class = 3, .tau = static_cast<float>(1e-50)});
  ImportanceEvaluator zero(ImportanceConfig{.images_per_class = 3, .tau = 0.0f});
  const ImportanceResult a = underflow.evaluate(f.model, f.data.train);
  const ImportanceResult b = zero.evaluate(f.model, f.data.train);
  ASSERT_EQ(a.units.size(), b.units.size());
  for (size_t u = 0; u < a.units.size(); ++u) {
    EXPECT_EQ(a.units[u].total, b.units[u].total);
  }
}

TEST(ImportanceEdgeTest, StrictInequalityExcludesExactZeroScores) {
  // Eq. 5 uses t > tau, not >=: a dead filter (activation scores exactly
  // zero) must stay at score 0 even when tau itself is zero.
  Fixture f;
  nn::PrunableUnit& unit = f.model.units[0];
  const int64_t fsz = unit.conv->in_channels() * unit.conv->kernel() * unit.conv->kernel();
  for (int64_t i = 0; i < fsz; ++i) unit.conv->weight().value[fsz + i] = 0.0f;
  if (unit.conv->has_bias()) unit.conv->bias().value[1] = 0.0f;
  unit.bn->gamma().value[1] = 0.0f;
  unit.bn->beta().value[1] = 0.0f;
  unit.bn->running_mean()[1] = 0.0f;

  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 4, .tau = 0.0f});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  EXPECT_FLOAT_EQ(res.units[0].total[1], 0.0f);
}

}  // namespace
}  // namespace capr::core
