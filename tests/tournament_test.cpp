#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tournament/tournament.h"

namespace capr::tournament {
namespace {

TEST(TournamentRosterTest, SevenEntrantsAndFactory) {
  const std::vector<std::string> roster = default_roster();
  EXPECT_EQ(roster.size(), 7u);
  for (const char* required : {"class-aware", "magnitude", "activation", "regularized",
                               "unstructured-equiv", "dependency-aware", "provable"}) {
    EXPECT_NE(std::find(roster.begin(), roster.end(), required), roster.end()) << required;
  }
  TournamentConfig cfg;
  for (const std::string& name : roster) {
    const auto strat = make_strategy(name, cfg);
    ASSERT_NE(strat, nullptr);
    EXPECT_EQ(strat->name() == "class-aware" || name != "class-aware", true);
  }
  EXPECT_THROW(make_strategy("no-such-method", cfg), std::invalid_argument);
}

TEST(TournamentParetoTest, MarksFrontierAndDropsDominated) {
  std::vector<EntrantResult> entrants(5);
  entrants[0].strategy = "best-acc";
  entrants[0].final_accuracy = 0.9f;
  entrants[0].saturation_qps = 100;
  entrants[0].certified = true;
  entrants[1].strategy = "best-qps";
  entrants[1].final_accuracy = 0.8f;
  entrants[1].saturation_qps = 200;
  entrants[1].certified = true;
  entrants[2].strategy = "tradeoff";
  entrants[2].final_accuracy = 0.85f;
  entrants[2].saturation_qps = 150;
  entrants[2].certified = true;
  entrants[3].strategy = "dominated";
  entrants[3].final_accuracy = 0.8f;
  entrants[3].saturation_qps = 100;
  entrants[3].certified = true;
  entrants[4].strategy = "uncertified";
  entrants[4].final_accuracy = 0.99f;
  entrants[4].saturation_qps = 999;
  entrants[4].certified = false;
  mark_pareto(entrants);
  EXPECT_TRUE(entrants[0].pareto);
  EXPECT_TRUE(entrants[1].pareto);
  EXPECT_TRUE(entrants[2].pareto);
  EXPECT_FALSE(entrants[3].pareto);
  EXPECT_FALSE(entrants[4].pareto);  // failed certification never wins
}

TournamentConfig mini_config() {
  TournamentConfig cfg;
  cfg.arch = "tiny";
  cfg.strategies = {"magnitude", "dependency-aware"};
  cfg.build.num_classes = 3;
  cfg.build.input_size = 8;
  cfg.build.width_mult = 0.5f;
  cfg.dataset.num_classes = 3;
  cfg.dataset.train_per_class = 8;
  cfg.dataset.test_per_class = 4;
  cfg.dataset.image_size = 8;
  cfg.base_train.epochs = 2;
  cfg.base_train.batch_size = 8;
  cfg.prune.max_iterations = 1;
  cfg.prune.max_accuracy_drop = 1.0f;
  cfg.prune.limits.min_filters_per_layer = 1;
  cfg.prune.limits.max_fraction_per_iter = 0.25f;
  cfg.prune.finetune.epochs = 1;
  cfg.prune.finetune.batch_size = 8;
  cfg.measure_serving = false;  // deterministic output; serve is CLI-smoke-tested
  return cfg;
}

TEST(TournamentRunTest, PipelineIsDeterministicWithoutServing) {
  const TournamentConfig cfg = mini_config();
  const TournamentResult a = run_tournament(cfg);
  const TournamentResult b = run_tournament(cfg);

  ASSERT_EQ(a.entrants.size(), 2u);
  EXPECT_EQ(a.entrants[0].strategy, "magnitude");
  EXPECT_EQ(a.entrants[1].strategy, "dependency-aware");
  for (const EntrantResult& e : a.entrants) {
    EXPECT_TRUE(e.certified) << e.strategy;
    EXPECT_GT(e.filters_removed, 0) << e.strategy;
    EXPECT_GT(e.report.pruning_ratio(), 0.0) << e.strategy;
    EXPECT_EQ(e.iterations_run, 1) << e.strategy;
  }
  // At least one entrant is on the frontier; with qps==0 everywhere the
  // frontier is exactly the best-accuracy set.
  EXPECT_TRUE(std::any_of(a.entrants.begin(), a.entrants.end(),
                          [](const EntrantResult& e) { return e.pareto; }));

  // Same config in, byte-identical document out.
  EXPECT_EQ(to_json(a).dump(), to_json(b).dump());
  EXPECT_EQ(to_csv(a), to_csv(b));
}

TEST(TournamentReportTest, JsonSchemaAndCsvShape) {
  TournamentResult result;
  result.arch = "tiny";
  EntrantResult e;
  e.strategy = "magnitude";
  e.final_accuracy = 0.75f;
  e.saturation_qps = 1234.5;
  e.certified = true;
  e.pareto = true;
  e.stop_reason = "max iterations reached";
  result.entrants.push_back(e);

  const std::string json = to_json(result).dump();
  EXPECT_NE(json.find("\"schema\":\"capr-tournament-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tournament/tiny/magnitude\""), std::string::npos);
  EXPECT_NE(json.find("\"qps\":1234.5"), std::string::npos);
  EXPECT_NE(json.find("\"results\":["), std::string::npos);
  EXPECT_NE(json.find("\"pareto\":true"), std::string::npos);

  const std::string csv = to_csv(result);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);  // header + one row
  EXPECT_NE(csv.find("strategy,accuracy"), std::string::npos);
  EXPECT_NE(csv.find("magnitude,"), std::string::npos);
}

}  // namespace
}  // namespace capr::tournament
