// Randomised algebraic properties of the tensor kernels. These guard the
// foundations every other module builds on: if an identity here breaks,
// gradients and scores go silently wrong everywhere.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace capr {
namespace {

using capr::testing::random_tensor;

class OpsPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OpsPropertySweep, AddIsCommutativeAndAssociative) {
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({37}, seed);
  const Tensor b = random_tensor({37}, seed + 1);
  const Tensor c = random_tensor({37}, seed + 2);
  EXPECT_TRUE(add(a, b).allclose(add(b, a), 1e-6f));
  EXPECT_TRUE(add(add(a, b), c).allclose(add(a, add(b, c)), 1e-5f));
}

TEST_P(OpsPropertySweep, MulDistributesOverAdd) {
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({23}, seed);
  const Tensor b = random_tensor({23}, seed + 1);
  const Tensor c = random_tensor({23}, seed + 2);
  EXPECT_TRUE(mul(a, add(b, c)).allclose(add(mul(a, b), mul(a, c)), 1e-5f));
}

TEST_P(OpsPropertySweep, NormsSatisfyBasicInequalities) {
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({64}, seed, -2.0f, 2.0f);
  const Tensor b = random_tensor({64}, seed + 1, -2.0f, 2.0f);
  // Triangle inequality for both norms.
  EXPECT_LE(l1_norm(add(a, b)), l1_norm(a) + l1_norm(b) + 1e-4f);
  EXPECT_LE(l2_norm(add(a, b)), l2_norm(a) + l2_norm(b) + 1e-4f);
  // ||x||_2 <= ||x||_1 <= sqrt(n) * ||x||_2 for n-vectors.
  EXPECT_LE(l2_norm(a), l1_norm(a) + 1e-4f);
  EXPECT_LE(l1_norm(a), std::sqrt(64.0f) * l2_norm(a) + 1e-4f);
}

TEST_P(OpsPropertySweep, ReluIsIdempotentAndMonotone) {
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({50}, seed, -3.0f, 3.0f);
  const Tensor ra = relu(a);
  EXPECT_TRUE(relu(ra).allclose(ra, 0.0f));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(ra[i], 0.0f);
    EXPECT_GE(ra[i], a[i] - 1e-7f);
  }
}

TEST_P(OpsPropertySweep, TransposeIsInvolution) {
  const uint64_t seed = GetParam();
  const Tensor m = random_tensor({7, 13}, seed);
  EXPECT_TRUE(transpose(transpose(m)).allclose(m, 0.0f));
}

TEST_P(OpsPropertySweep, MatmulDistributesOverAdd) {
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({5, 8}, seed);
  const Tensor b = random_tensor({8, 6}, seed + 1);
  const Tensor c = random_tensor({8, 6}, seed + 2);
  EXPECT_TRUE(matmul(a, add(b, c)).allclose(add(matmul(a, b), matmul(a, c)), 1e-4f));
}

TEST_P(OpsPropertySweep, MatmulTransposeIdentity) {
  // (A B)^T == B^T A^T
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({4, 9}, seed);
  const Tensor b = random_tensor({9, 7}, seed + 1);
  EXPECT_TRUE(transpose(matmul(a, b))
                  .allclose(matmul(transpose(b), transpose(a)), 1e-4f));
}

TEST_P(OpsPropertySweep, SignTimesAbsRecoversValue) {
  const uint64_t seed = GetParam();
  const Tensor a = random_tensor({40}, seed, -5.0f, 5.0f);
  EXPECT_TRUE(mul(sign(a), abs(a)).allclose(a, 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsPropertySweep, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace capr
