#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace capr {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reached
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(-5), std::invalid_argument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NormalScaled) {
  Rng rng(18);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0f, 2.0f);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, FillHelpers) {
  Rng rng(19);
  Tensor t({100});
  rng.fill_uniform(t, 2.0f, 3.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], 2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
  rng.fill_normal(t, 0.0f, 1.0f);
  bool any_negative = false;
  for (int64_t i = 0; i < t.numel(); ++i) any_negative |= t[i] < 0.0f;
  EXPECT_TRUE(any_negative);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int64_t> v(50);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i);
  std::vector<int64_t> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng child = a.split();
  Rng b(31);
  b.split();
  // Parent stream after split stays deterministic.
  EXPECT_EQ(a.next_u64(), b.next_u64());
  // Child differs from parent.
  Rng a2(31);
  Rng child2 = a2.split();
  EXPECT_EQ(child.next_u64(), child2.next_u64());
}

}  // namespace
}  // namespace capr
