// Negative fixture for the thread-safety CI lane: this file contains a
// deliberate locking violation and MUST NOT compile under clang
// -Werror=thread-safety. It is built by the `thread_safety_compile_fail`
// ctest (a WILL_FAIL build target, Clang only) to prove the analysis in
// util/thread_annotations.h actually fires — a lane that silently
// stopped analysing would otherwise pass forever.
//
// Never add this file to a normal target.
#include "util/thread_annotations.h"

namespace {

struct Counter {
  capr::Mutex mu;
  int value CAPR_GUARDED_BY(mu) = 0;
};

}  // namespace

int read_without_lock();

int read_without_lock() {
  Counter c;
  // BUG (intentional): reads a guarded field without holding its mutex.
  // Clang: error: reading variable 'value' requires holding mutex 'mu'.
  return c.value;
}
