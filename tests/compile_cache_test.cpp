// PlanCache semantics: deterministic hashing, prune/finetune key
// movement, hit sharing, option keying, and recorded (never thrown)
// compile errors for ill-formed graphs.
#include "compile/cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compile/compiler.h"
#include "compile/plan.h"
#include "core/surgeon.h"
#include "models/builders.h"
#include "nn/linear.h"

namespace capr::compile {
namespace {

models::BuildConfig small_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

graph::ModuleGraph graph_of(const nn::Model& m) { return graph::ModuleGraph::build(m); }

// Same builder + seed -> identical structure AND weights: both hash
// halves (and the derived key) must be reproducible across rebuilds.
TEST(GraphHashTest, StableAcrossRebuilds) {
  const nn::Model a = models::make_model("resnet20", small_cfg());
  const nn::Model b = models::make_model("resnet20", small_cfg());
  const GraphHash ha = hash_graph(graph_of(a));
  const GraphHash hb = hash_graph(graph_of(b));
  EXPECT_EQ(ha.structural, hb.structural);
  EXPECT_EQ(ha.weights, hb.weights);
  EXPECT_EQ(plan_key(ha, CompileOptions{}), plan_key(hb, CompileOptions{}));
}

TEST(GraphHashTest, ArchitecturesHashDifferently) {
  const nn::Model a = models::make_model("resnet20", small_cfg());
  const nn::Model b = models::make_model("vgg11", small_cfg());
  EXPECT_NE(hash_graph(graph_of(a)).structural, hash_graph(graph_of(b)).structural);
}

// Pruning moves shapes: both halves change, so a cached pre-prune plan
// can never be served for the pruned model.
TEST(GraphHashTest, PruneChangesHashAndKey) {
  nn::Model model = models::make_model("tiny", small_cfg());
  const GraphHash before = hash_graph(graph_of(model));
  ASSERT_FALSE(model.units.empty());
  core::remove_filters(model, 0, {0, 2});
  const GraphHash after = hash_graph(graph_of(model));
  EXPECT_NE(before.structural, after.structural);
  EXPECT_NE(before.weights, after.weights);
  EXPECT_NE(plan_key(before, CompileOptions{}), plan_key(after, CompileOptions{}));
}

// A fine-tune step keeps the structure but moves the weight half.
TEST(GraphHashTest, WeightEditChangesOnlyWeightHash)
{
  nn::Model model = models::make_model("tiny", small_cfg());
  const GraphHash before = hash_graph(graph_of(model));
  ASSERT_FALSE(model.units.empty());
  model.units[0].conv->weight().value[0] += 0.25f;
  const GraphHash after = hash_graph(graph_of(model));
  EXPECT_EQ(before.structural, after.structural);
  EXPECT_NE(before.weights, after.weights);
}

TEST(PlanCacheTest, HitSharesTheSamePlan) {
  PlanCache cache;
  const nn::Model model = models::make_model("tiny", small_cfg());
  const graph::ModuleGraph g = graph_of(model);

  const CompileResult first = compile_cached(g, CompileOptions{}, cache);
  ASSERT_NE(first.plan, nullptr);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const CompileResult second = compile_cached(g, CompileOptions{}, cache);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.plan.get(), first.plan.get());  // same immutable object
  EXPECT_EQ(second.key, first.key);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  // A separately built identical model hits the same entry.
  const nn::Model twin = models::make_model("tiny", small_cfg());
  const CompileResult third = compile_cached(graph_of(twin), CompileOptions{}, cache);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.plan.get(), first.plan.get());
}

// Different pass toggles are different plans; the key must separate them.
TEST(PlanCacheTest, OptionsParticipateInTheKey) {
  PlanCache cache;
  const nn::Model model = models::make_model("tiny", small_cfg());
  const graph::ModuleGraph g = graph_of(model);
  CompileOptions folded;  // defaults: all on
  CompileOptions exact;
  exact.fold_batchnorm = false;
  const CompileResult a = compile_cached(g, folded, cache);
  const CompileResult b = compile_cached(g, exact, cache);
  EXPECT_NE(a.key, b.key);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_EQ(cache.size(), 2u);
}

// Plans holding per-node fallbacks pin a live model: they must never be
// shared through the cache.
TEST(PlanCacheTest, NonShareablePlansAreNotCached) {
  PlanCache cache;
  nn::Model model = models::make_model("tiny", small_cfg());
  ASSERT_FALSE(model.units.empty());
  nn::Layer* point = model.units[0].score_point;
  point->instrument().channel_scale.assign(
      static_cast<size_t>(model.units[0].conv->out_channels()), 0.5f);
  const CompileResult result = compile_cached(graph_of(model), CompileOptions{}, cache);
  point->instrument().channel_scale.clear();
  ASSERT_NE(result.plan, nullptr);
  EXPECT_FALSE(result.plan->shareable());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, ClearResetsEverything) {
  PlanCache cache;
  const nn::Model model = models::make_model("tiny", small_cfg());
  compile_cached(graph_of(model), CompileOptions{}, cache);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// Concurrency contract (run under the tsan preset): one PlanCache shared
// by many threads. Half the threads repeatedly compile an unchanging
// model — after the first miss, every lookup is a hit on the same shared
// plan. The other half each own a "fine-tune" model whose weights they
// perturb in place between compiles, so each iteration carries a fresh
// weight hash and races insertions against the readers' lookups.
TEST(PlanCacheTest, ConcurrentHitsMissesAndInvalidation) {
  constexpr int kReaders = 4;
  constexpr int kTuners = 4;
  constexpr int kIters = 10;

  PlanCache cache;
  const nn::Model shared_model = models::make_model("tiny", small_cfg());
  const graph::ModuleGraph shared_graph = graph_of(shared_model);

  std::vector<nn::Model> tuned;
  tuned.reserve(kTuners);
  for (int t = 0; t < kTuners; ++t) tuned.push_back(models::make_model("tiny", small_cfg()));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + kTuners);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const CompileResult r = compile_cached(shared_graph, CompileOptions{}, cache);
        if (!r.plan || !r.plan->shareable()) failures.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kTuners; ++t) {
    threads.emplace_back([&, t] {
      nn::Model& model = tuned[static_cast<size_t>(t)];
      for (int i = 0; i < kIters; ++i) {
        // In-place weight update: shapes unchanged, weight hash fresh —
        // the cached entry for the previous weights is now stale and
        // this compile must key past it. Each tuner perturbs its own
        // weight index so no two tuners ever converge on the same bytes.
        model.units[0].conv->weight().value[static_cast<size_t>(t)] += 0.125f;
        const CompileResult r = compile_cached(graph_of(model), CompileOptions{}, cache);
        if (!r.plan || !r.plan->shareable() || r.cache_hit) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Readers share one entry (racing first-misses overwrite the same
  // key); every tuner iteration inserted a fresh one.
  EXPECT_EQ(cache.size(), 1u + kTuners * kIters);
  // compile_cached doesn't hold the lock across compile, so more than
  // one reader may miss the shared key before the first insert lands;
  // everything after is a hit. Tuner lookups always miss.
  const uint64_t lookups = static_cast<uint64_t>(kReaders + kTuners) * kIters;
  EXPECT_EQ(cache.hits() + cache.misses(), lookups);
  EXPECT_GE(cache.misses(), 1u + kTuners * kIters);
  EXPECT_LE(cache.misses(), static_cast<uint64_t>(kReaders + kTuners * kIters));
}

// An ill-formed graph produces recorded CompileError values naming the
// offending node — and never throws.
TEST(CompileErrorTest, IllFormedGraphIsRecordedNotThrown) {
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, /*bias=*/false));
  net.add(std::make_unique<nn::Conv2d>(16, 8, 3, 1, 1, /*bias=*/false));  // 16 != 8
  const graph::ModuleGraph g = graph::ModuleGraph::build(net, {3, 8, 8});
  ASSERT_FALSE(g.ok());

  CompileResult result;
  ASSERT_NO_THROW(result = compile(g, CompileOptions{}));
  EXPECT_EQ(result.plan, nullptr);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].code, CompileError::Code::kIllFormedGraph);
  EXPECT_EQ(result.errors[0].node, g.error()->node);
  EXPECT_NE(result.errors[0].node, graph::kNoNode);
  EXPECT_FALSE(result.errors[0].message.empty());
  EXPECT_NE(result.errors[0].format().find("node"), std::string::npos);
}

TEST(CompileErrorTest, EmptyGraphIsRecordedNotThrown) {
  nn::Sequential net;
  const graph::ModuleGraph g = graph::ModuleGraph::build(net, {3, 8, 8});
  if (!g.ok()) GTEST_SKIP() << "builder rejects empty nets before compile sees them";
  CompileResult result;
  ASSERT_NO_THROW(result = compile(g, CompileOptions{}));
  EXPECT_EQ(result.plan, nullptr);
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].code, CompileError::Code::kEmptyGraph);
}

}  // namespace
}  // namespace capr::compile
