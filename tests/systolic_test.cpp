#include "hw/systolic.h"

#include <gtest/gtest.h>

#include "core/surgeon.h"
#include "flops/flops.h"
#include "models/builders.h"

namespace capr::hw {
namespace {

SystolicConfig small_array() {
  SystolicConfig cfg;
  cfg.rows = 4;
  cfg.cols = 4;
  return cfg;
}

TEST(SystolicGemmTest, SingleTileClosedForm) {
  // 4x4 x 4x8: one tile -> cycles = N + rows + cols = 8 + 4 + 4.
  const LayerSim sim = simulate_gemm("g", 4, 4, 8, small_array());
  EXPECT_EQ(sim.cycles, 16);
  EXPECT_EQ(sim.macs, 4 * 4 * 8);
  EXPECT_DOUBLE_EQ(sim.utilization, 128.0 / (16.0 * 16.0));
}

TEST(SystolicGemmTest, TilingMultipliesPasses) {
  // M = 8 -> 2 tiles over rows; K = 8 -> 2 tiles over cols: 4 passes.
  const LayerSim sim = simulate_gemm("g", 8, 8, 10, small_array());
  EXPECT_EQ(sim.cycles, 4 * (10 + 8));
}

TEST(SystolicGemmTest, UtilizationNeverExceedsOne) {
  for (int64_t m : {1, 4, 7, 64}) {
    for (int64_t k : {1, 4, 9, 128}) {
      for (int64_t n : {1, 5, 100}) {
        const LayerSim sim = simulate_gemm("g", m, k, n, small_array());
        EXPECT_LE(sim.utilization, 1.0) << m << "x" << k << "x" << n;
        EXPECT_GT(sim.utilization, 0.0);
      }
    }
  }
}

TEST(SystolicGemmTest, LargerArrayNeverSlower) {
  SystolicConfig big = small_array();
  big.rows = 16;
  big.cols = 16;
  for (int64_t m : {8, 32, 100}) {
    const LayerSim s4 = simulate_gemm("g", m, 64, 100, small_array());
    const LayerSim s16 = simulate_gemm("g", m, 64, 100, big);
    EXPECT_LE(s16.cycles, s4.cycles) << "m=" << m;
  }
}

TEST(SystolicGemmTest, Validation) {
  EXPECT_THROW(simulate_gemm("g", 0, 4, 4, small_array()), std::invalid_argument);
  SystolicConfig bad = small_array();
  bad.rows = 0;
  EXPECT_THROW(simulate_gemm("g", 4, 4, 4, bad), std::invalid_argument);
}

TEST(SystolicModelTest, WalksWholeModel) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.25f;
  nn::Model m = models::make_vgg16(mcfg);
  const ModelSim sim = simulate(m, small_array());
  EXPECT_GT(sim.total_cycles, 0);
  EXPECT_GT(sim.total_energy_nj, 0.0);
  // The simulator's MAC count must agree with the FLOPs cost model.
  EXPECT_EQ(sim.total_macs, flops::count(m).total_macs);
  EXPECT_GT(sim.mean_utilization(small_array()), 0.0);
  EXPECT_LE(sim.mean_utilization(small_array()), 1.0);
}

TEST(SystolicModelTest, ResnetBlocksIncluded) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.25f;
  nn::Model m = models::make_resnet20(mcfg);
  const ModelSim sim = simulate(m, small_array());
  EXPECT_EQ(sim.total_macs, flops::count(m).total_macs);
}

TEST(SystolicModelTest, PruningReducesCyclesAndEnergy) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.5f;
  nn::Model m = models::make_tiny_cnn(mcfg);
  const ModelSim before = simulate(m, small_array());
  core::remove_filters(m, 0, {0, 1, 2, 3});
  core::remove_filters(m, 1, {0, 1, 2, 3, 4, 5});
  const ModelSim after = simulate(m, small_array());
  EXPECT_LT(after.total_cycles, before.total_cycles);
  EXPECT_LT(after.total_energy_nj, before.total_energy_nj);
  EXPECT_LT(after.total_dram_bytes, before.total_dram_bytes);
}

TEST(SystolicModelTest, LatencyScalesWithClock) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.input_size = 8;
  nn::Model m = models::make_tiny_cnn(mcfg);
  SystolicConfig slow = small_array();
  SystolicConfig fast = small_array();
  fast.freq_ghz = 2.0;
  const ModelSim sim = simulate(m, slow);
  EXPECT_NEAR(sim.latency_us(slow) / sim.latency_us(fast), 2.0, 1e-9);
}

TEST(SystolicModelTest, SmallSramRaisesDramTraffic) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 10;
  mcfg.input_size = 16;
  mcfg.width_mult = 1.0f;
  nn::Model m = models::make_vgg16(mcfg);
  SystolicConfig big = small_array();
  big.sram_bytes = 64 * 1024 * 1024;
  SystolicConfig tiny = small_array();
  tiny.sram_bytes = 1024;
  const ModelSim with_big = simulate(m, big);
  const ModelSim with_tiny = simulate(m, tiny);
  EXPECT_GE(with_tiny.total_dram_bytes, with_big.total_dram_bytes);
}

}  // namespace
}  // namespace capr::hw
