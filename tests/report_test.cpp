#include <gtest/gtest.h>

#include <cstdlib>

#include "report/experiment.h"
#include "report/table.h"

namespace capr::report {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", "y"});
  const std::string out = t.render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, RejectsBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FormattersTest, Pct) {
  EXPECT_EQ(pct(0.956), "95.6%");
  EXPECT_EQ(pct(1.0, 0), "100%");
  EXPECT_EQ(pct(-0.0082), "-0.8%");
}

TEST(FormattersTest, HumanCount) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500), "1.5K");
  EXPECT_EQ(human_count(2'500'000), "2.50M");
  EXPECT_EQ(human_count(8'200'000'000), "8.20G");
}

TEST(FormattersTest, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(HistogramTest, BucketsAndBars) {
  const std::vector<float> values{0.1f, 0.1f, 0.2f, 5.0f, 9.9f};
  const std::string out = histogram(values, 10, 10.0f, 20);
  // Ten lines, the first bucket holds three values and has the longest bar.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 10);
  EXPECT_NE(out.find("    3  ####################"), std::string::npos);
}

TEST(HistogramTest, ClampsOutOfRange) {
  // A value above max_score lands in the last bucket instead of crashing.
  const std::string out = histogram({12.0f}, 4, 10.0f, 10);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(HistogramTest, RejectsBadArgs) {
  EXPECT_THROW(histogram({1.0f}, 0, 10.0f), std::invalid_argument);
  EXPECT_THROW(histogram({1.0f}, 4, 0.0f), std::invalid_argument);
}

TEST(ScaleTest, EnvSelection) {
  unsetenv("CAPR_SCALE");
  EXPECT_EQ(scale_from_env().name, "micro");
  setenv("CAPR_SCALE", "small", 1);
  const ExperimentScale small = scale_from_env();
  EXPECT_EQ(small.name, "small");
  EXPECT_GT(small.image_size, scale_from_env().image_size - 100);  // parses
  setenv("CAPR_SCALE", "full", 1);
  const ExperimentScale full = scale_from_env();
  EXPECT_EQ(full.name, "full");
  EXPECT_EQ(full.image_size, 32);
  EXPECT_EQ(full.width_mult, 1.0f);
  EXPECT_EQ(full.tau_mode, core::TauMode::kAbsolute);
  setenv("CAPR_SCALE", "bogus", 1);
  EXPECT_EQ(scale_from_env().name, "micro");  // falls back
  unsetenv("CAPR_SCALE");
}

TEST(ScaleTest, PrunerConfigMirrorsScale) {
  ExperimentScale s;
  s.images_per_class_scoring = 7;
  s.max_fraction_per_iter = 0.33f;
  s.max_accuracy_drop = 0.11f;
  s.max_iterations = 13;
  s.finetune_epochs = 3;
  const core::ClassAwarePrunerConfig cfg = pruner_config(s);
  EXPECT_EQ(cfg.importance.images_per_class, 7);
  EXPECT_FLOAT_EQ(cfg.strategy.max_fraction_per_iter, 0.33f);
  EXPECT_FLOAT_EQ(cfg.max_accuracy_drop, 0.11f);
  EXPECT_EQ(cfg.max_iterations, 13);
  EXPECT_EQ(cfg.finetune.epochs, 3);
}

TEST(WorkbenchTest, FactoryRebuildsMatchingShapes) {
  setenv("CAPR_CACHE", "0", 1);
  ExperimentScale s;  // micro
  s.pretrain_epochs = 1;
  Workbench wb = prepare_workbench("tiny", 4, s, 0.0f, 0.0f, 3);
  nn::Model fresh = wb.factory();
  // Same architecture: state dict loads without shape errors.
  EXPECT_NO_THROW(fresh.load_state_dict(wb.model.state_dict()));
  unsetenv("CAPR_CACHE");
}

TEST(WorkbenchTest, ResnetGetsWiderChannelsAtReducedScale) {
  setenv("CAPR_CACHE", "0", 1);
  ExperimentScale s;
  s.pretrain_epochs = 1;
  s.train_per_class_c10 = 4;
  s.test_per_class_c10 = 2;
  Workbench vgg = prepare_workbench("vgg16", 10, s, 0.0f, 0.0f, 3);
  Workbench rn = prepare_workbench("resnet20", 10, s, 0.0f, 0.0f, 3);
  // VGG conv1 base 64 at 0.25 -> 16; ResNet stem base 16 at 0.5 -> 8.
  EXPECT_EQ(vgg.model.units[0].conv->out_channels(), 16);
  EXPECT_EQ(rn.model.units[0].conv->out_channels(), 8);
  unsetenv("CAPR_CACHE");
}

}  // namespace
}  // namespace capr::report
