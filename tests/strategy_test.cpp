#include "core/strategy.h"

#include <gtest/gtest.h>

namespace capr::core {
namespace {

/// Builds an ImportanceResult with explicit total scores.
ImportanceResult make_scores(std::vector<std::vector<float>> totals, int64_t num_classes) {
  ImportanceResult res;
  res.num_classes = num_classes;
  for (size_t u = 0; u < totals.size(); ++u) {
    UnitScores s;
    s.unit_name = "u" + std::to_string(u);
    s.unit_index = u;
    s.total = std::move(totals[u]);
    res.units.push_back(std::move(s));
  }
  return res;
}

std::vector<int64_t> filters_of(const std::vector<UnitSelection>& sel, size_t unit) {
  for (const auto& s : sel) {
    if (s.unit_index == unit) return s.filters;
  }
  return {};
}

TEST(StrategyTest, EffectiveThresholdDefaultsToPaperRule) {
  PruneStrategyConfig cfg;
  EXPECT_FLOAT_EQ(effective_threshold(cfg, 10), 3.0f);   // CIFAR-10 -> 3
  EXPECT_FLOAT_EQ(effective_threshold(cfg, 100), 30.0f);  // CIFAR-100 -> 30
  cfg.score_threshold = 5.0f;
  EXPECT_FLOAT_EQ(effective_threshold(cfg, 10), 5.0f);
}

TEST(StrategyTest, ThresholdModeSelectsBelowThreshold) {
  const auto scores = make_scores({{0.5f, 4.0f, 2.9f, 3.0f}, {9.0f, 1.0f}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kThreshold;
  cfg.min_filters_per_layer = 1;
  const auto sel = select_filters(scores, cfg);
  EXPECT_EQ(filters_of(sel, 0), (std::vector<int64_t>{0, 2}));  // 0.5 and 2.9 < 3
  EXPECT_EQ(filters_of(sel, 1), (std::vector<int64_t>{1}));
}

TEST(StrategyTest, PercentageModeIgnoresThreshold) {
  // 10 filters, 20% cap -> exactly the 2 lowest, regardless of scores.
  const auto scores = make_scores({{9, 8, 7, 6, 5, 4.5f, 4.2f, 4.1f, 4.05f, 4.0f}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kPercentage;
  cfg.max_fraction_per_iter = 0.2f;
  cfg.min_filters_per_layer = 1;
  const auto sel = select_filters(scores, cfg);
  EXPECT_EQ(selection_size(sel), 2);
  EXPECT_EQ(filters_of(sel, 0), (std::vector<int64_t>{8, 9}));
}

TEST(StrategyTest, BothModeAppliesThresholdThenCap) {
  // Five filters below threshold 3, but the 40% cap only allows 2.
  const auto scores = make_scores({{0.1f, 0.2f, 0.3f, 0.4f, 0.5f}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kBoth;
  cfg.max_fraction_per_iter = 0.4f;
  cfg.min_filters_per_layer = 1;
  const auto sel = select_filters(scores, cfg);
  EXPECT_EQ(selection_size(sel), 2);
  EXPECT_EQ(filters_of(sel, 0), (std::vector<int64_t>{0, 1}));  // lowest first
}

TEST(StrategyTest, BothModeThresholdLimitsBeforeCap) {
  // Only one filter below threshold although the cap would allow more.
  const auto scores = make_scores({{0.1f, 5, 6, 7, 8, 9, 9, 9, 9, 9}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kBoth;
  cfg.max_fraction_per_iter = 0.5f;
  cfg.min_filters_per_layer = 1;
  const auto sel = select_filters(scores, cfg);
  EXPECT_EQ(selection_size(sel), 1);
}

TEST(StrategyTest, MinFiltersFloorProtectsSmallLayers) {
  const auto scores = make_scores({{0.1f, 0.2f, 0.3f}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kThreshold;
  cfg.min_filters_per_layer = 2;
  const auto sel = select_filters(scores, cfg);
  // Only 1 of the 3 may go even though all are below threshold.
  EXPECT_EQ(selection_size(sel), 1);
  EXPECT_EQ(filters_of(sel, 0), (std::vector<int64_t>{0}));
}

TEST(StrategyTest, FloorCanForbidAllPruning) {
  const auto scores = make_scores({{0.1f, 0.2f}}, 10);
  PruneStrategyConfig cfg;
  cfg.min_filters_per_layer = 2;
  EXPECT_TRUE(select_filters(scores, cfg).empty());
}

TEST(StrategyTest, HighScoresYieldEmptySelection) {
  const auto scores = make_scores({{9.0f, 9.5f, 10.0f}}, 10);
  PruneStrategyConfig cfg;
  cfg.min_filters_per_layer = 1;
  EXPECT_TRUE(select_filters(scores, cfg).empty());
}

TEST(StrategyTest, PerLayerCapLimitsSingleLayerDamage) {
  // 10 filters all below threshold; a 0.3 layer cap allows only 3.
  const auto scores = make_scores({{0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f,
                                    0.9f, 1.0f}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kThreshold;
  cfg.max_layer_fraction_per_iter = 0.3f;
  cfg.min_filters_per_layer = 1;
  const auto sel = select_filters(scores, cfg);
  EXPECT_EQ(selection_size(sel), 3);
  EXPECT_EQ(filters_of(sel, 0), (std::vector<int64_t>{0, 1, 2}));
}

TEST(StrategyTest, InvalidLayerFractionThrows) {
  const auto scores = make_scores({{1.0f}}, 10);
  PruneStrategyConfig cfg;
  cfg.max_layer_fraction_per_iter = 0.0f;
  EXPECT_THROW(select_filters(scores, cfg), std::invalid_argument);
}

TEST(StrategyTest, SelectionsAreSortedUniquePerUnit) {
  const auto scores = make_scores({{0.3f, 0.1f, 0.2f, 9, 9}, {0.1f, 9, 9}}, 10);
  PruneStrategyConfig cfg;
  cfg.mode = StrategyMode::kBoth;
  cfg.max_fraction_per_iter = 1.0f;
  cfg.max_layer_fraction_per_iter = 1.0f;
  cfg.min_filters_per_layer = 1;
  const auto sel = select_filters(scores, cfg);
  const auto f0 = filters_of(sel, 0);
  EXPECT_TRUE(std::is_sorted(f0.begin(), f0.end()));
  EXPECT_EQ(f0, (std::vector<int64_t>{0, 1, 2}));
}

TEST(StrategyTest, InvalidFractionThrows) {
  const auto scores = make_scores({{1.0f}}, 10);
  PruneStrategyConfig cfg;
  cfg.max_fraction_per_iter = 0.0f;
  EXPECT_THROW(select_filters(scores, cfg), std::invalid_argument);
  cfg.max_fraction_per_iter = 1.5f;
  EXPECT_THROW(select_filters(scores, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace capr::core
