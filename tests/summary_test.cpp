#include "nn/summary.h"

#include <gtest/gtest.h>

#include "models/builders.h"

namespace capr::nn {
namespace {

models::BuildConfig tiny_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  return cfg;
}

TEST(SummaryTest, ContainsLayersAndTotals) {
  Model m = models::make_tiny_cnn(tiny_cfg());
  const std::string s = summary(m);
  EXPECT_NE(s.find("conv0"), std::string::npos);
  EXPECT_NE(s.find("conv2d"), std::string::npos);
  EXPECT_NE(s.find("fc"), std::string::npos);
  EXPECT_NE(s.find("total parameters: " + std::to_string(m.parameter_count())),
            std::string::npos);
  EXPECT_NE(s.find("prunable units  : 2"), std::string::npos);
}

TEST(SummaryTest, ResnetBlocksExpandWithAddRows) {
  Model m = models::make_resnet20(tiny_cfg());
  const std::string s = summary(m);
  EXPECT_NE(s.find("s0.b0.conv1"), std::string::npos);
  EXPECT_NE(s.find(".add"), std::string::npos);
  EXPECT_NE(s.find("stem.conv"), std::string::npos);
}

TEST(SummaryTest, ShapesReflectSurgery) {
  Model m = models::make_tiny_cnn(tiny_cfg());
  const std::string before = summary(m);
  m.units[0].conv->remove_out_channels({0});
  m.units[0].bn->remove_channels({0});
  for (auto& c : m.units[0].consumers) {
    if (c.conv != nullptr) c.conv->remove_in_channels({0});
  }
  const std::string after = summary(m);
  EXPECT_NE(before, after);
}

TEST(SummaryTest, WorksForEveryArch) {
  for (const std::string& arch : models::available_archs()) {
    Model m = models::make_model(arch, tiny_cfg());
    const std::string s = summary(m);
    EXPECT_NE(s.find("total parameters"), std::string::npos) << arch;
  }
}

}  // namespace
}  // namespace capr::nn
