// Pins the kernel-dispatch semantics: which kernel runs, what switching
// guarantees, and how the strong-zero contract survives the fast path.
//
// The load-bearing property for the pruning framework: a masked /
// apply_selection-pruned model must behave identically under either
// kernel, including when poisoned (NaN/Inf) activations hit exact-zero
// weights — the tiled path detects non-finite B operands and routes the
// call through the strong-zero reference kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/surgeon.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/rng.h"
#include "testutil/testutil.h"

namespace capr {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

Tensor random(Rng& rng, Shape shape) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t, -1.0f, 1.0f);
  return t;
}

TEST(KernelDispatchTest, SetAndScopeRoundTrip) {
  const GemmKernel before = gemm_kernel();
  {
    GemmKernelScope ref(GemmKernel::kReference);
    EXPECT_EQ(gemm_kernel(), GemmKernel::kReference);
    {
      GemmKernelScope tiled(GemmKernel::kTiled);
      EXPECT_EQ(gemm_kernel(), GemmKernel::kTiled);
    }
    EXPECT_EQ(gemm_kernel(), GemmKernel::kReference);
  }
  EXPECT_EQ(gemm_kernel(), before);
  EXPECT_STREQ(to_string(GemmKernel::kTiled), "tiled");
  EXPECT_STREQ(to_string(GemmKernel::kReference), "reference");
}

TEST(KernelDispatchTest, FiniteInputsAgreeAcrossKernelsOnAllVariants) {
  // Awkward remainder shape: no dimension divides the tile sizes.
  const int64_t m = 37, k = 129, n = 53;
  Rng rng(42);
  const Tensor a = random(rng, {m, k});
  const Tensor b = random(rng, {k, n});
  const Tensor bt = random(rng, {n, k});
  const Tensor at = random(rng, {k, m});

  Tensor nn_t, nt_t, tn_t, nn_r, nt_r, tn_r;
  {
    GemmKernelScope scope(GemmKernel::kTiled);
    nn_t = matmul(a, b);
    nt_t = matmul_nt(a, bt);
    tn_t = matmul_tn(at, b);
  }
  {
    GemmKernelScope scope(GemmKernel::kReference);
    nn_r = matmul(a, b);
    nt_r = matmul_nt(a, bt);
    tn_r = matmul_tn(at, b);
  }
  EXPECT_TRUE(testing::allclose_report(nn_t, nn_r, 1e-4f, 1e-3f).ok);
  EXPECT_TRUE(testing::allclose_report(nt_t, nt_r, 1e-4f, 1e-3f).ok);
  EXPECT_TRUE(testing::allclose_report(tn_t, tn_r, 1e-4f, 1e-3f).ok);
}

TEST(KernelDispatchTest, StrongZeroHoldsUnderTiledKernel) {
  // Column 1 of A is exactly zero; row 1 of B is poisoned. The zero must
  // annihilate NaN/Inf even with the tiled kernel selected: pack_b spots
  // the non-finite operand and the call runs on the reference kernel.
  GemmKernelScope scope(GemmKernel::kTiled);
  Tensor a({2, 2});
  a[0] = 1.0f, a[1] = 0.0f, a[2] = 2.0f, a[3] = 0.0f;
  Tensor b({2, 3});
  b[0] = 1.0f, b[1] = 2.0f, b[2] = 3.0f;
  b[3] = kNan, b[4] = kInf, b[5] = -kInf;
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 1.0f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
  EXPECT_FLOAT_EQ(c[2], 3.0f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
  EXPECT_FLOAT_EQ(c[4], 4.0f);
  EXPECT_FLOAT_EQ(c[5], 6.0f);
}

TEST(KernelDispatchTest, NonzeroWeightsStillPropagateNaNUnderTiled) {
  GemmKernelScope scope(GemmKernel::kTiled);
  Tensor a({1, 2});
  a[0] = 1.0f, a[1] = 0.5f;
  Tensor b({2, 2});
  b[0] = 1.0f, b[1] = 1.0f;
  b[2] = kNan, b[3] = kInf;
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c[0]));
  EXPECT_TRUE(std::isinf(c[1]));
}

TEST(KernelDispatchTest, RawTiledFallsBackOnNonFiniteB) {
  // Same call, raw entry point: gemm_tiled must agree bitwise with the
  // reference kernel whenever B is poisoned (it IS the reference then).
  const int64_t m = 9, k = 20, n = 33;
  Rng rng(7);
  const Tensor a = random(rng, {m, k});
  Tensor b = random(rng, {k, n});
  b[5 * n + 2] = kNan;
  Tensor got({m, n}), want({m, n});
  gemm_tiled(a.data(), b.data(), got.data(), m, k, n);
  gemm(a.data(), b.data(), want.data(), m, k, n);
  for (int64_t i = 0; i < got.numel(); ++i) {
    if (std::isnan(want[i])) {
      EXPECT_TRUE(std::isnan(got[i])) << "at " << i;
    } else {
      EXPECT_EQ(got[i], want[i]) << "at " << i;
    }
  }
}

TEST(KernelDispatchTest, MaskedConvSilencesPoisonedChannelUnderTiled) {
  // All weights reading input channel 1 are exactly zero (a masked
  // channel); channel 1 of the input is poisoned with NaN. The conv
  // output must stay finite and equal the clean-input output: this is
  // the strong-zero contract end-to-end through im2col + dispatch.
  GemmKernelScope scope(GemmKernel::kTiled);
  nn::Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true);
  Rng rng(11);
  rng.fill_uniform(conv.weight().value, -1.0f, 1.0f);
  rng.fill_uniform(conv.bias().value, -1.0f, 1.0f);
  const int64_t kk = conv.kernel() * conv.kernel();
  for (int64_t f = 0; f < conv.out_channels(); ++f) {
    float* wch1 = conv.weight().value.data() + (f * 2 + 1) * kk;
    for (int64_t i = 0; i < kk; ++i) wch1[i] = 0.0f;
  }

  Tensor clean = random(rng, {1, 2, 6, 6});
  for (int64_t i = 0; i < 36; ++i) clean[36 + i] = 0.0f;  // channel 1
  Tensor poisoned = clean;
  for (int64_t i = 0; i < 36; ++i) poisoned[36 + i] = kNan;

  const Tensor y_clean = conv.forward(clean, /*training=*/false);
  const Tensor y_poisoned = conv.forward(poisoned, /*training=*/false);
  for (int64_t i = 0; i < y_poisoned.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(y_poisoned[i])) << "NaN leaked through masked channel at " << i;
  }
  // The poisoned call runs on the reference kernel (fallback), the clean
  // one on the fast path; equal up to accumulation-order rounding.
  const auto rep = testing::allclose_report(y_poisoned, y_clean, 1e-5f, 1e-5f);
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(KernelDispatchTest, PrunedModelForwardAgreesAcrossKernels) {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  nn::Model model = models::make_tiny_cnn(cfg);
  core::apply_selection(model, {{0, {0, 2}}, {1, {1}}});

  Rng rng(3);
  const Tensor x = random(rng, {2, cfg.input_channels, cfg.input_size, cfg.input_size});
  Tensor y_tiled, y_ref;
  {
    GemmKernelScope scope(GemmKernel::kTiled);
    y_tiled = model.forward(x, /*training=*/false);
  }
  {
    GemmKernelScope scope(GemmKernel::kReference);
    y_ref = model.forward(x, /*training=*/false);
  }
  const auto rep = testing::allclose_report(y_tiled, y_ref, 1e-4f, 1e-3f);
  EXPECT_TRUE(rep.ok) << rep.message;
}

TEST(KernelDispatchTest, ConvForwardBackwardAgreeAcrossKernels) {
  nn::Conv2d conv(3, 8, 3, 1, 1, /*bias=*/true);
  Rng rng(21);
  rng.fill_uniform(conv.weight().value, -1.0f, 1.0f);
  rng.fill_uniform(conv.bias().value, -1.0f, 1.0f);
  const Tensor x = random(rng, {2, 3, 10, 10});
  const Tensor go = random(rng, {2, 8, 10, 10});

  Tensor y_t, gx_t, gw_t, gb_t, y_r, gx_r, gw_r, gb_r;
  {
    GemmKernelScope scope(GemmKernel::kTiled);
    for (nn::Param* p : conv.params()) p->zero_grad();
    y_t = conv.forward(x, /*training=*/true);
    gx_t = conv.backward(go);
    gw_t = conv.weight().grad;
    gb_t = conv.bias().grad;
  }
  {
    GemmKernelScope scope(GemmKernel::kReference);
    for (nn::Param* p : conv.params()) p->zero_grad();
    y_r = conv.forward(x, /*training=*/true);
    gx_r = conv.backward(go);
    gw_r = conv.weight().grad;
    gb_r = conv.bias().grad;
  }
  EXPECT_TRUE(testing::allclose_report(y_t, y_r, 1e-4f, 1e-3f).ok);
  EXPECT_TRUE(testing::allclose_report(gx_t, gx_r, 1e-4f, 1e-3f).ok);
  EXPECT_TRUE(testing::allclose_report(gw_t, gw_r, 1e-3f, 1e-3f).ok);
  EXPECT_TRUE(testing::allclose_report(gb_t, gb_r, 1e-4f, 1e-3f).ok);
}

}  // namespace
}  // namespace capr
