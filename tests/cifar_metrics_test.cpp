// CIFAR binary loader (against synthesized files in the exact on-disk
// format) and classification metrics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/cifar_binary.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/metrics.h"
#include "nn/trainer.h"

namespace capr {
namespace {

/// Writes `n` records in CIFAR binary layout with deterministic content.
void write_fake_cifar(const std::string& path, int64_t n, int64_t label_bytes) {
  std::ofstream os(path, std::ios::binary);
  for (int64_t i = 0; i < n; ++i) {
    if (label_bytes == 2) {
      const uint8_t coarse = static_cast<uint8_t>(i % 20);
      os.put(static_cast<char>(coarse));
    }
    const uint8_t fine = static_cast<uint8_t>(i % 10);
    os.put(static_cast<char>(fine));
    for (int64_t b = 0; b < 3072; ++b) {
      os.put(static_cast<char>((i * 31 + b) % 256));
    }
  }
}

TEST(CifarBinaryTest, ParsesRecordsAndLabels) {
  const std::string path = ::testing::TempDir() + "fake_c10.bin";
  write_fake_cifar(path, 7, 1);
  const data::Dataset d = data::parse_cifar_file(path, 10, 3073, /*normalize=*/false);
  EXPECT_EQ(d.size(), 7);
  EXPECT_EQ(d.image_shape(), (Shape{3, 32, 32}));
  for (int64_t i = 0; i < 7; ++i) EXPECT_EQ(d.label(i), i % 10);
  // First pixel of record 0 is byte value 0 -> 0.0 after /255.
  EXPECT_FLOAT_EQ(d.images()[0], 0.0f);
  // Pixel values bounded in [0, 1] without normalisation.
  for (int64_t i = 0; i < d.images().numel(); ++i) {
    EXPECT_GE(d.images()[i], 0.0f);
    EXPECT_LE(d.images()[i], 1.0f);
  }
  std::remove(path.c_str());
}

TEST(CifarBinaryTest, Cifar100RecordsUseFineLabel) {
  const std::string path = ::testing::TempDir() + "fake_c100.bin";
  write_fake_cifar(path, 5, 2);
  const data::Dataset d = data::parse_cifar_file(path, 100, 3074, false);
  EXPECT_EQ(d.size(), 5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(d.label(i), i % 10);  // fine label
  std::remove(path.c_str());
}

TEST(CifarBinaryTest, NormalizationChangesScale) {
  const std::string path = ::testing::TempDir() + "fake_norm.bin";
  write_fake_cifar(path, 2, 1);
  const data::Dataset raw = data::parse_cifar_file(path, 10, 3073, false);
  const data::Dataset norm = data::parse_cifar_file(path, 10, 3073, true);
  bool any_negative = false;
  for (int64_t i = 0; i < norm.images().numel(); ++i) any_negative |= norm.images()[i] < 0.0f;
  EXPECT_TRUE(any_negative);  // zero pixels map below the channel mean
  EXPECT_FALSE(raw.images().allclose(norm.images(), 1e-3f));
  std::remove(path.c_str());
}

TEST(CifarBinaryTest, RejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "fake_bad.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "garbage that is not a multiple of 3073";
  }
  EXPECT_THROW(data::parse_cifar_file(path, 10, 3073, false), std::runtime_error);
  EXPECT_THROW(data::parse_cifar_file("/nonexistent.bin", 10, 3073, false),
               std::runtime_error);
  EXPECT_THROW(data::parse_cifar_file(path, 10, 999, false), std::invalid_argument);
  std::remove(path.c_str());
  data::CifarBinaryConfig cfg;
  cfg.num_classes = 37;
  EXPECT_THROW(data::load_cifar_binary(cfg), std::invalid_argument);
}

struct MetricsFixture {
  nn::Model model;
  data::SyntheticCifar data;

  MetricsFixture() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.5f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 16;
    dcfg.test_per_class = 8;
    dcfg.image_size = 8;
    dcfg.noise_stddev = 0.1f;
    data = data::make_synthetic_cifar(dcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 10;
    tcfg.batch_size = 16;
    tcfg.sgd.lr = 0.05f;
    nn::train(model, data.train, tcfg);
  }
};

TEST(MetricsTest, ConfusionMatrixSumsToDatasetSize) {
  MetricsFixture f;
  const auto cm = nn::confusion_matrix(f.model, f.data.test);
  int64_t total = 0;
  for (const auto& row : cm) {
    for (int64_t v : row) {
      EXPECT_GE(v, 0);
      total += v;
    }
  }
  EXPECT_EQ(total, f.data.test.size());
}

TEST(MetricsTest, PerClassAccuracyConsistentWithOverall) {
  MetricsFixture f;
  const auto per_class = nn::per_class_accuracy(f.model, f.data.test);
  ASSERT_EQ(per_class.size(), 4u);
  double weighted = 0.0;
  for (float a : per_class) weighted += a * 8.0;  // 8 examples per class
  const float overall = nn::evaluate(f.model, f.data.test);
  EXPECT_NEAR(weighted / 32.0, overall, 1e-5);
}

TEST(MetricsTest, TopKOrderingAndBounds) {
  MetricsFixture f;
  const float top1 = nn::topk_accuracy(f.model, f.data.test, 1);
  const float top2 = nn::topk_accuracy(f.model, f.data.test, 2);
  const float top4 = nn::topk_accuracy(f.model, f.data.test, 4);
  EXPECT_NEAR(top1, nn::evaluate(f.model, f.data.test), 1e-5f);
  EXPECT_LE(top1, top2);
  EXPECT_LE(top2, top4);
  EXPECT_FLOAT_EQ(top4, 1.0f);  // k == num_classes always hits
  EXPECT_THROW(nn::topk_accuracy(f.model, f.data.test, 0), std::invalid_argument);
}

}  // namespace
}  // namespace capr
