// Autotuner corpus + search-engine tests. The corpus must be
// deterministic (two capr-tune runs search identical shape lists) and
// must actually contain the pruned-model im2col shapes the tuner exists
// for; the smoke search must produce a structurally valid, round-trippable
// table with zero bitwise rejections (the kernel's config invariance is
// a hard guarantee, not a statistical one).
#include "tune/search.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>

#include "tensor/gemm_tune.h"
#include "tune/corpus.h"

namespace capr::tune {
namespace {

using Key = std::tuple<int, int64_t, int64_t, int64_t>;
Key key(const CorpusShape& s) { return {static_cast<int>(s.variant), s.m, s.k, s.n}; }

TEST(TuneCorpusTest, IsDeterministicAndDeduplicated) {
  const std::vector<CorpusShape> a = build_corpus();
  const std::vector<CorpusShape> b = build_corpus();
  ASSERT_EQ(a.size(), b.size());
  std::set<Key> seen;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(key(a[i]), key(b[i])) << "corpus order differs at " << i;
    EXPECT_EQ(a[i].origin, b[i].origin);
    EXPECT_TRUE(seen.insert(key(a[i])).second) << "duplicate shape at " << i;
    EXPECT_GT(a[i].m, 0);
    EXPECT_GT(a[i].k, 0);
    EXPECT_GT(a[i].n, 0);
  }
}

TEST(TuneCorpusTest, ContainsBenchAndHarvestedShapes) {
  const std::vector<CorpusShape> corpus = build_corpus();
  std::set<Key> keys;
  for (const CorpusShape& s : corpus) keys.insert(key(s));
  // The committed bench sweep rides along verbatim.
  EXPECT_TRUE(keys.count({static_cast<int>(GemmVariant::kNN), 256, 256, 256}));
  EXPECT_TRUE(keys.count({static_cast<int>(GemmVariant::kNN), 16, 144, 1024}));
  // Conv im2col and linear NT shapes from the graph harvest.
  bool any_conv = false, any_linear = false, any_pruned = false;
  for (const CorpusShape& s : corpus) {
    if (s.origin.find("/conv@") != std::string::npos) any_conv = true;
    if (s.origin.find("/linear@") != std::string::npos) any_linear = true;
    if (s.origin.find("-pruned/") != std::string::npos) any_pruned = true;
  }
  EXPECT_TRUE(any_conv);
  EXPECT_TRUE(any_linear);
  EXPECT_TRUE(any_pruned) << "pruning produced no new shapes — harvest is broken";
}

TEST(TuneCorpusTest, PrunedIm2colShapesAreSkinnyPrunedConvs) {
  const std::vector<CorpusShape> shapes = pruned_im2col_shapes();
  ASSERT_FALSE(shapes.empty());
  EXPECT_LE(shapes.size(), 6u);
  const std::vector<CorpusShape> again = pruned_im2col_shapes();
  ASSERT_EQ(shapes.size(), again.size());
  for (size_t i = 0; i < shapes.size(); ++i) {
    EXPECT_EQ(key(shapes[i]), key(again[i]));
    EXPECT_EQ(shapes[i].variant, GemmVariant::kNN);
    EXPECT_NE(shapes[i].origin.find("-pruned/conv@"), std::string::npos)
        << shapes[i].origin;
  }
  // Smallest-M-first ordering: the worst strip-padding shapes lead.
  for (size_t i = 1; i < shapes.size(); ++i) EXPECT_GE(shapes[i].m, shapes[0].m);
}

TEST(TuneSearchTest, SmokeSearchProducesValidRoundTrippableTable) {
  // A tiny synthetic corpus keeps this test fast; two classes.
  std::vector<CorpusShape> corpus = {
      {GemmVariant::kNN, 8, 72, 64, "test"},
      {GemmVariant::kNN, 12, 96, 80, "test"},
      {GemmVariant::kNT, 8, 128, 10, "test"},
  };
  TuneOptions opts;
  opts.smoke = true;
  std::ostringstream log;
  opts.log = &log;
  const TuneResult result = run_autotune(corpus, opts);
  EXPECT_EQ(result.table.host, host_fingerprint());
  ASSERT_EQ(result.reports.size(), 2u) << log.str();
  for (const ClassReport& r : result.reports) {
    EXPECT_GT(r.shapes, 0);
    EXPECT_EQ(r.rejected_bitwise, 0)
        << r.cls.key() << ": a config failed the bitwise eligibility check — the "
        << "kernel's config invariance is broken";
    EXPECT_TRUE(gemm_config_valid(r.entry.cfg));
    EXPECT_GT(r.entry.baseline_gflops, 0.0);
    if (r.tuned) {
      const GemmTuneEntry* e = result.table.find(r.cls);
      ASSERT_NE(e, nullptr);
      EXPECT_TRUE(e->cfg == r.entry.cfg);
    }
  }
  // Whatever the timings decided, the table round-trips byte-stable.
  const std::string json = to_json(result.table);
  GemmTuningTable back;
  ASSERT_TRUE(parse_gemm_tuning(json, &back).ok());
  EXPECT_EQ(to_json(back), json);
}

TEST(TuneSearchTest, VerifyReportsCommittedEntriesEligible) {
  // Build a table from a quick smoke search, then verify it: every entry
  // must still pass the bitwise re-check on its recorded rep shape.
  std::vector<CorpusShape> corpus = {
      {GemmVariant::kNN, 8, 72, 64, "test"},
      {GemmVariant::kNN, 16, 144, 256, "test"},
  };
  TuneOptions opts;
  opts.smoke = true;
  const TuneResult result = run_autotune(corpus, opts);
  const std::vector<VerifyRow> rows = verify_table(result.table, opts);
  EXPECT_EQ(rows.size(), static_cast<size_t>(result.table.present_count()));
  for (const VerifyRow& row : rows) {
    EXPECT_TRUE(row.eligible) << row.cls.key();
    EXPECT_TRUE(row.measured) << row.cls.key();
    EXPECT_GT(row.measured_gflops, 0.0);
    EXPECT_GT(row.drift(), 0.0);
  }
}

}  // namespace
}  // namespace capr::tune
